// Ablations of the paper's design choices (DESIGN.md D1-D4):
//   D1 symmetrization step (Sec. 3.2) vs none / FGNP forwarding;
//   D2 permutation test vs random-pair SWAP at internal tree nodes;
//   D3 relay spacing (Algorithm 6's ceil(n^{1/3}) is the sweet spot);
//   D4 repetition count k = Theta(r^2) is necessary and sufficient.
#include <cmath>
#include <iostream>

#include "dqma/attacks.hpp"
#include "dqma/eq_graph.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/relay_eq.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dqma;
using protocol::EqGraphProtocol;
using protocol::EqPathMode;
using protocol::EqPathProtocol;
using protocol::GraphTestMode;
using protocol::RelayEqProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

int main() {
  Rng rng(42);
  std::cout << "Ablations of the paper's design choices\n";

  {
    util::print_banner(
        std::cout, "D1: the symmetrization step",
        "Acceptance of the forward-chain cheat on a no instance (r = 6,\n"
        "n = 16, 1 repetition). Without symmetrization the cheat is perfect.");
    Table table({"mode", "chain-cheat accept", "best attack accept"});
    const int n = 16;
    const int r = 6;
    const Bitstring x = Bitstring::random(n, rng);
    Bitstring y = Bitstring::random(n, rng);
    if (x == y) y.flip(0);
    for (const auto& [mode, name] :
         {std::pair{EqPathMode::kNoSymmetrization, "no symmetrization"},
          std::pair{EqPathMode::kSymmetrized, "symmetrized (paper)"}}) {
      const EqPathProtocol protocol(n, r, 0.3, 1, mode);
      const auto hx = protocol.scheme().state(x);
      const auto hy = protocol.scheme().state(y);
      protocol::PathProof cheat;
      for (int j = 0; j < r - 1; ++j) {
        cheat.reg0.push_back(hx);
        cheat.reg1.push_back(j + 1 < r - 1 ? hx : hy);
      }
      table.add_row({name,
                     Table::fmt(protocol.single_rep_accept(x, y, cheat)),
                     Table::fmt(protocol.best_attack_accept(x, y))});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "D2: permutation test vs random-pair SWAP (stars, 1 rep)",
        "Per-repetition soundness error against the interpolation attack;\n"
        "higher is better for the verifier. n = 16.");
    Table table({"t", "permutation test err", "random-pair err",
                 "advantage factor"});
    const int n = 16;
    for (int t : {3, 4, 5, 6, 7}) {
      const network::Graph g = network::Graph::star(t);
      std::vector<int> terminals;
      for (int i = 1; i <= t; ++i) terminals.push_back(i);
      const EqGraphProtocol perm(g, terminals, n, 0.3, 1,
                                 GraphTestMode::kPermutationTest);
      const EqGraphProtocol pair(g, terminals, n, 0.3, 1,
                                 GraphTestMode::kRandomPairSwap);
      const Bitstring x = Bitstring::random(n, rng);
      std::vector<Bitstring> inputs(static_cast<std::size_t>(t), x);
      inputs.back() = Bitstring::random(n, rng);
      if (inputs.back() == x) inputs.back().flip(0);
      const double perm_err = 1.0 - perm.best_attack_accept(inputs);
      const double pair_err = 1.0 - pair.best_attack_accept(inputs);
      table.add_row({Table::fmt(t), Table::fmt(perm_err),
                     Table::fmt(pair_err),
                     Table::fmt(perm_err / std::max(1e-12, pair_err))});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "D3: relay spacing sweep (Algorithm 6)",
        "Total proof qubits vs spacing s (segment repetitions k = 42 s^2),\n"
        "r = 4096, n = 2^15. Balancing (r/s) n against 84 r s^2 q places the\n"
        "constant-optimal spacing at (n / 168 q)^{1/3} ~ 2-3 here: the SAME\n"
        "n-exponent as the paper's ceil(n^{1/3}) (both give total\n"
        "~ r n^{2/3} up to log factors) but a (84 q)^{1/3}-fold smaller\n"
        "constant. Expected: minimum at s = 2-3, and every Theta(n^{1/3})\n"
        "spacing within a polylog factor of it.");
    Table table({"spacing", "total proof (qubits)"});
    const int n = 1 << 15;
    const int r = 4096;
    for (int spacing : {1, 2, 3, 4, 8, 16, 32, 64, 128}) {
      const auto c = RelayEqProtocol::costs_for(n, r, 0.3, spacing,
                                                42 * spacing * spacing);
      table.add_row({Table::fmt(spacing), Table::fmt(c.total_proof_qubits)});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "D4: repetition count k",
        "Attacked soundness error of the EQ path protocol vs k at r = 6,\n"
        "n = 16. Expected: error ~ (1 - Theta(1/r))^k, reaching 2/3 at\n"
        "k = Theta(r) and 1 - 1/3 at the paper's k = Theta(r^2).");
    Table table({"k", "attack accept", "<= 1/3?"});
    const int n = 16;
    const int r = 6;
    const Bitstring x = Bitstring::random(n, rng);
    Bitstring y = Bitstring::random(n, rng);
    if (x == y) y.flip(0);
    for (int k : {1, 8, 32, 128, EqPathProtocol::paper_reps(r)}) {
      const EqPathProtocol protocol(n, r, 0.3, k);
      const double attack = protocol.best_attack_accept(x, y);
      table.add_row({Table::fmt(k), Table::fmt(attack),
                     attack <= 1.0 / 3.0 ? "yes" : "no"});
    }
    table.print(std::cout);
  }
  return 0;
}

// Ablations of the paper's design choices (DESIGN.md D1-D4):
//   D1 symmetrization step (Sec. 3.2) vs none / FGNP forwarding;
//   D2 permutation test vs random-pair SWAP at internal tree nodes;
//   D3 relay spacing (Algorithm 6's ceil(n^{1/3}) is the sweet spot);
//   D4 repetition count k = Theta(r^2) is necessary and sufficient.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "dqma/attacks.hpp"
#include "dqma/eq_graph.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/relay_eq.hpp"
#include "experiments.hpp"
#include "network/graph.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using protocol::EqGraphProtocol;
using protocol::EqPathMode;
using protocol::EqPathProtocol;
using protocol::GraphTestMode;
using protocol::RelayEqProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();

  {
    util::print_banner(
        out, "D1: the symmetrization step",
        "Acceptance of the forward-chain cheat on a no instance (r = 6,\n"
        "n = 16, 1 repetition). Without symmetrization the cheat is "
        "perfect.");
    sweep::ParamGrid grid;
    grid.axis("mode",
              std::vector<std::string>{"no symmetrization",
                                       "symmetrized (paper)"});
    const auto points = grid.enumerate();
    // Both modes must be attacked on the SAME no-instance — the ablation
    // isolates the symmetrization step, not input variation — so the pair
    // comes from a shared stream rather than the per-job one.
    const std::uint64_t input_seed = util::derive_seed(
        ctx.base_seed(), sweep::fnv1a64("d1_symmetrization/inputs"));
    const auto results = ctx.sweep(
        "d1_symmetrization", points,
        [input_seed](const sweep::ParamPoint& p, Rng&) {
          const int n = 16;
          const int r = 6;
          const EqPathMode mode = p.get_string("mode") == "no symmetrization"
                                      ? EqPathMode::kNoSymmetrization
                                      : EqPathMode::kSymmetrized;
          Rng input_rng(input_seed);
          const Bitstring x = Bitstring::random(n, input_rng);
          Bitstring y = Bitstring::random(n, input_rng);
          if (x == y) y.flip(0);
          const EqPathProtocol protocol(n, r, 0.3, 1, mode);
          const auto hx = protocol.scheme().state(x);
          const auto hy = protocol.scheme().state(y);
          protocol::PathProof cheat;
          for (int j = 0; j < r - 1; ++j) {
            cheat.reg0.push_back(hx);
            cheat.reg1.push_back(j + 1 < r - 1 ? hx : hy);
          }
          return sweep::Metrics()
              .set("chain_cheat_accept",
                   protocol.single_rep_accept(x, y, cheat))
              .set("best_attack_accept", protocol.best_attack_accept(x, y));
        });
    Table table({"mode", "chain-cheat accept", "best attack accept"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      const auto& m = results[i].metrics;
      table.add_row({points[i].get_string("mode"),
                     Table::fmt(m.get_double("chain_cheat_accept")),
                     Table::fmt(m.get_double("best_attack_accept"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "D2: permutation test vs random-pair SWAP (stars, 1 rep)",
        "Per-repetition soundness error against the interpolation attack;\n"
        "higher is better for the verifier. n = 16.");
    sweep::ParamGrid grid;
    grid.axis("t", ctx.smoke_select(std::vector<int>{3, 4, 5, 6, 7},
                                    {3, 4}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "d2_test_modes", points, [](const sweep::ParamPoint& p, Rng& rng) {
          const int n = 16;
          const int t = static_cast<int>(p.get_int("t"));
          const network::Graph g = network::Graph::star(t);
          std::vector<int> terminals;
          for (int i = 1; i <= t; ++i) terminals.push_back(i);
          const EqGraphProtocol perm(g, terminals, n, 0.3, 1,
                                     GraphTestMode::kPermutationTest);
          const EqGraphProtocol pair(g, terminals, n, 0.3, 1,
                                     GraphTestMode::kRandomPairSwap);
          const Bitstring x = Bitstring::random(n, rng);
          std::vector<Bitstring> inputs(static_cast<std::size_t>(t), x);
          inputs.back() = Bitstring::random(n, rng);
          if (inputs.back() == x) inputs.back().flip(0);
          const double perm_err = 1.0 - perm.best_attack_accept(inputs);
          const double pair_err = 1.0 - pair.best_attack_accept(inputs);
          return sweep::Metrics()
              .set("permutation_test_err", perm_err)
              .set("random_pair_err", pair_err)
              .set("advantage_factor",
                   perm_err / std::max(1e-12, pair_err));
        });
    Table table({"t", "permutation test err", "random-pair err",
                 "advantage factor"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("t")),
                     Table::fmt(m.get_double("permutation_test_err")),
                     Table::fmt(m.get_double("random_pair_err")),
                     Table::fmt(m.get_double("advantage_factor"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "D3: relay spacing sweep (Algorithm 6)",
        "Total proof qubits vs spacing s (segment repetitions k = 42 s^2),\n"
        "r = 4096, n = 2^15. Balancing (r/s) n against 84 r s^2 q places "
        "the\n"
        "constant-optimal spacing at (n / 168 q)^{1/3} ~ 2-3 here: the SAME\n"
        "n-exponent as the paper's ceil(n^{1/3}) (both give total\n"
        "~ r n^{2/3} up to log factors) but a (84 q)^{1/3}-fold smaller\n"
        "constant. Expected: minimum at s = 2-3, and every Theta(n^{1/3})\n"
        "spacing within a polylog factor of it.");
    sweep::ParamGrid grid;
    grid.axis("spacing", std::vector<int>{1, 2, 3, 4, 8, 16, 32, 64, 128});
    const auto points = grid.enumerate();
    // Closed-form costs: replicate so every shard renders the full curve
    // (each point still lands in exactly one shard's document).
    const auto results = ctx.sweep(
        "d3_relay_spacing", points,
        [](const sweep::ParamPoint& p, Rng&) {
          const int n = 1 << 15;
          const int r = 4096;
          const int spacing = static_cast<int>(p.get_int("spacing"));
          const auto c = RelayEqProtocol::costs_for(n, r, 0.3, spacing,
                                                    42 * spacing * spacing);
          return sweep::Metrics().set("total_proof_qubits",
                                      c.total_proof_qubits);
        },
        sweep::SweepPolicy::replicate());
    Table table({"spacing", "total proof (qubits)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      table.add_row(
          {Table::fmt(points[i].get_int("spacing")),
           Table::fmt(results[i].metrics.get_int("total_proof_qubits"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "D4: repetition count k",
        "Attacked soundness error of the EQ path protocol vs k at r = 6,\n"
        "n = 16. Expected: error ~ (1 - Theta(1/r))^k, reaching 2/3 at\n"
        "k = Theta(r) and 1 - 1/3 at the paper's k = Theta(r^2).");
    const int r = 6;
    std::vector<int> ks{1, 8, 32, 128, EqPathProtocol::paper_reps(r)};
    if (ctx.smoke()) ks = {1, 32, EqPathProtocol::paper_reps(r)};
    sweep::ParamGrid grid;
    grid.axis("k", ks);
    const auto points = grid.enumerate();
    // One fixed no-instance across the whole k sweep, so the recorded
    // decay curve is monotone in k by construction.
    const std::uint64_t input_seed = util::derive_seed(
        ctx.base_seed(), sweep::fnv1a64("d4_repetitions/inputs"));
    const auto results = ctx.sweep(
        "d4_repetitions", points,
        [r, input_seed](const sweep::ParamPoint& p, Rng&) {
          const int n = 16;
          Rng input_rng(input_seed);
          const Bitstring x = Bitstring::random(n, input_rng);
          Bitstring y = Bitstring::random(n, input_rng);
          if (x == y) y.flip(0);
          const EqPathProtocol protocol(n, r, 0.3,
                                        static_cast<int>(p.get_int("k")));
          const double attack = protocol.best_attack_accept(x, y);
          return sweep::Metrics()
              .set("attack_accept", attack)
              .set("sound", attack <= 1.0 / 3.0);
        });
    Table table({"k", "attack accept", "<= 1/3?"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("k")),
                     Table::fmt(m.get_double("attack_accept")),
                     m.get_bool("sound") ? "yes" : "no"});
    }
    table.print(out);
  }
}

}  // namespace

void register_ablations() {
  sweep::register_experiment(
      {"ablations", "Ablations of the paper's design choices (D1-D4)", run});
}

}  // namespace dqma::bench

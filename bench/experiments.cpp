#include "experiments.hpp"

namespace dqma::bench {

void register_all_experiments() {
  static const bool registered = [] {
    register_table1_fgnp();
    register_table2_eq();
    register_table2_relay();
    register_table2_gt_rv();
    register_table2_hamming();
    register_table2_qmacc();
    register_table3_lower();
    register_ablations();
    register_robustness();
    register_exp_topology();
    register_coordinator_recovery();
    register_micro();
    register_serve_throughput();
    return true;
  }();
  (void)registered;
}

}  // namespace dqma::bench

// Scenario-space sweep (ROADMAP item 3): protocols measured across random
// (topology, noise, adversary, instance) tuples instead of the paper's
// fixed worst-case networks. Every sweep point draws N seeded scenarios,
// classifies each against the named adversary from the scenario registry,
// and records the exact integer taxonomy counts as regular metrics — the
// regression gate pins the full classification, not a summary statistic.
#include <cstdint>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "scenario/adversary.hpp"
#include "scenario/sampler.hpp"
#include "scenario/taxonomy.hpp"
#include "scenario/topology.hpp"
#include "sweep/registry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using scenario::Adversary;
using scenario::ClassifyLimits;
using scenario::ScenarioSample;
using scenario::ScenarioSpec;
using scenario::TaxonomyCounts;
using util::Rng;
using util::Table;

ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.topology.nodes = 9;
  spec.topology.max_degree = 3;
  spec.n = 8;
  spec.delta = 0.3;
  spec.reps = 2;
  spec.tag_bits = 5;  // < n: the budgeted tag protocol has collisions
  spec.yes_probability = 0.5;
  return spec;
}

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();
  scenario::register_builtin_adversaries();

  {
    util::print_banner(
        out, "(a) outcome taxonomy across the scenario space",
        "N seeded scenarios per (family, adversary, terminals, noise) cell,\n"
        "each classified into the fixed five-outcome taxonomy. Expected:\n"
        "attack_succeeds from tag_collision wherever tag_bits < n, and from\n"
        "the quantum attacks on short-diameter no instances; t = 7 on stars\n"
        "exceeds the exact engine's local-test width (resource bound).");
    const int samples = ctx.smoke_select(10, 3);
    std::vector<std::string> families;
    for (const auto family : scenario::all_families()) {
      families.emplace_back(scenario::family_name(family));
    }
    std::vector<std::string> adversary_names;
    for (const auto& adversary : scenario::adversaries()) {
      adversary_names.push_back(adversary.name);
    }
    sweep::ParamGrid grid;
    grid.axis("family", families);
    grid.axis("adversary", adversary_names);
    grid.axis("terminals", std::vector<int>{3, 7});
    grid.axis("noise", std::vector<double>{0.0, 0.25});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "taxonomy", points,
        [samples](const sweep::ParamPoint& point, Rng& rng) {
          ScenarioSpec spec = base_spec();
          // Single repetition: the regime where the implemented quantum
          // attacks genuinely cross the 1/3 soundness threshold on
          // short-diameter scenarios (repetitions square them away).
          spec.reps = 1;
          spec.topology.family =
              scenario::family_from_name(point.get_string("family"));
          spec.topology.terminals =
              static_cast<int>(point.get_int("terminals"));
          spec.topology.max_noise = point.get_double("noise");
          const Adversary* adversary =
              scenario::find_adversary(point.get_string("adversary"));
          const ClassifyLimits limits;
          TaxonomyCounts counts;
          for (int s = 0; s < samples; ++s) {
            const ScenarioSample sample =
                scenario::draw_scenario(spec, rng.next_u64());
            counts.add(scenario::classify(sample, *adversary, limits, rng));
          }
          return sweep::Metrics()
              .set("samples", static_cast<long long>(samples))
              .set("completeness_holds", counts.completeness_holds)
              .set("threshold_violated", counts.threshold_violated)
              .set("soundness_holds", counts.soundness_holds)
              .set("attack_succeeds", counts.attack_succeeds)
              .set("resource_bound_exceeded", counts.resource_bound_exceeded);
        });
    Table table({"family", "adversary", "t", "noise", "C", "TV", "S", "A",
                 "RB"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      const auto& m = results[i].metrics;
      table.add_row(
          {points[i].get_string("family"), points[i].get_string("adversary"),
           Table::fmt(points[i].get_int("terminals")),
           Table::fmt(points[i].get_double("noise")),
           Table::fmt(m.get_int("completeness_holds")),
           Table::fmt(m.get_int("threshold_violated")),
           Table::fmt(m.get_int("soundness_holds")),
           Table::fmt(m.get_int("attack_succeeds")),
           Table::fmt(m.get_int("resource_bound_exceeded"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(b) completeness-soundness gap vs repetitions and noise",
        "Random trees, geodesic adversary: mean honest completeness, mean\n"
        "attack acceptance, and how many sampled scenarios stay separated\n"
        "(c >= 2/3 and a <= 1/3). Expected: repetitions widen the gap\n"
        "noiselessly but amplify noise damage on the completeness side.");
    const int samples = ctx.smoke_select(8, 3);
    sweep::ParamGrid grid;
    grid.axis("reps", ctx.smoke_select(std::vector<int>{1, 2, 4}, {1, 2}));
    grid.axis("noise", std::vector<double>{0.0, 0.1});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "gap_vs_reps", points,
        [samples](const sweep::ParamPoint& point, Rng& rng) {
          ScenarioSpec spec = base_spec();
          spec.topology.family = scenario::TopologyFamily::kRandomTree;
          spec.topology.terminals = 3;
          spec.topology.max_noise = point.get_double("noise");
          spec.reps = static_cast<int>(point.get_int("reps"));
          spec.yes_probability = 0.0;  // every draw carries a no instance
          const Adversary* adversary = scenario::find_adversary("geodesic");
          double sum_c = 0.0;
          double sum_a = 0.0;
          long long separated = 0;
          for (int s = 0; s < samples; ++s) {
            const ScenarioSample sample =
                scenario::draw_scenario(spec, rng.next_u64());
            const double c = adversary->completeness(sample, rng);
            const double a = adversary->attack(sample, rng);
            sum_c += c;
            sum_a += a;
            if (c >= 2.0 / 3.0 && a <= 1.0 / 3.0) {
              ++separated;
            }
          }
          const double count = static_cast<double>(samples);
          return sweep::Metrics()
              .set("samples", static_cast<long long>(samples))
              .set("mean_completeness", sum_c / count)
              .set("mean_attack", sum_a / count)
              .set("mean_gap", (sum_c - sum_a) / count)
              .set("separated", separated);
        });
    Table table({"reps", "noise", "mean c", "mean a", "mean gap",
                 "separated"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("reps")),
                     Table::fmt(points[i].get_double("noise")),
                     Table::fmt(m.get_double("mean_completeness")),
                     Table::fmt(m.get_double("mean_attack")),
                     Table::fmt(m.get_double("mean_gap")),
                     Table::fmt(m.get_int("separated"))});
    }
    table.print(out);
  }
}

}  // namespace

void register_exp_topology() {
  sweep::register_experiment(
      {"exp_topology",
       "Extension: seeded scenario sweep over random topologies, "
       "heterogeneous noise, and the adversary registry",
       run});
}

}  // namespace dqma::bench

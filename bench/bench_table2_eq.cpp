// Table 2, row 1 — Theorem 19: dQMA_sep for EQ with t terminals, local
// proof O(r^2 log n), perfect completeness, soundness 1/3.
//
// Regenerated series:
//   (a) local proof size vs n at fixed (r, t): slope ~ log n;
//   (b) local proof size vs r at fixed (n, t): slope ~ r^2;
//   (c) local proof size vs t at fixed (n, r): flat (the paper's
//       improvement over the t-dependent FGNP21 bound);
//   (d) measured completeness (= 1) and attacked soundness (<= 1/3) at the
//       paper's repetition count.
#include <iostream>

#include "dqma/eq_graph.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/locc.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dqma;
using protocol::EqGraphProtocol;
using protocol::EqPathProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

int main() {
  Rng rng(19);
  std::cout << "Reproduction of Table 2, row 1 (Theorem 19: EQ, t terminals, "
               "O(r^2 log n))\n";

  {
    util::print_banner(std::cout, "(a) local proof vs n  [r = 4, t = 2, k = paper]",
                       "Expected: growth ~ log n.");
    Table table({"n", "fingerprint qubits", "local proof (qubits)"});
    for (int n : {16, 64, 256, 1024, 4096, 16384}) {
      const auto c = EqPathProtocol::costs_for(n, 4, 0.3,
                                               EqPathProtocol::paper_reps(4));
      table.add_row({Table::fmt(n),
                     Table::fmt(EqPathProtocol::fingerprint_qubits(n, 0.3)),
                     Table::fmt(c.local_proof_qubits)});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(std::cout, "(b) local proof vs r  [n = 256, t = 2]",
                       "Expected: growth ~ r^2 (repetition count k = ceil(81 r^2 / 2)).");
    Table table({"r", "k (reps)", "local proof (qubits)", "ratio to r=2"});
    long long base = 0;
    for (int r : {2, 4, 8, 16, 32}) {
      const int k = EqPathProtocol::paper_reps(r);
      const auto c = EqPathProtocol::costs_for(256, r, 0.3, k);
      if (base == 0) base = c.local_proof_qubits;
      table.add_row({Table::fmt(r), Table::fmt(k),
                     Table::fmt(c.local_proof_qubits),
                     Table::fmt(static_cast<double>(c.local_proof_qubits) /
                                static_cast<double>(base))});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(std::cout, "(c) local proof vs t  [n = 256, stars]",
                       "Expected: FLAT in t (Theorem 19's improvement).");
    Table table({"t", "local proof (qubits)"});
    for (int t : {2, 3, 4, 5, 6, 7, 8}) {
      const network::Graph g = network::Graph::star(t);
      std::vector<int> terminals;
      for (int i = 1; i <= t; ++i) terminals.push_back(i);
      const EqGraphProtocol protocol(g, terminals, 256, 0.3, 42);
      table.add_row({Table::fmt(t),
                     Table::fmt(protocol.costs().local_proof_qubits)});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(d) completeness / soundness at the paper parameters",
        "Expected: completeness exactly 1; attacked soundness <= 1/3.\n"
        "(product attacks: rotation + all step cuts; n = 24)");
    Table table({"topology", "r", "t", "completeness", "attack accept",
                 "<= 1/3?"});
    const int n = 24;
    for (int r : {2, 4, 6}) {
      const network::Graph g = network::Graph::path(r);
      const EqGraphProtocol protocol(g, {0, r}, n, 0.3,
                                     EqPathProtocol::paper_reps(r));
      const Bitstring x = Bitstring::random(n, rng);
      Bitstring y = Bitstring::random(n, rng);
      if (x == y) y.flip(0);
      const double comp = protocol.completeness(x);
      const double attack = protocol.best_attack_accept({x, y});
      table.add_row({"path", Table::fmt(r), "2", Table::fmt(comp),
                     Table::fmt(attack), attack <= 1.0 / 3.0 ? "yes" : "NO"});
    }
    for (int t : {3, 5}) {
      const network::Graph g = network::Graph::star(t);
      std::vector<int> terminals;
      for (int i = 1; i <= t; ++i) terminals.push_back(i);
      const EqGraphProtocol protocol(g, terminals, n, 0.3,
                                     EqPathProtocol::paper_reps(3));
      const Bitstring x = Bitstring::random(n, rng);
      std::vector<Bitstring> inputs(static_cast<std::size_t>(t), x);
      inputs[1] = Bitstring::random(n, rng);
      if (inputs[1] == x) inputs[1].flip(0);
      const double comp = protocol.completeness(x);
      const double attack = protocol.best_attack_accept(inputs);
      table.add_row({"star", "2", Table::fmt(t), Table::fmt(comp),
                     Table::fmt(attack), attack <= 1.0 / 3.0 ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(e) Corollary 21: LOCC conversion costs",
        "Replacing the quantum verifier-to-verifier messages with classical\n"
        "communication (Lemma 20 / [GMN23a]): local proof\n"
        "O(dmax |V| r^4 log^2 n), classical message O(|V| r^4 log^2 n).");
    Table table({"|V|", "r", "local proof (qubits)", "local message (bits)"});
    for (const auto& [v, r] : {std::pair{10, 2}, std::pair{10, 4},
                              std::pair{40, 2}, std::pair{40, 4}}) {
      const auto c = dqma::protocol::corollary21_eq_costs(256, r, v, 3);
      table.add_row({Table::fmt(v), Table::fmt(r),
                     Table::fmt(c.local_proof_qubits),
                     Table::fmt(c.local_message_bits)});
    }
    table.print(std::cout);
  }
  return 0;
}

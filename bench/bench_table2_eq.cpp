// Table 2, row 1 — Theorem 19: dQMA_sep for EQ with t terminals, local
// proof O(r^2 log n), perfect completeness, soundness 1/3.
//
// Regenerated series:
//   (a) local proof size vs n at fixed (r, t): slope ~ log n;
//   (b) local proof size vs r at fixed (n, t): slope ~ r^2;
//   (c) local proof size vs t at fixed (n, r): flat (the paper's
//       improvement over the t-dependent FGNP21 bound);
//   (d) measured completeness (= 1) and attacked soundness (<= 1/3) at the
//       paper's repetition count — the chain-DP heavy section, run as
//       parallel sweep jobs.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "dqma/attacks.hpp"
#include "dqma/circuit_sim.hpp"
#include "dqma/eq_graph.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/exact_runner.hpp"
#include "dqma/locc.hpp"
#include "dqma/runner.hpp"
#include "experiments.hpp"
#include "network/graph.hpp"
#include "qtest/swap_test.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using protocol::EqGraphProtocol;
using protocol::EqPathProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();

  {
    util::print_banner(out, "(a) local proof vs n  [r = 4, t = 2, k = paper]",
                       "Expected: growth ~ log n.");
    sweep::ParamGrid grid;
    grid.axis("n", std::vector<int>{16, 64, 256, 1024, 4096, 16384});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "local_proof_vs_n", points,
        [](const sweep::ParamPoint& p, Rng&) {
          const int n = static_cast<int>(p.get_int("n"));
          const auto c = EqPathProtocol::costs_for(
              n, 4, 0.3, EqPathProtocol::paper_reps(4));
          return sweep::Metrics()
              .set("fingerprint_qubits",
                   EqPathProtocol::fingerprint_qubits(n, 0.3))
              .set("local_proof_qubits", c.local_proof_qubits);
        },
        // Closed-form cost curves (a)-(c): replicate so each shard
        // renders complete tables while recording only its own points.
        sweep::SweepPolicy::replicate());
    Table table({"n", "fingerprint qubits", "local proof (qubits)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      table.add_row(
          {Table::fmt(points[i].get_int("n")),
           Table::fmt(results[i].metrics.get_int("fingerprint_qubits")),
           Table::fmt(results[i].metrics.get_int("local_proof_qubits"))});
    }
    table.print(out);
  }

  {
    util::print_banner(out, "(b) local proof vs r  [n = 256, t = 2]",
                       "Expected: growth ~ r^2 (repetition count k = "
                       "ceil(81 r^2 / 2)).");
    sweep::ParamGrid grid;
    grid.axis("r", std::vector<int>{2, 4, 8, 16, 32});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "local_proof_vs_r", points,
        [](const sweep::ParamPoint& p, Rng&) {
          const int r = static_cast<int>(p.get_int("r"));
          const int k = EqPathProtocol::paper_reps(r);
          const auto c = EqPathProtocol::costs_for(256, r, 0.3, k);
          return sweep::Metrics().set("reps", k).set("local_proof_qubits",
                                                     c.local_proof_qubits);
        },
        sweep::SweepPolicy::replicate());
    Table table({"r", "k (reps)", "local proof (qubits)", "ratio to r=2"});
    const double base =
        static_cast<double>(results[0].metrics.get_int("local_proof_qubits"));
    for (std::size_t i = 0; i < points.size(); ++i) {
      const long long proof = results[i].metrics.get_int("local_proof_qubits");
      table.add_row({Table::fmt(points[i].get_int("r")),
                     Table::fmt(results[i].metrics.get_int("reps")),
                     Table::fmt(proof),
                     Table::fmt(static_cast<double>(proof) / base)});
    }
    table.print(out);
  }

  {
    util::print_banner(out, "(c) local proof vs t  [n = 256, stars]",
                       "Expected: FLAT in t (Theorem 19's improvement).");
    sweep::ParamGrid grid;
    grid.axis("t", std::vector<int>{2, 3, 4, 5, 6, 7, 8});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "local_proof_vs_t", points,
        [](const sweep::ParamPoint& p, Rng&) {
          const int t = static_cast<int>(p.get_int("t"));
          const network::Graph g = network::Graph::star(t);
          std::vector<int> terminals;
          for (int i = 1; i <= t; ++i) terminals.push_back(i);
          const EqGraphProtocol protocol(g, terminals, 256, 0.3, 42);
          return sweep::Metrics().set("local_proof_qubits",
                                      protocol.costs().local_proof_qubits);
        },
        sweep::SweepPolicy::replicate());
    Table table({"t", "local proof (qubits)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      table.add_row(
          {Table::fmt(points[i].get_int("t")),
           Table::fmt(results[i].metrics.get_int("local_proof_qubits"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(d) completeness / soundness at the paper parameters",
        "Expected: completeness exactly 1; attacked soundness <= 1/3.\n"
        "(product attacks: rotation + all step cuts; n = 24)");
    const int n = 24;
    // The chain-DP heavy section: completeness evaluates every one of the
    // paper's k = ceil(81 r^2 / 2) repetitions (1458 tree DPs at r = 6),
    // so the repetitions are chunked into parallel jobs — the k-fold
    // acceptance is the product of the chunk acceptances — with the attack
    // search as one more job per configuration. This is where the parallel
    // wall-clock win of the sweep engine lands.
    struct Config {
      std::string topology;
      int r;
      int t;
      int reps;
    };
    std::vector<Config> configs;
    for (int r : ctx.smoke_select(std::vector<int>{2, 4, 6}, {2, 4})) {
      configs.push_back({"path", r, 2, EqPathProtocol::paper_reps(r)});
    }
    for (int t : ctx.smoke_select(std::vector<int>{3, 5}, {3})) {
      configs.push_back({"star", 2, t, EqPathProtocol::paper_reps(3)});
    }

    constexpr int kChunkReps = 243;  // ~6 completeness chunks at r = 6
    std::vector<sweep::ParamPoint> points;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto& cfg = configs[c];
      sweep::ParamPoint base;
      base.set("config", static_cast<int>(c))
          .set("topology", cfg.topology)
          .set("r", cfg.r)
          .set("t", cfg.t);
      points.push_back(sweep::ParamPoint(base).set("job", "attack"));
      for (int first = 0, chunk = 0; first < cfg.reps;
           first += kChunkReps, ++chunk) {
        points.push_back(
            sweep::ParamPoint(base)
                .set("job", "completeness_chunk")
                .set("chunk", chunk)
                .set("chunk_reps", std::min(kChunkReps, cfg.reps - first)));
      }
    }

    // All jobs of one configuration must see the same inputs, so they are
    // drawn from a config-indexed stream instead of the per-job one.
    const std::uint64_t input_seed = util::derive_seed(
        ctx.base_seed(), sweep::fnv1a64("soundness_paper_params/inputs"));
    const auto results = ctx.sweep(
        "soundness_paper_params_jobs", points,
        [n, input_seed, &configs](const sweep::ParamPoint& p, Rng&) {
          const auto& cfg = configs[static_cast<std::size_t>(
              p.get_int("config"))];
          Rng input_rng(util::derive_seed(
              input_seed, static_cast<std::uint64_t>(p.get_int("config"))));
          const bool attack_job = p.get_string("job") == "attack";
          const int reps = attack_job
                               ? cfg.reps
                               : static_cast<int>(p.get_int("chunk_reps"));
          if (cfg.topology == "path") {
            const network::Graph g = network::Graph::path(cfg.r);
            const EqGraphProtocol protocol(g, {0, cfg.r}, n, 0.3, reps);
            const Bitstring x = Bitstring::random(n, input_rng);
            Bitstring y = Bitstring::random(n, input_rng);
            if (x == y) y.flip(0);
            return sweep::Metrics().set(
                "accept", attack_job ? protocol.best_attack_accept({x, y})
                                     : protocol.completeness(x));
          }
          const network::Graph g = network::Graph::star(cfg.t);
          std::vector<int> terminals;
          for (int i = 1; i <= cfg.t; ++i) terminals.push_back(i);
          const EqGraphProtocol protocol(g, terminals, n, 0.3, reps);
          const Bitstring x = Bitstring::random(n, input_rng);
          std::vector<Bitstring> inputs(static_cast<std::size_t>(cfg.t), x);
          inputs[1] = Bitstring::random(n, input_rng);
          if (inputs[1] == x) inputs[1].flip(0);
          return sweep::Metrics().set(
              "accept", attack_job ? protocol.best_attack_accept(inputs)
                                   : protocol.completeness(x));
        },
        // All jobs of one configuration shard together, so the k-fold
        // recombination below stays computable in the shard owning it.
        sweep::SweepPolicy::group_by("config"));

    // Recombine: completeness of the k-fold protocol is the product of
    // its chunk acceptances; the attack job carries soundness directly.
    // Under --shard only the shard owning a configuration's group has its
    // chunk results; it records the derived point, the others declare it.
    Table table({"topology", "r", "t", "completeness", "attack accept",
                 "<= 1/3?"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto& cfg = configs[c];
      double completeness = 1.0;
      double attack = 0.0;
      bool local = true;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].get_int("config") != static_cast<long long>(c)) {
          continue;
        }
        if (results[i].skipped) {
          local = false;
          break;
        }
        if (points[i].get_string("job") == "attack") {
          attack = results[i].metrics.get_double("accept");
        } else {
          completeness *= results[i].metrics.get_double("accept");
        }
      }
      if (!local) {
        ctx.skip_record("soundness_paper_params");
        continue;
      }
      ctx.record_owned("soundness_paper_params",
                       sweep::ParamPoint()
                           .set("topology", cfg.topology)
                           .set("r", cfg.r)
                           .set("t", cfg.t),
                       sweep::Metrics()
                           .set("completeness", completeness)
                           .set("attack_accept", attack)
                           .set("sound", attack <= 1.0 / 3.0));
      table.add_row({cfg.topology, Table::fmt(cfg.r), Table::fmt(cfg.t),
                     Table::fmt(completeness), Table::fmt(attack),
                     attack <= 1.0 / 3.0 ? "yes" : "NO"});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(e) Corollary 21: LOCC conversion costs",
        "Replacing the quantum verifier-to-verifier messages with classical\n"
        "communication (Lemma 20 / [GMN23a]): local proof\n"
        "O(dmax |V| r^4 log^2 n), classical message O(|V| r^4 log^2 n).");
    std::vector<sweep::ParamPoint> points;
    for (const auto& [v, r] : {std::pair{10, 2}, std::pair{10, 4},
                               std::pair{40, 2}, std::pair{40, 4}}) {
      points.push_back(sweep::ParamPoint().set("nodes", v).set("r", r));
    }
    const auto results = ctx.sweep(
        "corollary21_locc", points,
        [](const sweep::ParamPoint& p, Rng&) {
          const auto c = protocol::corollary21_eq_costs(
              256, static_cast<int>(p.get_int("r")),
              static_cast<int>(p.get_int("nodes")), 3);
          return sweep::Metrics()
              .set("local_proof_qubits", c.local_proof_qubits)
              .set("local_message_bits", c.local_message_bits);
        },
        sweep::SweepPolicy::replicate());
    Table table({"|V|", "r", "local proof (qubits)", "local message (bits)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      table.add_row(
          {Table::fmt(points[i].get_int("nodes")),
           Table::fmt(points[i].get_int("r")),
           Table::fmt(results[i].metrics.get_int("local_proof_qubits")),
           Table::fmt(results[i].metrics.get_int("local_message_bits"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(f) exact engine vs chain DP at large (d, r)",
        "Cross-layer check on proof spaces beyond the old dense cap: the\n"
        "matrix-free acceptance engine's product-proof acceptance of one\n"
        "Algorithm 3 repetition must match the closed-form coin DP\n"
        "(endpoint overlap 0.3; every proof register = |h_x>).");
    std::vector<sweep::ParamPoint> all_points;
    for (const auto& [d, r] :
         {std::pair{2, 4}, std::pair{4, 3}, std::pair{6, 4}}) {
      all_points.push_back(sweep::ParamPoint().set("d", d).set("r", r));
    }
    const auto points =
        ctx.smoke_select(all_points,
                         {sweep::ParamPoint().set("d", 2).set("r", 4),
                          sweep::ParamPoint().set("d", 6).set("r", 4)});
    const auto results = ctx.sweep(
        "exact_vs_dp_large", points, [](const sweep::ParamPoint& p, Rng&) {
          const int d = static_cast<int>(p.get_int("d"));
          const int r = static_cast<int>(p.get_int("r"));
          linalg::CVec hx = linalg::CVec::basis(d, 0);
          linalg::CVec hy(d);
          hy[0] = linalg::Complex{0.3, 0.0};
          hy[1] = linalg::Complex{std::sqrt(1.0 - 0.09), 0.0};
          // Product proof: every register |h_x>.
          protocol::PathProof proof;
          proof.reg0.assign(static_cast<std::size_t>(r - 1), hx);
          proof.reg1.assign(static_cast<std::size_t>(r - 1), hx);
          const double dp = protocol::chain_accept(
              hx, proof,
              [](const linalg::CVec& a, const linalg::CVec& b) {
                return qtest::swap_test_accept(a, b);
              },
              [&hy](const linalg::CVec& v) { return std::norm(hy.dot(v)); });
          const protocol::ExactEqPathAnalyzer exact(
              hx, hy, r, protocol::ExactEqPathAnalyzer::Mode::kMatrixFree);
          std::vector<linalg::CVec> regs(
              static_cast<std::size_t>(2 * (r - 1)), hx);
          const double engine = exact.product_accept(regs);
          const protocol::ExactEqPathAnalyzer honest(
              hx, hx, r, protocol::ExactEqPathAnalyzer::Mode::kMatrixFree);
          return sweep::Metrics()
              .set("proof_dim", exact.proof_dim())
              .set("dp_accept", dp)
              .set("engine_accept", engine)
              .set("abs_diff", std::abs(dp - engine))
              .set("honest_accept", honest.product_accept(regs));
        });
    Table table({"d", "r", "proof dim", "chain DP", "exact engine",
                 "|diff|", "honest (= 1)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("d")),
                     Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_int("proof_dim")),
                     Table::fmt(m.get_double("dp_accept")),
                     Table::fmt(m.get_double("engine_accept")),
                     Table::fmt(m.get_double("abs_diff")),
                     Table::fmt(m.get_double("honest_accept"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(g) circuit-level Monte-Carlo vs chain DP",
        "The third protocol implementation, cross-checked: Algorithm 3 run\n"
        "as sampled SWAP-test circuits under the rotation attack, against\n"
        "the exact coin DP. 'batched' precomputes the coin-conditioned\n"
        "closed-form test probabilities once (O(r d) total) and replays the\n"
        "identical draw sequence; 'state_vector' simulates every shot on\n"
        "the 2d^2-amplitude machine — the pre-batching per-shot baseline,\n"
        "kept as a perf reference (wall_ms under --timings).");
    const int samples = ctx.smoke_select(4000, 500);
    std::vector<sweep::ParamPoint> points;
    for (const auto& [d, r] :
         ctx.smoke_select(std::vector<std::pair<int, int>>{
                              {16, 4}, {64, 4}, {64, 6}},
                          {{16, 4}, {64, 4}})) {
      for (const char* strategy : {"batched", "state_vector"}) {
        points.push_back(sweep::ParamPoint()
                             .set("d", d)
                             .set("r", r)
                             .set("strategy", strategy)
                             .set("samples", samples));
      }
    }
    const auto results = ctx.sweep(
        "circuit_mc", points, [](const sweep::ParamPoint& p, Rng& rng) {
          const int d = static_cast<int>(p.get_int("d"));
          const int r = static_cast<int>(p.get_int("r"));
          const int samples = static_cast<int>(p.get_int("samples"));
          // Deterministic inputs (no rng): endpoint overlap 0.3, rotation
          // attack proof — so both strategies of a (d, r) pair estimate
          // the same ground-truth acceptance.
          linalg::CVec hx = linalg::CVec::basis(d, 0);
          linalg::CVec hy(d);
          hy[0] = linalg::Complex{0.3, 0.0};
          hy[1] = linalg::Complex{std::sqrt(1.0 - 0.09), 0.0};
          const protocol::PathProof proof =
              protocol::rotation_attack(hx, hy, r - 1);
          const double dp = protocol::chain_accept(
              hx, proof,
              [](const linalg::CVec& a, const linalg::CVec& b) {
                return qtest::swap_test_accept(a, b);
              },
              [&hy](const linalg::CVec& v) { return std::norm(hy.dot(v)); });
          const auto strategy =
              p.get_string("strategy") == "batched"
                  ? protocol::CircuitMcStrategy::kBatched
                  : protocol::CircuitMcStrategy::kStateVector;
          const auto est = protocol::circuit_eq_path_accept(
              hx, hy, proof, rng, samples, strategy);
          return sweep::Metrics()
              .set("dp_accept", dp)
              .set("mc_accept", est.mean)
              .set("half_width_95", est.half_width_95)
              .set("abs_diff", std::abs(est.mean - dp))
              .set("within_ci", std::abs(est.mean - dp) <=
                                    est.half_width_95 + 1e-12);
        });
    Table table({"d", "r", "strategy", "samples", "chain DP", "circuit MC",
                 "|diff|", "in 95% CI?"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("d")),
                     Table::fmt(points[i].get_int("r")),
                     points[i].get_string("strategy"),
                     Table::fmt(points[i].get_int("samples")),
                     Table::fmt(m.get_double("dp_accept")),
                     Table::fmt(m.get_double("mc_accept")),
                     Table::fmt(m.get_double("abs_diff")),
                     m.get_bool("within_ci") ? "yes" : "NO"});
    }
    table.print(out);
  }
}

}  // namespace

void register_table2_eq() {
  sweep::register_experiment(
      {"table2_eq",
       "Table 2, row 1 (Theorem 19: EQ, t terminals, O(r^2 log n))", run});
}

}  // namespace dqma::bench

// Compatibility shim: each legacy bench_<name> binary is dqma_bench pinned
// to a single experiment, so existing workflows (CTest's bench-smoke label,
// `./build/bench/bench_table2_eq`) keep working unchanged while the
// experiment bodies live in the shared registry. The per-target experiment
// is injected by CMake via DQMA_EXPERIMENT_NAME.
#include "experiments.hpp"
#include "sweep/registry.hpp"

#ifndef DQMA_EXPERIMENT_NAME
#error "standalone_shim.cpp must be compiled with -DDQMA_EXPERIMENT_NAME=..."
#endif

int main(int argc, char** argv) {
  dqma::bench::register_all_experiments();
  return dqma::sweep::cli_main(argc, argv, DQMA_EXPERIMENT_NAME);
}

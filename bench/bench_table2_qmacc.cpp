// Table 2, rows 7-8 — Proposition 47 and Theorem 46: dQMA protocols for
// functions with efficient QMA communication protocols, via the LSD
// complete problem of Raz-Shpilka.
//
// Regenerated series:
//   (a) the LSD one-way QMA protocol itself (Lemma 45): completeness vs
//       soundness separation, cost O(log m);
//   (b) Algorithm 10 end to end on LSD instances: path protocols with
//       measured completeness/soundness;
//   (c) the Theorem 46 pipeline (dQMA -> QMA* -> LSD -> dQMA_sep) run
//       executable on small EQ instances, plus the ~O(r^2 C^2) cost report.
#include <cstdint>
#include <vector>

#include "comm/eq_protocol.hpp"
#include "comm/history_state.hpp"
#include "comm/lsd.hpp"
#include "dqma/from_qma_cc.hpp"
#include "experiments.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using comm::eq_as_qma_instance;
using comm::EqOneWayProtocol;
using comm::lsd_from_qma_instance;
using comm::lsd_qma_instance;
using comm::LsdInstance;
using protocol::QmaCcPathProtocol;
using protocol::theorem46_costs;
using util::Bitstring;
using util::Rng;
using util::Table;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();

  {
    util::print_banner(
        out, "(a) the LSD QMA one-way protocol (Lemma 45)",
        "Yes: Delta <= 0.1 sqrt(2); No: Delta >= 0.9 sqrt(2). Expected:\n"
        "honest acceptance >= 0.98 vs worst-case acceptance <= 0.04; cost\n"
        "2 ceil(log2 m) qubits.");
    sweep::ParamGrid grid;
    grid.axis("m", ctx.smoke_select(std::vector<int>{16, 32, 64, 128},
                                    {16, 32}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "lsd_one_way", points, [](const sweep::ParamPoint& p, Rng& rng) {
          const int m = static_cast<int>(p.get_int("m"));
          const auto yes =
              lsd_qma_instance(LsdInstance::close_pair(m, 3, 0.1, rng));
          const auto no = lsd_qma_instance(LsdInstance::far_pair(m, 3, rng));
          return sweep::Metrics()
              .set("yes_accept", yes.accept(yes.honest_proof))
              .set("no_accept", no.max_accept())
              .set("cost_qubits", yes.cost_qubits());
        });
    Table table({"ambient dim m", "yes accept (honest)", "no accept (worst)",
                 "cost (qubits)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("m")),
                     Table::fmt(m.get_double("yes_accept")),
                     Table::fmt(m.get_double("no_accept")),
                     Table::fmt(m.get_int("cost_qubits"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(b) Algorithm 10 on LSD instances over a path",
        "m = 32, k = 3 subspaces. Expected: completeness ~0.98^reps on yes,\n"
        "attack accept <= 1/3 on no.");
    sweep::ParamGrid grid;
    grid.axis("r", ctx.smoke_select(std::vector<int>{2, 4, 6}, {2}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "algorithm10_paths", points,
        [](const sweep::ParamPoint& p, Rng& rng) {
          const int r = static_cast<int>(p.get_int("r"));
          const auto yes =
              lsd_qma_instance(LsdInstance::close_pair(32, 3, 0.05, rng));
          const auto no = lsd_qma_instance(LsdInstance::far_pair(32, 3, rng));
          const QmaCcPathProtocol pyes(yes, r, 1);
          const QmaCcPathProtocol pno(no, r, 8 * r);
          return sweep::Metrics()
              .set("reps", 8 * r)
              .set("completeness", pyes.completeness())
              .set("attack_accept", pno.best_attack_accept())
              .set("local_proof_qubits", pno.costs().local_proof_qubits);
        });
    Table table({"r", "reps", "completeness (yes)", "attack accept (no)",
                 "local proof (qubits)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_int("reps")),
                     Table::fmt(m.get_double("completeness")),
                     Table::fmt(m.get_double("attack_accept")),
                     Table::fmt(m.get_int("local_proof_qubits"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(c) Theorem 46 pipeline on EQ instances (executable)",
        "dQMA-for-EQ viewed as a QMA* protocol -> reduced to LSD -> back to\n"
        "a dQMA_sep path protocol. n = 10, fingerprint dim 32.");
    sweep::ParamGrid grid;
    grid.axis("instance", std::vector<std::string>{"yes (x = y)",
                                                   "no (x != y)"});
    const auto points = grid.enumerate();
    // The yes and no rows demonstrate the pipeline on ONE EQ instance, so
    // both jobs draw (x, y) from the same shared stream.
    const std::uint64_t input_seed = util::derive_seed(
        ctx.base_seed(), sweep::fnv1a64("theorem46_pipeline/inputs"));
    const auto results = ctx.sweep(
        "theorem46_pipeline", points,
        [input_seed](const sweep::ParamPoint& p, Rng&) {
          const EqOneWayProtocol eq(10, 32, 0.3, 0x0ddba11);
          Rng input_rng(input_seed);
          const Bitstring x = Bitstring::random(10, input_rng);
          Bitstring y = Bitstring::random(10, input_rng);
          if (x == y) y.flip(0);
          const bool yes_instance = p.get_string("instance") == "yes (x = y)";
          const auto lsd = lsd_from_qma_instance(
              eq_as_qma_instance(eq, x, yes_instance ? x : y), 0.5);
          const QmaCcPathProtocol protocol(lsd_qma_instance(lsd), 3,
                                           yes_instance ? 1 : 30);
          sweep::Metrics metrics;
          metrics.set("lsd_distance_over_sqrt2",
                      lsd.distance() / LsdInstance::kSqrt2);
          if (yes_instance) {
            metrics.set("completeness", protocol.completeness());
          } else {
            metrics.set("attack_accept", protocol.best_attack_accept());
          }
          return metrics;
        });
    Table table({"instance", "LSD distance / sqrt2", "final completeness",
                 "final attack accept"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      const bool yes_instance = m.find("completeness") != nullptr;
      table.add_row(
          {points[i].get_string("instance"),
           Table::fmt(m.get_double("lsd_distance_over_sqrt2")),
           yes_instance ? Table::fmt(m.get_double("completeness")) : "-",
           yes_instance ? "-" : Table::fmt(m.get_double("attack_accept"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(d) Theorem 46 cost accounting ~O(r^2 C^2)",
        "Per-node proof qubits of the simulated dQMA_sep protocol as a\n"
        "function of the source protocol's QMA* cost C and path length r.");
    sweep::ParamGrid grid;
    grid.axis("C", std::vector<long long>{4, 8, 16, 32});
    grid.axis("r", std::vector<int>{4, 16});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "theorem46_costs", points, [](const sweep::ParamPoint& p, Rng&) {
          const auto rep = theorem46_costs(
              p.get_int("C"), static_cast<int>(p.get_int("r")));
          return sweep::Metrics()
              .set("lsd_ambient_dim", rep.lsd_ambient_dim)
              .set("per_node_proof_qubits", rep.per_node_proof_qubits);
        },
        sweep::SweepPolicy::replicate());
    Table table({"C", "r", "LSD dim m", "per-node proof (qubits)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("C")),
                     Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_int("lsd_ambient_dim")),
                     Table::fmt(m.get_int("per_node_proof_qubits"))});
    }
    table.print(out);
  }
}

}  // namespace

void register_table2_qmacc() {
  sweep::register_experiment(
      {"table2_qmacc",
       "Table 2, rows 7-8 (Prop. 47 / Thm. 46: dQMA from QMA communication)",
       run});
}

}  // namespace dqma::bench

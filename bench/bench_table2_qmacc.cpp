// Table 2, rows 7-8 — Proposition 47 and Theorem 46: dQMA protocols for
// functions with efficient QMA communication protocols, via the LSD
// complete problem of Raz-Shpilka.
//
// Regenerated series:
//   (a) the LSD one-way QMA protocol itself (Lemma 45): completeness vs
//       soundness separation, cost O(log m);
//   (b) Algorithm 10 end to end on LSD instances: path protocols with
//       measured completeness/soundness;
//   (c) the Theorem 46 pipeline (dQMA -> QMA* -> LSD -> dQMA_sep) run
//       executable on small EQ instances, plus the ~O(r^2 C^2) cost report.
#include <iostream>

#include "comm/eq_protocol.hpp"
#include "comm/history_state.hpp"
#include "comm/lsd.hpp"
#include "dqma/from_qma_cc.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dqma;
using comm::eq_as_qma_instance;
using comm::EqOneWayProtocol;
using comm::lsd_from_qma_instance;
using comm::lsd_qma_instance;
using comm::LsdInstance;
using protocol::QmaCcPathProtocol;
using protocol::theorem46_costs;
using util::Bitstring;
using util::Rng;
using util::Table;

int main() {
  Rng rng(34);
  std::cout << "Reproduction of Table 2, rows 7-8 (Prop. 47 / Thm. 46: dQMA "
               "from QMA communication)\n";

  {
    util::print_banner(
        std::cout, "(a) the LSD QMA one-way protocol (Lemma 45)",
        "Yes: Delta <= 0.1 sqrt(2); No: Delta >= 0.9 sqrt(2). Expected:\n"
        "honest acceptance >= 0.98 vs worst-case acceptance <= 0.04; cost\n"
        "2 ceil(log2 m) qubits.");
    Table table({"ambient dim m", "yes accept (honest)", "no accept (worst)",
                 "cost (qubits)"});
    for (int m : {16, 32, 64, 128}) {
      const auto yes = lsd_qma_instance(LsdInstance::close_pair(m, 3, 0.1, rng));
      const auto no = lsd_qma_instance(LsdInstance::far_pair(m, 3, rng));
      table.add_row({Table::fmt(m), Table::fmt(yes.accept(yes.honest_proof)),
                     Table::fmt(no.max_accept()),
                     Table::fmt(yes.cost_qubits())});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(b) Algorithm 10 on LSD instances over a path",
        "m = 32, k = 3 subspaces. Expected: completeness ~0.98^reps on yes,\n"
        "attack accept <= 1/3 on no.");
    Table table({"r", "reps", "completeness (yes)", "attack accept (no)",
                 "local proof (qubits)"});
    for (int r : {2, 4, 6}) {
      const auto yes = lsd_qma_instance(LsdInstance::close_pair(32, 3, 0.05, rng));
      const auto no = lsd_qma_instance(LsdInstance::far_pair(32, 3, rng));
      const QmaCcPathProtocol pyes(yes, r, 1);
      const QmaCcPathProtocol pno(no, r, 8 * r);
      table.add_row({Table::fmt(r), Table::fmt(8 * r),
                     Table::fmt(pyes.completeness()),
                     Table::fmt(pno.best_attack_accept()),
                     Table::fmt(pno.costs().local_proof_qubits)});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(c) Theorem 46 pipeline on EQ instances (executable)",
        "dQMA-for-EQ viewed as a QMA* protocol -> reduced to LSD -> back to\n"
        "a dQMA_sep path protocol. n = 10, fingerprint dim 32.");
    Table table({"instance", "LSD distance / sqrt2", "final completeness",
                 "final attack accept"});
    const EqOneWayProtocol eq(10, 32, 0.3, 0x0ddba11);
    const Bitstring x = Bitstring::random(10, rng);
    Bitstring y = Bitstring::random(10, rng);
    if (x == y) y.flip(0);
    {
      const auto lsd = lsd_from_qma_instance(eq_as_qma_instance(eq, x, x), 0.5);
      const QmaCcPathProtocol p(lsd_qma_instance(lsd), 3, 1);
      table.add_row({"yes (x = y)",
                     Table::fmt(lsd.distance() / LsdInstance::kSqrt2),
                     Table::fmt(p.completeness()), "-"});
    }
    {
      const auto lsd = lsd_from_qma_instance(eq_as_qma_instance(eq, x, y), 0.5);
      const QmaCcPathProtocol p(lsd_qma_instance(lsd), 3, 30);
      table.add_row({"no (x != y)",
                     Table::fmt(lsd.distance() / LsdInstance::kSqrt2), "-",
                     Table::fmt(p.best_attack_accept())});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(d) Theorem 46 cost accounting ~O(r^2 C^2)",
        "Per-node proof qubits of the simulated dQMA_sep protocol as a\n"
        "function of the source protocol's QMA* cost C and path length r.");
    Table table({"C", "r", "LSD dim m", "per-node proof (qubits)"});
    for (long long c : {4, 8, 16, 32}) {
      for (int r : {4, 16}) {
        const auto rep = theorem46_costs(c, r);
        table.add_row({Table::fmt(c), Table::fmt(r),
                       Table::fmt(rep.lsd_ambient_dim),
                       Table::fmt(rep.per_node_proof_qubits)});
      }
    }
    table.print(std::cout);
  }
  return 0;
}

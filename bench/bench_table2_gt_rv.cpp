// Table 2, rows 4-5 — Theorem 26 (greater-than, O(r^2 log n)) and
// Theorem 29 (ranking verification, O(t r^2 log n)), plus the classical
// Omega(rn) contrast for GT (Corollary 27).
#include <iostream>

#include "dqma/gt.hpp"
#include "dqma/rv.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dqma;
using protocol::gt_predicate;
using protocol::GtProtocol;
using protocol::GtVariant;
using protocol::RvProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

int main() {
  Rng rng(26);
  std::cout << "Reproduction of Table 2, rows 4-5 (Theorems 26 and 29: GT and "
               "ranking verification)\n";

  {
    util::print_banner(
        std::cout, "(a) GT: completeness / soundness at paper parameters",
        "n = 12; soundness = best product attack over all admissible lying\n"
        "indices. Expected: completeness 1, attack accept <= 1/3.");
    Table table({"r", "variant", "completeness", "attack accept", "<= 1/3?"});
    const int n = 12;
    for (int r : {2, 4, 6}) {
      const int reps = 2 * 81 * r * r / 4 + 1;
      for (const auto& [variant, name] :
           {std::pair{GtVariant::kGreater, "GT>"},
            std::pair{GtVariant::kGeq, "GT>="}}) {
        const GtProtocol protocol(n, r, 0.3, reps, variant);
        // Sample a yes and a no instance.
        Bitstring x = Bitstring::random(n, rng);
        Bitstring y = Bitstring::random(n, rng);
        while (!gt_predicate(variant, x, y)) {
          x = Bitstring::random(n, rng);
          y = Bitstring::random(n, rng);
        }
        const double comp = protocol.completeness(x, y);
        Bitstring xn = Bitstring::random(n, rng);
        Bitstring yn = Bitstring::random(n, rng);
        while (gt_predicate(variant, xn, yn)) {
          xn = Bitstring::random(n, rng);
          yn = Bitstring::random(n, rng);
        }
        const double attack = protocol.best_attack_accept(xn, yn);
        table.add_row({Table::fmt(r), name, Table::fmt(comp),
                       Table::fmt(attack),
                       attack <= 1.0 / 3.0 ? "yes" : "NO"});
      }
    }
    table.print(std::cout);
  }

  {
    util::print_banner(std::cout, "(b) GT local proof vs n  [r = 4]",
                       "Expected: growth ~ log n (index register + prefix "
                       "fingerprints).");
    Table table({"n", "local proof (qubits)"});
    for (int n : {16, 64, 256, 1024}) {
      const GtProtocol protocol(n, 4, 0.3, 2 * 81 * 16 / 4);
      table.add_row({Table::fmt(n),
                     Table::fmt(protocol.costs().local_proof_qubits)});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(c) RV on stars: completeness / soundness / cost vs t",
        "n = 8; terminal 0 claims rank 1..t. Expected: completeness 1 on\n"
        "the true rank, attack accept <= 1/3 on false ranks, total proof\n"
        "~ t * (r^2 log n).");
    Table table({"t", "true rank", "claimed", "completeness/attack", "value",
                 "total proof (qubits)"});
    for (int t : {3, 4, 5}) {
      const network::Graph g = network::Graph::star(t);
      std::vector<int> terminals;
      for (int i = 1; i <= t; ++i) terminals.push_back(i);
      std::vector<Bitstring> inputs;
      for (int i = 0; i < t; ++i) {
        inputs.push_back(Bitstring::from_integer(
            static_cast<std::uint64_t>(10 + 7 * i), 8));
      }
      // inputs ascending: terminal 0 holds the minimum -> true rank t.
      const int reps = 2 * 81 * 2 * 2;
      const RvProtocol truth(g, terminals, 0, t, 8, 0.3, reps);
      table.add_row({Table::fmt(t), Table::fmt(t), Table::fmt(t),
                     "completeness", Table::fmt(truth.completeness(inputs)),
                     Table::fmt(truth.costs().total_proof_qubits)});
      const RvProtocol lie(g, terminals, 0, 1, 8, 0.3, reps);
      table.add_row({Table::fmt(t), Table::fmt(t), "1", "attack accept",
                     Table::fmt(lie.best_attack_accept(inputs)),
                     Table::fmt(lie.costs().total_proof_qubits)});
    }
    table.print(std::cout);
  }
  return 0;
}

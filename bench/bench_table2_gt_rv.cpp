// Table 2, rows 4-5 — Theorem 26 (greater-than, O(r^2 log n)) and
// Theorem 29 (ranking verification, O(t r^2 log n)), plus the classical
// Omega(rn) contrast for GT (Corollary 27).
#include <cstdint>
#include <vector>

#include "dqma/gt.hpp"
#include "dqma/rv.hpp"
#include "experiments.hpp"
#include "network/graph.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using protocol::gt_predicate;
using protocol::GtProtocol;
using protocol::GtVariant;
using protocol::RvProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();

  {
    util::print_banner(
        out, "(a) GT: completeness / soundness at paper parameters",
        "n = 12; soundness = best product attack over all admissible lying\n"
        "indices. Expected: completeness 1, attack accept <= 1/3.");
    const int n = 12;
    sweep::ParamGrid grid;
    grid.axis("r", ctx.smoke_select(std::vector<int>{2, 4, 6}, {2}));
    grid.axis("variant", std::vector<std::string>{"GT>", "GT>="});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "gt_soundness", points, [n](const sweep::ParamPoint& p, Rng& rng) {
          const int r = static_cast<int>(p.get_int("r"));
          const int reps = 2 * 81 * r * r / 4 + 1;
          const GtVariant variant = p.get_string("variant") == "GT>"
                                        ? GtVariant::kGreater
                                        : GtVariant::kGeq;
          const GtProtocol protocol(n, r, 0.3, reps, variant);
          // Sample a yes and a no instance.
          Bitstring x = Bitstring::random(n, rng);
          Bitstring y = Bitstring::random(n, rng);
          while (!gt_predicate(variant, x, y)) {
            x = Bitstring::random(n, rng);
            y = Bitstring::random(n, rng);
          }
          const double comp = protocol.completeness(x, y);
          Bitstring xn = Bitstring::random(n, rng);
          Bitstring yn = Bitstring::random(n, rng);
          while (gt_predicate(variant, xn, yn)) {
            xn = Bitstring::random(n, rng);
            yn = Bitstring::random(n, rng);
          }
          const double attack = protocol.best_attack_accept(xn, yn);
          return sweep::Metrics()
              .set("completeness", comp)
              .set("attack_accept", attack)
              .set("sound", attack <= 1.0 / 3.0);
        });
    Table table({"r", "variant", "completeness", "attack accept", "<= 1/3?"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("r")),
                     points[i].get_string("variant"),
                     Table::fmt(m.get_double("completeness")),
                     Table::fmt(m.get_double("attack_accept")),
                     m.get_bool("sound") ? "yes" : "NO"});
    }
    table.print(out);
  }

  {
    util::print_banner(out, "(b) GT local proof vs n  [r = 4]",
                       "Expected: growth ~ log n (index register + prefix "
                       "fingerprints).");
    sweep::ParamGrid grid;
    grid.axis("n", std::vector<int>{16, 64, 256, 1024});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "gt_local_proof_vs_n", points,
        [](const sweep::ParamPoint& p, Rng&) {
          const GtProtocol protocol(static_cast<int>(p.get_int("n")), 4, 0.3,
                                    2 * 81 * 16 / 4);
          return sweep::Metrics().set("local_proof_qubits",
                                      protocol.costs().local_proof_qubits);
        },
        sweep::SweepPolicy::replicate());
    Table table({"n", "local proof (qubits)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      table.add_row(
          {Table::fmt(points[i].get_int("n")),
           Table::fmt(results[i].metrics.get_int("local_proof_qubits"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(c) RV on stars: completeness / soundness / cost vs t",
        "n = 8; terminal 0 claims rank 1..t. Expected: completeness 1 on\n"
        "the true rank, attack accept <= 1/3 on false ranks, total proof\n"
        "~ t * (r^2 log n).");
    sweep::ParamGrid grid;
    grid.axis("t", ctx.smoke_select(std::vector<int>{3, 4, 5}, {3}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "rv_stars", points, [](const sweep::ParamPoint& p, Rng&) {
          const int t = static_cast<int>(p.get_int("t"));
          const network::Graph g = network::Graph::star(t);
          std::vector<int> terminals;
          for (int i = 1; i <= t; ++i) terminals.push_back(i);
          std::vector<Bitstring> inputs;
          for (int i = 0; i < t; ++i) {
            inputs.push_back(Bitstring::from_integer(
                static_cast<std::uint64_t>(10 + 7 * i), 8));
          }
          // inputs ascending: terminal 0 holds the minimum -> true rank t.
          const int reps = 2 * 81 * 2 * 2;
          const RvProtocol truth(g, terminals, 0, t, 8, 0.3, reps);
          const RvProtocol lie(g, terminals, 0, 1, 8, 0.3, reps);
          return sweep::Metrics()
              .set("true_rank", t)
              .set("completeness", truth.completeness(inputs))
              .set("attack_accept_false_rank", lie.best_attack_accept(inputs))
              .set("total_proof_qubits", truth.costs().total_proof_qubits);
        });
    Table table({"t", "true rank", "claimed", "completeness/attack", "value",
                 "total proof (qubits)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      const std::string t_str = Table::fmt(points[i].get_int("t"));
      table.add_row({t_str, t_str, t_str, "completeness",
                     Table::fmt(m.get_double("completeness")),
                     Table::fmt(m.get_int("total_proof_qubits"))});
      table.add_row({t_str, t_str, "1", "attack accept",
                     Table::fmt(m.get_double("attack_accept_false_rank")),
                     Table::fmt(m.get_int("total_proof_qubits"))});
    }
    table.print(out);
  }
}

}  // namespace

void register_table2_gt_rv() {
  sweep::register_experiment(
      {"table2_gt_rv",
       "Table 2, rows 4-5 (Theorems 26 and 29: GT and ranking verification)",
       run});
}

}  // namespace dqma::bench

// Table 3 — the paper's lower bounds, verified constructively where the
// proofs are constructive and reported as bound values otherwise.
//
//   row 1 (Thm 51, dQMA_sep,sep Omega(r log n)): the counting argument —
//     packing too many fingerprints into too few qubits forces a
//     high-overlap pair, and the substitution attack then fools the
//     product-proof verifier;
//   rows 2-4 (Thm 52 / Cor 55 / Thm 56, entangled proofs): the proof-gap
//     attack (Lemma 53) and the exact engine's entangled-vs-product gap;
//   rows 5-7 (Thm 63: DISJ / IP / PAND): bound values via the one-sided
//     smooth discrepancy reductions.
#include <iostream>

#include "dma/dma_protocols.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/exact_runner.hpp"
#include "dqma/qma_star.hpp"
#include "linalg/vector.hpp"
#include "lowerbound/accounting.hpp"
#include "lowerbound/counting.hpp"
#include "lowerbound/fooling.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dqma;
using linalg::CVec;
using protocol::ExactEqPathAnalyzer;
using util::Bitstring;
using util::Rng;
using util::Table;
namespace lb = dqma::lowerbound;

int main() {
  Rng rng(38);
  std::cout << "Reproduction of Table 3 (Sec. 8: lower bounds for dQMA "
               "protocols)\n";

  {
    util::print_banner(
        std::cout, "Row 1 (Thm 51): the counting argument behind Omega(r log n)",
        "Claim 49: a family of `count` states on q qubits has a pair with\n"
        "overlap > delta once q is too small. Below: max pairwise overlap of\n"
        "Haar families vs the packing bound. delta = 0.3.");
    Table table({"qubits", "states", "max overlap", "fooling pair (>0.3)?"});
    for (int qubits : {1, 2, 4, 6, 9}) {
      const int count = 64;
      const double overlap = lb::random_family_max_overlap(qubits, count, rng);
      table.add_row({Table::fmt(qubits), Table::fmt(count),
                     Table::fmt(overlap), overlap > 0.3 ? "YES" : "no"});
    }
    table.print(std::cout);
    std::cout << "\nLemma 48 qubit bound log2(n/delta^2): ";
    for (int n : {16, 256, 4096}) {
      std::cout << "n=" << n << ": " << lb::lemma48_qubit_bound(n, 0.3) << "  ";
    }
    std::cout << "\nPigeonhole over r windows gives the Omega(r log n) total "
                 "(Thm 51).\n";
  }

  {
    util::print_banner(
        std::cout, "Row 1': fooling sets of size 2^n exist for EQ and GT",
        "Sampled verification of the 1-fooling property (Sec. 2.2.1).");
    Table table({"function", "sampled members", "is 1-fooling set"});
    const auto eq_set = lb::eq_fooling_set(24, 64, rng);
    const auto eq = [](const Bitstring& a, const Bitstring& b) { return a == b; };
    table.add_row({"EQ  {(z, z)}", "64",
                   lb::is_one_fooling_set(eq, eq_set, rng) ? "yes" : "NO"});
    const auto gt_set = lb::gt_fooling_set(24, 64, rng);
    const auto gt = [](const Bitstring& a, const Bitstring& b) { return a > b; };
    table.add_row({"GT  {(z, z-1)}", "64",
                   lb::is_one_fooling_set(gt, gt_set, rng) ? "yes" : "NO"});
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "Rows 2-3 (Cor 55): Omega(r) — the proof-gap attack (Lemma 53)",
        "Any protocol leaving two consecutive nodes proofless is fooled\n"
        "with certainty by the product splice, however large the other\n"
        "proofs are (classical demonstration; the quantum argument uses the\n"
        "Schmidt decomposition identically). n = 16.");
    Table table({"r", "gap at", "honest accept", "splice attack accept"});
    for (int r : {4, 6, 10}) {
      const dma::ZeroWindowDmaEq protocol(16, r, r / 2);
      const Bitstring x = Bitstring::random(16, rng);
      Bitstring y = Bitstring::random(16, rng);
      if (x == y) y.flip(0);
      table.add_row(
          {Table::fmt(r), Table::fmt(r / 2),
           protocol.accepts(x, x, protocol.honest_proof(x)) ? "1" : "0",
           protocol.accepts(x, y, protocol.splice_attack(x, y)) ? "1" : "0"});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "Row 4 (Thm 56) context: entangled vs product provers, exactly",
        "Exact worst-case acceptance of Algorithm 3 over ALL proofs (top\n"
        "eigenvalue of the acceptance operator) vs the best PRODUCT proof\n"
        "(dQMA_sep,sep adversary), with endpoint overlap delta = 0.2.");
    Table table({"r", "worst entangled accept", "best product accept",
                 "entangled gain"});
    CVec a = CVec::basis(2, 0);
    CVec b(2);
    b[0] = linalg::Complex{0.2, 0.0};
    b[1] = linalg::Complex{std::sqrt(1.0 - 0.04), 0.0};
    for (int r : {2, 3, 4, 5}) {
      const ExactEqPathAnalyzer exact(a, b, r);
      const double worst = exact.worst_case_accept();
      const double product = exact.best_product_accept(rng, 6, 50);
      table.add_row({Table::fmt(r), Table::fmt(worst), Table::fmt(product),
                     Table::fmt(worst - product)});
    }
    table.print(std::cout);
    std::cout << "\nBound values: Thm 52 (logn)^{1/2-e}/r^{1+e'} and Thm 56 "
                 "(logn)^{1/4-e} at e = e' = 0.05:\n";
    Table bounds({"n", "Thm 52 bound (r=4)", "Thm 56 bound"});
    for (int n : {256, 65536, 1 << 24}) {
      bounds.add_row({Table::fmt(n), Table::fmt(lb::thm52_bound(4, n, 0.05, 0.05)),
                      Table::fmt(lb::thm56_bound(n, 0.05))});
    }
    bounds.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "Rows 5-7 (Thm 63): QMA-communication-hard functions",
        "Total proof+communication lower bounds via one-sided smooth\n"
        "discrepancy [Kla11] (values of the bounds; the reduction dQMA ->\n"
        "QMA* is Algorithm 11, cost-accounted in Sec. 8.2).");
    Table table({"n", "DISJ Omega(n^{1/3})", "IP Omega(n^{1/2})",
                 "PAND Omega(n^{1/3})"});
    for (int n : {64, 512, 4096, 32768}) {
      table.add_row({Table::fmt(n),
                     Table::fmt(lb::thm63_disjointness_bound(n)),
                     Table::fmt(lb::thm63_inner_product_bound(n)),
                     Table::fmt(lb::thm63_pattern_and_bound(n))});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "Algorithm 11 executable: dQMA -> QMA* at every cut",
        "The i-th reduction preserves the worst-case acceptance verbatim\n"
        "(Alice simulates v_0..v_i, Bob the rest); the QMA* cost\n"
        "gamma1 + gamma2 + mu feeds Klauck's bounds. Exact engine, r = 4,\n"
        "orthogonal endpoints; 'sep' restricts Merlin to proofs separable\n"
        "across the cut.");
    Table table({"cut i", "gamma1+gamma2+mu (qubits)", "entangled worst",
                 "cut-separable worst"});
    CVec a0 = CVec::basis(2, 0);
    CVec b0 = CVec::basis(2, 1);
    const ExactEqPathAnalyzer analyzer(a0, b0, 4);
    for (int cut = 0; cut <= 3; ++cut) {
      const dqma::protocol::QmaStarInstance star(analyzer, cut, 5);
      table.add_row({Table::fmt(cut), Table::fmt(star.total_cost_qubits()),
                     Table::fmt(star.max_accept()),
                     Table::fmt(star.max_cut_separable_accept(rng))});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "Upper-vs-lower sanity: EQ totals straddle the bounds",
        "Measured total proof of the Theorem 19 protocol vs the Thm 51\n"
        "Omega(r log n) bound (same order in n; the r^3 gap in r is the\n"
        "open problem the paper lists in Sec. 1.5).");
    Table table({"n", "r", "upper (Thm 19 total)", "lower (Thm 51 r log n)"});
    for (int n : {64, 1024}) {
      for (int r : {4, 8}) {
        const auto c = protocol::EqPathProtocol::costs_for(
            n, r, 0.3, protocol::EqPathProtocol::paper_reps(r));
        table.add_row({Table::fmt(n), Table::fmt(r),
                       Table::fmt(c.total_proof_qubits),
                       Table::fmt(lb::thm51_total_proof_bound(r, n))});
      }
    }
    table.print(std::cout);
  }
  return 0;
}

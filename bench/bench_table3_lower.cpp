// Table 3 — the paper's lower bounds, verified constructively where the
// proofs are constructive and reported as bound values otherwise.
//
//   row 1 (Thm 51, dQMA_sep,sep Omega(r log n)): the counting argument —
//     packing too many fingerprints into too few qubits forces a
//     high-overlap pair, and the substitution attack then fools the
//     product-proof verifier;
//   rows 2-4 (Thm 52 / Cor 55 / Thm 56, entangled proofs): the proof-gap
//     attack (Lemma 53) and the exact engine's entangled-vs-product gap;
//   rows 5-7 (Thm 63: DISJ / IP / PAND): bound values via the one-sided
//     smooth discrepancy reductions.
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "dma/dma_protocols.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/exact_runner.hpp"
#include "dqma/qma_star.hpp"
#include "experiments.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/vector.hpp"
#include "lowerbound/accounting.hpp"
#include "lowerbound/counting.hpp"
#include "lowerbound/fooling.hpp"
#include "quantum/density.hpp"
#include "quantum/partial_trace.hpp"
#include "quantum/random.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/scratch.hpp"
#include "util/table.hpp"
#include "util/tolerance.hpp"

namespace dqma::bench {
namespace {

using linalg::CVec;
using protocol::ExactEqPathAnalyzer;
using util::Bitstring;
using util::Rng;
using util::Table;
namespace lb = dqma::lowerbound;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();

  {
    util::print_banner(
        out, "Row 1 (Thm 51): the counting argument behind Omega(r log n)",
        "Claim 49: a family of `count` states on q qubits has a pair with\n"
        "overlap > delta once q is too small. Below: max pairwise overlap "
        "of\n"
        "Haar families vs the packing bound. delta = 0.3.");
    sweep::ParamGrid grid;
    grid.axis("qubits", ctx.smoke_select(std::vector<int>{1, 2, 4, 6, 9},
                                         {1, 2, 4}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "counting_argument", points,
        [](const sweep::ParamPoint& p, Rng& rng) {
          const int qubits = static_cast<int>(p.get_int("qubits"));
          const int count = 64;
          const double overlap =
              lb::random_family_max_overlap(qubits, count, rng);
          return sweep::Metrics()
              .set("states", count)
              .set("max_overlap", overlap)
              .set("fooling_pair", overlap > 0.3);
        });
    Table table({"qubits", "states", "max overlap", "fooling pair (>0.3)?"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("qubits")),
                     Table::fmt(m.get_int("states")),
                     Table::fmt(m.get_double("max_overlap")),
                     m.get_bool("fooling_pair") ? "YES" : "no"});
    }
    table.print(out);
    out << "\nLemma 48 qubit bound log2(n/delta^2): ";
    for (int n : {16, 256, 4096}) {
      const double bound = lb::lemma48_qubit_bound(n, 0.3);
      ctx.record("lemma48_qubit_bound",
                 sweep::ParamPoint().set("n", n),
                 sweep::Metrics().set("bound", bound));
      out << "n=" << n << ": " << bound << "  ";
    }
    out << "\nPigeonhole over r windows gives the Omega(r log n) total "
           "(Thm 51).\n";
  }

  {
    util::print_banner(
        out, "Row 1': fooling sets of size 2^n exist for EQ and GT",
        "Sampled verification of the 1-fooling property (Sec. 2.2.1).");
    sweep::ParamGrid grid;
    grid.axis("function", std::vector<std::string>{"EQ  {(z, z)}",
                                                   "GT  {(z, z-1)}"});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "fooling_sets", points, [](const sweep::ParamPoint& p, Rng& rng) {
          const bool is_eq = p.get_string("function") == "EQ  {(z, z)}";
          bool fooling = false;
          if (is_eq) {
            const auto set = lb::eq_fooling_set(24, 64, rng);
            const auto eq = [](const Bitstring& a, const Bitstring& b) {
              return a == b;
            };
            fooling = lb::is_one_fooling_set(eq, set, rng);
          } else {
            const auto set = lb::gt_fooling_set(24, 64, rng);
            const auto gt = [](const Bitstring& a, const Bitstring& b) {
              return a > b;
            };
            fooling = lb::is_one_fooling_set(gt, set, rng);
          }
          return sweep::Metrics()
              .set("sampled_members", 64)
              .set("is_one_fooling_set", fooling);
        });
    Table table({"function", "sampled members", "is 1-fooling set"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({points[i].get_string("function"),
                     Table::fmt(m.get_int("sampled_members")),
                     m.get_bool("is_one_fooling_set") ? "yes" : "NO"});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out,
        "Rows 2-3 (Cor 55): Omega(r) — the proof-gap attack (Lemma 53)",
        "Any protocol leaving two consecutive nodes proofless is fooled\n"
        "with certainty by the product splice, however large the other\n"
        "proofs are (classical demonstration; the quantum argument uses "
        "the\n"
        "Schmidt decomposition identically). n = 16.");
    sweep::ParamGrid grid;
    grid.axis("r", std::vector<int>{4, 6, 10});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "proof_gap_attack", points, [](const sweep::ParamPoint& p, Rng& rng) {
          const int r = static_cast<int>(p.get_int("r"));
          const dma::ZeroWindowDmaEq protocol(16, r, r / 2);
          const Bitstring x = Bitstring::random(16, rng);
          Bitstring y = Bitstring::random(16, rng);
          if (x == y) y.flip(0);
          return sweep::Metrics()
              .set("gap_at", r / 2)
              .set("honest_accept",
                   protocol.accepts(x, x, protocol.honest_proof(x)))
              .set("splice_attack_accept",
                   protocol.accepts(x, y, protocol.splice_attack(x, y)));
        });
    Table table({"r", "gap at", "honest accept", "splice attack accept"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_int("gap_at")),
                     m.get_bool("honest_accept") ? "1" : "0",
                     m.get_bool("splice_attack_accept") ? "1" : "0"});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out,
        "Row 4 (Thm 56) context: entangled vs product provers, exactly",
        "Exact worst-case acceptance of Algorithm 3 over ALL proofs (top\n"
        "eigenvalue of the acceptance operator) vs the best PRODUCT proof\n"
        "(dQMA_sep,sep adversary), with endpoint overlap delta = 0.2.");
    sweep::ParamGrid grid;
    grid.axis("r", ctx.smoke_select(std::vector<int>{2, 3, 4, 5}, {2, 3}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "entangled_vs_product", points,
        [](const sweep::ParamPoint& p, Rng& rng) {
          const int r = static_cast<int>(p.get_int("r"));
          CVec a = CVec::basis(2, 0);
          CVec b(2);
          b[0] = linalg::Complex{0.2, 0.0};
          b[1] = linalg::Complex{std::sqrt(1.0 - 0.04), 0.0};
          const ExactEqPathAnalyzer exact(a, b, r);
          const double worst = exact.worst_case_accept();
          const double product = exact.best_product_accept(rng, 6, 50);
          return sweep::Metrics()
              .set("worst_entangled_accept", worst)
              .set("best_product_accept", product)
              .set("entangled_gain", worst - product);
        });
    Table table({"r", "worst entangled accept", "best product accept",
                 "entangled gain"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_double("worst_entangled_accept")),
                     Table::fmt(m.get_double("best_product_accept")),
                     Table::fmt(m.get_double("entangled_gain"))});
    }
    table.print(out);
    out << "\nBound values: Thm 52 (logn)^{1/2-e}/r^{1+e'} and Thm 56 "
           "(logn)^{1/4-e} at e = e' = 0.05:\n";
    Table bounds({"n", "Thm 52 bound (r=4)", "Thm 56 bound"});
    for (int n : {256, 65536, 1 << 24}) {
      const double thm52 = lb::thm52_bound(4, n, 0.05, 0.05);
      const double thm56 = lb::thm56_bound(n, 0.05);
      ctx.record("entangled_bound_values",
                 sweep::ParamPoint().set("n", n).set("r", 4),
                 sweep::Metrics()
                     .set("thm52_bound", thm52)
                     .set("thm56_bound", thm56));
      bounds.add_row({Table::fmt(n), Table::fmt(thm52), Table::fmt(thm56)});
    }
    bounds.print(out);
  }

  {
    util::print_banner(
        out,
        "Row 4+ (matrix-free): entangled vs product beyond the dense cap",
        "The same entangled-vs-product gap on proof spaces too large for a\n"
        "dense acceptance operator: the matrix-free engine streams the\n"
        "local effects (worst case = deterministic Lanczos on the\n"
        "operator's action, matvecs recorded; product case = factorized\n"
        "alternating optimization). delta = 0.2.");
    std::vector<sweep::ParamPoint> all_points;
    for (const auto& [d, r] :
         {std::pair{4, 4}, std::pair{6, 4}, std::pair{4, 5}}) {
      all_points.push_back(sweep::ParamPoint().set("d", d).set("r", r));
    }
    const auto points = ctx.smoke_select(
        all_points, {sweep::ParamPoint().set("d", 6).set("r", 4)});
    // Few huge points: running them as sweep jobs would serialize the
    // kernels inside each job (the nesting contract) and leave N - 1
    // threads idle on the largest instance. serial_sweep runs them on
    // this thread instead, so the power-iteration matvecs and stride
    // kernels inside fan out across the kernel pool — with sweep()'s
    // exact seeding and recording, so the values match the pooled
    // execution byte for byte.
    const auto results = ctx.serial_sweep(
        "matrix_free_large", points, [](const sweep::ParamPoint& p, Rng& rng) {
          const int d = static_cast<int>(p.get_int("d"));
          const int r = static_cast<int>(p.get_int("r"));
          CVec a = CVec::basis(d, 0);
          CVec b(d);
          b[0] = linalg::Complex{0.2, 0.0};
          b[1] = linalg::Complex{std::sqrt(1.0 - 0.04), 0.0};
          const ExactEqPathAnalyzer exact(a, b, r,
                                          ExactEqPathAnalyzer::Mode::kMatrixFree);
          linalg::SpectralStats stats;
          const double worst =
              exact.worst_case_accept(linalg::SpectralOptions{}, &stats);
          const double product = exact.best_product_accept(rng, 4, 40);
          return sweep::Metrics()
              .set("proof_dim", exact.proof_dim())
              .set("worst_entangled_accept", worst)
              .set("best_product_accept", product)
              .set("entangled_gain", worst - product)
              .set("solver_matvecs", stats.matvecs)
              .set("solver_converged", stats.converged);
        });
    Table table({"d", "r", "proof dim", "worst entangled (Lanczos)",
                 "matvecs", "best product", "entangled gain"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("d")),
                     Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_int("proof_dim")),
                     Table::fmt(m.get_double("worst_entangled_accept")),
                     Table::fmt(m.get_int("solver_matvecs")),
                     Table::fmt(m.get_double("best_product_accept")),
                     Table::fmt(m.get_double("entangled_gain"))});
    }
    table.print(out);
    out << "\nProof dims above 16384 were unreachable before the matrix-free "
           "engine\n(the dense cap materialized O as a D x D matrix).\n";
  }

  {
    util::print_banner(
        out, "Rows 5-7 (Thm 63): QMA-communication-hard functions",
        "Total proof+communication lower bounds via one-sided smooth\n"
        "discrepancy [Kla11] (values of the bounds; the reduction dQMA ->\n"
        "QMA* is Algorithm 11, cost-accounted in Sec. 8.2).");
    sweep::ParamGrid grid;
    grid.axis("n", std::vector<int>{64, 512, 4096, 32768});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "thm63_bounds", points, [](const sweep::ParamPoint& p, Rng&) {
          const int n = static_cast<int>(p.get_int("n"));
          return sweep::Metrics()
              .set("disj_bound", lb::thm63_disjointness_bound(n))
              .set("ip_bound", lb::thm63_inner_product_bound(n))
              .set("pand_bound", lb::thm63_pattern_and_bound(n));
        },
        // Closed-form bound values: replicate (see SweepPolicy).
        sweep::SweepPolicy::replicate());
    Table table({"n", "DISJ Omega(n^{1/3})", "IP Omega(n^{1/2})",
                 "PAND Omega(n^{1/3})"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("n")),
                     Table::fmt(m.get_double("disj_bound")),
                     Table::fmt(m.get_double("ip_bound")),
                     Table::fmt(m.get_double("pand_bound"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "Algorithm 11 executable: dQMA -> QMA* at every cut",
        "The i-th reduction preserves the worst-case acceptance verbatim\n"
        "(Alice simulates v_0..v_i, Bob the rest); the QMA* cost\n"
        "gamma1 + gamma2 + mu feeds Klauck's bounds. Exact engine, r = 4,\n"
        "orthogonal endpoints; 'sep' restricts Merlin to proofs separable\n"
        "across the cut.");
    sweep::ParamGrid grid;
    grid.axis("cut", ctx.smoke_select(std::vector<int>{0, 1, 2, 3}, {0, 1}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "algorithm11_cuts", points, [](const sweep::ParamPoint& p, Rng& rng) {
          const CVec a0 = CVec::basis(2, 0);
          const CVec b0 = CVec::basis(2, 1);
          const ExactEqPathAnalyzer analyzer(a0, b0, 4);
          const protocol::QmaStarInstance star(
              analyzer, static_cast<int>(p.get_int("cut")), 5);
          return sweep::Metrics()
              .set("total_cost_qubits", star.total_cost_qubits())
              .set("entangled_worst", star.max_accept())
              .set("cut_separable_worst",
                   star.max_cut_separable_accept(rng));
        });
    Table table({"cut i", "gamma1+gamma2+mu (qubits)", "entangled worst",
                 "cut-separable worst"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("cut")),
                     Table::fmt(m.get_int("total_cost_qubits")),
                     Table::fmt(m.get_double("entangled_worst")),
                     Table::fmt(m.get_double("cut_separable_worst"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "Upper-vs-lower sanity: EQ totals straddle the bounds",
        "Measured total proof of the Theorem 19 protocol vs the Thm 51\n"
        "Omega(r log n) bound (same order in n; the r^3 gap in r is the\n"
        "open problem the paper lists in Sec. 1.5).");
    sweep::ParamGrid grid;
    grid.axis("n", std::vector<int>{64, 1024});
    grid.axis("r", std::vector<int>{4, 8});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "upper_vs_lower", points, [](const sweep::ParamPoint& p, Rng&) {
          const int n = static_cast<int>(p.get_int("n"));
          const int r = static_cast<int>(p.get_int("r"));
          const auto c = protocol::EqPathProtocol::costs_for(
              n, r, 0.3, protocol::EqPathProtocol::paper_reps(r));
          return sweep::Metrics()
              .set("upper_total_proof", c.total_proof_qubits)
              .set("lower_bound", lb::thm51_total_proof_bound(r, n));
        },
        sweep::SweepPolicy::replicate());
    Table table({"n", "r", "upper (Thm 19 total)", "lower (Thm 51 r log n)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("n")),
                     Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_int("upper_total_proof")),
                     Table::fmt(m.get_double("lower_bound"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "Spectral engine: Lanczos vs power on the acceptance operators",
        "Both solvers of linalg/lanczos.hpp on the Row 4 / Row 4+ operators\n"
        "at tol 1e-9: the top eigenvalues agree to 1e-9 while the\n"
        "deterministic Lanczos engine needs a fraction of the operator\n"
        "applications. Matvec counts are exact integers (level- and\n"
        "thread-invariant by the determinism contract).");
    std::vector<sweep::ParamPoint> all_points;
    for (const int r : {2, 3, 4, 5}) {
      all_points.push_back(sweep::ParamPoint().set("d", 2).set("r", r));
    }
    for (const auto& [d, r] :
         {std::pair{4, 4}, std::pair{6, 4}, std::pair{4, 5}}) {
      all_points.push_back(sweep::ParamPoint().set("d", d).set("r", r));
    }
    const auto points = ctx.smoke_select(
        all_points, {sweep::ParamPoint().set("d", 2).set("r", 2),
                     sweep::ParamPoint().set("d", 2).set("r", 3),
                     sweep::ParamPoint().set("d", 6).set("r", 4)});
    const auto results = ctx.serial_sweep(
        "eigensolver_agreement", points,
        [](const sweep::ParamPoint& p, Rng&) {
          const int d = static_cast<int>(p.get_int("d"));
          const int r = static_cast<int>(p.get_int("r"));
          CVec a = CVec::basis(d, 0);
          CVec b(d);
          b[0] = linalg::Complex{0.2, 0.0};
          b[1] = linalg::Complex{std::sqrt(1.0 - 0.04), 0.0};
          const ExactEqPathAnalyzer exact(a, b, r);
          linalg::SpectralOptions lanczos_opts;
          lanczos_opts.method = linalg::SpectralOptions::Method::kLanczos;
          lanczos_opts.max_iters = 20000;
          lanczos_opts.tol = 1e-9;
          linalg::SpectralOptions power_opts = lanczos_opts;
          power_opts.method = linalg::SpectralOptions::Method::kPower;
          linalg::SpectralStats lanczos_stats;
          linalg::SpectralStats power_stats;
          const double via_lanczos =
              exact.worst_case_accept(lanczos_opts, &lanczos_stats);
          const double via_power =
              exact.worst_case_accept(power_opts, &power_stats);
          return sweep::Metrics()
              .set("proof_dim", exact.proof_dim())
              .set("lanczos_value", via_lanczos)
              .set("power_value", via_power)
              .set("value_diff", std::abs(via_lanczos - via_power))
              .set("lanczos_matvecs", lanczos_stats.matvecs)
              .set("power_matvecs", power_stats.matvecs)
              .set("lanczos_converged", lanczos_stats.converged)
              .set("power_converged", power_stats.converged);
        });
    Table table({"d", "r", "proof dim", "Lanczos", "power", "|diff|",
                 "L matvecs", "P matvecs", "P/L"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      const double ratio =
          static_cast<double>(m.get_int("power_matvecs")) /
          static_cast<double>(std::max(1LL, m.get_int("lanczos_matvecs")));
      table.add_row({Table::fmt(points[i].get_int("d")),
                     Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_int("proof_dim")),
                     Table::fmt(m.get_double("lanczos_value")),
                     Table::fmt(m.get_double("power_value")),
                     Table::fmt(m.get_double("value_diff")),
                     Table::fmt(m.get_int("lanczos_matvecs")),
                     Table::fmt(m.get_int("power_matvecs")),
                     Table::fmt(ratio, 1)});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "Tiled density passes: a mixed state past the dense wall",
        "A diagonal mixed state pushed through apply / expectation /\n"
        "reduce_to with closed-form cross-checks. The 2^15 point runs only\n"
        "when scratch is enabled (--scratch or DQMA_SCRATCH_DIR): the\n"
        "density then tiles through a memory-mapped scratch file. In-core\n"
        "points produce bit-identical values either way (the contract\n"
        "tests/tiled_density_test.cpp pins byte for byte).");
    std::vector<sweep::ParamPoint> all_points;
    for (const int n : {10, 15}) {
      all_points.push_back(sweep::ParamPoint().set("qubits", n));
    }
    const auto points = ctx.smoke_select(
        all_points, {sweep::ParamPoint().set("qubits", 10)});
    const auto results = ctx.serial_sweep(
        "tiled_density", points, [](const sweep::ParamPoint& p, Rng& rng) {
          const int n = static_cast<int>(p.get_int("qubits"));
          const long long dim = 1LL << n;
          sweep::Metrics metrics;
          if (dim > util::kMaxDenseExactDim && !util::ScratchTile::enabled()) {
            return metrics.set("completed", false)
                .set("tiled", false)
                .set("expectation", 0.0)
                .set("expectation_error", 0.0)
                .set("reduced_error", 0.0);
          }
          try {
          std::vector<double> probs(static_cast<std::size_t>(dim));
          double sum = 0.0;
          for (long long i = 0; i < dim; ++i) {
            probs[static_cast<std::size_t>(i)] =
                1.0 + 0.5 * std::cos(0.001 * static_cast<double>(i));
            sum += probs[static_cast<std::size_t>(i)];
          }
          for (double& prob : probs) prob /= sum;
          const quantum::RegisterShape shape(
              std::vector<int>(static_cast<std::size_t>(n), 2));
          // Whenever scratch is on, force the tiled path even for in-core
          // dims so the point exercises the mmap pass; values are
          // bit-identical either way by the storage contract.
          std::unique_ptr<quantum::TiledDensityScope> scope;
          if (util::ScratchTile::enabled()) {
            scope = std::make_unique<quantum::TiledDensityScope>(0);
          }
          quantum::Density rho = quantum::Density::diagonal(shape, probs);
          const linalg::CMat u = quantum::haar_unitary(4, rng);
          rho.apply(u, {0, 1});
          linalg::CMat effect(4, 4);
          effect(0, 0) = linalg::Complex{1.0, 0.0};
          const double measured = rho.expectation(effect, {0, 1});
          // Closed form: tr((E tensor I) U rho U^dagger) for diagonal rho
          // is sum_i p_i M(a(i), a(i)) with M = U^dagger E U and a(i) the
          // block index of registers {0, 1} (the high-order qubits).
          const linalg::CMat m = u.adjoint() * effect * u;
          double reference = 0.0;
          std::vector<double> block_sums(4, 0.0);
          for (long long i = 0; i < dim; ++i) {
            const auto block = static_cast<std::size_t>(i >> (n - 2));
            reference += probs[static_cast<std::size_t>(i)] *
                         m(static_cast<int>(block), static_cast<int>(block))
                             .real();
            block_sums[block] += probs[static_cast<std::size_t>(i)];
          }
          // Reducing to registers {0, 1} gives U diag(block sums) U^dagger.
          const quantum::Density reduced = quantum::reduce_to(rho, {0, 1});
          linalg::CMat diag(4, 4);
          for (int a = 0; a < 4; ++a) {
            diag(a, a) =
                linalg::Complex{block_sums[static_cast<std::size_t>(a)], 0.0};
          }
          const linalg::CMat expected = (u * diag).times_adjoint(u);
          double reduced_error = 0.0;
          for (int a = 0; a < 4; ++a) {
            for (int b = 0; b < 4; ++b) {
              reduced_error = std::max(
                  reduced_error,
                  std::abs(reduced.matrix()(a, b) - expected(a, b)));
            }
          }
          return metrics.set("completed", true)
              .set("tiled", rho.tiled())
              .set("expectation", measured)
              .set("expectation_error", std::abs(measured - reference))
              .set("reduced_error", reduced_error);
          } catch (const util::ScratchAllocationError& e) {
            // Scratch configured but unusable (ENOSPC): only this job fails;
            // the rest of the sweep — and the run — continues.
            std::fprintf(stderr, "tiled_density qubits=%d: %s\n", n, e.what());
            return metrics.set("completed", false)
                .set("tiled", false)
                .set("expectation", 0.0)
                .set("expectation_error", 0.0)
                .set("reduced_error", 0.0);
          }
        });
    Table table({"qubits", "dim", "completed", "tiled", "tr(E U rho U+)",
                 "closed-form err", "reduce_to err"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      const int n = static_cast<int>(points[i].get_int("qubits"));
      table.add_row({Table::fmt(n), Table::fmt(1LL << n),
                     m.get_bool("completed") ? "yes" : "no (needs --scratch)",
                     m.get_bool("tiled") ? "yes" : "no",
                     Table::fmt(m.get_double("expectation")),
                     Table::fmt(m.get_double("expectation_error")),
                     Table::fmt(m.get_double("reduced_error"))});
    }
    table.print(out);
  }
}

}  // namespace

void register_table3_lower() {
  sweep::register_experiment(
      {"table3_lower",
       "Table 3 (Sec. 8: lower bounds for dQMA protocols)", run});
}

}  // namespace dqma::bench

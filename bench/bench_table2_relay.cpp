// Table 2, rows 2-3 — Theorem 22 and Corollary 25: the robust quantum
// advantage for EQ on long paths.
//
//   * quantum (relay points): total proof ~O(r n^{2/3});
//   * classical dMA: total proof Omega(r n) (constructive: below the
//     budget, the collision attack breaks the protocol);
//   * the crossover: for small n the trivial classical protocol is cheaper,
//     for large n the quantum protocol wins — the paper's point that the
//     advantage persists at ANY network size when measured in total proof.
#include <cmath>
#include <iostream>

#include "dma/attacks.hpp"
#include "dma/dma_protocols.hpp"
#include "dqma/relay_eq.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dqma;
using protocol::RelayEqProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

int main() {
  Rng rng(22);
  std::cout << "Reproduction of Table 2, rows 2-3 (Theorem 22 + Corollary 25: "
               "EQ totals on long paths)\n";

  {
    util::print_banner(
        std::cout, "(a) total proof size: quantum ~O(r n^{2/3}) vs classical rn",
        "r = 4096 (relay regime r >> n^{1/3}). Expected: the quantum total\n"
        "grows with exponent ~2/3 in n vs the classical exponent 1, so the\n"
        "ratio falls monotonically. Two quantum columns: the paper's\n"
        "worst-case constants (k = 42 s^2 repetitions, crossover beyond the\n"
        "sweep at ~2^40) and the constant-free protocol (k = 1), whose\n"
        "crossover is visible directly.");
    Table table({"n", "quantum total (paper k)", "quantum total (k=1)",
                 "classical total", "ratio (paper k)", "ratio (k=1)"});
    const int r = 4096;
    for (int e = 8; e <= 26; e += 3) {
      const long long n = 1LL << e;
      const int spacing = RelayEqProtocol::paper_spacing(static_cast<int>(n));
      const auto c = RelayEqProtocol::costs_for(
          static_cast<int>(n), r, 0.3, spacing,
          RelayEqProtocol::paper_seg_reps(static_cast<int>(n)));
      const auto c1 = RelayEqProtocol::costs_for(static_cast<int>(n), r, 0.3,
                                                 spacing, 1);
      const double classical = static_cast<double>(r) * static_cast<double>(n);
      table.add_row({Table::fmt(static_cast<long long>(n)),
                     Table::fmt(c.total_proof_qubits),
                     Table::fmt(c1.total_proof_qubits),
                     Table::fmt(static_cast<long long>(classical)),
                     Table::fmt(static_cast<double>(c.total_proof_qubits) /
                                classical),
                     Table::fmt(static_cast<double>(c1.total_proof_qubits) /
                                classical)});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(b) measured n-exponent of the quantum total",
        "log-log slope between successive n octaves; expected ~0.67 + o(1).");
    Table table({"n range", "slope"});
    const int r = 4096;
    double prev = 0.0;
    long long prev_n = 0;
    for (int e = 10; e <= 26; e += 4) {
      const long long n = 1LL << e;
      const double total = static_cast<double>(
          RelayEqProtocol::costs_for(
              static_cast<int>(n), r, 0.3,
              RelayEqProtocol::paper_spacing(static_cast<int>(n)),
              RelayEqProtocol::paper_seg_reps(static_cast<int>(n)))
              .total_proof_qubits);
      if (prev_n != 0) {
        const double slope = (std::log2(total) - std::log2(prev)) /
                             (std::log2(static_cast<double>(n)) -
                              std::log2(static_cast<double>(prev_n)));
        table.add_row({Table::fmt(prev_n) + " -> " + Table::fmt(n),
                       Table::fmt(slope)});
      }
      prev = total;
      prev_n = n;
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(c) executable protocol: completeness / soundness",
        "Small instances run end-to-end (n = 8, paper parameters).");
    Table table({"r", "relays", "completeness", "attack accept", "<= 1/3?"});
    const int n = 8;
    for (int r : {4, 6, 8, 10}) {
      const RelayEqProtocol protocol(n, r, 0.3,
                                     RelayEqProtocol::paper_spacing(n),
                                     RelayEqProtocol::paper_seg_reps(n));
      const Bitstring x = Bitstring::random(n, rng);
      Bitstring y = Bitstring::random(n, rng);
      if (x == y) y.flip(0);
      const double comp = protocol.completeness(x);
      const double attack = protocol.best_attack_accept(x, y);
      table.add_row({Table::fmt(r), Table::fmt(protocol.relay_count()),
                     Table::fmt(comp), Table::fmt(attack),
                     attack <= 1.0 / 3.0 ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(d) classical side: Omega(rn) via per-window collision attacks",
        "A dMA protocol whose per-node budget dips below ~n bits anywhere is\n"
        "broken by the fooling-pair splice (Lemma 23); n = 14, r = 6.");
    Table table({"bits/node", "total bits", "attacked soundness error"});
    const int n = 14;
    const int r = 6;
    for (int bits : {6, 10, 14, 48}) {
      const dma::HashDmaEq protocol(n, r, bits);
      const double err =
          dma::collision_attack_soundness_error(protocol, 0, rng);
      table.add_row({Table::fmt(bits), Table::fmt(protocol.total_proof_bits()),
                     Table::fmt(err)});
    }
    table.print(std::cout);
  }
  return 0;
}

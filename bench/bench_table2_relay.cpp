// Table 2, rows 2-3 — Theorem 22 and Corollary 25: the robust quantum
// advantage for EQ on long paths.
//
//   * quantum (relay points): total proof ~O(r n^{2/3});
//   * classical dMA: total proof Omega(r n) (constructive: below the
//     budget, the collision attack breaks the protocol);
//   * the crossover: for small n the trivial classical protocol is cheaper,
//     for large n the quantum protocol wins — the paper's point that the
//     advantage persists at ANY network size when measured in total proof.
#include <cmath>
#include <vector>

#include "dma/attacks.hpp"
#include "dma/dma_protocols.hpp"
#include "dqma/relay_eq.hpp"
#include "experiments.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using protocol::RelayEqProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();

  {
    util::print_banner(
        out, "(a) total proof size: quantum ~O(r n^{2/3}) vs classical rn",
        "r = 4096 (relay regime r >> n^{1/3}). Expected: the quantum total\n"
        "grows with exponent ~2/3 in n vs the classical exponent 1, so the\n"
        "ratio falls monotonically. Two quantum columns: the paper's\n"
        "worst-case constants (k = 42 s^2 repetitions, crossover beyond the\n"
        "sweep at ~2^40) and the constant-free protocol (k = 1), whose\n"
        "crossover is visible directly.");
    const int r = 4096;
    std::vector<int> exponents;
    for (int e = 8; e <= 26; e += 3) exponents.push_back(e);
    sweep::ParamGrid grid;
    grid.axis("log2_n", exponents);
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "totals_vs_n", points, [r](const sweep::ParamPoint& p, Rng&) {
          const int n = 1 << p.get_int("log2_n");
          const int spacing = RelayEqProtocol::paper_spacing(n);
          const auto c = RelayEqProtocol::costs_for(
              n, r, 0.3, spacing, RelayEqProtocol::paper_seg_reps(n));
          const auto c1 = RelayEqProtocol::costs_for(n, r, 0.3, spacing, 1);
          return sweep::Metrics()
              .set("quantum_total_paper_k", c.total_proof_qubits)
              .set("quantum_total_k1", c1.total_proof_qubits)
              .set("classical_total",
                   static_cast<long long>(r) * static_cast<long long>(n));
        },
        // Closed-form totals: replicate (see SweepPolicy).
        sweep::SweepPolicy::replicate());
    Table table({"n", "quantum total (paper k)", "quantum total (k=1)",
                 "classical total", "ratio (paper k)", "ratio (k=1)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& m = results[i].metrics;
      const double classical =
          static_cast<double>(m.get_int("classical_total"));
      table.add_row(
          {Table::fmt(1LL << points[i].get_int("log2_n")),
           Table::fmt(m.get_int("quantum_total_paper_k")),
           Table::fmt(m.get_int("quantum_total_k1")),
           Table::fmt(m.get_int("classical_total")),
           Table::fmt(static_cast<double>(m.get_int("quantum_total_paper_k")) /
                      classical),
           Table::fmt(static_cast<double>(m.get_int("quantum_total_k1")) /
                      classical)});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(b) measured n-exponent of the quantum total",
        "log-log slope between successive n octaves; expected ~0.67 + o(1).");
    const int r = 4096;
    std::vector<int> exponents;
    for (int e = 10; e <= 26; e += 4) exponents.push_back(e);
    sweep::ParamGrid grid;
    grid.axis("log2_n", exponents);
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "n_exponent_totals", points, [r](const sweep::ParamPoint& p, Rng&) {
          const int n = 1 << p.get_int("log2_n");
          return sweep::Metrics().set(
              "total_proof_qubits",
              RelayEqProtocol::costs_for(
                  n, r, 0.3, RelayEqProtocol::paper_spacing(n),
                  RelayEqProtocol::paper_seg_reps(n))
                  .total_proof_qubits);
        },
        // Replicated: every shard computes the full curve so the pairwise
        // slope records below exist everywhere; record() still assigns
        // each slope point to exactly one shard.
        sweep::SweepPolicy::replicate());
    // Slopes are derived pairwise from the sweep results (ordered), so the
    // serial dependency of the old loop disappears.
    Table table({"n range", "slope"});
    for (std::size_t i = 1; i < points.size(); ++i) {
      const double total = static_cast<double>(
          results[i].metrics.get_int("total_proof_qubits"));
      const double prev = static_cast<double>(
          results[i - 1].metrics.get_int("total_proof_qubits"));
      const double dlog_n = static_cast<double>(
          points[i].get_int("log2_n") - points[i - 1].get_int("log2_n"));
      const double slope = (std::log2(total) - std::log2(prev)) / dlog_n;
      ctx.record("n_exponent_slopes",
                 sweep::ParamPoint()
                     .set("log2_n_from", points[i - 1].get_int("log2_n"))
                     .set("log2_n_to", points[i].get_int("log2_n")),
                 sweep::Metrics().set("slope", slope));
      table.add_row({Table::fmt(1LL << points[i - 1].get_int("log2_n")) +
                         " -> " + Table::fmt(1LL << points[i].get_int("log2_n")),
                     Table::fmt(slope)});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(c) executable protocol: completeness / soundness",
        "Small instances run end-to-end (n = 8, paper parameters).");
    const int n = 8;
    sweep::ParamGrid grid;
    grid.axis("r", ctx.smoke_select(std::vector<int>{4, 6, 8, 10}, {4, 6}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "executable_relay", points, [n](const sweep::ParamPoint& p, Rng& rng) {
          const int r = static_cast<int>(p.get_int("r"));
          const RelayEqProtocol protocol(n, r, 0.3,
                                         RelayEqProtocol::paper_spacing(n),
                                         RelayEqProtocol::paper_seg_reps(n));
          const Bitstring x = Bitstring::random(n, rng);
          Bitstring y = Bitstring::random(n, rng);
          if (x == y) y.flip(0);
          const double attack = protocol.best_attack_accept(x, y);
          return sweep::Metrics()
              .set("relays", protocol.relay_count())
              .set("completeness", protocol.completeness(x))
              .set("attack_accept", attack)
              .set("sound", attack <= 1.0 / 3.0);
        });
    Table table({"r", "relays", "completeness", "attack accept", "<= 1/3?"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_int("relays")),
                     Table::fmt(m.get_double("completeness")),
                     Table::fmt(m.get_double("attack_accept")),
                     m.get_bool("sound") ? "yes" : "NO"});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out,
        "(d) classical side: Omega(rn) via per-window collision attacks",
        "A dMA protocol whose per-node budget dips below ~n bits anywhere is\n"
        "broken by the fooling-pair splice (Lemma 23); n = 14, r = 6.");
    const int n = 14;
    const int r = 6;
    sweep::ParamGrid grid;
    grid.axis("bits", std::vector<int>{6, 10, 14, 48});
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "classical_collision", points,
        [n, r](const sweep::ParamPoint& p, Rng& rng) {
          const dma::HashDmaEq protocol(n, r,
                                        static_cast<int>(p.get_int("bits")));
          return sweep::Metrics()
              .set("total_proof_bits", protocol.total_proof_bits())
              .set("soundness_error",
                   dma::collision_attack_soundness_error(protocol, 0, rng));
        });
    Table table({"bits/node", "total bits", "attacked soundness error"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("bits")),
                     Table::fmt(m.get_int("total_proof_bits")),
                     Table::fmt(m.get_double("soundness_error"))});
    }
    table.print(out);
  }
}

}  // namespace

void register_table2_relay() {
  sweep::register_experiment(
      {"table2_relay",
       "Table 2, rows 2-3 (Theorem 22 + Corollary 25: EQ totals on long "
       "paths)",
       run});
}

}  // namespace dqma::bench

// Registration entry points for every bench/ experiment. Each legacy
// bench_<name>.cpp now defines register_<name>() (the table harness body
// wrapped as a sweep::Experiment); the driver and the compatibility shims
// call register_all_experiments() before dispatching through
// sweep::cli_main.
#pragma once

namespace dqma::bench {

void register_ablations();
void register_coordinator_recovery();
void register_exp_topology();
void register_micro();
void register_robustness();
void register_serve_throughput();
void register_table1_fgnp();
void register_table2_eq();
void register_table2_gt_rv();
void register_table2_hamming();
void register_table2_qmacc();
void register_table2_relay();
void register_table3_lower();

/// Registers every experiment exactly once, in the paper's table order.
/// Safe to call repeatedly (later calls are no-ops).
void register_all_experiments();

}  // namespace dqma::bench

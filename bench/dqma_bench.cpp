// The unified benchmark driver: runs any registered experiment (or all of
// them) over the parallel sweep engine and emits ASCII tables plus the
// structured JSON trajectory document.
//
//   dqma_bench --list
//   dqma_bench --experiment table2_eq --threads 8
//   dqma_bench --experiment all --smoke --json bench-results.json
#include "experiments.hpp"
#include "sweep/registry.hpp"

int main(int argc, char** argv) {
  dqma::bench::register_all_experiments();
  return dqma::sweep::cli_main(argc, argv);
}

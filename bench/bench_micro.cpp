// Google-benchmark microbenchmarks of the simulation primitives: the cost
// drivers behind every table harness.
#include <benchmark/benchmark.h>

#include "dqma/attacks.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/exact_runner.hpp"
#include "dqma/runner.hpp"
#include "fingerprint/fingerprint.hpp"
#include "linalg/eigen.hpp"
#include "linalg/permanent.hpp"
#include "qtest/permutation_test.hpp"
#include "qtest/swap_test.hpp"
#include "quantum/random.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

using namespace dqma;
using util::Bitstring;
using util::Rng;

static void BM_FingerprintState(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const fingerprint::FingerprintScheme scheme(n, 0.3);
  Rng rng(1);
  const Bitstring x = Bitstring::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.state(x));
  }
  state.SetLabel("dim=" + std::to_string(scheme.dim()));
}
BENCHMARK(BM_FingerprintState)->Arg(32)->Arg(256)->Arg(2048);

static void BM_FingerprintOverlapClosedForm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const fingerprint::FingerprintScheme scheme(n, 0.3);
  Rng rng(2);
  const Bitstring x = Bitstring::random(n, rng);
  const Bitstring y = Bitstring::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.overlap(x, y));
  }
}
BENCHMARK(BM_FingerprintOverlapClosedForm)->Arg(32)->Arg(256)->Arg(2048);

static void BM_SwapTestClosedForm(benchmark::State& state) {
  Rng rng(3);
  const auto a = quantum::haar_state(static_cast<int>(state.range(0)), rng);
  const auto b = quantum::haar_state(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qtest::swap_test_accept(a, b));
  }
}
BENCHMARK(BM_SwapTestClosedForm)->Arg(64)->Arg(1024);

static void BM_PermutationTestGram(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<linalg::CVec> factors;
  for (int i = 0; i < k; ++i) {
    factors.push_back(quantum::haar_state(64, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(qtest::permutation_test_accept(factors));
  }
}
BENCHMARK(BM_PermutationTestGram)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

static void BM_ChainAcceptDp(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  const int n = 64;
  Rng rng(5);
  const protocol::EqPathProtocol protocol(n, r, 0.3, 1);
  const Bitstring x = Bitstring::random(n, rng);
  Bitstring y = Bitstring::random(n, rng);
  if (x == y) y.flip(0);
  const auto hx = protocol.scheme().state(x);
  const auto hy = protocol.scheme().state(y);
  const auto attack = protocol::rotation_attack(hx, hy, r - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.single_rep_accept(x, y, attack));
  }
}
BENCHMARK(BM_ChainAcceptDp)->Arg(4)->Arg(16)->Arg(64);

static void BM_HermitianEigh(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Rng rng(6);
  const auto rho = quantum::random_density(d, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigh(rho));
  }
}
BENCHMARK(BM_HermitianEigh)->Arg(8)->Arg(32)->Arg(64);

static void BM_ExactAcceptanceOperator(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  const linalg::CVec a = linalg::CVec::basis(2, 0);
  const linalg::CVec b = linalg::CVec::basis(2, 1);
  for (auto _ : state) {
    const protocol::ExactEqPathAnalyzer exact(a, b, r);
    benchmark::DoNotOptimize(exact.worst_case_accept());
  }
}
BENCHMARK(BM_ExactAcceptanceOperator)->Arg(2)->Arg(3)->Arg(4);

static void BM_Permanent(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(7);
  linalg::CMat gram(k, k);
  std::vector<linalg::CVec> factors;
  for (int i = 0; i < k; ++i) {
    factors.push_back(quantum::haar_state(16, rng));
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      gram(i, j) = factors[static_cast<std::size_t>(i)].dot(
          factors[static_cast<std::size_t>(j)]);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::permanent(gram));
  }
}
BENCHMARK(BM_Permanent)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

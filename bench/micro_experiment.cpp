// Registry counterpart of bench_micro.cpp: the same simulation-primitive
// kernels (the cost drivers behind every table harness), timed with plain
// repetition loops so the experiment works without google-benchmark and
// its wall times flow into the JSON trajectory (per-point wall_ms,
// emitted under --timings).
//
// Deterministic metrics record the kernel configuration (dimension,
// iterations) plus a checksum of the computed values — so the default
// (timing-free) JSON still pins the kernels' numerical outputs.
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "dqma/attacks.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/exact_runner.hpp"
#include "experiments.hpp"
#include "fingerprint/fingerprint.hpp"
#include "linalg/eigen.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/permanent.hpp"
#include "linalg/simd.hpp"
#include "qtest/permutation_test.hpp"
#include "qtest/swap_test.hpp"
#include "quantum/local_ops.hpp"
#include "quantum/random.hpp"
#include "sweep/parallel.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using util::Bitstring;
using util::Rng;
using util::Table;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();
  util::print_banner(
      out, "microbenchmarks of the simulation primitives",
      "Fixed-iteration kernels; wall times are recorded per point (JSON:\n"
      "--timings). The checksum column pins each kernel's numerics.");

  const int scale = ctx.smoke_select(1, 8);  // smoke: 8x fewer iterations
  std::vector<sweep::ParamPoint> points;
  const auto add = [&](const char* kernel, int size, int iters) {
    points.push_back(sweep::ParamPoint()
                         .set("kernel", kernel)
                         .set("size", size)
                         .set("iters", std::max(1, iters / scale)));
  };
  for (int n : {32, 256, 2048}) add("fingerprint_state", n, 400);
  for (int n : {32, 256, 2048}) add("fingerprint_overlap", n, 4000);
  for (int d : {64, 1024}) add("swap_test", d, 4000);
  for (int k : {2, 4, 8, 12}) add("permutation_test_gram", k, 200);
  for (int r : {4, 16, 64}) add("chain_accept_dp", r, 40);
  for (int d : {8, 32, 64}) add("hermitian_eigh", d, 8);
  for (int r : {2, 3, 4}) add("exact_acceptance_operator", r, 4);
  for (int k : {4, 8, 12}) add("permanent", k, 40);
  // Matrix-free local-operator engine kernels; 1 << 18 is above the old
  // 1 << 14 exact-engine cap and only reachable matrix-free.
  for (int n : {1 << 14, 1 << 16, 1 << 18}) add("local_ops_apply", n, 24);
  for (int d : {256, 1024}) add("local_ops_sandwich", d, 6);

  const auto results = ctx.sweep(
      "kernels", points, [](const sweep::ParamPoint& p, Rng& rng) {
        const auto& kernel = p.get_string("kernel");
        const int size = static_cast<int>(p.get_int("size"));
        const int iters = static_cast<int>(p.get_int("iters"));
        double checksum = 0.0;
        if (kernel == "fingerprint_state") {
          const fingerprint::FingerprintScheme scheme(size, 0.3);
          const Bitstring x = Bitstring::random(size, rng);
          for (int i = 0; i < iters; ++i) {
            checksum += scheme.state(x).norm();
          }
        } else if (kernel == "fingerprint_overlap") {
          const fingerprint::FingerprintScheme scheme(size, 0.3);
          const Bitstring x = Bitstring::random(size, rng);
          const Bitstring y = Bitstring::random(size, rng);
          for (int i = 0; i < iters; ++i) {
            checksum += scheme.overlap(x, y);
          }
        } else if (kernel == "swap_test") {
          const auto a = quantum::haar_state(size, rng);
          const auto b = quantum::haar_state(size, rng);
          for (int i = 0; i < iters; ++i) {
            checksum += qtest::swap_test_accept(a, b);
          }
        } else if (kernel == "permutation_test_gram") {
          std::vector<linalg::CVec> factors;
          for (int i = 0; i < size; ++i) {
            factors.push_back(quantum::haar_state(64, rng));
          }
          for (int i = 0; i < iters; ++i) {
            checksum += qtest::permutation_test_accept(factors);
          }
        } else if (kernel == "chain_accept_dp") {
          const int n = 64;
          const protocol::EqPathProtocol protocol(n, size, 0.3, 1);
          const Bitstring x = Bitstring::random(n, rng);
          Bitstring y = Bitstring::random(n, rng);
          if (x == y) y.flip(0);
          const auto hx = protocol.scheme().state(x);
          const auto hy = protocol.scheme().state(y);
          const auto attack = protocol::rotation_attack(hx, hy, size - 1);
          for (int i = 0; i < iters; ++i) {
            checksum += protocol.single_rep_accept(x, y, attack);
          }
        } else if (kernel == "hermitian_eigh") {
          const auto rho = quantum::random_density(size, rng);
          for (int i = 0; i < iters; ++i) {
            checksum += linalg::eigh(rho).values.back();
          }
        } else if (kernel == "exact_acceptance_operator") {
          const linalg::CVec a = linalg::CVec::basis(2, 0);
          const linalg::CVec b = linalg::CVec::basis(2, 1);
          for (int i = 0; i < iters; ++i) {
            const protocol::ExactEqPathAnalyzer exact(a, b, size);
            checksum += exact.worst_case_accept();
          }
        } else if (kernel == "local_ops_apply") {
          // Two-register (16-dim) unitary applied to an n-qudit state vector
          // by stride arithmetic, on non-adjacent register pairs.
          int nregs = 0;
          while ((1 << (2 * nregs)) < size) ++nregs;
          const quantum::RegisterShape shape(
              std::vector<int>(static_cast<std::size_t>(nregs), 4));
          const linalg::CMat u = quantum::haar_unitary(16, rng);
          linalg::CVec psi(size);
          psi[0] = linalg::Complex{1.0, 0.0};
          linalg::CMat e00(4, 4);
          e00(0, 0) = linalg::Complex{1.0, 0.0};
          const quantum::LocalOpPlan probe(shape, {0});
          // Plans hoisted out of the timed loop so wall_ms measures the
          // stride-apply pass, not plan construction.
          std::vector<quantum::LocalOpPlan> pair_plans;
          for (int a = 0; a < nregs; ++a) {
            pair_plans.emplace_back(
                shape, std::vector<int>{a, (a + nregs / 2) % nregs});
          }
          for (int i = 0; i < iters; ++i) {
            quantum::apply_local(pair_plans[static_cast<std::size_t>(i % nregs)],
                                 u, psi);
            checksum += quantum::expectation_local(probe, e00, psi);
          }
        } else if (kernel == "local_ops_sandwich") {
          // U rho U^dagger on a dense density matrix through the reused-
          // workspace sandwich pass (never embedding U).
          const quantum::RegisterShape shape({size / 4, 4});
          linalg::CMat rho =
              linalg::CMat::projector(quantum::haar_state(size, rng));
          const linalg::CMat u = quantum::haar_unitary(4, rng);
          const quantum::LocalOpPlan plan(shape, {1});
          linalg::CMat e00(4, 4);
          e00(0, 0) = linalg::Complex{1.0, 0.0};
          for (int i = 0; i < iters; ++i) {
            quantum::sandwich_local(plan, u, rho);
            checksum += quantum::expectation_local(plan, e00, rho);
          }
        } else {  // permanent
          std::vector<linalg::CVec> factors;
          for (int i = 0; i < size; ++i) {
            factors.push_back(quantum::haar_state(16, rng));
          }
          linalg::CMat gram(size, size);
          for (int i = 0; i < size; ++i) {
            for (int j = 0; j < size; ++j) {
              gram(i, j) = factors[static_cast<std::size_t>(i)].dot(
                  factors[static_cast<std::size_t>(j)]);
            }
          }
          for (int i = 0; i < iters; ++i) {
            checksum += linalg::permanent(gram).real();
          }
        }
        return sweep::Metrics().set("checksum", checksum);
      });

  Table table({"kernel", "size", "iters", "checksum", "us/iter"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (results[i].skipped) continue;  // owned by another --shard
    const double iters =
        static_cast<double>(points[i].get_int("iters"));
    table.add_row({points[i].get_string("kernel"),
                   Table::fmt(points[i].get_int("size")),
                   Table::fmt(points[i].get_int("iters")),
                   Table::fmt(results[i].metrics.get_double("checksum")),
                   Table::fmt(results[i].wall_ms * 1000.0 / iters, 2)});
  }
  table.print(out);

  {
    util::print_banner(
        out, "parallel kernels: threads 1 vs max at fixed partitioning",
        "The threaded kernels (apply_local / blocked GEMM / sandwich) at\n"
        "increasing scale, each point pinned to a kernel thread count\n"
        "(threads 0 = the full --threads budget). Checksums are\n"
        "byte-identical across the thread axis by the determinism\n"
        "contract; wall times (JSON: --timings) record the intra-instance\n"
        "speedup trajectory.");
    // The points run as a hand-rolled serial loop (not serial_sweep): each
    // point pins its kernel thread count via KernelThreadScope, and the
    // thread-axis pair of a (kernel, size) shares one input stream so the
    // checksum equality is visible in the JSON — both outside the JobFn
    // contract. threads 0 resolves to the --threads budget below, so
    // `--threads 1` stays genuinely serial.
    std::vector<sweep::ParamPoint> points;
    const auto scales = ctx.smoke_select(
        std::vector<int>{1 << 14, 1 << 16, 1 << 18}, {1 << 14, 1 << 16});
    for (const char* kernel : {"apply_local", "gemm", "sandwich"}) {
      for (const int scale : scales) {
        for (const int threads : {1, 0}) {
          points.push_back(sweep::ParamPoint()
                               .set("kernel", kernel)
                               .set("size", scale)
                               .set("threads", threads));
        }
      }
    }
    Table ptable({"kernel", "size", "threads", "checksum", "wall (ms)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Hand-rolled loop, so the shard partition is hand-rolled too: skip
      // computing points whose record another shard owns.
      if (!ctx.owns_next_record("parallel_kernels")) {
        ctx.skip_record("parallel_kernels");
        continue;
      }
      const auto& p = points[i];
      const auto& kernel = p.get_string("kernel");
      const int scale = static_cast<int>(p.get_int("size"));
      const int threads = static_cast<int>(p.get_int("threads"));
      // The threads axis is innermost, so indices 2k and 2k+1 differ only
      // in thread count; seeding both from the even index gives the pair
      // identical inputs — the checksum equality across the thread axis is
      // then visible in the JSON itself.
      Rng rng = ctx.point_rng("parallel_kernels", i - (i % 2));
      // threads 0 = "all of the --threads budget" (the sweep pool's
      // resolved size), NOT raw hardware concurrency: --threads 1 must
      // stay serial even on a many-core host.
      const sweep::KernelThreadScope scope(
          threads == 0 ? ctx.pool().thread_count() : threads);
      const auto start = std::chrono::steady_clock::now();
      double checksum = 0.0;
      if (kernel == "apply_local") {
        // 16-dim two-register unitary over an n-amplitude state by stride
        // arithmetic (scale = state dimension).
        int nregs = 0;
        while ((1 << (2 * nregs)) < scale) ++nregs;
        const quantum::RegisterShape shape(
            std::vector<int>(static_cast<std::size_t>(nregs), 4));
        const linalg::CMat u = quantum::haar_unitary(16, rng);
        linalg::CVec psi(scale);
        psi[0] = linalg::Complex{1.0, 0.0};
        linalg::CMat e00(4, 4);
        e00(0, 0) = linalg::Complex{1.0, 0.0};
        const quantum::LocalOpPlan probe(shape, {0});
        std::vector<quantum::LocalOpPlan> pair_plans;
        for (int a = 0; a < nregs; ++a) {
          pair_plans.emplace_back(
              shape, std::vector<int>{a, (a + nregs / 2) % nregs});
        }
        const int iters = ctx.smoke_select(24, 8);
        for (int it = 0; it < iters; ++it) {
          quantum::apply_local(pair_plans[static_cast<std::size_t>(it % nregs)],
                               u, psi);
          checksum += quantum::expectation_local(probe, e00, psi);
        }
      } else if (kernel == "gemm") {
        // Dense n x n product with n^2 = scale entries per factor.
        int n = 1;
        while (n * n < scale) n *= 2;
        const linalg::CMat a = quantum::haar_unitary(n, rng);
        const linalg::CMat b = quantum::haar_unitary(n, rng);
        const int iters = ctx.smoke_select(2, 1);
        for (int it = 0; it < iters; ++it) {
          const linalg::CMat c = it % 2 == 0 ? a * b : a.adjoint_times(b);
          checksum += c(0, 0).real() + c(n - 1, n - 1).imag();
        }
      } else {  // sandwich
        // U rho U^dagger on a dense D x D density with D^2 = scale entries.
        int n = 1;
        while (n * n < scale) n *= 2;
        const quantum::RegisterShape shape({n / 4, 4});
        linalg::CMat rho =
            linalg::CMat::projector(quantum::haar_state(n, rng));
        const linalg::CMat u = quantum::haar_unitary(4, rng);
        const quantum::LocalOpPlan plan(shape, {1});
        linalg::CMat e00(4, 4);
        e00(0, 0) = linalg::Complex{1.0, 0.0};
        const int iters = ctx.smoke_select(4, 2);
        for (int it = 0; it < iters; ++it) {
          quantum::sandwich_local(plan, u, rho);
          checksum += quantum::expectation_local(plan, e00, rho);
        }
      }
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      ctx.record("parallel_kernels", p,
                 sweep::Metrics().set("checksum", checksum), wall_ms);
      ptable.add_row({kernel, Table::fmt(scale), Table::fmt(threads),
                      Table::fmt(checksum), Table::fmt(wall_ms, 2)});
    }
    ptable.print(out);
  }

  {
    util::print_banner(
        out, "simd roofline: kernels x dispatch level, single-threaded",
        "The split-complex engine's core kernels at every dispatch level\n"
        "(linalg/simd.hpp), one kernel thread, level pinned per point via\n"
        "LevelScope. Checksums and the flop/byte counts are deterministic\n"
        "per level; GFLOP/s and GB/s ride in the wall_ms of the\n"
        "simd_roofline_stats points (JSON: --timings only). Levels the\n"
        "host cannot run are clamped to the best supported one.");
    // Same hand-rolled serial loop + shard protocol as parallel_kernels:
    // each point pins thread count and dispatch level, outside the JobFn
    // contract. The level axis is innermost and the triple (kernel) shares
    // one input stream via point_rng(i - i % 3), so the cross-level
    // agreement (within rounding) is visible in the JSON itself.
    std::vector<sweep::ParamPoint> points;
    for (const char* kernel : {"apply_local", "gemm", "matvec"}) {
      for (const char* level : {"scalar", "avx2", "avx512"}) {
        points.push_back(
            sweep::ParamPoint().set("kernel", kernel).set("level", level));
      }
    }
    Table rtable({"kernel", "level", "ran at", "checksum", "GFLOP/s", "GB/s"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!ctx.owns_next_record("simd_roofline")) {
        ctx.skip_record("simd_roofline");
        for (int s = 0; s < 2; ++s) {
          ctx.skip_record("simd_roofline_stats");
        }
        continue;
      }
      const auto& p = points[i];
      const auto& kernel = p.get_string("kernel");
      const linalg::simd::Level requested =
          linalg::simd::parse_level(p.get_string("level"));
      // Clamp, never skip: the point grid (and so the JSON shape) is
      // identical on every host; an unsupported level simply re-measures
      // the best supported one. Checksums agree across levels within
      // rounding, so clamped points still --compare clean against a
      // baseline from a wider host.
      const linalg::simd::Level exec =
          linalg::simd::clamp_to_supported(requested);
      const linalg::simd::LevelScope level_scope(exec);
      const sweep::KernelThreadScope thread_scope(1);
      Rng rng = ctx.point_rng("simd_roofline", i - (i % 3));
      double checksum = 0.0;
      long long flops = 0;  // per iteration
      long long bytes = 0;  // per iteration
      long long iters = 0;
      double wall_ms = 0.0;
      const auto clock_ms = [start = std::chrono::steady_clock::now()] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
      };
      if (kernel == "apply_local") {
        // The gather/block-apply/scatter core: 16-dim two-register unitary
        // over a D-amplitude state. 8 flops per complex MAC, b=16 MACs per
        // amplitude; each amplitude is read and written once per pass.
        const int d = ctx.smoke_select(1 << 16, 1 << 14);
        int nregs = 0;
        while ((1 << (2 * nregs)) < d) ++nregs;
        const quantum::RegisterShape shape(
            std::vector<int>(static_cast<std::size_t>(nregs), 4));
        const linalg::CMat u = quantum::haar_unitary(16, rng);
        linalg::CVec psi(d);
        psi[0] = linalg::Complex{1.0, 0.0};
        std::vector<quantum::LocalOpPlan> pair_plans;
        for (int a = 0; a < nregs; ++a) {
          pair_plans.emplace_back(
              shape, std::vector<int>{a, (a + nregs / 2) % nregs});
        }
        iters = ctx.smoke_select(12, 6);
        flops = 128LL * d;
        bytes = 32LL * d;
        const double t0 = clock_ms();
        for (long long it = 0; it < iters; ++it) {
          quantum::apply_local(
              pair_plans[static_cast<std::size_t>(it % nregs)], u, psi);
        }
        wall_ms = clock_ms() - t0;
        linalg::CMat e00(4, 4);
        e00(0, 0) = linalg::Complex{1.0, 0.0};
        const quantum::LocalOpPlan probe(shape, {0});
        checksum = quantum::expectation_local(probe, e00, psi);
      } else if (kernel == "gemm") {
        // Dense n x n product through the blocked split-complex path.
        const int n = ctx.smoke_select(256, 128);
        const linalg::CMat a = quantum::haar_unitary(n, rng);
        const linalg::CMat b = quantum::haar_unitary(n, rng);
        iters = 2;
        flops = 8LL * n * n * n;
        bytes = 48LL * n * n;
        const double t0 = clock_ms();
        for (long long it = 0; it < iters; ++it) {
          const linalg::CMat c = it % 2 == 0 ? a * b : a.adjoint_times(b);
          checksum += c(0, 0).real() + c(n - 1, n - 1).imag();
        }
        wall_ms = clock_ms() - t0;
      } else {  // matvec
        // DenseOperator::apply (the power-iteration workhorse): one packed
        // split read of the n x n matrix per pass.
        const int n = ctx.smoke_select(1024, 512);
        const linalg::CMat a = quantum::random_density(n, rng);
        const linalg::DenseOperator op(a);
        linalg::CVec x = quantum::haar_state(n, rng);
        iters = ctx.smoke_select(100, 40);
        flops = 8LL * n * n;
        bytes = 16LL * n * n;
        const double t0 = clock_ms();
        for (long long it = 0; it < iters; ++it) {
          linalg::CVec y = op.apply(x);
          y.normalize();
          x = std::move(y);
        }
        wall_ms = clock_ms() - t0;
        checksum = x.norm() + std::abs(x[0]);
      }
      // record_owned, not record: the stats points below can only be
      // computed by the shard that timed this point, so the whole triple
      // is owned by the main point's key (other shards skip_record all
      // three above).
      ctx.record_owned("simd_roofline", p,
                       sweep::Metrics()
                           .set("checksum", checksum)
                           .set("flops_per_iter", flops)
                           .set("bytes_per_iter", bytes)
                           .set("iters", iters));
      const double wall_s = wall_ms / 1000.0;
      const double gflops =
          wall_s > 0.0
              ? static_cast<double>(flops * iters) / wall_s / 1.0e9
              : 0.0;
      const double gbps =
          wall_s > 0.0
              ? static_cast<double>(bytes * iters) / wall_s / 1.0e9
              : 0.0;
      const std::pair<const char*, double> stat_points[] = {
          {"gflops", gflops}, {"gbytes_per_s", gbps}};
      for (const auto& [stat, value] : stat_points) {
        sweep::ParamPoint stat_point;
        stat_point.set("kernel", kernel)
            .set("level", p.get_string("level"))
            .set("stat", stat);
        ctx.record_owned("simd_roofline_stats", stat_point,
                         sweep::Metrics().set("iters", iters), value);
      }
      rtable.add_row({kernel, p.get_string("level"),
                      linalg::simd::level_name(exec), Table::fmt(checksum),
                      Table::fmt(gflops, 2), Table::fmt(gbps, 2)});
    }
    rtable.print(out);
  }

  {
    util::print_banner(
        out, "eigensolver: power vs Lanczos at power-of-two proof dims",
        "Both spectral solvers (linalg/lanczos.hpp) on matrix-free\n"
        "acceptance operators at proof dims 2^10 .. 2^16, tol 1e-9.\n"
        "Matvec counts are exact integers (level- and thread-invariant);\n"
        "wall times ride in the JSON under --timings.");
    std::vector<sweep::ParamPoint> points;
    const auto add_pair = [&](int d, int r) {
      for (const char* solver : {"power", "lanczos"}) {
        points.push_back(sweep::ParamPoint()
                             .set("d", d)
                             .set("r", r)
                             .set("solver", solver));
      }
    };
    // (d, r) -> proof dim d^{2(r-1)}: 2^10, 2^12, 2^14, 2^16. Smoke stops
    // at 2^12; the two large instances are full-run only.
    add_pair(32, 2);
    add_pair(8, 3);
    if (!ctx.smoke()) {
      add_pair(128, 2);
      add_pair(16, 3);
    }
    // Few huge points, one threaded matvec engine inside each: run them
    // serially so the kernels fan out (same contract as the table3_lower
    // matrix_free_large series).
    const auto results = ctx.serial_sweep(
        "eigensolver", points, [](const sweep::ParamPoint& p, Rng&) {
          const int d = static_cast<int>(p.get_int("d"));
          const int r = static_cast<int>(p.get_int("r"));
          linalg::CVec a = linalg::CVec::basis(d, 0);
          linalg::CVec b(d);
          b[0] = linalg::Complex{0.2, 0.0};
          b[1] = linalg::Complex{std::sqrt(1.0 - 0.04), 0.0};
          const protocol::ExactEqPathAnalyzer exact(
              a, b, r, protocol::ExactEqPathAnalyzer::Mode::kMatrixFree);
          linalg::SpectralOptions opts;
          opts.method = p.get_string("solver") == "power"
                            ? linalg::SpectralOptions::Method::kPower
                            : linalg::SpectralOptions::Method::kLanczos;
          opts.max_iters = 20000;
          opts.tol = 1e-9;
          linalg::SpectralStats stats;
          const double value = exact.worst_case_accept(opts, &stats);
          return sweep::Metrics()
              .set("proof_dim", exact.proof_dim())
              .set("value", value)
              .set("matvecs", stats.matvecs)
              .set("converged", stats.converged);
        });
    Table etable({"d", "r", "proof dim", "solver", "top eigenvalue",
                  "matvecs", "converged"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      etable.add_row({Table::fmt(points[i].get_int("d")),
                      Table::fmt(points[i].get_int("r")),
                      Table::fmt(m.get_int("proof_dim")),
                      points[i].get_string("solver"),
                      Table::fmt(m.get_double("value")),
                      Table::fmt(m.get_int("matvecs")),
                      m.get_bool("converged") ? "yes" : "NO"});
    }
    etable.print(out);
  }
}

}  // namespace

void register_micro() {
  sweep::register_experiment(
      {"micro",
       "Microbenchmarks of the simulation primitives (wall times via "
       "--timings)",
       run});
}

}  // namespace dqma::bench

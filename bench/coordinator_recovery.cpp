// Crash-recovery accounting for the elastic sweep coordinator
// (src/sweep/coordinator.hpp). Not a paper table — an infrastructure
// experiment pinning the failure-handling invariants as exact integer
// metrics: a rescue worker reclaims every unit a dead worker left behind
// (done markers AND held leases) with exactly one eviction, and the
// contention backoff schedule is deterministic per (seed, worker) with the
// documented cap clamp(lease_timeout/4, 250ms, 5s).
//
// Each point simulates a crash in its own scratch coordinator directory:
// worker "a-victim" commits `pre` units and dies holding `held` leases
// (heartbeat stopped, log mtime aged past any timeout); worker "z-rescue"
// then runs one pass over all units.
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/registry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

namespace fs = std::filesystem;
using sweep::Coordinator;
using util::Rng;
using util::Table;

/// A scratch coordinator directory unique to this process and point;
/// removed when the simulation ends (metrics never depend on the path).
class SimDir {
 public:
  explicit SimDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("dqma_coord_recovery_" + std::to_string(::getpid()) + "_" +
               tag)) {
    fs::remove_all(path_);
  }
  ~SimDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

Coordinator::Options sim_options(const SimDir& dir, const std::string& worker,
                                 std::uint64_t base_seed, bool smoke,
                                 int lease_timeout_ms = 60000) {
  Coordinator::Options options;
  options.dir = dir.str();
  options.worker = worker;
  options.base_seed = base_seed;
  options.smoke = smoke;
  options.lease_timeout_ms = lease_timeout_ms;
  return options;
}

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();

  {
    util::print_banner(
        out, "(a) stale-worker reclaim",
        "Worker a-victim commits `pre` units and dies holding `held`\n"
        "leases; worker z-rescue runs one pass over all pre+held units.\n"
        "Expected: every unit reclaimed and re-acquired, exactly one\n"
        "eviction, the pass converges.");
    sweep::ParamGrid grid;
    grid.axis("pre", ctx.smoke_select(std::vector<int>{0, 2, 6}, {0, 2}));
    grid.axis("held", std::vector<int>{1, 3});
    const auto points = grid.enumerate();
    const std::uint64_t base_seed = ctx.base_seed();
    const bool smoke = ctx.smoke();
    const auto results = ctx.sweep(
        "recovery", points,
        [base_seed, smoke](const sweep::ParamPoint& point, Rng&) {
          const int pre = point.get_int("pre");
          const int held = point.get_int("held");
          const int total = pre + held;
          const SimDir dir("recovery_" + std::to_string(pre) + "_" +
                           std::to_string(held));
          {
            Coordinator victim(
                sim_options(dir, "a-victim", base_seed, smoke));
            victim.begin_pass();
            for (int i = 0; i < total; ++i) {
              victim.acquire(0xC0FFEEu + static_cast<std::uint64_t>(i));
            }
            for (int i = 0; i < pre; ++i) {
              victim.complete(0xC0FFEEu + static_cast<std::uint64_t>(i));
            }
            victim.stop_heartbeat();
          }
          fs::last_write_time(dir.str() + "/workers/a-victim.jsonl",
                              fs::file_time_type::clock::now() -
                                  std::chrono::minutes(10));

          Coordinator rescue(
              sim_options(dir, "z-rescue", base_seed, smoke));
          rescue.begin_pass();
          long long reacquired = 0;
          for (int i = 0; i < total; ++i) {
            if (rescue.acquire(0xC0FFEEu + static_cast<std::uint64_t>(i)) ==
                Coordinator::Claim::kAcquired) {
              ++reacquired;
            }
          }
          const auto stats = rescue.stats();
          return sweep::Metrics()
              .set("reacquired", reacquired)
              .set("reclaims", stats.reclaims)
              .set("evictions", stats.evictions)
              .set("converged", rescue.pass_converged());
        });
    Table table({"pre", "held", "reacquired", "reclaims", "evictions",
                 "converged?"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      table.add_row(
          {std::to_string(points[i].get_int("pre")),
           std::to_string(points[i].get_int("held")),
           std::to_string(results[i].metrics.get_int("reacquired")),
           std::to_string(results[i].metrics.get_int("reclaims")),
           std::to_string(results[i].metrics.get_int("evictions")),
           results[i].metrics.get_bool("converged") ? "yes" : "NO"});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(b) backoff schedule determinism",
        "The first five contention delays of worker w0, per lease timeout.\n"
        "Pinned exactly: the jitter stream is seeded by (seed, worker), and\n"
        "every delay respects cap = clamp(timeout/4, 250ms, 5s).");
    sweep::ParamGrid grid;
    grid.axis("timeout_ms", std::vector<int>{1000, 20000, 60000});
    const auto points = grid.enumerate();
    const std::uint64_t base_seed = ctx.base_seed();
    const bool smoke = ctx.smoke();
    const auto results = ctx.sweep(
        "backoff", points,
        [base_seed, smoke](const sweep::ParamPoint& point, Rng&) {
          const int timeout_ms = point.get_int("timeout_ms");
          const SimDir dir("backoff_" + std::to_string(timeout_ms));
          Coordinator worker(
              sim_options(dir, "w0", base_seed, smoke, timeout_ms));
          const long long cap = std::clamp<long long>(timeout_ms / 4, 250, 5000);
          sweep::Metrics metrics;
          bool capped = true;
          for (int round = 0; round < 5; ++round) {
            const long long delay = worker.backoff_delay(round).count();
            capped = capped && delay <= cap;
            metrics.set("d" + std::to_string(round), delay);
          }
          return metrics.set("within_cap", capped);
        });
    Table table({"timeout (ms)", "d0", "d1", "d2", "d3", "d4", "capped?"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      std::vector<std::string> row{
          std::to_string(points[i].get_int("timeout_ms"))};
      for (int round = 0; round < 5; ++round) {
        row.push_back(std::to_string(
            results[i].metrics.get_int("d" + std::to_string(round))));
      }
      row.push_back(results[i].metrics.get_bool("within_cap") ? "yes" : "NO");
      table.add_row(row);
    }
    table.print(out);
  }
}

}  // namespace

void register_coordinator_recovery() {
  sweep::register_experiment(
      {"coordinator_recovery",
       "elastic coordinator crash recovery: reclaim/eviction accounting and "
       "backoff determinism",
       run});
}

}  // namespace dqma::bench

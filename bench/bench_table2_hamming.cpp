// Table 2, row 6 — Theorem 30 / Theorem 32: the Hamming-distance predicate
// (and generally forall_t f) on general graphs from a one-way protocol.
//
// Shape to check: completeness 1 (exactly, with our one-sided block
// protocol), attacked soundness below 1/3 with enough repetitions, cost
// growth ~ t^2 (t trees x degree factor) and ~ log n, and the d-dependence
// of our block-isolation substitution (d^2 log d, vs the paper's d via
// [LZ13] — documented in EXPERIMENTS.md).
#include <iostream>
#include <vector>

#include "comm/fq_rank.hpp"
#include "comm/hamming_protocol.hpp"
#include "comm/l1_graph.hpp"
#include "comm/ltf_protocol.hpp"
#include "dqma/hamming.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"
#include "util/gf2.hpp"
#include "util/rng.hpp"
#include "util/smoke.hpp"
#include "util/table.hpp"

using namespace dqma;
using comm::HammingOneWayProtocol;
using protocol::HammingGraphProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

int main() {
  Rng rng(30);
  std::cout << "Reproduction of Table 2, row 6 (Theorems 30/32: Hamming "
               "distance and forall_t f)\n";

  {
    util::print_banner(
        std::cout, "(a) one-way substrate cost vs (n, d)",
        "Message qubits of the block-isolation protocol. Paper ([LZ13])\n"
        "scales as d log n; ours as d^2 log d log n (substitution, see\n"
        "DESIGN.md): the n-scaling shape is preserved, the d-exponent is 2.");
    Table table({"n", "d", "message qubits"});
    const auto sizes =
        util::smoke_select(std::vector<int>{32, 128, 512}, {32, 128});
    const auto dists = util::smoke_select(std::vector<int>{1, 2, 4}, {1, 2});
    for (int n : sizes) {
      for (int d : dists) {
        const HammingOneWayProtocol p(
            n, d, 0.3, HammingOneWayProtocol::recommended_copies(d, 0.3));
        table.add_row({Table::fmt(n), Table::fmt(d),
                       Table::fmt(p.message_qubits())});
      }
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(b) completeness on stars (exactly 1 with block isolation)",
        "t terminals within pairwise distance d; n = 16, d = 1.");
    Table table({"t", "predicate", "completeness"});
    for (int t : {2, 3, 4}) {
      const network::Graph g = network::Graph::star(t);
      std::vector<int> terminals;
      for (int i = 1; i <= t; ++i) terminals.push_back(i);
      const HammingGraphProtocol protocol(g, terminals, 16, 1, 0.35, 10);
      const Bitstring base = Bitstring::random(16, rng);
      std::vector<Bitstring> inputs{base};
      for (int i = 1; i < t; ++i) {
        // All inputs EQUAL to keep every pairwise distance 0 <= d.
        inputs.push_back(base);
      }
      table.add_row({Table::fmt(t),
                     protocol.predicate(inputs) ? "1" : "0",
                     Table::fmt(protocol.completeness(inputs))});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(c) soundness under the interpolation attack (Monte-Carlo)",
        "One violated pair on a path of length 2; n = 16, d = 1, 40 reps,\n"
        "150 permutation samples (95% CI reported).");
    Table table({"violation distance", "attack accept (mean)", "CI half-width",
                 "<= 1/3?"});
    const network::Graph g = network::Graph::path(2);
    const HammingGraphProtocol protocol(g, {0, 2}, 16, 1, 0.35, 40);
    const int samples = util::smoke_select(150, 30);
    for (int dist : {4, 7}) {
      const Bitstring x = Bitstring::random(16, rng);
      const std::vector<Bitstring> inputs{
          x, Bitstring::random_at_distance(x, dist, rng)};
      const auto est = protocol.best_attack_accept(inputs, rng, samples);
      table.add_row({Table::fmt(dist), Table::fmt(est.mean),
                     Table::fmt(est.half_width_95),
                     est.mean - est.half_width_95 <= 1.0 / 3.0 ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(d) total proof vs t (the t^2 factor of Theorem 32)",
        "Stars, n = 16, d = 1, fixed reps. Expected: ~quadratic in t\n"
        "(t trees, each with ~t bundle copies at the center).");
    Table table({"t", "total proof (qubits)", "ratio to t=2"});
    long long base = 0;
    for (int t : {2, 3, 4, 6, 8}) {
      const network::Graph g = network::Graph::star(t);
      std::vector<int> terminals;
      for (int i = 1; i <= t; ++i) terminals.push_back(i);
      const HammingGraphProtocol protocol(g, terminals, 16, 1, 0.35, 10);
      const long long total = protocol.costs().total_proof_qubits;
      if (base == 0) base = total;
      table.add_row({Table::fmt(t), Table::fmt(total),
                     Table::fmt(static_cast<double>(total) /
                                static_cast<double>(base))});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(e) Sec. 6.2 extensions: l1-graphs (Cor. 35) and LTF (Cor. 39)",
        "One-way substrates consumed by the same forall_t construction:\n"
        "Johnson graph J(16,5) distances via the 2-scale hypercube\n"
        "embedding; a weighted linear-threshold XOR function.");
    Table table({"predicate", "yes accept (honest)", "no accept (honest)",
                 "message qubits"});
    {
      const comm::JohnsonMetric metric(16, 5);
      const comm::L1DistanceOneWayProtocol p(metric, 1, 0.35);
      Bitstring u = metric.random_vertex(rng);
      Bitstring close = u;
      int in_pos = -1, out_pos = -1;
      for (int i = 0; i < 16; ++i) {
        if (close.get(i) && in_pos < 0) in_pos = i;
        if (!close.get(i) && out_pos < 0) out_pos = i;
      }
      close.flip(in_pos);
      close.flip(out_pos);
      Bitstring far = metric.random_vertex(rng);
      while (metric.distance(u, far) <= 3) {
        far = metric.random_vertex(rng);
      }
      table.add_row({"dist_J(16,5) <= 1", Table::fmt(p.honest_accept(u, close)),
                     Table::fmt(p.honest_accept(u, far)),
                     Table::fmt(p.message_qubits())});
    }
    {
      const comm::LtfOneWayProtocol p({3, 2, 2, 1, 1, 1}, 3, 0.35);
      const Bitstring x = Bitstring::from_string("101010");
      const Bitstring close = Bitstring::from_string("101011");  // weight 1
      const Bitstring far = Bitstring::from_string("010010");    // weight 7
      table.add_row({"LTF(w, theta=3)", Table::fmt(p.honest_accept(x, close)),
                     Table::fmt(p.honest_accept(x, far)),
                     Table::fmt(p.message_qubits())});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(f) Sec. 6.2 extensions: F_2-rank (Cor. 41)",
        "rank(X + Y) < r via shared-randomness sketching (substitution for\n"
        "[LZ13], DESIGN.md): one-sided completeness, cost k r^2 bits.");
    Table table({"n", "r", "yes accept", "no accept (mean of 10)",
                 "message bits"});
    for (const auto& [n, r] : {std::pair{6, 3}, std::pair{10, 4}}) {
      const int k = comm::FqRankOneWayProtocol::recommended_sketches(0.02);
      const comm::FqRankOneWayProtocol p(n, r, k);
      const util::Gf2Matrix y = util::Gf2Matrix::random(n, n, rng);
      const util::Gf2Matrix low =
          y ^ util::Gf2Matrix::random_of_rank(n, r - 1, rng);
      double no_mean = 0.0;
      for (int trial = 0; trial < 10; ++trial) {
        const util::Gf2Matrix high =
            y ^ util::Gf2Matrix::random_of_rank(n, std::min(n, r + 2), rng);
        no_mean += p.honest_accept(high.to_bits(), y.to_bits()) / 10.0;
      }
      table.add_row({Table::fmt(n), Table::fmt(r),
                     Table::fmt(p.honest_accept(low.to_bits(), y.to_bits())),
                     Table::fmt(no_mean), Table::fmt(p.message_qubits())});
    }
    table.print(std::cout);
  }
  return 0;
}

// Table 2, row 6 — Theorem 30 / Theorem 32: the Hamming-distance predicate
// (and generally forall_t f) on general graphs from a one-way protocol.
//
// Shape to check: completeness 1 (exactly, with our one-sided block
// protocol), attacked soundness below 1/3 with enough repetitions, cost
// growth ~ t^2 (t trees x degree factor) and ~ log n, and the d-dependence
// of our block-isolation substitution (d^2 log d, vs the paper's d via
// [LZ13] — documented in EXPERIMENTS.md). The Monte-Carlo soundness
// section is chain-DP heavy and runs as parallel sweep jobs.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "comm/fq_rank.hpp"
#include "comm/hamming_protocol.hpp"
#include "comm/l1_graph.hpp"
#include "comm/ltf_protocol.hpp"
#include "dqma/hamming.hpp"
#include "experiments.hpp"
#include "network/graph.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/gf2.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using comm::HammingOneWayProtocol;
using protocol::HammingGraphProtocol;
using util::Bitstring;
using util::Rng;
using util::Table;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();

  {
    util::print_banner(
        out, "(a) one-way substrate cost vs (n, d)",
        "Message qubits of the block-isolation protocol. Paper ([LZ13])\n"
        "scales as d log n; ours as d^2 log d log n (substitution, see\n"
        "DESIGN.md): the n-scaling shape is preserved, the d-exponent is 2.");
    sweep::ParamGrid grid;
    grid.axis("n", ctx.smoke_select(std::vector<int>{32, 128, 512},
                                    {32, 128}));
    grid.axis("d", ctx.smoke_select(std::vector<int>{1, 2, 4}, {1, 2}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "one_way_cost", points, [](const sweep::ParamPoint& p, Rng&) {
          const int n = static_cast<int>(p.get_int("n"));
          const int d = static_cast<int>(p.get_int("d"));
          const HammingOneWayProtocol protocol(
              n, d, 0.3, HammingOneWayProtocol::recommended_copies(d, 0.3));
          return sweep::Metrics().set("message_qubits",
                                      protocol.message_qubits());
        },
        // Closed-form cost curves: replicate (see SweepPolicy).
        sweep::SweepPolicy::replicate());
    Table table({"n", "d", "message qubits"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      table.add_row(
          {Table::fmt(points[i].get_int("n")),
           Table::fmt(points[i].get_int("d")),
           Table::fmt(results[i].metrics.get_int("message_qubits"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(b) completeness on stars (exactly 1 with block isolation)",
        "t terminals within pairwise distance d; n = 16, d = 1.");
    sweep::ParamGrid grid;
    grid.axis("t", ctx.smoke_select(std::vector<int>{2, 3, 4}, {2, 3}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "completeness_stars", points,
        [](const sweep::ParamPoint& p, Rng& rng) {
          const int t = static_cast<int>(p.get_int("t"));
          const network::Graph g = network::Graph::star(t);
          std::vector<int> terminals;
          for (int i = 1; i <= t; ++i) terminals.push_back(i);
          const HammingGraphProtocol protocol(g, terminals, 16, 1, 0.35, 10);
          const Bitstring base = Bitstring::random(16, rng);
          // All inputs EQUAL to keep every pairwise distance 0 <= d.
          const std::vector<Bitstring> inputs(static_cast<std::size_t>(t),
                                              base);
          return sweep::Metrics()
              .set("predicate", protocol.predicate(inputs))
              .set("completeness", protocol.completeness(inputs));
        });
    Table table({"t", "predicate", "completeness"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      table.add_row(
          {Table::fmt(points[i].get_int("t")),
           results[i].metrics.get_bool("predicate") ? "1" : "0",
           Table::fmt(results[i].metrics.get_double("completeness"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(c) soundness under the interpolation attack (Monte-Carlo)",
        "One violated pair on a path of length 2; n = 16, d = 1, 40 reps,\n"
        "150 permutation samples (95% CI reported).");
    // The permutation samples are the chain-DP repetitions here: they are
    // chunked into parallel jobs (same violated input pair per distance,
    // independent sample streams per chunk) and recombined below.
    const int chunks = ctx.smoke_select(5, 1);
    const int chunk_samples = 30;
    sweep::ParamGrid grid;
    grid.axis("violation_distance", std::vector<int>{4, 7});
    std::vector<int> chunk_ids;
    for (int c = 0; c < chunks; ++c) chunk_ids.push_back(c);
    grid.axis("chunk", chunk_ids);
    const auto points = grid.enumerate();
    const std::uint64_t input_seed = util::derive_seed(
        ctx.base_seed(), sweep::fnv1a64("mc_soundness/inputs"));
    const auto results = ctx.sweep(
        "mc_soundness", points,
        [chunk_samples, input_seed](const sweep::ParamPoint& p, Rng& rng) {
          const network::Graph g = network::Graph::path(2);
          const HammingGraphProtocol protocol(g, {0, 2}, 16, 1, 0.35, 40);
          const int dist = static_cast<int>(p.get_int("violation_distance"));
          Rng input_rng(util::derive_seed(input_seed,
                                          static_cast<std::uint64_t>(dist)));
          const Bitstring x = Bitstring::random(16, input_rng);
          const std::vector<Bitstring> inputs{
              x, Bitstring::random_at_distance(x, dist, input_rng)};
          const auto est =
              protocol.best_attack_accept(inputs, rng, chunk_samples);
          return sweep::Metrics()
              .set("chunk_mean", est.mean)
              .set("chunk_half_width_95", est.half_width_95)
              .set("samples", chunk_samples);
        },
        // All chunks of one violated distance shard together, so the CI
        // recombination below stays computable in the shard owning them.
        sweep::SweepPolicy::group_by("violation_distance"));
    Table table({"violation distance", "attack accept (mean)",
                 "CI half-width", "<= 1/3?"});
    for (std::size_t base = 0; base < points.size();
         base += static_cast<std::size_t>(chunks)) {
      // Chunks of one distance are consecutive (chunk is the fast axis).
      // Under --shard only the owning shard has them; it records the
      // combined point, the other shards declare it.
      if (results[base].skipped) {
        ctx.skip_record("mc_soundness_combined");
        continue;
      }
      double mean = 0.0;
      for (int c = 0; c < chunks; ++c) {
        mean += results[base + static_cast<std::size_t>(c)]
                    .metrics.get_double("chunk_mean") /
                chunks;
      }
      double half_width = 0.0;
      if (chunks > 1) {
        // 95% CI from the spread of the (equal-sized, independent) chunk
        // means. With only `chunks` observations the Student-t quantile is
        // required — z = 1.96 would under-cover at 4 dof.
        static constexpr double kT975[] = {0.0,   12.706, 4.303, 3.182,
                                           2.776, 2.571,  2.447, 2.365,
                                           2.306, 2.262};
        const double t = chunks - 1 < 10 ? kT975[chunks - 1] : 1.96;
        double var = 0.0;
        for (int c = 0; c < chunks; ++c) {
          const double d = results[base + static_cast<std::size_t>(c)]
                               .metrics.get_double("chunk_mean") -
                           mean;
          var += d * d / (chunks - 1);
        }
        half_width = t * std::sqrt(var / chunks);
      } else {
        half_width = results[base].metrics.get_double("chunk_half_width_95");
      }
      const bool sound = mean - half_width <= 1.0 / 3.0;
      ctx.record_owned(
          "mc_soundness_combined",
          sweep::ParamPoint().set("violation_distance",
                                  points[base].get_int("violation_distance")),
          sweep::Metrics()
              .set("attack_accept_mean", mean)
              .set("ci_half_width", half_width)
              .set("samples", chunks * chunk_samples)
              .set("sound", sound));
      table.add_row({Table::fmt(points[base].get_int("violation_distance")),
                     Table::fmt(mean), Table::fmt(half_width),
                     sound ? "yes" : "NO"});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(d) total proof vs t (the t^2 factor of Theorem 32)",
        "Stars, n = 16, d = 1, fixed reps. Expected: ~quadratic in t\n"
        "(t trees, each with ~t bundle copies at the center).");
    sweep::ParamGrid grid;
    grid.axis("t", ctx.smoke_select(std::vector<int>{2, 3, 4, 6, 8},
                                    {2, 3, 4}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "total_proof_vs_t", points, [](const sweep::ParamPoint& p, Rng&) {
          const int t = static_cast<int>(p.get_int("t"));
          const network::Graph g = network::Graph::star(t);
          std::vector<int> terminals;
          for (int i = 1; i <= t; ++i) terminals.push_back(i);
          const HammingGraphProtocol protocol(g, terminals, 16, 1, 0.35, 10);
          return sweep::Metrics().set("total_proof_qubits",
                                      protocol.costs().total_proof_qubits);
        },
        // Replicated: the ratio column below reads results[0] from every
        // shard.
        sweep::SweepPolicy::replicate());
    Table table({"t", "total proof (qubits)", "ratio to t=2"});
    const double base =
        static_cast<double>(results[0].metrics.get_int("total_proof_qubits"));
    for (std::size_t i = 0; i < points.size(); ++i) {
      const long long total =
          results[i].metrics.get_int("total_proof_qubits");
      table.add_row({Table::fmt(points[i].get_int("t")), Table::fmt(total),
                     Table::fmt(static_cast<double>(total) / base)});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out,
        "(e) Sec. 6.2 extensions: l1-graphs (Cor. 35) and LTF (Cor. 39)",
        "One-way substrates consumed by the same forall_t construction:\n"
        "Johnson graph J(16,5) distances via the 2-scale hypercube\n"
        "embedding; a weighted linear-threshold XOR function.");
    std::vector<sweep::ParamPoint> points;
    points.push_back(
        sweep::ParamPoint().set("predicate", "dist_J(16,5) <= 1"));
    points.push_back(sweep::ParamPoint().set("predicate", "LTF(w, theta=3)"));
    const auto results = ctx.sweep(
        "l1_and_ltf", points, [](const sweep::ParamPoint& p, Rng& rng) {
          if (p.get_string("predicate") == "dist_J(16,5) <= 1") {
            const comm::JohnsonMetric metric(16, 5);
            const comm::L1DistanceOneWayProtocol protocol(metric, 1, 0.35);
            Bitstring u = metric.random_vertex(rng);
            Bitstring close = u;
            int in_pos = -1, out_pos = -1;
            for (int i = 0; i < 16; ++i) {
              if (close.get(i) && in_pos < 0) in_pos = i;
              if (!close.get(i) && out_pos < 0) out_pos = i;
            }
            close.flip(in_pos);
            close.flip(out_pos);
            Bitstring far = metric.random_vertex(rng);
            while (metric.distance(u, far) <= 3) {
              far = metric.random_vertex(rng);
            }
            return sweep::Metrics()
                .set("yes_accept", protocol.honest_accept(u, close))
                .set("no_accept", protocol.honest_accept(u, far))
                .set("message_qubits", protocol.message_qubits());
          }
          const comm::LtfOneWayProtocol protocol({3, 2, 2, 1, 1, 1}, 3, 0.35);
          const Bitstring x = Bitstring::from_string("101010");
          const Bitstring close = Bitstring::from_string("101011");  // w 1
          const Bitstring far = Bitstring::from_string("010010");    // w 7
          return sweep::Metrics()
              .set("yes_accept", protocol.honest_accept(x, close))
              .set("no_accept", protocol.honest_accept(x, far))
              .set("message_qubits", protocol.message_qubits());
        });
    Table table({"predicate", "yes accept (honest)", "no accept (honest)",
                 "message qubits"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({points[i].get_string("predicate"),
                     Table::fmt(m.get_double("yes_accept")),
                     Table::fmt(m.get_double("no_accept")),
                     Table::fmt(m.get_int("message_qubits"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(f) Sec. 6.2 extensions: F_2-rank (Cor. 41)",
        "rank(X + Y) < r via shared-randomness sketching (substitution for\n"
        "[LZ13], DESIGN.md): one-sided completeness, cost k r^2 bits.");
    std::vector<sweep::ParamPoint> points;
    for (const auto& [n, r] : {std::pair{6, 3}, std::pair{10, 4}}) {
      points.push_back(sweep::ParamPoint().set("n", n).set("r", r));
    }
    const auto results = ctx.sweep(
        "f2_rank", points, [](const sweep::ParamPoint& p, Rng& rng) {
          const int n = static_cast<int>(p.get_int("n"));
          const int r = static_cast<int>(p.get_int("r"));
          const int k = comm::FqRankOneWayProtocol::recommended_sketches(0.02);
          const comm::FqRankOneWayProtocol protocol(n, r, k);
          const util::Gf2Matrix y = util::Gf2Matrix::random(n, n, rng);
          const util::Gf2Matrix low =
              y ^ util::Gf2Matrix::random_of_rank(n, r - 1, rng);
          double no_mean = 0.0;
          for (int trial = 0; trial < 10; ++trial) {
            const util::Gf2Matrix high =
                y ^
                util::Gf2Matrix::random_of_rank(n, std::min(n, r + 2), rng);
            no_mean +=
                protocol.honest_accept(high.to_bits(), y.to_bits()) / 10.0;
          }
          return sweep::Metrics()
              .set("yes_accept",
                   protocol.honest_accept(low.to_bits(), y.to_bits()))
              .set("no_accept_mean", no_mean)
              .set("message_bits", protocol.message_qubits());
        });
    Table table({"n", "r", "yes accept", "no accept (mean of 10)",
                 "message bits"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("n")),
                     Table::fmt(points[i].get_int("r")),
                     Table::fmt(m.get_double("yes_accept")),
                     Table::fmt(m.get_double("no_accept_mean")),
                     Table::fmt(m.get_int("message_bits"))});
    }
    table.print(out);
  }
}

}  // namespace

void register_table2_hamming() {
  sweep::register_experiment(
      {"table2_hamming",
       "Table 2, row 6 (Theorems 30/32: Hamming distance and forall_t f)",
       run});
}

}  // namespace dqma::bench

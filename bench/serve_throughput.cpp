// serve_throughput — drives the dqma_serve request engine (src/serve/)
// with a synthetic multi-workload request stream and records sustained
// requests/sec plus p50/p95/p99 response latency.
//
// Determinism split. Regular metrics hold only reproducible values: the
// request/ok counts, the shape-cache counters (single-flight, so misses ==
// distinct shapes at any thread count), and an FNV-1a checksum over the
// concatenated response bytes — equal across the threads axis by the serve
// determinism contract, and the JSON document pins it. The nondeterministic
// numbers (req/s, latency percentiles) ride exclusively in per-point
// wall_ms, which the writer emits only under --timings — so the default
// document stays byte-comparable across runs and hosts.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "serve/handlers.hpp"
#include "serve/server.hpp"
#include "sweep/registry.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using Clock = std::chrono::steady_clock;
using util::Table;

/// The i-th request line of the synthetic stream: cycles the three builtin
/// workloads over a handful of shapes, so the stream exercises both cache
/// misses (first visit of a shape) and hits (every revisit). Seeds are the
/// index — fixed across runs, so the response bytes are fixed too.
std::string request_line(int i) {
  const int shape = (i / 3) % 2;  // two shape variants per workload
  switch (i % 3) {
    case 0:
      return "{\"workload\":\"auction_gt\",\"id\":\"q" + std::to_string(i) +
             "\",\"seed\":" + std::to_string(i) +
             ",\"params\":{\"n\":16,\"r\":" + std::to_string(2 + shape) +
             ",\"reps\":8,\"bid\":" + std::to_string(50000 + i) +
             ",\"reserve\":48000}}";
    case 1:
      return "{\"workload\":\"config_drift\",\"id\":\"q" + std::to_string(i) +
             "\",\"seed\":" + std::to_string(i) +
             ",\"params\":{\"n\":16,\"d\":2,\"drift\":" +
             std::to_string(1 + 2 * shape) +
             ",\"r\":2,\"reps\":6,\"samples\":30}}";
    default:
      return "{\"workload\":\"replicated_data_audit\",\"id\":\"q" +
             std::to_string(i) + "\",\"seed\":" + std::to_string(i) +
             ",\"params\":{\"n\":48,\"nodes\":" + std::to_string(6 + 2 * shape) +
             ",\"replicas\":3,\"reps\":4,\"tamper_bits\":" +
             std::to_string(i % 2) + "}}";
  }
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();
  util::print_banner(
      out, "dqma_serve request engine throughput",
      "A fixed multi-workload request stream through serve::Server at 1\n"
      "thread vs the full --threads budget. Counts, cache counters and the\n"
      "response checksum are deterministic (and equal across the thread\n"
      "axis); req/s and latency percentiles ride in wall_ms (--timings).");

  serve::register_builtin_workloads();
  const int requests = ctx.smoke_select(96, 24);

  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    lines.push_back(request_line(i));
  }

  Table table({"threads", "requests", "ok", "cache miss", "req/s", "p50 ms",
               "p95 ms", "p99 ms"});
  // Hand-rolled serial loop (each point owns a whole Server with its own
  // pool), so the shard partition is hand-rolled too — mirroring the
  // parallel_kernels section of the micro experiment.
  for (const int threads_param : {1, 0}) {
    sweep::ParamPoint point;
    point.set("threads", threads_param).set("requests", requests);
    if (!ctx.owns_next_record("engine")) {
      ctx.skip_record("engine");
      for (int s = 0; s < 4; ++s) {
        ctx.skip_record("stats");
      }
      continue;
    }
    // threads 0 = the sweep pool's resolved --threads budget, so
    // `--threads 1` keeps even the "parallel" point serial.
    const int threads =
        threads_param == 0 ? ctx.pool().thread_count() : threads_param;

    serve::Server server(serve::ServerConfig{
        threads, static_cast<std::size_t>(requests) + 1});
    std::vector<std::string> responses(lines.size());
    std::vector<Clock::time_point> submitted(lines.size());
    std::vector<double> latency_ms(lines.size(), 0.0);

    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      submitted[i] = Clock::now();
      server.submit(lines[i], [&, i](std::string response) {
        // Dispatcher-thread write; drain()'s lock hand-off orders it
        // before the reads below.
        responses[i] = std::move(response);
        latency_ms[i] = std::chrono::duration<double, std::milli>(
                            Clock::now() - submitted[i])
                            .count();
      });
    }
    server.drain();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    const serve::ServerStats stats = server.stats();

    std::string all_bytes;
    for (const std::string& response : responses) {
      all_bytes += response;
      all_bytes += '\n';
    }
    const auto checksum =
        static_cast<long long>(sweep::fnv1a64(all_bytes));

    std::vector<double> sorted = latency_ms;
    std::sort(sorted.begin(), sorted.end());
    const double p50 = percentile(sorted, 0.50);
    const double p95 = percentile(sorted, 0.95);
    const double p99 = percentile(sorted, 0.99);
    const double req_per_s =
        wall_ms > 0.0 ? 1000.0 * static_cast<double>(requests) / wall_ms
                      : 0.0;

    // record_owned, not record: ownership of this point and its four
    // stats points below is decided once by the "engine" key check at
    // the top of the loop; the stats keys may hash to another shard,
    // which has already skip_record'd them.
    ctx.record_owned("engine", point,
               sweep::Metrics()
                   .set("ok", static_cast<long long>(stats.ok))
                   .set("failed", static_cast<long long>(stats.failed))
                   .set("overloaded",
                        static_cast<long long>(stats.overloaded))
                   .set("cache_misses",
                        static_cast<long long>(stats.cache.misses))
                   .set("cache_hits",
                        static_cast<long long>(stats.cache.hits))
                   .set("response_checksum", checksum),
               wall_ms);
    // One stats point per percentile/rate, the value carried in wall_ms
    // (nondeterministic => --timings only); `stat` names it.
    const std::pair<const char*, double> stat_points[] = {
        {"req_per_s", req_per_s}, {"p50_ms", p50}, {"p95_ms", p95},
        {"p99_ms", p99}};
    for (const auto& [stat, value] : stat_points) {
      sweep::ParamPoint stat_point;
      stat_point.set("threads", threads_param).set("stat", stat);
      ctx.record_owned("stats", stat_point,
                       sweep::Metrics().set("samples", requests), value);
    }

    table.add_row({Table::fmt(threads_param), Table::fmt(requests),
                   Table::fmt(static_cast<long long>(stats.ok)),
                   Table::fmt(static_cast<long long>(stats.cache.misses)),
                   Table::fmt(req_per_s, 1), Table::fmt(p50, 3),
                   Table::fmt(p95, 3), Table::fmt(p99, 3)});
  }
  table.print(out);
}

}  // namespace

void register_serve_throughput() {
  sweep::register_experiment(
      {"serve_throughput",
       "dqma_serve engine: requests/sec and latency percentiles "
       "(wall times via --timings)",
       run});
}

}  // namespace dqma::bench

// Failure injection: the EQ path protocol under depolarizing channel noise
// (dqma/noise.hpp). Not a paper table — an extension experiment quantifying
// how the paper's soundness-driven parameter choices trade off against
// channel noise in any conceivable deployment.
#include <iostream>

#include <vector>

#include "dqma/eq_path.hpp"
#include "dqma/noise.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/smoke.hpp"
#include "util/table.hpp"

using namespace dqma;
using protocol::EqPathProtocol;
using protocol::noise_threshold;
using protocol::noisy_attack_accept;
using protocol::noisy_completeness;
using util::Bitstring;
using util::Rng;
using util::Table;

int main() {
  Rng rng(55);
  std::cout << "Robustness extension: depolarizing noise on verifier "
               "channels\n";

  const int n = 16;

  {
    util::print_banner(
        std::cout, "(a) completeness and attacked soundness vs noise",
        "r = 4, k = 64 repetitions. Expected: completeness decays\n"
        "~(1 - p/2)^{rk}; the attack acceptance decays too (noise damps all\n"
        "test statistics); the verifier's gap closes from the completeness\n"
        "side.");
    Table table({"noise p", "completeness", "attack accept", "separated?"});
    const EqPathProtocol protocol(n, 4, 0.3, 64);
    const Bitstring x = Bitstring::random(n, rng);
    Bitstring y = Bitstring::random(n, rng);
    if (x == y) y.flip(0);
    for (const double p : {0.0, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2}) {
      const double c = noisy_completeness(protocol, x, p);
      const double s = noisy_attack_accept(protocol, x, y, p);
      table.add_row({Table::fmt(p), Table::fmt(c), Table::fmt(s),
                     (c >= 2.0 / 3.0 && s <= 1.0 / 3.0) ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "(b) noise threshold vs path length",
        "Largest per-channel noise keeping completeness >= 2/3 and attack\n"
        "accept <= 1/3, at the minimal repetition count k that separates\n"
        "noiselessly (k = 4r) and at the paper's k = ceil(81 r^2 / 2).\n"
        "Expected: threshold ~ 1/(r k), so the conservative k costs ~r^2 in\n"
        "noise tolerance.");
    Table table({"r", "threshold @ k = 4r", "threshold @ paper k"});
    const auto radii =
        util::smoke_select(std::vector<int>{2, 4, 6, 8}, {2, 4});
    for (int r : radii) {
      const Bitstring x = Bitstring::random(n, rng);
      Bitstring y = Bitstring::random(n, rng);
      if (x == y) y.flip(0);
      const EqPathProtocol lean(n, r, 0.3, 4 * r);
      const EqPathProtocol paper(n, r, 0.3, EqPathProtocol::paper_reps(r));
      table.add_row({Table::fmt(r),
                     Table::fmt(noise_threshold(lean, x, y, 1e-6)),
                     Table::fmt(noise_threshold(paper, x, y, 1e-7))});
    }
    table.print(std::cout);
  }
  return 0;
}

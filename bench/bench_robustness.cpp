// Failure injection: the EQ path protocol under depolarizing channel noise
// (dqma/noise.hpp). Not a paper table — an extension experiment quantifying
// how the paper's soundness-driven parameter choices trade off against
// channel noise in any conceivable deployment. Both sections are chain-DP
// heavy and run as parallel sweep jobs.
#include <cstdint>
#include <vector>

#include "dqma/eq_path.hpp"
#include "dqma/noise.hpp"
#include "experiments.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using protocol::EqPathProtocol;
using protocol::NoiseModel;
using protocol::noise_threshold;
using protocol::noisy_attack_accept;
using protocol::noisy_completeness;
using util::Bitstring;
using util::Rng;
using util::Table;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();
  const int n = 16;

  {
    util::print_banner(
        out, "(a) completeness and attacked soundness vs noise",
        "r = 4, k = 64 repetitions. Expected: completeness decays\n"
        "~(1 - p/2)^{rk}; the attack acceptance decays too (noise damps all\n"
        "test statistics); the verifier's gap closes from the completeness\n"
        "side.");
    sweep::ParamGrid grid;
    grid.axis("noise",
              ctx.smoke_select(
                  std::vector<double>{0.0, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2},
                  {0.0, 1e-3, 1e-2}));
    const auto points = grid.enumerate();
    // One fixed (x, y) across all noise levels: the table reads as a decay
    // curve in p, so the instance must not vary along the axis.
    const std::uint64_t gap_input_seed = util::derive_seed(
        ctx.base_seed(), sweep::fnv1a64("gap_vs_noise/inputs"));
    const auto results = ctx.sweep(
        "gap_vs_noise", points,
        [n, gap_input_seed](const sweep::ParamPoint& point, Rng&) {
          const double p = point.get_double("noise");
          const EqPathProtocol protocol(n, 4, 0.3, 64);
          Rng input_rng(gap_input_seed);
          const Bitstring x = Bitstring::random(n, input_rng);
          Bitstring y = Bitstring::random(n, input_rng);
          if (x == y) y.flip(0);
          const NoiseModel noise = NoiseModel::uniform(p);
          const double c = noisy_completeness(protocol, x, noise);
          const double s = noisy_attack_accept(protocol, x, y, noise);
          return sweep::Metrics()
              .set("completeness", c)
              .set("attack_accept", s)
              .set("separated", c >= 2.0 / 3.0 && s <= 1.0 / 3.0);
        });
    Table table({"noise p", "completeness", "attack accept", "separated?"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      table.add_row(
          {Table::fmt(points[i].get_double("noise")),
           Table::fmt(results[i].metrics.get_double("completeness")),
           Table::fmt(results[i].metrics.get_double("attack_accept")),
           results[i].metrics.get_bool("separated") ? "yes" : "NO"});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "(b) noise threshold vs path length",
        "Largest per-channel noise keeping completeness >= 2/3 and attack\n"
        "accept <= 1/3, at the minimal repetition count k that separates\n"
        "noiselessly (k = 4r) and at the paper's k = ceil(81 r^2 / 2).\n"
        "Expected: threshold ~ 1/(r k), so the conservative k costs ~r^2 in\n"
        "noise tolerance.");
    // The two threshold searches per r (each a bisection over full
    // protocol evaluations) are independent chain-DP workloads, so they
    // run as separate parallel jobs sharing one config-indexed input pair.
    const auto radii =
        ctx.smoke_select(std::vector<int>{2, 4, 6, 8}, {2, 4});
    sweep::ParamGrid grid;
    grid.axis("r", radii);
    grid.axis("k_mode", std::vector<std::string>{"lean", "paper"});
    const auto points = grid.enumerate();
    const std::uint64_t input_seed = util::derive_seed(
        ctx.base_seed(), sweep::fnv1a64("threshold_vs_r/inputs"));
    const auto results = ctx.sweep(
        "threshold_vs_r", points,
        [n, input_seed](const sweep::ParamPoint& point, Rng&) {
          const int r = static_cast<int>(point.get_int("r"));
          Rng input_rng(
              util::derive_seed(input_seed, static_cast<std::uint64_t>(r)));
          const Bitstring x = Bitstring::random(n, input_rng);
          Bitstring y = Bitstring::random(n, input_rng);
          if (x == y) y.flip(0);
          double threshold = 0.0;
          if (point.get_string("k_mode") == "lean") {
            const EqPathProtocol lean(n, r, 0.3, 4 * r);
            threshold = noise_threshold(lean, x, y, 1e-6);
          } else {
            const EqPathProtocol paper(n, r, 0.3,
                                       EqPathProtocol::paper_reps(r));
            threshold = noise_threshold(paper, x, y, 1e-7);
          }
          return sweep::Metrics().set("threshold", threshold);
        });
    Table table({"r", "threshold @ k = 4r", "threshold @ paper k"});
    for (std::size_t i = 0; i < points.size(); i += 2) {
      // Points alternate lean/paper within each r (k_mode is the fast
      // axis of the grid). A row needs both, so it renders only where
      // both points are local to this shard.
      if (results[i].skipped || results[i + 1].skipped) continue;
      table.add_row(
          {Table::fmt(points[i].get_int("r")),
           Table::fmt(results[i].metrics.get_double("threshold")),
           Table::fmt(results[i + 1].metrics.get_double("threshold"))});
    }
    table.print(out);
  }
}

}  // namespace

void register_robustness() {
  sweep::register_experiment(
      {"robustness",
       "Extension: EQ path protocol under depolarizing channel noise", run});
}

}  // namespace dqma::bench

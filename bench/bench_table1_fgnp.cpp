// Table 1 of the paper — the FGNP21 baseline results that this paper
// improves on:
//   * quantum dQMA for EQ with t terminals: local proof O(t r^2 log n)
//     (random-pair SWAP tests) — compared against this paper's
//     O(r^2 log n) (permutation test);
//   * quantum dQMA for any f with a one-way protocol (2 terminals, paths);
//   * classical dMA for EQ: Omega(n / nu) local proof (verified by the
//     collision attack when the budget is below n).
//
// Shape to check: the FGNP local proof grows with t, ours does not; the
// per-repetition soundness of FGNP probabilistic forwarding is weaker than
// the symmetrized protocol's; classical protocols below the bit budget are
// broken outright.
#include <iostream>

#include "dma/attacks.hpp"
#include "dma/dma_protocols.hpp"
#include "dqma/attacks.hpp"
#include "dqma/eq_graph.hpp"
#include "dqma/eq_path.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dqma;
using protocol::EqGraphProtocol;
using protocol::EqPathMode;
using protocol::EqPathProtocol;
using protocol::GraphTestMode;
using util::Bitstring;
using util::Rng;
using util::Table;

int main() {
  Rng rng(20240321);
  std::cout << "Reproduction of Table 1 [FGNP21 baselines] "
            << "(arXiv:2403.14108)\n";

  {
    util::print_banner(
        std::cout, "Table 1, row 1 (quantum, EQ, t terminals)",
        "FGNP21 random-pair SWAP testing needs local proofs growing with t;\n"
        "the permutation test (this paper, Sec. 3) does not. Star networks,\n"
        "n = 32, single repetition; soundness = acceptance of the best\n"
        "product attack (lower is better).");
    Table table({"t", "FGNP per-rep soundness err", "ours per-rep soundness err",
                 "FGNP local proof/rep (qubits)", "ours local proof/rep"});
    const int n = 32;
    for (int t : {2, 3, 4, 5, 6, 7}) {
      const network::Graph g = network::Graph::star(t);
      std::vector<int> terminals;
      for (int i = 1; i <= t; ++i) terminals.push_back(i);
      const EqGraphProtocol fgnp(g, terminals, n, 0.3, 1,
                                 GraphTestMode::kRandomPairSwap);
      const EqGraphProtocol ours(g, terminals, n, 0.3, 1,
                                 GraphTestMode::kPermutationTest);
      const Bitstring x = Bitstring::random(n, rng);
      std::vector<Bitstring> inputs(static_cast<std::size_t>(t), x);
      inputs.back() = Bitstring::random(n, rng);
      if (inputs.back() == x) inputs.back().flip(0);
      const double fgnp_err = 1.0 - fgnp.best_attack_accept(inputs);
      const double ours_err = 1.0 - ours.best_attack_accept(inputs);
      // FGNP-style analysis needs O(t r^2) repetitions; report the per-rep
      // proof sizes scaled by the repetition counts the respective analyses
      // prescribe: t * 81r^2/2-ish vs 81r^2/2-ish. Here r = 2 on a star.
      const long long q = fgnp.costs().local_proof_qubits;
      table.add_row({Table::fmt(t), Table::fmt(fgnp_err), Table::fmt(ours_err),
                     Table::fmt(static_cast<long long>(q * t)),
                     Table::fmt(ours.costs().local_proof_qubits)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: detection probability of the permutation\n"
                 "test exceeds the random-pair baseline as t grows, so the\n"
                 "baseline needs ~t x more repetitions (factor t in Table 1).\n";
  }

  {
    util::print_banner(
        std::cout, "Table 1, row 1' (paths: probabilistic forwarding)",
        "FGNP21 forwarding on a path vs this paper's symmetrization, single\n"
        "repetition, rotation attack; n = 24.");
    Table table({"r", "FGNP per-rep soundness err", "ours per-rep soundness err"});
    const int n = 24;
    for (int r : {2, 4, 6, 8, 10}) {
      const EqPathProtocol fgnp(n, r, 0.3, 1, EqPathMode::kFgnpForwarding);
      const EqPathProtocol ours(n, r, 0.3, 1, EqPathMode::kSymmetrized);
      const Bitstring x = Bitstring::random(n, rng);
      Bitstring y = Bitstring::random(n, rng);
      if (x == y) y.flip(0);
      const auto hx = ours.scheme().state(x);
      const auto hy = ours.scheme().state(y);
      const auto attack = protocol::rotation_attack(hx, hy, r - 1);
      table.add_row({Table::fmt(r),
                     Table::fmt(1.0 - fgnp.single_rep_accept(x, y, attack)),
                     Table::fmt(1.0 - ours.single_rep_accept(x, y, attack))});
    }
    table.print(std::cout);
  }

  {
    util::print_banner(
        std::cout, "Table 1, row 3 (classical dMA, EQ: Omega(n/nu) local proof)",
        "Budgeted classical protocols on a path (r = 5, n = 14): below n\n"
        "bits per node the collision attack achieves soundness error 1;\n"
        "at the trivial n-bit proof the protocol is sound.");
    Table table({"proof bits/node", "soundness error (attacked)", "sound?"});
    const int n = 14;
    for (int bits : {4, 7, 10, 14, 28, 48}) {
      const dma::HashDmaEq protocol(n, 5, bits);
      const double err = dma::collision_attack_soundness_error(protocol, 0, rng);
      table.add_row({Table::fmt(bits), Table::fmt(err),
                     err == 0.0 ? "yes" : "BROKEN"});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: broken strictly below ~n bits, sound at\n"
                 "and above (the Omega(n) per-window bound of [FGNP21]).\n";
  }
  return 0;
}

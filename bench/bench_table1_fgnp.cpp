// Table 1 of the paper — the FGNP21 baseline results that this paper
// improves on:
//   * quantum dQMA for EQ with t terminals: local proof O(t r^2 log n)
//     (random-pair SWAP tests) — compared against this paper's
//     O(r^2 log n) (permutation test);
//   * quantum dQMA for any f with a one-way protocol (2 terminals, paths);
//   * classical dMA for EQ: Omega(n / nu) local proof (verified by the
//     collision attack when the budget is below n).
//
// Shape to check: the FGNP local proof grows with t, ours does not; the
// per-repetition soundness of FGNP probabilistic forwarding is weaker than
// the symmetrized protocol's; classical protocols below the bit budget are
// broken outright.
#include <vector>

#include "dma/attacks.hpp"
#include "dma/dma_protocols.hpp"
#include "dqma/attacks.hpp"
#include "dqma/eq_graph.hpp"
#include "dqma/eq_path.hpp"
#include "experiments.hpp"
#include "network/graph.hpp"
#include "sweep/registry.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dqma::bench {
namespace {

using protocol::EqGraphProtocol;
using protocol::EqPathMode;
using protocol::EqPathProtocol;
using protocol::GraphTestMode;
using util::Bitstring;
using util::Rng;
using util::Table;

void run(sweep::ExperimentContext& ctx) {
  std::ostream& out = ctx.out();

  {
    util::print_banner(
        out, "Table 1, row 1 (quantum, EQ, t terminals)",
        "FGNP21 random-pair SWAP testing needs local proofs growing with t;\n"
        "the permutation test (this paper, Sec. 3) does not. Star networks,\n"
        "n = 32, single repetition; soundness = acceptance of the best\n"
        "product attack (lower is better).");
    const int n = 32;
    sweep::ParamGrid grid;
    grid.axis("t", ctx.smoke_select(std::vector<int>{2, 3, 4, 5, 6, 7},
                                    {2, 3, 4}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "stars_fgnp_vs_ours", points,
        [n](const sweep::ParamPoint& p, Rng& rng) {
          const int t = static_cast<int>(p.get_int("t"));
          const network::Graph g = network::Graph::star(t);
          std::vector<int> terminals;
          for (int i = 1; i <= t; ++i) terminals.push_back(i);
          const EqGraphProtocol fgnp(g, terminals, n, 0.3, 1,
                                     GraphTestMode::kRandomPairSwap);
          const EqGraphProtocol ours(g, terminals, n, 0.3, 1,
                                     GraphTestMode::kPermutationTest);
          const Bitstring x = Bitstring::random(n, rng);
          std::vector<Bitstring> inputs(static_cast<std::size_t>(t), x);
          inputs.back() = Bitstring::random(n, rng);
          if (inputs.back() == x) inputs.back().flip(0);
          // FGNP-style analysis needs O(t r^2) repetitions; report the
          // per-rep proof sizes scaled by the repetition counts the
          // respective analyses prescribe: t * 81r^2/2-ish vs 81r^2/2-ish.
          // Here r = 2 on a star.
          const long long q = fgnp.costs().local_proof_qubits;
          return sweep::Metrics()
              .set("fgnp_soundness_err", 1.0 - fgnp.best_attack_accept(inputs))
              .set("ours_soundness_err", 1.0 - ours.best_attack_accept(inputs))
              .set("fgnp_local_proof_qubits", q * t)
              .set("ours_local_proof_qubits",
                   ours.costs().local_proof_qubits);
        });
    Table table({"t", "FGNP per-rep soundness err", "ours per-rep soundness err",
                 "FGNP local proof/rep (qubits)", "ours local proof/rep"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;  // owned by another --shard
      const auto& m = results[i].metrics;
      table.add_row({Table::fmt(points[i].get_int("t")),
                     Table::fmt(m.get_double("fgnp_soundness_err")),
                     Table::fmt(m.get_double("ours_soundness_err")),
                     Table::fmt(m.get_int("fgnp_local_proof_qubits")),
                     Table::fmt(m.get_int("ours_local_proof_qubits"))});
    }
    table.print(out);
    out << "\nExpected shape: detection probability of the permutation\n"
           "test exceeds the random-pair baseline as t grows, so the\n"
           "baseline needs ~t x more repetitions (factor t in Table 1).\n";
  }

  {
    util::print_banner(
        out, "Table 1, row 1' (paths: probabilistic forwarding)",
        "FGNP21 forwarding on a path vs this paper's symmetrization, single\n"
        "repetition, rotation attack; n = 24.");
    const int n = 24;
    sweep::ParamGrid grid;
    grid.axis("r", ctx.smoke_select(std::vector<int>{2, 4, 6, 8, 10},
                                    {2, 4}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "paths_forwarding_vs_symmetrized", points,
        [n](const sweep::ParamPoint& p, Rng& rng) {
          const int r = static_cast<int>(p.get_int("r"));
          const EqPathProtocol fgnp(n, r, 0.3, 1, EqPathMode::kFgnpForwarding);
          const EqPathProtocol ours(n, r, 0.3, 1, EqPathMode::kSymmetrized);
          const Bitstring x = Bitstring::random(n, rng);
          Bitstring y = Bitstring::random(n, rng);
          if (x == y) y.flip(0);
          const auto hx = ours.scheme().state(x);
          const auto hy = ours.scheme().state(y);
          const auto attack = protocol::rotation_attack(hx, hy, r - 1);
          return sweep::Metrics()
              .set("fgnp_soundness_err",
                   1.0 - fgnp.single_rep_accept(x, y, attack))
              .set("ours_soundness_err",
                   1.0 - ours.single_rep_accept(x, y, attack));
        });
    Table table(
        {"r", "FGNP per-rep soundness err", "ours per-rep soundness err"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      table.add_row(
          {Table::fmt(points[i].get_int("r")),
           Table::fmt(results[i].metrics.get_double("fgnp_soundness_err")),
           Table::fmt(results[i].metrics.get_double("ours_soundness_err"))});
    }
    table.print(out);
  }

  {
    util::print_banner(
        out, "Table 1, row 3 (classical dMA, EQ: Omega(n/nu) local proof)",
        "Budgeted classical protocols on a path (r = 5, n = 14): below n\n"
        "bits per node the collision attack achieves soundness error 1;\n"
        "at the trivial n-bit proof the protocol is sound.");
    const int n = 14;
    sweep::ParamGrid grid;
    grid.axis("bits", ctx.smoke_select(std::vector<int>{4, 7, 10, 14, 28, 48},
                                       {4, 14}));
    const auto points = grid.enumerate();
    const auto results = ctx.sweep(
        "classical_collision_attack", points,
        [n](const sweep::ParamPoint& p, Rng& rng) {
          const dma::HashDmaEq protocol(n, 5,
                                        static_cast<int>(p.get_int("bits")));
          const double err =
              dma::collision_attack_soundness_error(protocol, 0, rng);
          return sweep::Metrics()
              .set("soundness_error", err)
              .set("sound", err == 0.0);
        });
    Table table({"proof bits/node", "soundness error (attacked)", "sound?"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i].skipped) continue;
      table.add_row(
          {Table::fmt(points[i].get_int("bits")),
           Table::fmt(results[i].metrics.get_double("soundness_error")),
           results[i].metrics.get_bool("sound") ? "yes" : "BROKEN"});
    }
    table.print(out);
    out << "\nExpected shape: broken strictly below ~n bits, sound at\n"
           "and above (the Omega(n) per-window bound of [FGNP21]).\n";
  }
}

}  // namespace

void register_table1_fgnp() {
  sweep::register_experiment(
      {"table1_fgnp", "Table 1 [FGNP21 baselines] (arXiv:2403.14108)", run});
}

}  // namespace dqma::bench

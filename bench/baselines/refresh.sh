#!/bin/sh
# Intentionally refresh the committed smoke baseline after an accepted
# metric change (then commit the diff and say why in the message). Usage:
#   bench/baselines/refresh.sh [path/to/dqma_bench]
exec "${1:-build/bench/dqma_bench}" --experiment all --smoke --json "$(dirname "$0")/smoke.json"

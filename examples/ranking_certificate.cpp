// Ranking certificate — the RV problem (Definition 9 / Theorem 29).
//
// Nodes in a sensor network each hold a priority value; a coordinator
// claims that a particular node has the k-th highest priority (e.g. to
// justify a leader election or a failover order). The ranking-verification
// protocol lets every node check the claim with O(t r^2 log n)-qubit
// proofs instead of shipping all values around.
#include <iostream>

#include "dqma/rv.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"

#include "example_harness.hpp"

int example_main() {
  using dqma::network::Graph;
  using dqma::protocol::RvProtocol;
  using dqma::protocol::rv_predicate;
  using dqma::util::Bitstring;

  const int n = 16;  // priority width in bits
  // 5 sensors on a star network (hub = node 0).
  const Graph network = Graph::star(5);
  const std::vector<int> sensors{1, 2, 3, 4, 5};
  const std::vector<std::uint64_t> priorities{900, 1200, 350, 1200 - 1, 77};
  std::vector<Bitstring> inputs;
  inputs.reserve(priorities.size());
  for (const auto p : priorities) {
    inputs.push_back(Bitstring::from_integer(p, n));
  }

  std::cout << "Priorities: ";
  for (const auto p : priorities) std::cout << p << " ";
  std::cout << "\n\n";

  const int reps = 2 * 81 * 4;  // paths of length <= 2 in this tree

  // True claim: sensor 1 (priority 1200) has rank 1.
  {
    const RvProtocol rv(network, sensors, /*i=*/1, /*rank=*/1, n, 0.3, reps);
    std::cout << "claim: sensor[1] (1200) is rank 1 -> predicate "
              << rv_predicate(inputs, 1, 1) << ", Pr[all accept] = "
              << rv.completeness(inputs) << "\n";
  }
  // True claim: sensor 0 (priority 900) has rank 3.
  {
    const RvProtocol rv(network, sensors, 0, 3, n, 0.3, reps);
    std::cout << "claim: sensor[0] (900)  is rank 3 -> predicate "
              << rv_predicate(inputs, 0, 3) << ", Pr[all accept] = "
              << rv.completeness(inputs) << "\n";
  }
  // False claim: sensor 0 has rank 1. The coordinator must lie about a
  // comparison and cheat a greater-than sub-protocol.
  {
    const RvProtocol rv(network, sensors, 0, 1, n, 0.3, reps);
    std::cout << "claim: sensor[0] (900)  is rank 1 -> predicate "
              << rv_predicate(inputs, 0, 1) << ", Pr[all accept] <= "
              << rv.best_attack_accept(inputs) << "  (target <= 1/3)\n";
  }
  return 0;
}

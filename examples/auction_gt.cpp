// Sealed-bid comparison — the greater-than protocol (Theorem 26 /
// Algorithm 7).
//
// A bidder at one end of a relay chain holds a sealed bid x; the
// auctioneer at the other end holds the reserve price y. An untrusted
// broker (the prover) convinces every relay that x > y WITHOUT the chain
// learning either value: the proof is an index and O(log n)-qubit prefix
// fingerprints, not the bid itself.
#include <iostream>

#include "dqma/gt.hpp"
#include "util/bitstring.hpp"

#include "example_harness.hpp"

int example_main() {
  using dqma::protocol::GtProtocol;
  using dqma::protocol::GtVariant;
  using dqma::util::Bitstring;

  const int n = 32;  // bids are 32-bit integers
  const int r = 4;   // relays between bidder and auctioneer
  const GtProtocol gt(n, r, 0.3, GtProtocol::paper_reps(r),
                      GtVariant::kGreater);

  const auto bid = Bitstring::from_integer(1'250'000, n);
  const auto reserve = Bitstring::from_integer(1'000'000, n);

  std::cout << "bid = 1250000, reserve = 1000000, path length " << r << "\n";
  std::cout << "proof per relay: " << gt.costs().local_proof_qubits
            << " qubits (the bid itself is " << n << " bits)\n\n";

  std::cout << "honest broker, bid > reserve:  Pr[all accept] = "
            << gt.completeness(bid, reserve) << "\n";

  // A broker trying to push through a losing bid.
  const auto low_bid = Bitstring::from_integer(900'000, n);
  std::cout << "cheating broker, bid < reserve: Pr[all accept] <= "
            << gt.best_attack_accept(low_bid, reserve)
            << "  (target <= 1/3)\n";
  return 0;
}

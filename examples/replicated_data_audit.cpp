// Replicated-data audit — the paper's motivating scenario (and the title
// of [FGNP21]: "Distributed Quantum Proofs for Replicated Data").
//
// A datacenter network holds replicas of a configuration blob at several
// sites. An untrusted coordinator (the prover) wants to convince every
// switch and site that all replicas are identical, with proofs
// exponentially smaller than the blob. We run the general-graph EQ
// protocol (Theorem 19 / Algorithm 5) on a random tree topology, then
// tamper with one replica and watch the audit fail.
#include <iostream>

#include "dqma/eq_graph.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

#include "example_harness.hpp"

int example_main() {
  using dqma::network::Graph;
  using dqma::protocol::EqGraphProtocol;
  using dqma::util::Bitstring;

  dqma::util::Rng rng(2024);
  const int n = 256;  // replica size in bits
  const int sites = 4;

  // A 12-node network; replicas live at nodes 0, 3, 7, 11.
  const Graph network = Graph::random_tree(12, rng);
  const std::vector<int> replicas{0, 3, 7, 11};

  const int reps = 2 * 81 * 9;  // soundness 1/3 for radius ~3 trees
  const EqGraphProtocol audit(network, replicas, n, 0.3, reps);

  std::cout << "Network: random tree on 12 nodes, replicas at 4 sites\n";
  std::cout << "Verification tree depth: " << audit.tree().depth() << "\n";
  std::cout << "Replica size: " << n << " bits; local proof per node: "
            << audit.costs().local_proof_qubits << " qubits\n\n";

  const Bitstring blob = Bitstring::random(n, rng);

  std::cout << "all " << sites << " replicas identical:  Pr[audit passes] = "
            << audit.completeness(blob) << "\n";

  // Tamper with one replica (a single flipped bit!) and let the
  // coordinator cheat as well as it can.
  std::vector<Bitstring> tampered(replicas.size(), blob);
  tampered[2].flip(200);
  std::cout << "one replica tampered (1 bit):  Pr[audit passes] <= "
            << audit.best_attack_accept(tampered) << "\n";
  std::cout << "\nA single flipped bit in a " << n
            << "-bit replica is caught with probability >= 2/3, using\n"
            << "proofs logarithmic in the replica size.\n";
  return 0;
}

// Configuration drift tolerance — the Hamming-distance predicate on a
// general network (Theorem 30 / Algorithm 9).
//
// Sites in a fleet each hold a feature-flag vector that is ALLOWED to
// drift by up to d flags from every other site (canaries, staged
// rollouts). A coordinator proves "pairwise drift <= d" to the whole
// network; if two sites have diverged too far, some node rejects.
#include <iostream>

#include "dqma/hamming.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

#include "example_harness.hpp"

int example_main() {
  using dqma::network::Graph;
  using dqma::protocol::HammingGraphProtocol;
  using dqma::util::Bitstring;

  dqma::util::Rng rng(99);
  const int n = 32;  // feature flags per site
  const int d = 2;   // allowed drift

  const Graph network = Graph::path(2);  // three sites in a row
  const std::vector<int> sites{0, 2};

  HammingGraphProtocol checker(network, sites, n, d, 0.35, 40);

  const Bitstring golden = Bitstring::random(n, rng);
  {
    // Within tolerance: one site drifts by 2 flags.
    const std::vector<Bitstring> inputs{
        golden, Bitstring::random_at_distance(golden, 2, rng)};
    std::cout << "drift = 2 (<= d = " << d << "):  predicate "
              << checker.predicate(inputs) << ", Pr[all accept] = "
              << checker.completeness(inputs) << "\n";
  }
  {
    // Out of tolerance: a site has diverged by 8 flags.
    const std::vector<Bitstring> inputs{
        golden, Bitstring::random_at_distance(golden, 8, rng)};
    const auto est = checker.best_attack_accept(inputs, rng, 200);
    std::cout << "drift = 8 (>  d = " << d << "):  predicate "
              << checker.predicate(inputs) << ", Pr[all accept] ~ "
              << est.mean << " (+/- " << est.half_width_95
              << ", target <= 1/3)\n";
  }
  std::cout << "\nProof cost: " << checker.costs().local_proof_qubits
            << " qubits per node (message cost "
            << checker.costs().local_message_qubits << ")\n";
  return 0;
}

// Delegated subspace verification — the QMA-communication pipeline
// (Lemma 45 / Theorem 42 / Algorithm 10).
//
// Two services at the ends of a relay chain each hold a linear subspace of
// a feature space (say, learned model subspaces). An untrusted aggregator
// claims the subspaces (nearly) intersect — the LSD problem. With a
// quantum proof (a unit vector in the claimed intersection) relayed down
// the chain, every relay verifies the claim with O(log m)-qubit messages.
#include <iostream>

#include "comm/lsd.hpp"
#include "dqma/from_qma_cc.hpp"
#include "util/rng.hpp"

#include "example_harness.hpp"

int example_main() {
  using dqma::comm::lsd_qma_instance;
  using dqma::comm::LsdInstance;
  using dqma::protocol::QmaCcPathProtocol;

  dqma::util::Rng rng(1234);
  const int m = 64;  // ambient feature dimension
  const int k = 4;   // subspace dimension
  const int r = 4;   // relays between the two services

  std::cout << "Feature space R^" << m << ", subspaces of dimension " << k
            << ", path length " << r << "\n\n";

  // Close subspaces (the aggregator's claim is true).
  {
    const auto lsd = LsdInstance::close_pair(m, k, /*angle=*/0.05, rng);
    const auto qma = lsd_qma_instance(lsd);
    const QmaCcPathProtocol protocol(qma, r, 1);
    std::cout << "Delta(V1, V2) = " << lsd.distance()
              << " (close):  Pr[all accept] = " << protocol.completeness()
              << "\n";
    std::cout << "  per-relay proof: " << protocol.costs().local_proof_qubits
              << " qubits (the subspaces are " << m * k
              << " reals each)\n";
  }
  // Far subspaces: no proof helps.
  {
    const auto lsd = LsdInstance::far_pair(m, k, rng);
    const auto qma = lsd_qma_instance(lsd);
    const QmaCcPathProtocol protocol(qma, r, 20);
    std::cout << "Delta(V1, V2) = " << lsd.distance()
              << " (far):    Pr[all accept] <= "
              << protocol.best_attack_accept() << "  (target <= 1/3)\n";
  }
  return 0;
}

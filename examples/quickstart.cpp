// Quickstart: verify that two endpoints of a 5-hop path hold the same
// 64-bit string, using the paper's EQ protocol (Algorithm 3/4), then watch
// a cheating prover fail.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "dqma/eq_path.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

#include "example_harness.hpp"

int example_main() {
  using dqma::protocol::EqPathProtocol;
  using dqma::util::Bitstring;

  dqma::util::Rng rng(7);
  const int n = 64;  // input bits at each endpoint
  const int r = 5;   // path length (4 intermediate verifier nodes)

  // The paper's parameters: fingerprint overlap delta = 0.3 and
  // k = ceil(81 r^2 / 2) parallel repetitions for soundness error <= 1/3.
  const EqPathProtocol protocol(n, r, 0.3, EqPathProtocol::paper_reps(r));

  const Bitstring x = Bitstring::random(n, rng);
  std::cout << "Network: path v_0 .. v_" << r << ", inputs of " << n
            << " bits\n";
  std::cout << "Fingerprint register: " << protocol.scheme().qubits()
            << " qubits per repetition (grows as log n, vs n bits for the\n"
            << "trivial classical certificate); " << protocol.reps()
            << " repetitions for soundness 1/3 -> "
            << protocol.costs().local_proof_qubits
            << " qubits of local proof.\n\n";

  // Honest world: both ends hold x; the prover distributes fingerprints.
  std::cout << "honest prover, equal inputs:    Pr[all accept] = "
            << protocol.completeness(x) << "\n";

  // Adversarial world: the right end holds a different string, and the
  // prover plays its strongest product strategy.
  Bitstring y = x;
  y.flip(17);
  std::cout << "cheating prover, unequal inputs: Pr[all accept] <= "
            << protocol.best_attack_accept(x, y) << "  (target: <= 1/3)\n";
  return 0;
}

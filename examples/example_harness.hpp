// Shared main() for every examples/ binary.
//
// The library reports misuse by throwing (util::require); before this
// harness each example let exceptions escape main(), so a failing example
// died in std::terminate with no message and CI's example-label jobs
// printed nothing useful. Each example now defines example_main() and the
// harness catches, prints what(), and exits nonzero so CTest still fails.
#pragma once

#include <exception>
#include <iostream>

/// The example body, defined by the including .cpp (its former main()).
int example_main();

int main() {
  try {
    return example_main();
  } catch (const std::exception& error) {
    std::cerr << "example failed: " << error.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "example failed: unknown exception\n";
    return 1;
  }
}

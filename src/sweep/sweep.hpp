// The sweep job model: named parameter/metric values, Cartesian parameter
// grids, and the parallel executor that fans a grid out across a
// ThreadPool with deterministic per-job RNG seeding.
//
// Determinism contract (the reason this layer exists): job i of a sweep
// draws from Rng(util::derive_seed(base_seed, i)) and writes its result
// into slot i of the output vector. Neither the thread count nor the
// scheduling order can influence any recorded value, so `--threads 1` and
// `--threads 8` produce byte-identical JSON.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "sweep/thread_pool.hpp"
#include "util/rng.hpp"

namespace dqma::sweep {

/// A single parameter or metric value. long long before double so integer
/// literals pick the integral alternative.
using Value = std::variant<bool, long long, double, std::string>;

/// Deterministic text form (JSON-compatible): booleans as true/false,
/// integers in decimal, doubles via shortest round-trip (std::to_chars),
/// strings verbatim (NOT quoted/escaped — json.hpp handles that).
std::string value_to_string(const Value& value);

/// An ordered list of named values; the order is insertion order and is
/// preserved through JSON serialization (stable bytes across runs).
/// Used both for parameter points and for per-job metric sets.
class NamedValues {
 public:
  NamedValues& set(std::string name, Value value);
  NamedValues& set(std::string name, bool value);
  NamedValues& set(std::string name, int value);
  NamedValues& set(std::string name, long long value);
  NamedValues& set(std::string name, double value);
  NamedValues& set(std::string name, const char* value);
  NamedValues& set(std::string name, std::string value);

  /// nullptr when absent.
  const Value* find(std::string_view name) const;

  /// Typed accessors; require() the name to exist with the exact type.
  bool get_bool(std::string_view name) const;
  long long get_int(std::string_view name) const;
  double get_double(std::string_view name) const;
  const std::string& get_string(std::string_view name) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<std::pair<std::string, Value>>& entries() const {
    return entries_;
  }

  bool operator==(const NamedValues& other) const = default;

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

/// One point of a parameter grid.
using ParamPoint = NamedValues;
/// One job's recorded metrics.
using Metrics = NamedValues;

/// A Cartesian product of named axes, enumerated row-major with the FIRST
/// axis slowest — i.e. axis("n", ...).axis("r", ...) yields (n0,r0),
/// (n0,r1), ..., (n1,r0), ... matching the nesting order of the serial
/// loops the benches used to write.
class ParamGrid {
 public:
  ParamGrid& axis(std::string name, std::vector<Value> values);
  ParamGrid& axis(std::string name, std::vector<int> values);
  ParamGrid& axis(std::string name, std::vector<long long> values);
  ParamGrid& axis(std::string name, std::vector<double> values);
  ParamGrid& axis(std::string name, std::vector<std::string> values);

  std::size_t size() const;
  std::vector<ParamPoint> enumerate() const;

 private:
  std::vector<std::pair<std::string, std::vector<Value>>> axes_;
};

/// Result of one sweep job. wall_ms is the only nondeterministic field and
/// is excluded from JSON unless timings are explicitly requested. skipped
/// marks a job another shard owns (--shard): its metrics are empty and
/// table-rendering loops must not read them.
struct JobResult {
  Metrics metrics;
  double wall_ms = 0.0;
  bool skipped = false;
};

using JobFn = std::function<Metrics(const ParamPoint&, util::Rng&)>;

/// Runs one job per point on the pool. Job i receives points[i] and a
/// private Rng(derive_seed(base_seed, i)); results come back in point
/// order. Exceptions from jobs propagate (first one wins).
std::vector<JobResult> run_sweep(ThreadPool& pool,
                                 const std::vector<ParamPoint>& points,
                                 std::uint64_t base_seed, const JobFn& fn);

/// Called as each job completes (from whichever pool thread ran it, under
/// no lock — the callee synchronizes). The checkpoint log hangs off this.
using JobCompleteFn = std::function<void(std::size_t, const JobResult&)>;

/// Asked (on the pool thread, just before job i would execute) whether to
/// run it. Returning false marks results[i] skipped and suppresses
/// on_complete — the hook the elastic coordinator uses to lease points at
/// the last moment, so workers steal work point by point. Exceptions
/// propagate like job exceptions. Seeding is untouched either way.
using JobAdmitFn = std::function<bool(std::size_t)>;

/// run_sweep restricted to the jobs listed in `selected` (ascending point
/// indices): job i keeps its full-sweep seed derive_seed(base_seed, i) and
/// writes results[i], so executing a subset — a shard's slice, or the
/// points a resume log is missing — reproduces exactly the values the full
/// sweep would have produced for those slots. Slots not selected are left
/// untouched (the caller pre-fills cached metrics or marks them skipped).
void run_sweep_selected(ThreadPool& pool,
                        const std::vector<ParamPoint>& points,
                        std::uint64_t base_seed, const JobFn& fn,
                        const std::vector<std::size_t>& selected,
                        std::vector<JobResult>& results,
                        const JobCompleteFn& on_complete = nullptr,
                        const JobAdmitFn& admit = nullptr);

/// True when the two value sets serialize identically through the JSON
/// writer — the equivalence a JSON round trip preserves. Value equality is
/// too strict for cached-vs-recomputed comparisons: an integral-valued
/// double (0.0 -> "0") parses back as an integer.
bool serialize_identically(const NamedValues& a, const NamedValues& b);

/// FNV-1a hash of a string — used to give experiments and series stable
/// seed namespaces independent of registration or execution order.
std::uint64_t fnv1a64(std::string_view text);

}  // namespace dqma::sweep

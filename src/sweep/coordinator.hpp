// Elastic work distribution: a dependency-free, file-lock-based coordinator
// over a shared directory (`dqma_bench --coordinate DIR`).
//
// Static `--shard i/N` finishes at the pace of the slowest shard, and a
// lost runner needs a manual resume. The coordinator replaces the fixed
// partition with leases: every (experiment, series, group) work unit is
// identified by the same 64-bit partition key sharding uses —
// derive_seed(series_seed, index) for kPartition points,
// derive_seed(series_seed, fnv1a64(group value)) for kGroupBy groups — and
// any worker process may lease any free unit. Leases decide only WHO runs
// a job, never its seed, so the merged document is byte-identical to the
// monolithic run at any worker count and under any kill schedule.
//
// Directory protocol (no daemon, no network; any shared filesystem works):
//
//   DIR/coord.lock            flock(2) serializing every protocol step
//   DIR/leases/<key>.json     {"key":K,"worker":W} — W is computing K
//   DIR/done/<key>.json       {"key":K,"worker":W} — W committed K
//   DIR/workers/<W>.jsonl     W's CheckpointLog; its mtime is W's heartbeat
//   DIR/workers/<W>.final     W wrote its result document; its done
//                             markers are permanently valid
//   DIR/workers/<W>.evicted   tombstone: W was declared dead; if W is in
//                             fact alive it must abort (fencing)
//
// Liveness: a worker heartbeats by touching its checkpoint log (a
// background thread plus every protocol step). A worker whose log mtime is
// older than the lease timeout is stale: its leases AND its not-yet-final
// done markers are reclaimed — determinism makes recomputation
// byte-identical — after writing the eviction tombstone under the global
// lock. Every protocol step first checks the caller's own tombstone, so a
// zombie that was wrongly declared dead aborts (WorkerEvicted) before it
// can record anything twice; its partial results are discarded because its
// document is never written and only `.final` workers feed the merge.
//
// Crash ordering: a worker appends a unit's result to its own checkpoint
// log (fsync) BEFORE writing the done marker, so a done unit is always
// recoverable from the log; torn lease/done files (crash mid-write) parse
// as garbage and are reclaimed like stale ones.
//
// Contention backoff is jittered exponential, with jitter drawn from a
// seed-derived stream (base_seed, worker id), so delays are reproducible
// per worker.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "sweep/shard.hpp"
#include "util/rng.hpp"

namespace dqma::sweep {

/// Thrown by any protocol step after this worker's eviction tombstone
/// appears: another worker declared this one dead and may be recomputing
/// its units. The only safe response is to abort the run without writing a
/// result document (cli_main exits with code 3).
class WorkerEvicted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Coordinator {
 public:
  enum class Claim {
    kAcquired,  ///< this worker owns the unit (lease taken, or committed)
    kDone,      ///< committed by a live or finalized other worker — skip
    kBusy,      ///< leased by a live other worker — unresolved this pass
  };

  struct Options {
    std::string dir;
    std::string worker;
    std::uint64_t base_seed = 0;
    bool smoke = false;
    int lease_timeout_ms = 60000;
  };

  struct Stats {
    long long acquired = 0;        ///< units leased for computation
    long long cached = 0;          ///< units committed without a lease
    long long done_elsewhere = 0;  ///< units another worker committed
    long long busy = 0;            ///< lease contention events
    long long reclaims = 0;        ///< stale/torn leases or markers taken
    long long evictions = 0;       ///< workers tombstoned by this worker
    long long passes = 0;
  };

  /// Creates the directory protocol (idempotent), opens this worker's
  /// checkpoint log, and starts the heartbeat thread. Throws when the
  /// worker id carries an eviction tombstone — a resurrected worker whose
  /// units were reclaimed must rejoin under a fresh id.
  explicit Coordinator(const Options& options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Leases unit `key` for computation. kAcquired also when this worker
  /// already holds the lease or already committed the unit (recomputation
  /// is byte-identical, so re-execution after a lost log line is safe).
  Claim acquire(std::uint64_t key);

  /// Commits an acquired unit: done marker written, lease released. Call
  /// AFTER the unit's results are appended to the checkpoint log.
  void complete(std::uint64_t key);

  /// Commits a unit whose results this worker already holds (checkpoint
  /// cache hit, or a value every worker computes inline): kAcquired means
  /// "record it in this pass's document". No lease is taken — free units
  /// commit immediately.
  Claim commit_ready(std::uint64_t key);

  /// Marks the start of an execution pass. Workers loop passes until
  /// pass_converged(): a pass proved every unit is committed by this
  /// worker, a finalized worker, or a live worker this one trusts. Trust
  /// is totally ordered by worker id (live peers with a larger id are
  /// trusted, smaller ones are waited on until they finalize or go
  /// stale), so the smallest unfinalized worker always converges first
  /// and two finished workers never wait on each other.
  void begin_pass();
  bool pass_converged() const {
    return unresolved_.load(std::memory_order_acquire) == 0;
  }

  /// Sleeps the jittered exponential backoff for the next contention
  /// round. The delay sequence is deterministic per (base_seed, worker).
  void backoff_sleep();
  /// The delay for backoff round `round` (test/bench hook; consumes the
  /// same jitter stream backoff_sleep uses).
  std::chrono::milliseconds backoff_delay(int round);

  /// Declares this worker's result document written: its done markers
  /// become permanently valid and its units can never be reclaimed. Call
  /// after the document is on disk; only `.final` workers' documents may
  /// feed --merge. Throws WorkerEvicted when the tombstone appeared first
  /// (the caller deletes the document it just wrote and exits nonzero).
  void finalize();

  CheckpointLog& log() { return *log_; }
  const std::string& worker() const { return options_.worker; }
  const std::string& dir() const { return options_.dir; }
  int lease_timeout_ms() const { return options_.lease_timeout_ms; }
  Stats stats() const;

  /// Stops the heartbeat thread without finalizing (test hook: simulates a
  /// worker that stops heartbeating but still tries to commit — the
  /// fencing path). A real crash needs no call at all.
  void stop_heartbeat();

 private:
  enum class Owner { kMe, kLive, kFinal, kStale, kNone, kTorn };

  struct LockGuard;

  std::string lease_path(std::uint64_t key) const;
  std::string done_path(std::uint64_t key) const;
  std::string worker_file(const std::string& worker,
                          const char* suffix) const;

  /// Classifies the owner named by marker file `path` ({kNone,kTorn} when
  /// missing/unparseable). Callers hold the lock.
  Owner read_owner_locked(const std::string& path, std::string* owner) const;
  /// Liveness of `worker` (never called for this worker itself).
  Owner classify_locked(const std::string& worker) const;
  /// Tombstones `worker` unless it finalized first. True when evicted.
  bool evict_locked(const std::string& worker);
  /// Throws WorkerEvicted when this worker's tombstone exists.
  void fence_locked() const;
  /// Writes a {key, worker} marker file (lease or done), honoring
  /// torn-write fault injection.
  void write_marker_locked(const std::string& path, std::uint64_t key) const;
  /// Touches the checkpoint log mtime (the heartbeat).
  void touch_heartbeat() const;
  /// The shared resolution behind acquire()/commit_ready().
  Claim resolve(std::uint64_t key, bool commit_now);

  Options options_;
  std::unique_ptr<CheckpointLog> log_;
  int lock_fd_ = -1;
  mutable std::mutex mutex_;       ///< intra-process; flock is per-process
  mutable std::mutex stats_mutex_;
  Stats stats_;
  std::atomic<long long> unresolved_{0};
  util::Rng backoff_rng_;
  int backoff_round_ = 0;

  std::thread heartbeat_;
  std::mutex heartbeat_mutex_;
  std::condition_variable heartbeat_cv_;
  bool heartbeat_stop_ = false;
};

}  // namespace dqma::sweep

// Collects sweep results across experiments and renders them as the
// structured JSON document the CI perf trajectory consumes (the ASCII
// tables stay with the experiments themselves, printed via util::Table as
// the rows come back from run_sweep).
//
// JSON schema (schema_version 1, documented in README.md):
//   {
//     "schema_version": 1,
//     "generator": "dqma_bench",
//     "config": {"smoke": bool, "base_seed": int},
//     "experiments": [
//       {
//         "name": str, "description": str,
//         "points": [
//           {"params": {...}, "metrics": {...}(, "wall_ms": num)}
//         ](, "wall_ms": num)
//       }
//     ]
//   }
// The wall_ms fields appear only when timings are requested: they are the
// sole nondeterministic values, and omitting them by default keeps the
// document byte-identical across `--threads` settings.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sweep/json.hpp"
#include "sweep/sweep.hpp"

namespace dqma::sweep {

/// One recorded parameter point. `order` is the point's position in the
/// CANONICAL (unsharded) run of its experiment: a complete document holds
/// orders 0..n-1 in sequence, a shard document a disjoint subset of them.
/// Shard documents serialize the order (config carries "shard") so --merge
/// can reassemble the canonical sequence; complete documents omit it.
struct SinkPoint {
  ParamPoint params;
  Metrics metrics;
  double wall_ms = 0.0;
  std::size_t order = 0;
};

/// All points recorded by one experiment run.
struct ExperimentRecord {
  std::string name;
  std::string description;
  std::vector<SinkPoint> points;
  double wall_ms = 0.0;  ///< whole-experiment wall time
};

/// Accumulates experiment records and writes the JSON document. Not thread
/// safe: the sweep engine returns ordered results to the experiment thread,
/// which records them serially.
class ResultSink {
 public:
  /// Opens a new experiment; subsequent add_point calls attach to it.
  void begin_experiment(std::string name, std::string description);

  /// Records one point into the currently open experiment, with order =
  /// its position in that experiment (the unsharded case).
  void add_point(ParamPoint params, Metrics metrics, double wall_ms);

  /// Records one point with an explicit canonical order (shard runs, where
  /// positions owned by other shards leave holes in the local sequence).
  void add_point(ParamPoint params, Metrics metrics, double wall_ms,
                 std::size_t order);

  /// Closes the current experiment, recording its total wall time.
  void end_experiment(double wall_ms);

  const std::vector<ExperimentRecord>& experiments() const {
    return experiments_;
  }
  std::size_t point_count() const;

  struct WriteOptions {
    bool smoke = false;
    std::uint64_t base_seed = 0;
    bool include_timings = false;
    /// shard_count > 1 marks a shard document: config gains
    /// "shard": "index/count" and every point carries its canonical
    /// "order". The default (1) produces the canonical complete document,
    /// byte-identical to what pre-shard builds wrote.
    int shard_index = 0;
    int shard_count = 1;
    /// An elastic worker's partial document (--coordinate): config gains
    /// "coordinated": true and every point carries its canonical "order",
    /// like a shard document but with a lease-dependent (nondeterministic)
    /// subset of points. --merge of all finalized workers drops the marker
    /// and reproduces the canonical complete bytes.
    bool coordinated = false;
  };

  /// Builds the schema_version-1 document described above.
  Json to_json(const WriteOptions& options) const;
  void write_json(std::ostream& os, const WriteOptions& options) const;

 private:
  std::vector<ExperimentRecord> experiments_;
  bool open_ = false;
};

/// The document builder behind ResultSink::to_json, shared with the merge
/// path (sweep/trajectory.hpp), which reassembles ExperimentRecords parsed
/// from shard files and must reproduce the canonical bytes exactly.
Json trajectory_to_json(const std::vector<ExperimentRecord>& experiments,
                        const ResultSink::WriteOptions& options);

}  // namespace dqma::sweep

// The experiment registry behind the unified `dqma_bench` driver: every
// bench/ table harness registers itself here as a named experiment, and
// both the driver and the per-experiment compatibility shims run them
// through the same cli_main.
//
// Seed namespacing: every experiment gets base seed
// derive_seed(global_seed, fnv1a64(name)), and every sweep within it
// derive_seed(experiment_seed, fnv1a64(series)). Seeds therefore depend
// only on (global seed, experiment name, series name, job index) — never
// on which experiments are selected, how many threads run, or the order
// sections execute — so `--experiment all` and `--experiment table2_eq`
// agree on every recorded value.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sweep/result_sink.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"

namespace dqma::sweep {

class Coordinator;
class ExperimentContext;

/// Shard/resume/coordination state shared by every experiment of one
/// driver run; nullptr members (and a default ShardSpec) mean the classic
/// monolithic run, whose behavior and bytes are unchanged. `coordinator`
/// set means an elastic worker (--coordinate): work units are leased at
/// run time instead of partitioned statically, and `checkpoint` points at
/// the coordinator's own per-worker log. shard stays inactive — the two
/// partitioning modes are mutually exclusive.
struct RunControls {
  ShardSpec shard;
  CheckpointLog* checkpoint = nullptr;
  Coordinator* coordinator = nullptr;
};

/// How a series partitions across shards (`--shard i/N`). Every mode
/// preserves per-job seeding exactly; they differ only in which shard
/// EXECUTES and which shard RECORDS each point.
struct SweepPolicy {
  enum class Mode {
    /// Each point is its own shard unit, keyed by its RNG seed
    /// derive_seed(series_seed, index). Other shards skip the point
    /// entirely; its JobResult comes back `skipped` with empty metrics,
    /// so table-rendering loops must guard before reading. The default,
    /// and the right choice for every expensive self-contained series.
    kPartition,
    /// Every shard executes all points but records only the ones it owns
    /// (same per-point keys). For cheap closed-form series whose results
    /// feed cross-point post-processing in the experiment body (ratio
    /// columns, derived ctx.record points): the body sees complete
    /// results in every shard, while each point still lands in exactly
    /// one document.
    kReplicate,
    /// Points sharing a value of `group_param` form one all-or-nothing
    /// shard unit (key = derive_seed(series_seed, fnv1a64(value))), so a
    /// reduction over the group can run — and record_owned() its derived
    /// point — in the one shard that has the whole group.
    kGroupBy,
  };

  Mode mode = Mode::kPartition;
  std::string group_param;

  static SweepPolicy partition() { return {}; }
  static SweepPolicy replicate() { return {Mode::kReplicate, {}}; }
  static SweepPolicy group_by(std::string param) {
    return {Mode::kGroupBy, std::move(param)};
  }
};

/// A registered experiment: a stable name (used in CLI selection, JSON and
/// seed derivation), a one-line description, and the body.
struct Experiment {
  std::string name;
  std::string description;
  std::function<void(ExperimentContext&)> run;
};

/// Registers an experiment. Duplicate names are rejected.
void register_experiment(Experiment experiment);

/// All registered experiments, in registration order.
const std::vector<Experiment>& experiments();

/// Everything an experiment body needs: the smoke switch, the shared
/// thread pool, the output stream for ASCII tables, and recording into the
/// sink (directly or via parallel sweeps).
class ExperimentContext {
 public:
  ExperimentContext(const Experiment& experiment, ThreadPool& pool,
                    ResultSink& sink, std::ostream& out, bool smoke,
                    std::uint64_t global_seed,
                    const RunControls* controls = nullptr);

  bool smoke() const { return smoke_; }
  ThreadPool& pool() { return pool_; }
  std::ostream& out() { return out_; }
  std::uint64_t base_seed() const { return base_seed_; }
  /// True when this run executes one shard of the job space; bodies may
  /// use it to skip shard-incomplete cosmetics (never to change any
  /// recorded value).
  bool sharded() const {
    return controls_ != nullptr && controls_->shard.active();
  }
  /// True when this run is an elastic worker leasing units from a
  /// coordinator directory; like sharded(), bodies may use it only for
  /// shard-incomplete cosmetics, never to change a recorded value.
  bool coordinated() const {
    return controls_ != nullptr && controls_->coordinator != nullptr;
  }

  /// smoke() ? smoke_variant : full — mirrors util::smoke_select but keyed
  /// off the context (the driver's --smoke flag or DQMA_BENCH_SMOKE).
  template <typename T>
  T smoke_select(T full, T smoke_variant) const {
    return smoke_ ? smoke_variant : full;
  }

  /// Runs fn over the points on the pool (deterministic per-job seeding
  /// namespaced by `series`), records every point into the sink with the
  /// series name prepended to its params, and returns the ordered results
  /// for ASCII rendering. Under --shard, `policy` decides which points
  /// this process executes and records (see SweepPolicy); under --resume,
  /// points found in the checkpoint log are loaded instead of re-run, and
  /// every newly completed in-shard point is appended to the log.
  std::vector<JobResult> sweep(const std::string& series,
                               const std::vector<ParamPoint>& points,
                               const JobFn& fn,
                               const SweepPolicy& policy = {});
  std::vector<JobResult> sweep(const std::string& series,
                               const ParamGrid& grid, const JobFn& fn,
                               const SweepPolicy& policy = {});

  /// sweep()'s counterpart for series with a few huge points: runs fn over
  /// the points SERIALLY on the calling thread — outside the sweep pool,
  /// so the threaded kernels inside fn fan out across the kernel pool
  /// instead of being serialized by the nesting contract. Seeding, wall
  /// timing, recording and result order match sweep() exactly; a series
  /// can switch between the two without reshuffling any recorded value.
  std::vector<JobResult> serial_sweep(const std::string& series,
                                      const std::vector<ParamPoint>& points,
                                      const JobFn& fn);

  /// Records one serially-computed point (wall time optional). Under
  /// --shard the point is assigned to a shard by its own key
  /// derive_seed(series_seed, per-series record index) — correct for
  /// values every shard computes anyway (inline closed forms, replicated
  /// post-processing): each lands in exactly one document.
  void record(const std::string& series, ParamPoint params, Metrics metrics,
              double wall_ms = 0.0);

  /// record() for a derived point only THIS shard can compute (a
  /// reduction over a kGroupBy series it owns): records unconditionally.
  /// Every other shard must call skip_record() for the same series at the
  /// same place so canonical point numbering stays aligned across shards.
  void record_owned(const std::string& series, ParamPoint params,
                    Metrics metrics, double wall_ms = 0.0);

  /// Declares a point that record_owned() publishes in some other shard:
  /// advances the canonical counters without recording anything.
  void skip_record(const std::string& series);

  /// True when this shard owns the NEXT record() point of `series` — lets
  /// hand-rolled serial loops skip COMPUTING points another shard records
  /// (call skip_record() for those to keep the numbering aligned).
  bool owns_next_record(const std::string& series) const;

  /// Rng for ad-hoc serial draws, seeded from the series namespace; stable
  /// across runs and independent of other series.
  util::Rng series_rng(const std::string& series) const;

  /// Rng of point `index` of a series, seeded exactly like sweep() seeds
  /// job `index` — a series can switch between pooled sweep jobs and a
  /// serial kernel-parallel loop without reshuffling any recorded value.
  util::Rng point_rng(const std::string& series, std::size_t index) const;

 private:
  /// The canonical point key of record()-style points; advances the
  /// per-series record index (shared with record_owned/skip_record so the
  /// counters agree across shards).
  std::uint64_t next_record_key(const std::string& series);
  /// sweep() under a coordinator: ownership comes from run-time leases
  /// instead of the static shard partition. Point/group keys and seeding
  /// are identical to the shard path, so any worker that wins a lease
  /// computes exactly the bytes the monolithic run would have.
  std::vector<JobResult> coordinated_sweep(
      const std::string& series, const std::vector<ParamPoint>& points,
      const JobFn& fn, const SweepPolicy& policy,
      const std::vector<std::uint64_t>& keys, std::uint64_t series_seed,
      std::size_t first_order);
  /// Prefixes the series name and records into the sink at `order`.
  void add_to_sink(const std::string& series, const ParamPoint& params,
                   Metrics metrics, double wall_ms, std::size_t order);

  std::string name_;
  ThreadPool& pool_;
  ResultSink& sink_;
  std::ostream& out_;
  bool smoke_;
  std::uint64_t base_seed_;
  const RunControls* controls_;
  /// Position the NEXT recorded point would take in the canonical
  /// (unsharded) run of this experiment. Advances for every declared
  /// point — executed, resumed, or owned by another shard — so orders
  /// agree across all shards of a run.
  std::size_t next_order_ = 0;
  /// Per-series record() indices (key derivation for ad-hoc points).
  std::map<std::string, std::uint64_t> record_counts_;
};

/// Options parsed from the dqma_bench command line.
struct CliOptions {
  std::vector<std::string> experiments;  ///< empty => all
  std::string json_path;                 ///< empty => no JSON output
  int threads = 0;                       ///< 0 => hardware concurrency
  bool smoke = false;
  bool timings = false;
  std::uint64_t seed = 0;
  bool list_only = false;
  std::string shard;                      ///< "i/N"; empty => unsharded
  std::string resume_path;                ///< JSONL checkpoint log
  std::vector<std::string> merge_inputs;  ///< --merge mode when non-empty
  std::string compare_path;               ///< baseline document
  double tolerance = 1e-9;                ///< --compare floating tolerance
  std::string simd;  ///< SIMD level override; empty => DQMA_SIMD / native
  std::string scratch;  ///< scratch dir for tiled passes; empty => env var
  std::string coordinate_dir;  ///< elastic mode when non-empty
  std::string worker_id;       ///< --worker; empty => generated
  int lease_timeout_ms = 60000;  ///< --lease-timeout
};

/// Shared driver main: parses argv, runs the selected experiments, writes
/// JSON when requested, prints a per-experiment wall-time summary. When
/// `forced_experiment` is non-null the binary is a compatibility shim: it
/// runs exactly that experiment and accepts the same flags except
/// --experiment. Returns a process exit code.
int cli_main(int argc, const char* const* argv,
             const char* forced_experiment = nullptr);

}  // namespace dqma::sweep

// The experiment registry behind the unified `dqma_bench` driver: every
// bench/ table harness registers itself here as a named experiment, and
// both the driver and the per-experiment compatibility shims run them
// through the same cli_main.
//
// Seed namespacing: every experiment gets base seed
// derive_seed(global_seed, fnv1a64(name)), and every sweep within it
// derive_seed(experiment_seed, fnv1a64(series)). Seeds therefore depend
// only on (global seed, experiment name, series name, job index) — never
// on which experiments are selected, how many threads run, or the order
// sections execute — so `--experiment all` and `--experiment table2_eq`
// agree on every recorded value.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sweep/result_sink.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"

namespace dqma::sweep {

class ExperimentContext;

/// A registered experiment: a stable name (used in CLI selection, JSON and
/// seed derivation), a one-line description, and the body.
struct Experiment {
  std::string name;
  std::string description;
  std::function<void(ExperimentContext&)> run;
};

/// Registers an experiment. Duplicate names are rejected.
void register_experiment(Experiment experiment);

/// All registered experiments, in registration order.
const std::vector<Experiment>& experiments();

/// Everything an experiment body needs: the smoke switch, the shared
/// thread pool, the output stream for ASCII tables, and recording into the
/// sink (directly or via parallel sweeps).
class ExperimentContext {
 public:
  ExperimentContext(const Experiment& experiment, ThreadPool& pool,
                    ResultSink& sink, std::ostream& out, bool smoke,
                    std::uint64_t global_seed);

  bool smoke() const { return smoke_; }
  ThreadPool& pool() { return pool_; }
  std::ostream& out() { return out_; }
  std::uint64_t base_seed() const { return base_seed_; }

  /// smoke() ? smoke_variant : full — mirrors util::smoke_select but keyed
  /// off the context (the driver's --smoke flag or DQMA_BENCH_SMOKE).
  template <typename T>
  T smoke_select(T full, T smoke_variant) const {
    return smoke_ ? smoke_variant : full;
  }

  /// Runs fn over the points on the pool (deterministic per-job seeding
  /// namespaced by `series`), records every point into the sink with the
  /// series name prepended to its params, and returns the ordered results
  /// for ASCII rendering.
  std::vector<JobResult> sweep(const std::string& series,
                               const std::vector<ParamPoint>& points,
                               const JobFn& fn);
  std::vector<JobResult> sweep(const std::string& series,
                               const ParamGrid& grid, const JobFn& fn);

  /// sweep()'s counterpart for series with a few huge points: runs fn over
  /// the points SERIALLY on the calling thread — outside the sweep pool,
  /// so the threaded kernels inside fn fan out across the kernel pool
  /// instead of being serialized by the nesting contract. Seeding, wall
  /// timing, recording and result order match sweep() exactly; a series
  /// can switch between the two without reshuffling any recorded value.
  std::vector<JobResult> serial_sweep(const std::string& series,
                                      const std::vector<ParamPoint>& points,
                                      const JobFn& fn);

  /// Records one serially-computed point (wall time optional).
  void record(const std::string& series, ParamPoint params, Metrics metrics,
              double wall_ms = 0.0);

  /// Rng for ad-hoc serial draws, seeded from the series namespace; stable
  /// across runs and independent of other series.
  util::Rng series_rng(const std::string& series) const;

  /// Rng of point `index` of a series, seeded exactly like sweep() seeds
  /// job `index` — a series can switch between pooled sweep jobs and a
  /// serial kernel-parallel loop without reshuffling any recorded value.
  util::Rng point_rng(const std::string& series, std::size_t index) const;

 private:
  ThreadPool& pool_;
  ResultSink& sink_;
  std::ostream& out_;
  bool smoke_;
  std::uint64_t base_seed_;
};

/// Options parsed from the dqma_bench command line.
struct CliOptions {
  std::vector<std::string> experiments;  ///< empty => all
  std::string json_path;                 ///< empty => no JSON output
  int threads = 0;                       ///< 0 => hardware concurrency
  bool smoke = false;
  bool timings = false;
  std::uint64_t seed = 0;
  bool list_only = false;
};

/// Shared driver main: parses argv, runs the selected experiments, writes
/// JSON when requested, prints a per-experiment wall-time summary. When
/// `forced_experiment` is non-null the binary is a compatibility shim: it
/// runs exactly that experiment and accepts the same flags except
/// --experiment. Returns a process exit code.
int cli_main(int argc, const char* const* argv,
             const char* forced_experiment = nullptr);

}  // namespace dqma::sweep

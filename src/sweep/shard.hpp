// Sharded, resumable sweep execution: the job-space partition behind
// `dqma_bench --shard i/N` and the append-only JSONL checkpoint log behind
// `--resume <log>`.
//
// Partition contract: every (experiment, series, point) job already owns a
// namespaced 64-bit key — derive_seed(series_seed, index), the exact seed
// (or would-be seed) of its private RNG stream. A shard selects the jobs
// with key % N == i. Because the key depends only on (global seed,
// experiment name, series name, index), the partition is deterministic and
// seed-stable, the N shards are disjoint by construction, and their union
// is provably the full job set — while every job's RNG stream is untouched,
// so shard runs reproduce exactly the values the unsharded run records.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "sweep/sweep.hpp"

namespace dqma::sweep {

/// A shard selection "index/count" (0-based). The default (0/1) selects
/// every job — the unsharded run.
struct ShardSpec {
  int index = 0;
  int count = 1;

  bool active() const { return count > 1; }

  /// True when this shard owns the job with partition key `key`.
  bool contains(std::uint64_t key) const {
    return !active() ||
           key % static_cast<std::uint64_t>(count) ==
               static_cast<std::uint64_t>(index);
  }

  /// "index/count", e.g. "2/4"; "0/1" for the unsharded run.
  std::string label() const;

  /// Parses "i/N" with 0 <= i < N; throws std::invalid_argument otherwise.
  static ShardSpec parse(const std::string& text);

  bool operator==(const ShardSpec& other) const = default;
};

/// The append-only JSONL result log: one header line pinning the run
/// configuration, then one compact JSON line per completed point. Opening
/// an existing log indexes its entries so the run skips finished points
/// (`--resume`); every newly completed point is appended, flushed, and —
/// unless DQMA_CHECKPOINT_FSYNC=0 — fsync()ed, so even a host crash (not
/// just a killed process) loses at most the point in flight. Only
/// newline-terminated lines count as committed: a torn final line (the
/// crash case) is dropped AND truncated from the file before appending
/// resumes, so the log stays replayable across repeated crash/resume
/// cycles. Corruption anywhere else, or a header from a different
/// (seed, smoke, shard) configuration, fails loudly rather than resuming
/// into a mismatched run.
class CheckpointLog {
 public:
  struct Entry {
    std::uint64_t key = 0;
    ParamPoint params;
    Metrics metrics;
    double wall_ms = 0.0;
  };

  /// Loads `path` if it exists (validating the header against the given
  /// configuration) and opens it for appending, writing the header first
  /// when the file is new or empty.
  ///
  /// Durability: every append is fsync()ed by default, so a line the
  /// process reported durable survives a host crash, not just a process
  /// kill. Set DQMA_CHECKPOINT_FSYNC=0 to trade that guarantee for append
  /// throughput (flush-only, the pre-fix behavior).
  CheckpointLog(std::string path, std::uint64_t base_seed, bool smoke,
                const ShardSpec& shard);
  ~CheckpointLog();

  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  /// The completed entry for (experiment, canonical order), or nullptr.
  /// The caller verifies the entry's key against the job's partition key —
  /// a mismatch means the log belongs to a different workload shape.
  /// Pointers stay valid across append() (map nodes are stable), which also
  /// indexes the new line — coordinated runs re-scan the log every pass.
  const Entry* find(const std::string& experiment, std::size_t order) const;

  /// Appends one completed point, flushes, and indexes it for find().
  /// Thread-safe: sweeps report completions from pool threads.
  void append(const std::string& experiment, const std::string& series,
              std::size_t order, std::uint64_t key, const ParamPoint& params,
              const JobResult& result);

  /// Committed entries (loaded at open plus appended since).
  std::size_t loaded_entries() const;
  const std::string& path() const { return path_; }
  /// True when appends are fsync()ed (the default; DQMA_CHECKPOINT_FSYNC=0
  /// disables). False also on platforms without fsync.
  bool syncing() const { return sync_fd_ >= 0; }
  /// True when the containing directory was fsync()ed at open, making the
  /// log file's very existence crash-durable (same knob as syncing()).
  bool directory_synced() const { return directory_synced_; }

 private:
  /// Commits buffered bytes to the OS (flush) and, when syncing, to stable
  /// storage (fsync). Callers hold mutex_.
  void commit_locked();

  std::string path_;
  std::map<std::pair<std::string, std::size_t>, Entry> entries_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  int sync_fd_ = -1;  ///< second fd on path_ used only for fsync()
  bool directory_synced_ = false;
};

}  // namespace dqma::sweep

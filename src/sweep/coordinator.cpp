#include "sweep/coordinator.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "sweep/json.hpp"
#include "sweep/sweep.hpp"
#include "util/fault.hpp"
#include "util/json_reader.hpp"
#include "util/require.hpp"

namespace dqma::sweep {

namespace fs = std::filesystem;
namespace fault = util::fault;

namespace {

std::string key_hex(std::uint64_t key) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[key & 0xFu];
    key >>= 4;
  }
  return out;
}

}  // namespace

/// Holds both locks of one protocol step: the intra-process mutex (flock
/// does not exclude threads sharing the fd) and the inter-process flock.
struct Coordinator::LockGuard {
  LockGuard(std::mutex& mutex, int fd) : lock(mutex), fd(fd) {
    if (fd >= 0) {
      while (::flock(fd, LOCK_EX) != 0 && errno == EINTR) {
      }
    }
  }
  ~LockGuard() {
    if (fd >= 0) {
      ::flock(fd, LOCK_UN);
    }
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  std::lock_guard<std::mutex> lock;
  int fd;
};

Coordinator::Coordinator(const Options& options)
    : options_(options),
      backoff_rng_(util::derive_seed(
          util::derive_seed(options.base_seed, fnv1a64("coordinator")),
          fnv1a64(options.worker))) {
  util::require(!options_.dir.empty(), "Coordinator: empty directory");
  util::require(!options_.worker.empty(), "Coordinator: empty worker id");
  util::require(options_.worker.find('/') == std::string::npos,
                "Coordinator: worker id must not contain '/'");
  util::require(options_.lease_timeout_ms > 0,
                "Coordinator: lease timeout must be positive");

  std::error_code ec;
  fs::create_directories(fs::path(options_.dir) / "leases", ec);
  fs::create_directories(fs::path(options_.dir) / "done", ec);
  fs::create_directories(fs::path(options_.dir) / "workers", ec);
  util::require(!ec, "Coordinator: cannot create " + options_.dir);

  const std::string lock_path = options_.dir + "/coord.lock";
  lock_fd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                    S_IRUSR | S_IWUSR);
  util::require(lock_fd_ >= 0, "Coordinator: cannot open " + lock_path);

  util::require(
      !fs::exists(worker_file(options_.worker, ".evicted")),
      "Coordinator: worker id '" + options_.worker +
          "' was evicted (its units were reclaimed) — rejoin with a fresh "
          "--worker id");

  // The checkpoint log doubles as the heartbeat file; the shard header
  // field stays 0/1 because coordinated workers are not shards.
  log_ = std::make_unique<CheckpointLog>(
      worker_file(options_.worker, ".jsonl"), options_.base_seed,
      options_.smoke, ShardSpec{});

  heartbeat_ = std::thread([this] {
    const auto period = std::chrono::milliseconds(
        std::clamp(options_.lease_timeout_ms / 4, 10, 2000));
    std::unique_lock<std::mutex> lock(heartbeat_mutex_);
    while (!heartbeat_stop_) {
      heartbeat_cv_.wait_for(lock, period);
      if (heartbeat_stop_) {
        break;
      }
      touch_heartbeat();  // mtime touch is atomic; no protocol lock needed
    }
  });
}

Coordinator::~Coordinator() {
  stop_heartbeat();
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);
  }
}

void Coordinator::stop_heartbeat() {
  {
    const std::lock_guard<std::mutex> lock(heartbeat_mutex_);
    heartbeat_stop_ = true;
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_.joinable()) {
    heartbeat_.join();
  }
}

std::string Coordinator::lease_path(std::uint64_t key) const {
  return options_.dir + "/leases/" + key_hex(key) + ".json";
}

std::string Coordinator::done_path(std::uint64_t key) const {
  return options_.dir + "/done/" + key_hex(key) + ".json";
}

std::string Coordinator::worker_file(const std::string& worker,
                                     const char* suffix) const {
  return options_.dir + "/workers/" + worker + suffix;
}

void Coordinator::touch_heartbeat() const {
  std::error_code ec;
  fs::last_write_time(worker_file(options_.worker, ".jsonl"),
                      fs::file_time_type::clock::now(), ec);
  // A failed touch is indistinguishable from a stall; the worker would be
  // reclaimed, detect its tombstone, and abort — safe either way.
}

void Coordinator::fence_locked() const {
  if (fs::exists(worker_file(options_.worker, ".evicted"))) {
    throw WorkerEvicted("coordinator: worker '" + options_.worker +
                        "' was evicted by a peer (checkpoint log went stale "
                        "past " + std::to_string(options_.lease_timeout_ms) +
                        " ms); its units are being recomputed — aborting "
                        "without writing a document");
  }
}

Coordinator::Owner Coordinator::read_owner_locked(const std::string& path,
                                                  std::string* owner) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Owner::kNone;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  try {
    const util::json::Node node = util::json::parse(contents);
    *owner = node.at("worker").as_string();
  } catch (const std::exception&) {
    return Owner::kTorn;  // crash mid-write; reclaim like a stale marker
  }
  if (*owner == options_.worker) {
    return Owner::kMe;
  }
  return classify_locked(*owner);
}

Coordinator::Owner Coordinator::classify_locked(
    const std::string& worker) const {
  if (fs::exists(worker_file(worker, ".final"))) {
    return Owner::kFinal;
  }
  if (fs::exists(worker_file(worker, ".evicted"))) {
    return Owner::kStale;
  }
  std::error_code ec;
  const auto mtime = fs::last_write_time(worker_file(worker, ".jsonl"), ec);
  if (ec) {
    return Owner::kStale;  // no heartbeat file at all
  }
  const auto age = fs::file_time_type::clock::now() - mtime;
  return age > std::chrono::milliseconds(options_.lease_timeout_ms)
             ? Owner::kStale
             : Owner::kLive;
}

bool Coordinator::evict_locked(const std::string& worker) {
  if (fs::exists(worker_file(worker, ".final"))) {
    return false;  // finalized first; its markers are permanently valid
  }
  if (!fs::exists(worker_file(worker, ".evicted"))) {
    std::ofstream out(worker_file(worker, ".evicted"),
                      std::ios::binary | std::ios::trunc);
    out << "{\"evicted_by\":\"" << options_.worker << "\"}\n";
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.evictions;  // counts workers tombstoned, not markers reclaimed
  }
  return true;
}

void Coordinator::write_marker_locked(const std::string& path,
                                      std::uint64_t key) const {
  Json obj = Json::object();
  obj.add("key", Json(key));
  obj.add("worker", Json(options_.worker));
  const std::string text = obj.dump_compact();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  util::require(static_cast<bool>(out),
                "coordinator: cannot write marker " + path);
  if (fault::should_tear(fault::Site::kLease)) {
    out << text.substr(0, text.size() / 2);
    out.flush();
    fault::crash_now();
  }
  out << text << '\n';
  out.flush();
  util::require(static_cast<bool>(out),
                "coordinator: cannot write marker " + path);
}

Coordinator::Claim Coordinator::resolve(std::uint64_t key, bool commit_now) {
  fault::point(fault::Site::kLease);
  LockGuard guard(mutex_, lock_fd_);
  fence_locked();
  touch_heartbeat();

  const std::string done = done_path(key);
  const std::string lease = lease_path(key);
  std::string owner;

  switch (read_owner_locked(done, &owner)) {
    case Owner::kMe:
      // Already committed by this worker (an earlier pass, or a recovered
      // log): nothing to re-commit, just record it in this pass's document.
      return Claim::kAcquired;
    case Owner::kLive: {
      // Committed by a live but NOT yet finalized worker: if it dies
      // before writing its document, the unit must be recomputed. Waiting
      // on every live peer would livelock (two finished workers would
      // each wait for the other to finalize), so trust is totally ordered
      // by worker id: this worker trusts live peers with a LARGER id and
      // keeps the pass unresolved for smaller ones. The smallest
      // unfinalized worker can therefore always converge, finalize turns
      // into a chain, and the only remaining hole — the LAST unfinalized
      // worker crashing — is irreducible without two-phase commit and is
      // healed by running one more worker in the directory (the merge
      // fails loudly until then).
      if (owner < options_.worker) {
        unresolved_.fetch_add(1, std::memory_order_acq_rel);
      }
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.done_elsewhere;
      return Claim::kDone;
    }
    case Owner::kFinal: {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.done_elsewhere;
      return Claim::kDone;
    }
    case Owner::kStale:
    case Owner::kTorn: {
      // A committed unit of a dead (or torn-marker), not-finalized worker:
      // its document will never exist, so the unit must be recomputed.
      // Tombstone the owner first (fencing), then take the marker over.
      // evict_locked cannot lose to a concurrent finalize — classification
      // and eviction happen under the same flock.
      if (!owner.empty()) {
        evict_locked(owner);
      }
      std::error_code ec;
      fs::remove(done, ec);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.reclaims;
      break;  // fall through to the lease state
    }
    case Owner::kNone:
      break;
  }

  switch (read_owner_locked(lease, &owner)) {
    case Owner::kMe:
      if (commit_now) {
        write_marker_locked(done, key);
        std::error_code ec;
        fs::remove(lease, ec);
      }
      return Claim::kAcquired;
    case Owner::kLive: {
      unresolved_.fetch_add(1, std::memory_order_acq_rel);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.busy;
      return Claim::kBusy;
    }
    case Owner::kStale:
    case Owner::kTorn:
    case Owner::kFinal: {  // a finalized worker cannot be mid-computation
      if (!owner.empty() && classify_locked(owner) != Owner::kFinal) {
        evict_locked(owner);
      }
      std::error_code ec;
      fs::remove(lease, ec);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.reclaims;
      break;
    }
    case Owner::kNone:
      break;
  }

  if (commit_now) {
    write_marker_locked(done, key);
  } else {
    write_marker_locked(lease, key);
  }
  return Claim::kAcquired;
}

Coordinator::Claim Coordinator::acquire(std::uint64_t key) {
  const Claim claim = resolve(key, /*commit_now=*/false);
  if (claim == Claim::kAcquired) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.acquired;
  }
  return claim;
}

void Coordinator::complete(std::uint64_t key) {
  fault::point(fault::Site::kLease);
  LockGuard guard(mutex_, lock_fd_);
  fence_locked();
  write_marker_locked(done_path(key), key);
  std::error_code ec;
  fs::remove(lease_path(key), ec);
  touch_heartbeat();
}

Coordinator::Claim Coordinator::commit_ready(std::uint64_t key) {
  const Claim claim = resolve(key, /*commit_now=*/true);
  if (claim == Claim::kAcquired) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.cached;
  }
  return claim;
}

void Coordinator::begin_pass() {
  LockGuard guard(mutex_, lock_fd_);
  fence_locked();
  touch_heartbeat();
  unresolved_.store(0, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.passes;
}

std::chrono::milliseconds Coordinator::backoff_delay(int round) {
  // 25ms * 2^round, capped well below the lease timeout: between passes a
  // worker is polling for a peer's finalize or staleness, and protocol
  // steps are cheap enough that a few polls per timeout beat oversleeping.
  // Halved-then-jittered so contending workers spread out while each
  // worker's sequence stays a pure function of (base_seed, worker id,
  // round index).
  const long long cap =
      std::clamp<long long>(options_.lease_timeout_ms / 4, 250, 5000);
  const long long base =
      std::min<long long>(cap, 25LL << std::min(round, 12));
  const long long jitter = static_cast<long long>(
      backoff_rng_.next_below(static_cast<std::uint64_t>(base / 2 + 1)));
  return std::chrono::milliseconds(base / 2 + jitter);
}

void Coordinator::backoff_sleep() {
  std::this_thread::sleep_for(backoff_delay(backoff_round_++));
}

void Coordinator::finalize() {
  LockGuard guard(mutex_, lock_fd_);
  fence_locked();
  write_marker_locked(worker_file(options_.worker, ".final"), 0);
  touch_heartbeat();
}

Coordinator::Stats Coordinator::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace dqma::sweep

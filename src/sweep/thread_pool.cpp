#include "sweep/thread_pool.hpp"

#include <algorithm>

namespace dqma::sweep {

namespace {
thread_local int t_batch_depth = 0;
}  // namespace

ThreadPool::BatchMark::BatchMark() { ++t_batch_depth; }
ThreadPool::BatchMark::~BatchMark() { --t_batch_depth; }

bool ThreadPool::executing_batch() { return t_batch_depth > 0; }

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  batch_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::run_inline(std::size_t count,
                            const std::function<void(std::size_t)>& job) {
  const BatchMark mark;
  std::exception_ptr error;
  for (std::size_t i = 0; i < count; ++i) {
    try {
      job(i);
    } catch (...) {
      if (!error) {
        error = std::current_exception();
      }
    }
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& job) {
  if (count == 0) {
    return;
  }
  if (executing_batch()) {
    // Reentrant dispatch: the calling thread is already running a batch
    // job (of this pool or any other). Publishing a second batch on the
    // same pool would deadlock — the owner path below waits for workers
    // that are themselves waiting on this job — so nested batches run
    // serially inline, mirroring parallel_for's nested-region fallback.
    run_inline(count, job);
    return;
  }
  if (workers_.empty()) {
    // Single-threaded pool: inline is the pooled path.
    run_inline(count, job);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_job_ = &job;
    batch_count_ = count;
    completed_ = 0;
    first_error_ = nullptr;
    next_index_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  batch_ready_.notify_all();
  const std::size_t done_here = claim_and_run(job, count);  // the owner works too
  std::unique_lock<std::mutex> lock(mutex_);
  completed_ += done_here;
  batch_done_.wait(lock, [this] {
    return completed_ == batch_count_ && attached_ == 0;
  });
  batch_job_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      batch_ready_.wait(lock, [this, seen_generation] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      if (batch_job_ == nullptr) {
        continue;  // woke after the batch already drained
      }
      job = batch_job_;
      count = batch_count_;
      ++attached_;
    }
    const std::size_t done_here = claim_and_run(*job, count);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --attached_;
      completed_ += done_here;
      if (completed_ == batch_count_ && attached_ == 0) {
        batch_done_.notify_all();
      }
    }
  }
}

std::size_t ThreadPool::claim_and_run(
    const std::function<void(std::size_t)>& job, std::size_t count) {
  const BatchMark mark;
  std::size_t done = 0;
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) {
      break;
    }
    try {
      job(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    ++done;
  }
  return done;
}

}  // namespace dqma::sweep

// A fixed-size thread pool for the parallel sweep engine (DESIGN: the
// sweep layer fans parameter grids out across threads; determinism comes
// from per-job seeding in sweep.hpp, never from execution order).
//
// Deliberately work-stealing-free: sweeps are index-addressed batches, so
// a single shared atomic cursor distributes jobs with one fetch_add per
// job and no per-job locking. The mutex/condvar pair is touched only at
// batch boundaries (publish, attach/detach, final wakeup), keeping
// contention independent of job count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dqma::sweep {

/// Persistent pool of worker threads executing index-addressed batches.
///
/// The caller's thread participates in every batch, so ThreadPool(1) spawns
/// no workers at all and runs jobs inline — handy both for determinism
/// baselines (`--threads 1`) and for keeping the smoke path allocation-free.
class ThreadPool {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);

  /// Joins all workers. Pending batches must have completed (run_indexed
  /// only returns once its batch is drained, so this holds by construction).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads applied to a batch (workers + the calling thread).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs job(0) .. job(count - 1), each exactly once, distributed across
  /// the pool; returns when all have finished. If any job throws, the first
  /// exception (in completion order) is rethrown here after the batch
  /// drains. Reentrant calls — a job calling run_indexed, on its own pool
  /// or any other — run the nested batch serially inline on the calling
  /// thread (matching parallel_for's nested-region fallback) instead of
  /// deadlocking on the already-claimed batch state.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& job);

  /// True while the calling thread is executing jobs of some ThreadPool
  /// batch — as a pool worker or as the owner thread participating in its
  /// own batch, for any pool in the process. The kernel-parallelism layer
  /// (sweep/parallel.hpp) consults this to run nested regions serially
  /// instead of deadlocking or oversubscribing.
  static bool executing_batch();

 private:
  /// RAII marker backing executing_batch().
  struct BatchMark {
    BatchMark();
    ~BatchMark();
    BatchMark(const BatchMark&) = delete;
    BatchMark& operator=(const BatchMark&) = delete;
  };

  void worker_loop();
  /// Claims and runs jobs of the batch identified by `job`/`count`.
  /// Returns the number of jobs this thread executed.
  std::size_t claim_and_run(const std::function<void(std::size_t)>& job,
                            std::size_t count);
  /// Serial fallback with the pooled failure contract (every job runs, the
  /// first exception is rethrown after the batch drains): single-threaded
  /// pools and reentrant run_indexed calls.
  static void run_inline(std::size_t count,
                         const std::function<void(std::size_t)>& job);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable batch_ready_;
  std::condition_variable batch_done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  // bumped when a new batch is published

  // Current batch. All fields except next_index_ are guarded by mutex_;
  // batch_job_ != nullptr marks the batch as open for workers. attached_
  // counts workers currently claiming from next_index_, so the owner never
  // recycles the batch while a late-woken worker might still touch it.
  const std::function<void(std::size_t)>* batch_job_ = nullptr;
  std::size_t batch_count_ = 0;
  std::size_t completed_ = 0;
  int attached_ = 0;
  std::exception_ptr first_error_;
  std::atomic<std::size_t> next_index_{0};
};

}  // namespace dqma::sweep

#include "sweep/result_sink.hpp"

#include <ostream>
#include <utility>

#include "util/require.hpp"

namespace dqma::sweep {

void ResultSink::begin_experiment(std::string name, std::string description) {
  util::require(!open_, "ResultSink: previous experiment still open");
  ExperimentRecord record;
  record.name = std::move(name);
  record.description = std::move(description);
  experiments_.push_back(std::move(record));
  open_ = true;
}

void ResultSink::add_point(ParamPoint params, Metrics metrics,
                           double wall_ms) {
  util::require(open_, "ResultSink::add_point: no open experiment");
  add_point(std::move(params), std::move(metrics), wall_ms,
            experiments_.back().points.size());
}

void ResultSink::add_point(ParamPoint params, Metrics metrics, double wall_ms,
                           std::size_t order) {
  util::require(open_, "ResultSink::add_point: no open experiment");
  experiments_.back().points.push_back(
      {std::move(params), std::move(metrics), wall_ms, order});
}

void ResultSink::end_experiment(double wall_ms) {
  util::require(open_, "ResultSink::end_experiment: no open experiment");
  experiments_.back().wall_ms = wall_ms;
  open_ = false;
}

std::size_t ResultSink::point_count() const {
  std::size_t total = 0;
  for (const auto& experiment : experiments_) {
    total += experiment.points.size();
  }
  return total;
}

Json ResultSink::to_json(const WriteOptions& options) const {
  return trajectory_to_json(experiments_, options);
}

Json trajectory_to_json(const std::vector<ExperimentRecord>& records,
                        const ResultSink::WriteOptions& options) {
  // A "partial" document (one shard, or one coordinated worker) records a
  // subset of the canonical points, so each must carry its order.
  const bool sharded = options.shard_count > 1;
  const bool partial = sharded || options.coordinated;
  Json config = Json::object();
  config.add("smoke", Json(options.smoke));
  config.add("base_seed", Json(options.base_seed));
  if (sharded) {
    config.add("shard", Json(std::to_string(options.shard_index) + "/" +
                             std::to_string(options.shard_count)));
  }
  if (options.coordinated) {
    config.add("coordinated", Json(true));
  }

  Json experiments = Json::array();
  for (const auto& experiment : records) {
    Json points = Json::array();
    for (const auto& point : experiment.points) {
      Json entry = Json::object();
      if (partial) {
        entry.add("order", Json(static_cast<std::uint64_t>(point.order)));
      }
      entry.add("params", Json::from_named_values(point.params));
      entry.add("metrics", Json::from_named_values(point.metrics));
      if (options.include_timings) {
        entry.add("wall_ms", Json(point.wall_ms));
      }
      points.push_back(std::move(entry));
    }
    Json record = Json::object();
    record.add("name", Json(experiment.name));
    record.add("description", Json(experiment.description));
    record.add("points", std::move(points));
    if (options.include_timings) {
      record.add("wall_ms", Json(experiment.wall_ms));
    }
    experiments.push_back(std::move(record));
  }

  Json document = Json::object();
  document.add("schema_version", Json(1));
  document.add("generator", Json("dqma_bench"));
  document.add("config", std::move(config));
  document.add("experiments", std::move(experiments));
  return document;
}

void ResultSink::write_json(std::ostream& os,
                            const WriteOptions& options) const {
  to_json(options).write(os);
}

}  // namespace dqma::sweep

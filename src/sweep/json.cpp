#include "sweep/json.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace dqma::sweep {
namespace {

void write_escaped(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void indent(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) {
    os << "  ";
  }
}

}  // namespace

Json::Json(const Value& value) {
  switch (value.index()) {
    case 0:
      kind_ = Kind::kBool;
      bool_ = std::get<bool>(value);
      break;
    case 1:
      kind_ = Kind::kInt;
      int_ = std::get<long long>(value);
      break;
    case 2:
      kind_ = Kind::kDouble;
      double_ = std::get<double>(value);
      break;
    default:
      kind_ = Kind::kString;
      string_ = std::get<std::string>(value);
  }
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::from_named_values(const NamedValues& values) {
  Json j = object();
  for (const auto& [name, value] : values.entries()) {
    j.add(name, Json(value));
  }
  return j;
}

Json& Json::push_back(Json value) {
  util::require(kind_ == Kind::kArray, "Json::push_back: not an array");
  array_.push_back(std::move(value));
  return *this;
}

Json& Json::add(std::string key, Json value) {
  util::require(kind_ == Kind::kObject, "Json::add: not an object");
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

void Json::write(std::ostream& os) const {
  write_indented(os, 0);
  os << '\n';
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void Json::write_compact(std::ostream& os) const {
  switch (kind_) {
    case Kind::kArray:
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          os << ',';
        }
        array_[i].write_compact(os);
      }
      os << ']';
      break;
    case Kind::kObject:
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          os << ',';
        }
        write_escaped(os, members_[i].first);
        os << ':';
        members_[i].second.write_compact(os);
      }
      os << '}';
      break;
    default:
      write_scalar(os);
  }
}

std::string Json::dump_compact() const {
  std::ostringstream os;
  write_compact(os);
  return os.str();
}

void Json::write_scalar(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      os << int_;
      break;
    case Kind::kUint:
      os << uint_;
      break;
    case Kind::kDouble:
      // Non-finite doubles have no JSON representation; null keeps the
      // document parseable (RFC 8259) instead of emitting bare inf/nan.
      if (std::isfinite(double_)) {
        os << value_to_string(Value(double_));
      } else {
        os << "null";
      }
      break;
    case Kind::kString:
      write_escaped(os, string_);
      break;
    default:
      break;
  }
}

void Json::write_indented(std::ostream& os, int depth) const {
  switch (kind_) {
    case Kind::kNull:
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kUint:
    case Kind::kDouble:
    case Kind::kString:
      write_scalar(os);
      break;
    case Kind::kArray:
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        indent(os, depth + 1);
        array_[i].write_indented(os, depth + 1);
        os << (i + 1 < array_.size() ? ",\n" : "\n");
      }
      indent(os, depth);
      os << ']';
      break;
    case Kind::kObject:
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(os, depth + 1);
        write_escaped(os, members_[i].first);
        os << ": ";
        members_[i].second.write_indented(os, depth + 1);
        os << (i + 1 < members_.size() ? ",\n" : "\n");
      }
      indent(os, depth);
      os << '}';
      break;
  }
}

}  // namespace dqma::sweep

#include "sweep/parallel.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "sweep/thread_pool.hpp"

namespace dqma::sweep {

namespace {

// Global kernel pool, built lazily so set_kernel_threads can be called any
// time before the first region. g_pool_mutex also serializes dispatchers:
// a region holds it for its whole lifetime, and a second thread that fails
// the try_lock simply runs its region serially (same bytes either way).
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_kernel_threads = 1;

// Per-thread override installed by KernelThreadScope.
thread_local ThreadPool* t_scope_pool = nullptr;

void run_serial(
    std::size_t count, const ChunkPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  // Same failure contract as ThreadPool::run_indexed: every chunk runs,
  // the first exception is rethrown after the region drains.
  std::exception_ptr error;
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    const std::size_t begin = c * plan.chunk_size;
    const std::size_t end = std::min(count, begin + plan.chunk_size);
    try {
      fn(c, begin, end);
    } catch (...) {
      if (!error) {
        error = std::current_exception();
      }
    }
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace

ChunkPlan plan_chunks(std::size_t count, std::size_t grain) {
  ChunkPlan plan;
  if (count == 0) {
    return plan;
  }
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t by_cap = (count + kMaxKernelChunks - 1) / kMaxKernelChunks;
  plan.chunk_size = std::max(grain, by_cap);
  plan.chunks = (count + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

void set_kernel_threads(int threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  g_kernel_threads = std::max(threads, 1);
  g_pool.reset();  // rebuilt lazily at the new size
}

KernelThreadScope::KernelThreadScope(int threads)
    : previous_(t_scope_pool), pool_(new ThreadPool(threads)) {
  t_scope_pool = static_cast<ThreadPool*>(pool_);
}

KernelThreadScope::~KernelThreadScope() {
  t_scope_pool = static_cast<ThreadPool*>(previous_);
  delete static_cast<ThreadPool*>(pool_);
}

namespace detail {

bool must_run_serial() { return ThreadPool::executing_batch(); }

void dispatch_chunks(
    std::size_t count, const ChunkPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const auto dispatch = [&](ThreadPool& pool) {
    pool.run_indexed(plan.chunks, [&](std::size_t c) {
      const std::size_t begin = c * plan.chunk_size;
      const std::size_t end = std::min(count, begin + plan.chunk_size);
      fn(c, begin, end);
    });
  };
  if (t_scope_pool != nullptr) {
    dispatch(*t_scope_pool);
    return;
  }
  std::unique_lock<std::mutex> lock(g_pool_mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    run_serial(count, plan, fn);
    return;
  }
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(g_kernel_threads);
  }
  dispatch(*g_pool);
}

}  // namespace detail

}  // namespace dqma::sweep

// The schema_version-1 trajectory document as data: parsing (via the
// dependency-free util/json_reader), shard merging, and the baseline
// comparison behind `dqma_bench --compare`.
//
// Round-trip contract: Trajectory::from_json(parse(bytes)).to_json()
// reproduces `bytes` for any document this repo's writer emitted —
// integers stay integers, doubles re-serialize to the identical shortest
// form, key order is preserved. That is what makes the CI gate
// "merge of N shards == unsharded run, byte for byte" a plain `cmp`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sweep/result_sink.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"

namespace dqma::util::json {
class Node;
}  // namespace dqma::util::json

namespace dqma::sweep {

/// Converts a parsed JSON scalar to the matching sweep Value. Integral
/// literals map to long long, fraction/exponent literals to double,
/// null to NaN (the writer emits null for non-finite doubles, so this is
/// the inverse that keeps re-serialization byte-stable).
Value value_from_json(const util::json::Node& node);

/// An object of scalars -> NamedValues, document order preserved.
NamedValues named_values_from_json(const util::json::Node& node);

/// A parsed (or about-to-be-written) trajectory document.
struct Trajectory {
  bool smoke = false;
  std::uint64_t base_seed = 0;
  /// True when the document carries wall_ms fields (--timings runs).
  bool has_timings = false;
  /// count > 1 for shard documents; points then carry canonical orders.
  ShardSpec shard;
  /// True for an elastic worker's partial document (--coordinate): a
  /// lease-dependent subset of points, each carrying its canonical order.
  /// Merging all finalized workers drops the flag.
  bool coordinated = false;
  std::vector<ExperimentRecord> experiments;

  /// Validates schema_version 1 and the document shape; throws
  /// std::invalid_argument (util::require) on anything unexpected.
  static Trajectory from_json(const util::json::Node& document);
  /// Reads and parses a file; errors mention the path.
  static Trajectory load(const std::string& path);

  Json to_json() const;
};

/// Reassembles shard documents into the canonical complete trajectory:
/// experiments must agree across inputs, configs must match, and the
/// union of point orders per experiment must be exactly 0..n-1 (missing
/// or duplicated orders — a lost or double-counted shard — throw).
/// Passing a single complete document is the identity, which is what lets
/// `--merge one.json --compare baseline.json` act as a file-vs-file diff.
Trajectory merge_trajectories(std::vector<Trajectory> shards);

struct CompareOptions {
  /// Tolerance for floating-point metrics: |a - b| <= tol * max(1, |a|,
  /// |b|) — relative above magnitude 1, absolute below it (so an exact
  /// 0.0 baseline tolerates another toolchain's 1e-17). Integer, boolean
  /// and string metrics always compare exactly (checksums, counters,
  /// labels); a metric is floating when either side carries a fractional
  /// literal.
  double tolerance = 1e-9;
  /// When a subset of experiments was selected (--experiment <name>),
  /// baseline experiments absent from the current run are skipped instead
  /// of failing the comparison.
  bool allow_missing_experiments = false;
};

/// Diffs `current` against `baseline` point by point: configs must match,
/// params must match exactly, metrics compare under the tolerance policy.
/// wall_ms fields (the nondeterministic ones) are ignored. Returns the
/// number of differences, writing one diagnostic line each to `diag`.
std::size_t compare_trajectories(const Trajectory& baseline,
                                 const Trajectory& current,
                                 const CompareOptions& options,
                                 std::ostream& diag);

}  // namespace dqma::sweep

#include "sweep/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/json_reader.hpp"
#include "util/require.hpp"

namespace dqma::sweep {

using util::json::Node;

Value value_from_json(const Node& node) {
  switch (node.kind()) {
    case Node::Kind::kBool:
      return Value(node.as_bool());
    case Node::Kind::kInt:
      return Value(node.as_int());
    case Node::Kind::kDouble:
      return Value(node.as_double());
    case Node::Kind::kString:
      return Value(node.as_string());
    case Node::Kind::kNull:
      // The writer emits null for non-finite doubles; NaN maps back to
      // null on re-serialization, closing the round trip.
      return Value(std::numeric_limits<double>::quiet_NaN());
    default:
      util::require(false,
                    "trajectory: unsupported value kind (nested or uint64 "
                    "param/metric)");
      return Value(false);
  }
}

NamedValues named_values_from_json(const Node& node) {
  NamedValues values;
  for (const auto& [name, value] : node.members()) {
    values.set(name, value_from_json(value));
  }
  return values;
}

Trajectory Trajectory::from_json(const Node& document) {
  Trajectory trajectory;
  util::require(document.is_object() &&
                    document.find("schema_version") != nullptr,
                "trajectory: not a trajectory document");
  util::require(document.at("schema_version").as_int() == 1,
                "trajectory: unsupported schema_version");

  const Node& config = document.at("config");
  trajectory.smoke = config.at("smoke").as_bool();
  trajectory.base_seed = config.at("base_seed").as_uint();
  if (const Node* shard = config.find("shard")) {
    trajectory.shard = ShardSpec::parse(shard->as_string());
  }
  if (const Node* coordinated = config.find("coordinated")) {
    trajectory.coordinated = coordinated->as_bool();
  }

  for (const Node& record : document.at("experiments").items()) {
    ExperimentRecord experiment;
    experiment.name = record.at("name").as_string();
    experiment.description = record.at("description").as_string();
    if (const Node* wall = record.find("wall_ms")) {
      experiment.wall_ms = wall->as_double();
      trajectory.has_timings = true;
    }
    const auto& points = record.at("points").items();
    experiment.points.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Node& point = points[i];
      SinkPoint sink_point;
      sink_point.order =
          point.find("order") != nullptr
              ? static_cast<std::size_t>(point.at("order").as_uint())
              : i;
      sink_point.params = named_values_from_json(point.at("params"));
      sink_point.metrics = named_values_from_json(point.at("metrics"));
      if (const Node* wall = point.find("wall_ms")) {
        sink_point.wall_ms = wall->as_double();
        trajectory.has_timings = true;
      }
      experiment.points.push_back(std::move(sink_point));
    }
    trajectory.experiments.push_back(std::move(experiment));
  }
  return trajectory;
}

Trajectory Trajectory::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  util::require(static_cast<bool>(in), "cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return from_json(util::json::parse(buffer.str()));
  } catch (const std::invalid_argument& error) {
    util::require(false, path + ": " + error.what());
    throw;  // unreachable
  }
}

Json Trajectory::to_json() const {
  ResultSink::WriteOptions options;
  options.smoke = smoke;
  options.base_seed = base_seed;
  options.include_timings = has_timings;
  options.shard_index = shard.index;
  options.shard_count = shard.count;
  options.coordinated = coordinated;
  return trajectory_to_json(experiments, options);
}

Trajectory merge_trajectories(std::vector<Trajectory> shards) {
  util::require(!shards.empty(), "merge: no input documents");
  Trajectory merged = std::move(shards.front());

  for (std::size_t s = 1; s < shards.size(); ++s) {
    Trajectory& shard = shards[s];
    util::require(shard.smoke == merged.smoke &&
                      shard.base_seed == merged.base_seed,
                  "merge: shard configs disagree (smoke/base_seed)");
    util::require(shard.has_timings == merged.has_timings,
                  "merge: cannot mix --timings and untimed shards");
    util::require(shard.shard.count == merged.shard.count,
                  "merge: shard counts disagree");
    util::require(shard.coordinated == merged.coordinated,
                  "merge: cannot mix coordinated worker documents with "
                  "other documents");
    util::require(shard.experiments.size() == merged.experiments.size(),
                  "merge: shards ran different experiment selections");
    for (std::size_t e = 0; e < merged.experiments.size(); ++e) {
      ExperimentRecord& into = merged.experiments[e];
      ExperimentRecord& from = shard.experiments[e];
      util::require(into.name == from.name &&
                        into.description == from.description,
                    "merge: experiment sequence mismatch at '" + into.name +
                        "' vs '" + from.name + "'");
      into.wall_ms += from.wall_ms;
      into.points.insert(into.points.end(),
                         std::make_move_iterator(from.points.begin()),
                         std::make_move_iterator(from.points.end()));
    }
  }

  for (ExperimentRecord& experiment : merged.experiments) {
    std::sort(experiment.points.begin(), experiment.points.end(),
              [](const SinkPoint& a, const SinkPoint& b) {
                return a.order < b.order;
              });
    for (std::size_t i = 0; i < experiment.points.size(); ++i) {
      const std::size_t order = experiment.points[i].order;
      util::require(order >= i,
                    "merge: duplicate point order " + std::to_string(order) +
                        " in experiment " + experiment.name +
                        " (same shard merged twice?)");
      util::require(order <= i,
                    "merge: missing point order " + std::to_string(i) +
                        " in experiment " + experiment.name +
                        " (a shard is absent from the merge)");
    }
  }

  merged.shard = ShardSpec{};    // the canonical complete document
  merged.coordinated = false;
  return merged;
}

namespace {

const char* value_type_name(const Value& value) {
  switch (value.index()) {
    case 0:
      return "bool";
    case 1:
      return "int";
    case 2:
      return "double";
    default:
      return "string";
  }
}

bool is_numeric(const Value& value) {
  return value.index() == 1 || value.index() == 2;
}

/// The per-metric tolerance policy: exact for bool/string and for
/// integer-vs-integer (counters, integer checksums); relative tolerance as
/// soon as either side is floating.
bool values_equivalent(const Value& baseline, const Value& current,
                       double tolerance) {
  if (baseline.index() == current.index() && !is_numeric(baseline)) {
    return baseline == current;
  }
  if (!is_numeric(baseline) || !is_numeric(current)) {
    return false;
  }
  if (baseline.index() == 1 && current.index() == 1) {
    return std::get<long long>(baseline) == std::get<long long>(current);
  }
  const double a = baseline.index() == 1
                       ? static_cast<double>(std::get<long long>(baseline))
                       : std::get<double>(baseline);
  const double b = current.index() == 1
                       ? static_cast<double>(std::get<long long>(current))
                       : std::get<double>(current);
  if (std::isnan(a) || std::isnan(b)) {
    return std::isnan(a) && std::isnan(b);
  }
  if (a == b) {
    return true;
  }
  // Relative above magnitude 1, absolute below: a baseline value of
  // exactly 0.0 must tolerate another toolchain's 1e-17, and acceptance
  // probabilities / soundness errors all live on the O(1) scale.
  return std::abs(a - b) <=
         tolerance * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Emits at most kMaxDiagnostics lines; the return value still counts
/// every difference.
constexpr std::size_t kMaxDiagnostics = 50;

class DiffReporter {
 public:
  explicit DiffReporter(std::ostream& diag) : diag_(diag) {}

  void report(const std::string& message) {
    ++count_;
    if (count_ <= kMaxDiagnostics) {
      diag_ << "compare: " << message << "\n";
    } else if (count_ == kMaxDiagnostics + 1) {
      diag_ << "compare: (further differences suppressed)\n";
    }
  }

  std::size_t count() const { return count_; }

 private:
  std::ostream& diag_;
  std::size_t count_ = 0;
};

std::string point_label(const ExperimentRecord& experiment,
                        const SinkPoint& point) {
  std::string label = experiment.name + "[" + std::to_string(point.order) +
                      "] (";
  bool first = true;
  for (const auto& [name, value] : point.params.entries()) {
    if (!first) {
      label += ", ";
    }
    first = false;
    label += name + "=" + value_to_string(value);
  }
  return label + ")";
}

void compare_points(const ExperimentRecord& baseline_experiment,
                    const SinkPoint& baseline, const SinkPoint& current,
                    const CompareOptions& options, DiffReporter& reporter) {
  const std::string label = point_label(baseline_experiment, baseline);
  // serialize_identically, not ==: params that came through a JSON round
  // trip carry the int/double ambiguity (0.0 reads back as 0).
  if (!serialize_identically(baseline.params, current.params)) {
    reporter.report(label + ": params changed");
    return;
  }
  for (const auto& [name, baseline_value] : baseline.metrics.entries()) {
    const Value* current_value = current.metrics.find(name);
    if (current_value == nullptr) {
      reporter.report(label + ": metric '" + name + "' disappeared");
      continue;
    }
    if (!values_equivalent(baseline_value, *current_value,
                           options.tolerance)) {
      reporter.report(label + ": metric '" + name + "' " +
                      value_to_string(baseline_value) + " (" +
                      value_type_name(baseline_value) + ") -> " +
                      value_to_string(*current_value) + " (" +
                      value_type_name(*current_value) + ")");
    }
  }
  for (const auto& [name, value] : current.metrics.entries()) {
    if (baseline.metrics.find(name) == nullptr) {
      reporter.report(label + ": new metric '" + name +
                      "' absent from the baseline");
    }
  }
}

}  // namespace

std::size_t compare_trajectories(const Trajectory& baseline,
                                 const Trajectory& current,
                                 const CompareOptions& options,
                                 std::ostream& diag) {
  DiffReporter reporter(diag);

  if (baseline.smoke != current.smoke ||
      baseline.base_seed != current.base_seed) {
    reporter.report(
        "config mismatch: baseline (smoke " +
        std::string(baseline.smoke ? "true" : "false") + ", seed " +
        std::to_string(baseline.base_seed) + ") vs current (smoke " +
        std::string(current.smoke ? "true" : "false") + ", seed " +
        std::to_string(current.base_seed) +
        ") — these are different workloads");
    return reporter.count();
  }
  if (baseline.shard.active() || current.shard.active()) {
    reporter.report("shard documents cannot be compared (merge them first)");
    return reporter.count();
  }
  if (baseline.coordinated || current.coordinated) {
    reporter.report(
        "coordinated worker documents cannot be compared (merge the "
        "finalized workers first)");
    return reporter.count();
  }

  for (const ExperimentRecord& baseline_experiment : baseline.experiments) {
    const ExperimentRecord* current_experiment = nullptr;
    for (const ExperimentRecord& candidate : current.experiments) {
      if (candidate.name == baseline_experiment.name) {
        current_experiment = &candidate;
        break;
      }
    }
    if (current_experiment == nullptr) {
      if (!options.allow_missing_experiments) {
        reporter.report("experiment '" + baseline_experiment.name +
                        "' missing from the current run");
      }
      continue;
    }
    if (baseline_experiment.points.size() !=
        current_experiment->points.size()) {
      reporter.report(
          "experiment '" + baseline_experiment.name + "': point count " +
          std::to_string(baseline_experiment.points.size()) + " -> " +
          std::to_string(current_experiment->points.size()));
      continue;
    }
    for (std::size_t i = 0; i < baseline_experiment.points.size(); ++i) {
      compare_points(baseline_experiment, baseline_experiment.points[i],
                     current_experiment->points[i], options, reporter);
    }
  }

  for (const ExperimentRecord& current_experiment : current.experiments) {
    bool known = false;
    for (const ExperimentRecord& candidate : baseline.experiments) {
      if (candidate.name == current_experiment.name) {
        known = true;
        break;
      }
    }
    if (!known) {
      reporter.report("experiment '" + current_experiment.name +
                      "' absent from the baseline (refresh it?)");
    }
  }

  return reporter.count();
}

}  // namespace dqma::sweep

#include "sweep/sweep.hpp"

#include <charconv>
#include <chrono>

#include "util/require.hpp"

namespace dqma::sweep {

std::string value_to_string(const Value& value) {
  switch (value.index()) {
    case 0:
      return std::get<bool>(value) ? "true" : "false";
    case 1:
      return std::to_string(std::get<long long>(value));
    case 2: {
      // Shortest round-trip form: deterministic across runs and thread
      // counts, and re-parses to the identical double.
      char buffer[32];
      const double d = std::get<double>(value);
      const auto [end, ec] =
          std::to_chars(buffer, buffer + sizeof(buffer), d);
      util::require(ec == std::errc(), "value_to_string: to_chars failed");
      return std::string(buffer, end);
    }
    default:
      return std::get<std::string>(value);
  }
}

NamedValues& NamedValues::set(std::string name, Value value) {
  entries_.emplace_back(std::move(name), std::move(value));
  return *this;
}
NamedValues& NamedValues::set(std::string name, bool value) {
  return set(std::move(name), Value(value));
}
NamedValues& NamedValues::set(std::string name, int value) {
  return set(std::move(name), Value(static_cast<long long>(value)));
}
NamedValues& NamedValues::set(std::string name, long long value) {
  return set(std::move(name), Value(value));
}
NamedValues& NamedValues::set(std::string name, double value) {
  return set(std::move(name), Value(value));
}
NamedValues& NamedValues::set(std::string name, const char* value) {
  return set(std::move(name), Value(std::string(value)));
}
NamedValues& NamedValues::set(std::string name, std::string value) {
  return set(std::move(name), Value(std::move(value)));
}

const Value* NamedValues::find(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

bool NamedValues::get_bool(std::string_view name) const {
  const Value* v = find(name);
  util::require(v != nullptr && std::holds_alternative<bool>(*v),
          "NamedValues::get_bool: missing or non-bool entry");
  return std::get<bool>(*v);
}

long long NamedValues::get_int(std::string_view name) const {
  const Value* v = find(name);
  util::require(v != nullptr && std::holds_alternative<long long>(*v),
          "NamedValues::get_int: missing or non-integer entry");
  return std::get<long long>(*v);
}

double NamedValues::get_double(std::string_view name) const {
  const Value* v = find(name);
  util::require(v != nullptr, "NamedValues::get_double: missing entry");
  if (std::holds_alternative<long long>(*v)) {
    return static_cast<double>(std::get<long long>(*v));
  }
  util::require(std::holds_alternative<double>(*v),
          "NamedValues::get_double: non-numeric entry");
  return std::get<double>(*v);
}

const std::string& NamedValues::get_string(std::string_view name) const {
  const Value* v = find(name);
  util::require(v != nullptr && std::holds_alternative<std::string>(*v),
          "NamedValues::get_string: missing or non-string entry");
  return std::get<std::string>(*v);
}

ParamGrid& ParamGrid::axis(std::string name, std::vector<Value> values) {
  util::require(!values.empty(), "ParamGrid::axis: empty axis");
  axes_.emplace_back(std::move(name), std::move(values));
  return *this;
}
ParamGrid& ParamGrid::axis(std::string name, std::vector<int> values) {
  std::vector<Value> converted;
  converted.reserve(values.size());
  for (int v : values) converted.emplace_back(static_cast<long long>(v));
  return axis(std::move(name), std::move(converted));
}
ParamGrid& ParamGrid::axis(std::string name, std::vector<long long> values) {
  std::vector<Value> converted(values.begin(), values.end());
  return axis(std::move(name), std::move(converted));
}
ParamGrid& ParamGrid::axis(std::string name, std::vector<double> values) {
  std::vector<Value> converted(values.begin(), values.end());
  return axis(std::move(name), std::move(converted));
}
ParamGrid& ParamGrid::axis(std::string name,
                           std::vector<std::string> values) {
  std::vector<Value> converted;
  converted.reserve(values.size());
  for (auto& v : values) converted.emplace_back(std::move(v));
  return axis(std::move(name), std::move(converted));
}

std::size_t ParamGrid::size() const {
  std::size_t total = axes_.empty() ? 0 : 1;
  for (const auto& [name, values] : axes_) {
    total *= values.size();
  }
  return total;
}

std::vector<ParamPoint> ParamGrid::enumerate() const {
  std::vector<ParamPoint> points;
  const std::size_t total = size();
  points.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    // Mixed-radix decomposition, last axis fastest.
    ParamPoint point;
    std::size_t stride = total;
    std::size_t rest = index;
    for (const auto& [name, values] : axes_) {
      stride /= values.size();
      point.set(name, values[rest / stride]);
      rest %= stride;
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<JobResult> run_sweep(ThreadPool& pool,
                                 const std::vector<ParamPoint>& points,
                                 std::uint64_t base_seed, const JobFn& fn) {
  std::vector<JobResult> results(points.size());
  std::vector<std::size_t> all(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    all[i] = i;
  }
  run_sweep_selected(pool, points, base_seed, fn, all, results);
  return results;
}

void run_sweep_selected(ThreadPool& pool,
                        const std::vector<ParamPoint>& points,
                        std::uint64_t base_seed, const JobFn& fn,
                        const std::vector<std::size_t>& selected,
                        std::vector<JobResult>& results,
                        const JobCompleteFn& on_complete,
                        const JobAdmitFn& admit) {
  util::require(results.size() == points.size(),
                "run_sweep_selected: results/points size mismatch");
  pool.run_indexed(selected.size(), [&](std::size_t slot) {
    const std::size_t i = selected[slot];
    if (admit && !admit(i)) {
      results[i].skipped = true;
      return;
    }
    util::Rng rng(util::derive_seed(base_seed, i));
    const auto start = std::chrono::steady_clock::now();
    results[i].metrics = fn(points[i], rng);
    results[i].wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    results[i].skipped = false;
    if (on_complete) {
      on_complete(i, results[i]);
    }
  });
}

bool serialize_identically(const NamedValues& a, const NamedValues& b) {
  if (a.size() != b.size()) {
    return false;
  }
  const auto numeric = [](const Value& v) {
    return v.index() == 1 || v.index() == 2;
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& [a_name, a_value] = a.entries()[i];
    const auto& [b_name, b_value] = b.entries()[i];
    if (a_name != b_name) {
      return false;
    }
    if (a_value.index() == b_value.index()) {
      if (!(a_value == b_value)) {
        return false;
      }
    } else if (!numeric(a_value) || !numeric(b_value) ||
               value_to_string(a_value) != value_to_string(b_value)) {
      // Cross-type values serialize identically only in the int/double
      // ambiguity case (strings are quoted, booleans are keywords).
      return false;
    }
  }
  return true;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace dqma::sweep

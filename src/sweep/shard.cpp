#include "sweep/shard.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define DQMA_HAVE_FSYNC 1
#endif

#include "sweep/json.hpp"
#include "sweep/trajectory.hpp"
#include "util/fault.hpp"
#include "util/json_reader.hpp"
#include "util/require.hpp"

namespace dqma::sweep {
namespace {

/// Log format version; bumped only if the line schema changes.
constexpr int kCheckpointVersion = 1;

/// fsync is on unless DQMA_CHECKPOINT_FSYNC is set to 0/off/false: flush()
/// alone hands the bytes to the OS page cache, so a host crash (power
/// loss, kernel panic) could lose checkpoint lines the process already
/// reported durable to a resume orchestrator.
bool fsync_requested() {
  const char* value = std::getenv("DQMA_CHECKPOINT_FSYNC");
  if (value == nullptr) {
    return true;
  }
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "false") != 0;
}

bool parse_int(std::string_view text, int& out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [end, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && end == last;
}

}  // namespace

std::string ShardSpec::label() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

ShardSpec ShardSpec::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  ShardSpec spec;
  util::require(slash != std::string::npos &&
                    parse_int(std::string_view(text).substr(0, slash),
                              spec.index) &&
                    parse_int(std::string_view(text).substr(slash + 1),
                              spec.count) &&
                    spec.count >= 1 && spec.index >= 0 &&
                    spec.index < spec.count,
                "invalid shard spec '" + text +
                    "' (expected i/N with 0 <= i < N)");
  return spec;
}

CheckpointLog::CheckpointLog(std::string path, std::uint64_t base_seed,
                             bool smoke, const ShardSpec& shard)
    : path_(std::move(path)) {
  std::string contents;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      contents = buffer.str();
    }
  }

  bool have_header = false;
  std::size_t line_start = 0;
  std::size_t line_number = 0;
  // Only newline-terminated lines count as committed. A final line
  // without its '\n' — parseable or not — is the crash-in-mid-write
  // case: the point it described was never acknowledged, so it is
  // dropped AND truncated from the file below (appending after a torn
  // fragment would corrupt the log for every later resume).
  const std::size_t committed_end = contents.rfind('\n') == std::string::npos
                                        ? 0
                                        : contents.rfind('\n') + 1;
  while (line_start < committed_end) {
    const std::size_t line_end = contents.find('\n', line_start);
    const std::string_view line(contents.data() + line_start,
                                line_end - line_start);
    line_start = line_end + 1;
    ++line_number;
    if (line.empty()) {
      continue;
    }

    util::json::Node node;
    try {
      node = util::json::parse(line);
    } catch (const std::invalid_argument&) {
      util::require(false, "checkpoint log " + path_ + ": malformed line " +
                               std::to_string(line_number));
    }

    if (!have_header) {
      util::require(
          node.is_object() && node.find("dqma_checkpoint") != nullptr,
          "checkpoint log " + path_ + ": missing header line");
      util::require(node.at("dqma_checkpoint").as_int() == kCheckpointVersion,
                    "checkpoint log " + path_ +
                        ": unsupported checkpoint version");
      util::require(
          node.at("base_seed").as_uint() == base_seed &&
              node.at("smoke").as_bool() == smoke &&
              node.at("shard").as_string() == shard.label(),
          "checkpoint log " + path_ +
              ": header does not match this run's configuration (seed " +
              std::to_string(base_seed) + ", smoke " +
              (smoke ? "true" : "false") + ", shard " + shard.label() +
              ") — resuming would mix incompatible results");
      have_header = true;
      continue;
    }

    Entry entry;
    entry.key = node.at("key").as_uint();
    entry.params = named_values_from_json(node.at("params"));
    entry.metrics = named_values_from_json(node.at("metrics"));
    entry.wall_ms = node.at("wall_ms").as_double();
    const std::string& experiment = node.at("experiment").as_string();
    const auto order = static_cast<std::size_t>(node.at("order").as_uint());
    entries_[{experiment, order}] = std::move(entry);
  }

  if (committed_end < contents.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path_, committed_end, ec);
    util::require(!ec, "checkpoint log " + path_ +
                           ": cannot truncate torn final line");
  }

  out_.open(path_, std::ios::app);
  util::require(static_cast<bool>(out_),
                "cannot open checkpoint log " + path_ + " for appending");
#ifdef DQMA_HAVE_FSYNC
  if (fsync_requested()) {
    // A second descriptor on the same file: fsync(2) commits the file's
    // data regardless of which fd wrote it, so the ofstream keeps its
    // buffered formatting path and this fd exists only to sync.
    sync_fd_ = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
    util::require(sync_fd_ >= 0,
                  "cannot open checkpoint log " + path_ + " for fsync");
    // fsync on the file commits its *contents*; the directory entry that
    // names a freshly created file is separate metadata. Without a one-time
    // fsync of the containing directory a host crash right after creation
    // can lose the log itself, even though every line in it was synced.
    const std::filesystem::path parent =
        std::filesystem::path(path_).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0) {
      directory_synced_ = ::fsync(dir_fd) == 0;
      ::close(dir_fd);
    }
  }
#endif
  if (!have_header) {
    Json header = Json::object();
    header.add("dqma_checkpoint", Json(kCheckpointVersion));
    header.add("base_seed", Json(base_seed));
    header.add("smoke", Json(smoke));
    header.add("shard", Json(shard.label()));
    header.write_compact(out_);
    out_ << '\n';
    const std::lock_guard<std::mutex> lock(mutex_);
    commit_locked();
  }
}

CheckpointLog::~CheckpointLog() {
#ifdef DQMA_HAVE_FSYNC
  if (sync_fd_ >= 0) {
    ::close(sync_fd_);
  }
#endif
}

void CheckpointLog::commit_locked() {
  out_.flush();
#ifdef DQMA_HAVE_FSYNC
  if (sync_fd_ >= 0) {
    ::fsync(sync_fd_);
  }
#endif
}

const CheckpointLog::Entry* CheckpointLog::find(const std::string& experiment,
                                                std::size_t order) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find({experiment, order});
  return it == entries_.end() ? nullptr : &it->second;
}

std::size_t CheckpointLog::loaded_entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void CheckpointLog::append(const std::string& experiment,
                           const std::string& series, std::size_t order,
                           std::uint64_t key, const ParamPoint& params,
                           const JobResult& result) {
  util::fault::point(util::fault::Site::kCheckpoint);
  Json line = Json::object();
  line.add("experiment", Json(experiment));
  line.add("series", Json(series));
  line.add("order", Json(static_cast<std::uint64_t>(order)));
  line.add("key", Json(key));
  line.add("params", Json::from_named_values(params));
  line.add("metrics", Json::from_named_values(result.metrics));
  line.add("wall_ms", Json(result.wall_ms));
  const std::string text = line.dump_compact();

  const std::lock_guard<std::mutex> lock(mutex_);
  if (util::fault::should_tear(util::fault::Site::kCheckpoint)) {
    // Crash-in-mid-write: persist a strict prefix with no newline, then die.
    // The resume path must drop AND truncate exactly this fragment.
    out_ << text.substr(0, text.size() / 2);
    commit_locked();
    util::fault::crash_now();
  }
  out_ << text << '\n';
  commit_locked();

  Entry entry;
  entry.key = key;
  entry.params = params;
  entry.metrics = result.metrics;
  entry.wall_ms = result.wall_ms;
  entries_[{experiment, order}] = std::move(entry);
}

}  // namespace dqma::sweep

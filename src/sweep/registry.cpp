#include "sweep/registry.hpp"

#include "sweep/parallel.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <ostream>
#include <string>
#include <system_error>

#include <random>

#include "linalg/simd.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/trajectory.hpp"
#include "util/require.hpp"
#include "util/scratch.hpp"
#include "util/table.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace dqma::sweep {
namespace {

std::vector<Experiment>& registry() {
  static std::vector<Experiment> experiments;
  return experiments;
}

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

void register_experiment(Experiment experiment) {
  util::require(!experiment.name.empty(),
                "register_experiment: empty experiment name");
  for (const auto& existing : registry()) {
    util::require(existing.name != experiment.name,
                  "register_experiment: duplicate name " + experiment.name);
  }
  registry().push_back(std::move(experiment));
}

const std::vector<Experiment>& experiments() { return registry(); }

ExperimentContext::ExperimentContext(const Experiment& experiment,
                                     ThreadPool& pool, ResultSink& sink,
                                     std::ostream& out, bool smoke,
                                     std::uint64_t global_seed,
                                     const RunControls* controls)
    : name_(experiment.name),
      pool_(pool),
      sink_(sink),
      out_(out),
      smoke_(smoke),
      base_seed_(util::derive_seed(global_seed, fnv1a64(experiment.name))),
      controls_(controls) {}

std::vector<JobResult> ExperimentContext::sweep(
    const std::string& series, const std::vector<ParamPoint>& points,
    const JobFn& fn, const SweepPolicy& policy) {
  const std::uint64_t series_seed =
      util::derive_seed(base_seed_, fnv1a64(series));
  const std::size_t first_order = next_order_;
  next_order_ += points.size();

  // Partition keys. kPartition/kReplicate key each point by its RNG seed;
  // kGroupBy keys the whole group by its parameter value so the group is
  // all-or-nothing per shard. Seeding is identical in every mode.
  std::vector<std::uint64_t> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (policy.mode == SweepPolicy::Mode::kGroupBy) {
      const Value* group = points[i].find(policy.group_param);
      util::require(group != nullptr,
                    "sweep '" + series + "': group_by param '" +
                        policy.group_param + "' missing from point");
      keys[i] = util::derive_seed(series_seed,
                                  fnv1a64(value_to_string(*group)));
    } else {
      keys[i] = util::derive_seed(series_seed, i);
    }
  }

  if (controls_ != nullptr && controls_->coordinator != nullptr) {
    return coordinated_sweep(series, points, fn, policy, keys, series_seed,
                             first_order);
  }

  const ShardSpec shard = controls_ ? controls_->shard : ShardSpec{};
  CheckpointLog* log = controls_ ? controls_->checkpoint : nullptr;

  std::vector<JobResult> results(points.size());
  std::vector<char> mine(points.size(), 1);
  std::vector<std::size_t> to_run;
  to_run.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    mine[i] = shard.contains(keys[i]) ? 1 : 0;
    const CheckpointLog::Entry* cached =
        (mine[i] != 0 && log != nullptr)
            ? log->find(name_, first_order + i)
            : nullptr;
    if (cached != nullptr) {
      util::require(cached->key == keys[i] &&
                        serialize_identically(cached->params, points[i]),
                    "resume: checkpoint entry for " + name_ + "[" +
                        std::to_string(first_order + i) +
                        "] does not match this run's job (the log belongs "
                        "to a different workload)");
      results[i].metrics = cached->metrics;
      results[i].wall_ms = cached->wall_ms;
    } else if (mine[i] != 0 ||
               policy.mode == SweepPolicy::Mode::kReplicate) {
      to_run.push_back(i);
    } else {
      results[i].skipped = true;
    }
  }

  JobCompleteFn on_complete;
  if (log != nullptr) {
    on_complete = [&](std::size_t i, const JobResult& result) {
      if (mine[i] != 0) {
        log->append(name_, series, first_order + i, keys[i], points[i],
                    result);
      }
    };
  }
  run_sweep_selected(pool_, points, series_seed, fn, to_run, results,
                     on_complete);

  for (std::size_t i = 0; i < points.size(); ++i) {
    if (mine[i] != 0) {
      add_to_sink(series, points[i], results[i].metrics, results[i].wall_ms,
                  first_order + i);
    }
  }
  return results;
}

std::vector<JobResult> ExperimentContext::sweep(const std::string& series,
                                                const ParamGrid& grid,
                                                const JobFn& fn,
                                                const SweepPolicy& policy) {
  return sweep(series, grid.enumerate(), fn, policy);
}

std::vector<JobResult> ExperimentContext::coordinated_sweep(
    const std::string& series, const std::vector<ParamPoint>& points,
    const JobFn& fn, const SweepPolicy& policy,
    const std::vector<std::uint64_t>& keys, std::uint64_t series_seed,
    std::size_t first_order) {
  using Claim = Coordinator::Claim;
  Coordinator& coordinator = *controls_->coordinator;
  CheckpointLog& log = coordinator.log();

  std::vector<JobResult> results(points.size());
  std::vector<char> mine(points.size(), 0);
  std::vector<std::size_t> to_run;
  to_run.reserve(points.size());

  // This worker's own log caches units it completed in an earlier pass (or
  // in a pre-crash run under the same worker id): committed results are
  // re-recorded from the log instead of recomputed.
  std::vector<const CheckpointLog::Entry*> cached(points.size(), nullptr);
  for (std::size_t i = 0; i < points.size(); ++i) {
    cached[i] = log.find(name_, first_order + i);
    if (cached[i] != nullptr) {
      util::require(cached[i]->key == keys[i] &&
                        serialize_identically(cached[i]->params, points[i]),
                    "coordinate: checkpoint entry for " + name_ + "[" +
                        std::to_string(first_order + i) +
                        "] does not match this run's job (the directory "
                        "belongs to a different workload)");
    }
  }
  const auto prefill = [&](std::size_t i) {
    results[i].metrics = cached[i]->metrics;
    results[i].wall_ms = cached[i]->wall_ms;
  };

  if (policy.mode == SweepPolicy::Mode::kGroupBy) {
    // Groups are all-or-nothing lease units, acquired up front (a group's
    // points must land in one worker so its reduction can run there).
    std::vector<std::uint64_t> group_keys;    // unique, first-appearance
    std::vector<std::uint64_t> held_groups;   // leases to complete
    std::vector<std::vector<std::size_t>> members;
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t g = 0;
      while (g < group_keys.size() && group_keys[g] != keys[i]) {
        ++g;
      }
      if (g == group_keys.size()) {
        group_keys.push_back(keys[i]);
        members.emplace_back();
      }
      members[g].push_back(i);
    }
    for (std::size_t g = 0; g < group_keys.size(); ++g) {
      const bool fully_cached =
          std::all_of(members[g].begin(), members[g].end(),
                      [&](std::size_t i) { return cached[i] != nullptr; });
      // A fully cached group commits without re-leasing; otherwise the
      // lease is held across the sweep and completed after every member's
      // result is in the log (crash ordering: log before done marker).
      const Claim claim = fully_cached
                              ? coordinator.commit_ready(group_keys[g])
                              : coordinator.acquire(group_keys[g]);
      if (claim != Claim::kAcquired) {
        for (const std::size_t i : members[g]) {
          results[i].skipped = true;
        }
        continue;
      }
      if (!fully_cached) {
        held_groups.push_back(group_keys[g]);
      }
      for (const std::size_t i : members[g]) {
        mine[i] = 1;
        if (cached[i] != nullptr) {
          prefill(i);
        } else {
          to_run.push_back(i);
        }
      }
    }
    const JobCompleteFn on_complete = [&](std::size_t i,
                                          const JobResult& result) {
      log.append(name_, series, first_order + i, keys[i], points[i], result);
    };
    run_sweep_selected(pool_, points, series_seed, fn, to_run, results,
                       on_complete);
    for (const std::uint64_t group : held_groups) {
      coordinator.complete(group);
    }
  } else if (policy.mode == SweepPolicy::Mode::kReplicate) {
    // Every worker computes all points (the body needs complete results for
    // cross-point post-processing); leases only decide which worker RECORDS
    // each point, resolved after the values exist.
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (cached[i] != nullptr) {
        prefill(i);
      } else {
        to_run.push_back(i);
      }
    }
    run_sweep_selected(pool_, points, series_seed, fn, to_run, results);
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (cached[i] != nullptr) {
        mine[i] = coordinator.commit_ready(keys[i]) == Claim::kAcquired;
      } else if (coordinator.acquire(keys[i]) == Claim::kAcquired) {
        log.append(name_, series, first_order + i, keys[i], points[i],
                   results[i]);
        coordinator.complete(keys[i]);
        mine[i] = 1;
      }
    }
  } else {  // kPartition
    // Cached points commit up front; the rest are leased lazily on the
    // pool thread just before execution (the admit hook), so concurrent
    // workers steal work from each other point by point.
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (cached[i] == nullptr) {
        to_run.push_back(i);
        continue;
      }
      if (coordinator.commit_ready(keys[i]) == Claim::kAcquired) {
        prefill(i);
        mine[i] = 1;
      } else {
        results[i].skipped = true;
      }
    }
    const JobAdmitFn admit = [&](std::size_t i) {
      if (coordinator.acquire(keys[i]) == Claim::kAcquired) {
        mine[i] = 1;
        return true;
      }
      return false;
    };
    const JobCompleteFn on_complete = [&](std::size_t i,
                                          const JobResult& result) {
      log.append(name_, series, first_order + i, keys[i], points[i], result);
      coordinator.complete(keys[i]);
    };
    run_sweep_selected(pool_, points, series_seed, fn, to_run, results,
                       on_complete, admit);
  }

  for (std::size_t i = 0; i < points.size(); ++i) {
    if (mine[i] != 0) {
      add_to_sink(series, points[i], results[i].metrics, results[i].wall_ms,
                  first_order + i);
    }
  }
  return results;
}

std::vector<JobResult> ExperimentContext::serial_sweep(
    const std::string& series, const std::vector<ParamPoint>& points,
    const JobFn& fn) {
  const std::uint64_t series_seed =
      util::derive_seed(base_seed_, fnv1a64(series));
  const std::size_t first_order = next_order_;
  next_order_ += points.size();

  if (controls_ != nullptr && controls_->coordinator != nullptr) {
    // Serial work stealing: each point is leased right before it runs —
    // still on the calling thread, so the kernels inside fn keep their
    // kernel-pool parallelism — and committed once its result is logged.
    using Claim = Coordinator::Claim;
    Coordinator& coordinator = *controls_->coordinator;
    CheckpointLog& log = coordinator.log();
    std::vector<JobResult> results(points.size());
    std::vector<char> mine(points.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::uint64_t key = util::derive_seed(series_seed, i);
      const CheckpointLog::Entry* cached = log.find(name_, first_order + i);
      if (cached != nullptr) {
        util::require(cached->key == key &&
                          serialize_identically(cached->params, points[i]),
                      "coordinate: checkpoint entry for " + name_ + "[" +
                          std::to_string(first_order + i) +
                          "] does not match this run's job (the directory "
                          "belongs to a different workload)");
        if (coordinator.commit_ready(key) == Claim::kAcquired) {
          results[i].metrics = cached->metrics;
          results[i].wall_ms = cached->wall_ms;
          mine[i] = 1;
        } else {
          results[i].skipped = true;
        }
        continue;
      }
      if (coordinator.acquire(key) != Claim::kAcquired) {
        results[i].skipped = true;
        continue;
      }
      mine[i] = 1;
      util::Rng rng(key);  // sweep()'s exact per-point seeding
      const auto start = std::chrono::steady_clock::now();
      results[i].metrics = fn(points[i], rng);
      results[i].wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      log.append(name_, series, first_order + i, key, points[i], results[i]);
      coordinator.complete(key);
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (mine[i] != 0) {
        add_to_sink(series, points[i], results[i].metrics,
                    results[i].wall_ms, first_order + i);
      }
    }
    return results;
  }

  const ShardSpec shard = controls_ ? controls_->shard : ShardSpec{};
  CheckpointLog* log = controls_ ? controls_->checkpoint : nullptr;

  std::vector<JobResult> results(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t key = util::derive_seed(series_seed, i);
    if (!shard.contains(key)) {
      results[i].skipped = true;
      continue;
    }
    const CheckpointLog::Entry* cached =
        log != nullptr ? log->find(name_, first_order + i) : nullptr;
    if (cached != nullptr) {
      util::require(cached->key == key &&
                        serialize_identically(cached->params, points[i]),
                    "resume: checkpoint entry for " + name_ + "[" +
                        std::to_string(first_order + i) +
                        "] does not match this run's job (the log belongs "
                        "to a different workload)");
      results[i].metrics = cached->metrics;
      results[i].wall_ms = cached->wall_ms;
      continue;
    }
    util::Rng rng(key);  // == point_rng(series, i): sweep()'s exact seeding
    const auto start = std::chrono::steady_clock::now();
    results[i].metrics = fn(points[i], rng);
    results[i].wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (log != nullptr) {
      log->append(name_, series, first_order + i, key, points[i],
                  results[i]);
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!results[i].skipped) {
      add_to_sink(series, points[i], results[i].metrics, results[i].wall_ms,
                  first_order + i);
    }
  }
  return results;
}

std::uint64_t ExperimentContext::next_record_key(const std::string& series) {
  const std::uint64_t series_seed =
      util::derive_seed(base_seed_, fnv1a64(series));
  return util::derive_seed(series_seed, record_counts_[series]++);
}

void ExperimentContext::add_to_sink(const std::string& series,
                                    const ParamPoint& params, Metrics metrics,
                                    double wall_ms, std::size_t order) {
  ParamPoint prefixed;
  prefixed.set("series", series);
  for (const auto& [name, value] : params.entries()) {
    prefixed.set(name, value);
  }
  sink_.add_point(std::move(prefixed), std::move(metrics), wall_ms, order);
}

void ExperimentContext::record(const std::string& series, ParamPoint params,
                               Metrics metrics, double wall_ms) {
  const std::uint64_t key = next_record_key(series);
  const std::size_t order = next_order_++;
  if (controls_ != nullptr && controls_->coordinator != nullptr) {
    // The value was computed inline (every worker has it); the lease
    // protocol only decides which worker's document carries the point.
    if (controls_->coordinator->commit_ready(key) ==
        Coordinator::Claim::kAcquired) {
      add_to_sink(series, params, std::move(metrics), wall_ms, order);
    }
    return;
  }
  if (controls_ == nullptr || controls_->shard.contains(key)) {
    add_to_sink(series, params, std::move(metrics), wall_ms, order);
  }
}

void ExperimentContext::record_owned(const std::string& series,
                                     ParamPoint params, Metrics metrics,
                                     double wall_ms) {
  const std::uint64_t key = next_record_key(series);
  const std::size_t order = next_order_++;
  add_to_sink(series, params, std::move(metrics), wall_ms, order);
  if (controls_ != nullptr && controls_->coordinator != nullptr) {
    // Releases the lease owns_next_record() took for this point (without
    // this, peers would see the point kBusy forever and never converge).
    controls_->coordinator->complete(key);
  }
}

void ExperimentContext::skip_record(const std::string& series) {
  next_record_key(series);
  ++next_order_;
}

bool ExperimentContext::owns_next_record(const std::string& series) const {
  if (controls_ == nullptr) {
    return true;
  }
  const auto it = record_counts_.find(series);
  const std::uint64_t index = it == record_counts_.end() ? 0 : it->second;
  const std::uint64_t series_seed =
      util::derive_seed(base_seed_, fnv1a64(series));
  const std::uint64_t key = util::derive_seed(series_seed, index);
  if (controls_->coordinator != nullptr) {
    // Leases the point: true means compute it and call record_owned()
    // (which completes the lease); false means another worker owns it —
    // call skip_record() as in the shard case. acquire() is idempotent, so
    // asking twice before recording is safe.
    return controls_->coordinator->acquire(key) ==
           Coordinator::Claim::kAcquired;
  }
  if (!controls_->shard.active()) {
    return true;
  }
  return controls_->shard.contains(key);
}

util::Rng ExperimentContext::series_rng(const std::string& series) const {
  return util::Rng(util::derive_seed(base_seed_, fnv1a64(series)));
}

util::Rng ExperimentContext::point_rng(const std::string& series,
                                       std::size_t index) const {
  const std::uint64_t series_seed =
      util::derive_seed(base_seed_, fnv1a64(series));
  return util::Rng(util::derive_seed(series_seed, index));
}

namespace {

void print_usage(std::ostream& os, const char* forced_experiment) {
  os << "Usage: dqma_bench [options]\n\n"
        "Options:\n";
  if (forced_experiment == nullptr) {
    os << "  --experiment <name|all>  experiment(s) to run (repeatable; "
          "default all)\n"
          "  --list                   list registered experiments and exit\n";
  }
  os << "  --json <path>            write structured results (schema v1); "
        "'-' for stdout\n"
        "  --threads <N>            sweep threads (default: hardware "
        "concurrency)\n"
        "  --smoke                  shrink heavy sweeps (same as "
        "DQMA_BENCH_SMOKE=1)\n"
        "  --seed <N>               global base seed (default 0)\n"
        "  --timings                include nondeterministic wall_ms fields "
        "in JSON\n"
        "  --shard <i/N>            run shard i of N (0-based): a "
        "deterministic,\n"
        "                           disjoint slice of the job space; "
        "--merge of all\n"
        "                           N shard JSONs == the unsharded document\n"
        "  --resume <log.jsonl>     checkpoint log: completed points are "
        "appended as\n"
        "                           they finish and skipped on the next run\n"
        "  --merge <a.json> <b.json> ...\n"
        "                           reassemble shard documents into the "
        "canonical\n"
        "                           trajectory (write it with --json)\n"
        "  --compare <baseline.json>\n"
        "                           diff the produced document against a "
        "baseline\n"
        "                           (exact for int/bool/string metrics, "
        "relative\n"
        "                           tolerance for floating ones); exit 1 on "
        "any diff\n"
        "  --tolerance <x>          floating tolerance for --compare "
        "(default 1e-9)\n"
        "  --simd <level>           kernel dispatch level: scalar|avx2|"
        "avx512|native\n"
        "                           (default: DQMA_SIMD env var, else CPU "
        "detection)\n"
        "  --scratch <dir>          enable memory-mapped scratch tiles in "
        "<dir>,\n"
        "                           unlocking dense density passes past the "
        "in-core\n"
        "                           cap (default: DQMA_SCRATCH_DIR env var, "
        "else off)\n"
        "  --coordinate <dir>       elastic worker mode: lease work units "
        "from the\n"
        "                           shared directory <dir> (any number of "
        "workers,\n"
        "                           crash-tolerant); requires --json; "
        "--merge of all\n"
        "                           finalized workers == the monolithic "
        "document\n"
        "  --worker <id>            stable worker id for --coordinate "
        "(default:\n"
        "                           generated; reuse it to resume a crashed "
        "worker's\n"
        "                           checkpoint log)\n"
        "  --lease-timeout <ms>     heartbeat staleness bound for "
        "--coordinate:\n"
        "                           a worker silent this long is declared "
        "dead and\n"
        "                           its units are reclaimed (default "
        "60000)\n"
        "  --help                   this message\n";
}

bool parse_cli(int argc, const char* const* argv, bool allow_select,
               CliOptions& options, std::string& error) {
  bool merge_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        error = std::string(flag) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--experiment" && allow_select) {
      const char* value = next_value("--experiment");
      if (value == nullptr) return false;
      if (std::strcmp(value, "all") != 0) {
        options.experiments.emplace_back(value);
      }
    } else if (arg == "--list" && allow_select) {
      options.list_only = true;
    } else if (arg == "--json") {
      const char* value = next_value("--json");
      if (value == nullptr) return false;
      options.json_path = value;
    } else if (arg == "--threads") {
      const char* value = next_value("--threads");
      if (value == nullptr) return false;
      options.threads = std::atoi(value);
      if (options.threads <= 0) {
        error = "--threads requires a positive integer";
        return false;
      }
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--timings") {
      options.timings = true;
    } else if (arg == "--seed") {
      const char* value = next_value("--seed");
      if (value == nullptr) return false;
      options.seed = std::strtoull(value, nullptr, 0);
    } else if (arg == "--shard") {
      const char* value = next_value("--shard");
      if (value == nullptr) return false;
      options.shard = value;
    } else if (arg == "--resume") {
      const char* value = next_value("--resume");
      if (value == nullptr) return false;
      options.resume_path = value;
    } else if (arg == "--scratch") {
      const char* value = next_value("--scratch");
      if (value == nullptr) return false;
      options.scratch = value;
    } else if (arg == "--coordinate") {
      const char* value = next_value("--coordinate");
      if (value == nullptr) return false;
      options.coordinate_dir = value;
    } else if (arg == "--worker") {
      const char* value = next_value("--worker");
      if (value == nullptr) return false;
      options.worker_id = value;
    } else if (arg == "--lease-timeout") {
      const char* value = next_value("--lease-timeout");
      if (value == nullptr) return false;
      options.lease_timeout_ms = std::atoi(value);
      if (options.lease_timeout_ms <= 0) {
        error = "--lease-timeout requires a positive integer (ms)";
        return false;
      }
    } else if (arg == "--simd") {
      const char* value = next_value("--simd");
      if (value == nullptr) return false;
      options.simd = value;
    } else if (arg == "--compare") {
      const char* value = next_value("--compare");
      if (value == nullptr) return false;
      options.compare_path = value;
    } else if (arg == "--tolerance") {
      const char* value = next_value("--tolerance");
      if (value == nullptr) return false;
      const std::string_view text(value);
      auto [end, ec] = std::from_chars(
          text.data(), text.data() + text.size(), options.tolerance);
      if (ec != std::errc() || end != text.data() + text.size() ||
          options.tolerance < 0.0) {
        error = "--tolerance requires a non-negative number";
        return false;
      }
    } else if (arg == "--merge") {
      merge_mode = true;
    } else if (arg.rfind("--", 0) != 0 && merge_mode) {
      options.merge_inputs.push_back(arg);
    } else if (arg == "--help" || arg == "-h") {
      options.list_only = false;
      error = "help";
      return false;
    } else {
      error = "unknown option " + arg;
      return false;
    }
  }
  if (merge_mode && options.merge_inputs.empty()) {
    error = "--merge requires at least one input document";
    return false;
  }
  return true;
}

/// Fail-fast validation of paths and flag combinations, before any
/// experiment runs: a long sweep must not discover at write time that its
/// --json directory never existed.
bool validate_options(const CliOptions& options, std::string& error) {
  namespace fs = std::filesystem;
  const auto parent_exists = [](const std::string& path) {
    const fs::path parent = fs::path(path).parent_path();
    std::error_code ec;
    return parent.empty() || fs::is_directory(parent, ec);
  };

  if (!options.shard.empty()) {
    try {
      ShardSpec::parse(options.shard);
    } catch (const std::invalid_argument& e) {
      error = e.what();
      return false;
    }
  }
  if (!options.json_path.empty() && options.json_path != "-" &&
      !parent_exists(options.json_path)) {
    error = "--json: directory of '" + options.json_path +
            "' does not exist";
    return false;
  }
  if (!options.resume_path.empty() && !parent_exists(options.resume_path)) {
    error = "--resume: directory of '" + options.resume_path +
            "' does not exist";
    return false;
  }
  if (!options.compare_path.empty()) {
    std::error_code ec;
    if (!fs::is_regular_file(options.compare_path, ec)) {
      error = "--compare: baseline '" + options.compare_path +
              "' does not exist";
      return false;
    }
  }
  for (const std::string& input : options.merge_inputs) {
    std::error_code ec;
    if (!fs::is_regular_file(input, ec)) {
      error = "--merge: input '" + input + "' does not exist";
      return false;
    }
  }
  if (!options.merge_inputs.empty()) {
    if (!options.experiments.empty() || options.list_only ||
        !options.shard.empty() || !options.resume_path.empty()) {
      error = "--merge cannot be combined with --experiment/--list/--shard/"
              "--resume";
      return false;
    }
    if (options.json_path.empty() && options.compare_path.empty()) {
      error = "--merge needs --json (write the merged document) and/or "
              "--compare (diff it)";
      return false;
    }
  } else if (!options.compare_path.empty() && !options.shard.empty()) {
    error = "--compare needs a complete document; a shard run cannot be "
            "compared (merge the shards first)";
    return false;
  }
  if (!options.coordinate_dir.empty()) {
    if (!options.shard.empty() || !options.resume_path.empty() ||
        !options.merge_inputs.empty() || !options.compare_path.empty() ||
        options.list_only) {
      error = "--coordinate cannot be combined with "
              "--shard/--resume/--merge/--compare/--list (the coordinator "
              "partitions and checkpoints by itself)";
      return false;
    }
    if (options.json_path.empty() || options.json_path == "-") {
      error = "--coordinate requires --json <file>: the worker's partial "
              "document is what --merge reassembles";
      return false;
    }
    if (options.worker_id.find('/') != std::string::npos) {
      error = "--worker id must not contain '/'";
      return false;
    }
  } else if (!options.worker_id.empty()) {
    error = "--worker only makes sense with --coordinate";
    return false;
  }
  return true;
}

/// Shared by the run and merge paths: diff `current` against the baseline
/// file, report to stderr, and return the process exit code.
int run_compare(const Trajectory& current, const CliOptions& options) {
  const Trajectory baseline = Trajectory::load(options.compare_path);
  CompareOptions compare_options;
  compare_options.tolerance = options.tolerance;
  compare_options.allow_missing_experiments = !options.experiments.empty();
  const std::size_t differences =
      compare_trajectories(baseline, current, compare_options, std::cerr);
  if (differences != 0) {
    std::cerr << "dqma_bench: " << differences
              << " difference(s) vs baseline " << options.compare_path
              << "\n";
    return 1;
  }
  std::cerr << "dqma_bench: no differences vs baseline "
            << options.compare_path << " (tolerance "
            << options.tolerance << ")\n";
  return 0;
}

int run_merge(const CliOptions& options) {
  std::vector<Trajectory> inputs;
  inputs.reserve(options.merge_inputs.size());
  for (const std::string& path : options.merge_inputs) {
    inputs.push_back(Trajectory::load(path));
  }
  const Trajectory merged = merge_trajectories(std::move(inputs));
  if (!options.json_path.empty()) {
    const Json document = merged.to_json();
    if (options.json_path == "-") {
      document.write(std::cout);
    } else {
      std::ofstream file(options.json_path);
      util::require(static_cast<bool>(file),
                    "cannot open " + options.json_path + " for writing");
      document.write(file);
      std::cout << "Merged " << options.merge_inputs.size()
                << " document(s) into " << options.json_path << "\n";
    }
  }
  if (!options.compare_path.empty()) {
    return run_compare(merged, options);
  }
  return 0;
}

/// The elastic worker driver (--coordinate): loops execution passes until
/// every work unit is committed by a live or finalized worker, writes this
/// worker's partial document, then publishes the `.final` marker. Exit
/// codes: 0 finalized, 1 error, 3 evicted (a peer declared this worker
/// dead and is recomputing its units).
int run_coordinated(const CliOptions& options,
                    const std::vector<const Experiment*>& selected,
                    ThreadPool& pool) {
  namespace fs = std::filesystem;
  Coordinator::Options coordinator_options;
  coordinator_options.dir = options.coordinate_dir;
  coordinator_options.worker = options.worker_id;
  coordinator_options.base_seed = options.seed;
  coordinator_options.smoke = options.smoke;
  coordinator_options.lease_timeout_ms = options.lease_timeout_ms;
  if (coordinator_options.worker.empty()) {
    // Default id: unique across processes and hosts sharing the directory.
    // A FIXED --worker id is what lets a restarted worker reuse its
    // checkpoint log instead of waiting out its own lease timeout.
    std::random_device seed_device;
#ifndef _WIN32
    const long long pid = static_cast<long long>(::getpid());
#else
    const long long pid = 0;
#endif
    coordinator_options.worker = "w" + std::to_string(pid) + "-" +
                                 std::to_string(seed_device() % 100000);
  }

  try {
    Coordinator coordinator(coordinator_options);
    RunControls controls;
    controls.checkpoint = &coordinator.log();
    controls.coordinator = &coordinator;
    // Workers are batch processes possibly looping several passes: ASCII
    // tables are suppressed, progress goes to stderr, and only the final
    // pass's document is written.
    std::ofstream null_stream;
    null_stream.setstate(std::ios_base::badbit);

    ResultSink sink;
    // Repeat passes are cheap — everything this worker committed replays
    // from its checkpoint log — so the cap only guards a livelock bug.
    constexpr int kMaxPasses = 10000;
    for (int pass = 0;; ++pass) {
      coordinator.begin_pass();
      ResultSink pass_sink;
      for (const Experiment* experiment : selected) {
        pass_sink.begin_experiment(experiment->name,
                                   experiment->description);
        const auto start = std::chrono::steady_clock::now();
        ExperimentContext context(*experiment, pool, pass_sink, null_stream,
                                  options.smoke, options.seed, &controls);
        experiment->run(context);
        pass_sink.end_experiment(elapsed_ms(start));
      }
      if (coordinator.pass_converged()) {
        sink = std::move(pass_sink);
        break;
      }
      util::require(pass + 1 < kMaxPasses,
                    "coordinate: no convergence after " +
                        std::to_string(kMaxPasses) + " passes");
      coordinator.backoff_sleep();
    }

    ResultSink::WriteOptions write_options;
    write_options.smoke = options.smoke;
    write_options.base_seed = options.seed;
    write_options.include_timings = options.timings;
    write_options.coordinated = true;
    {
      std::ofstream file(options.json_path);
      if (!file) {
        std::cerr << "dqma_bench: cannot open " << options.json_path
                  << " for writing\n";
        return 1;
      }
      sink.write_json(file, write_options);
    }
    // Document on disk first, then the .final marker: a crash in between
    // leaves a stale worker whose units get reclaimed, never a finalized
    // worker without a document.
    coordinator.finalize();
    const Coordinator::Stats stats = coordinator.stats();
    std::cerr << "dqma_bench: worker " << coordinator.worker()
              << " finalized: " << stats.acquired << " acquired, "
              << stats.cached << " cached, " << stats.done_elsewhere
              << " done elsewhere, " << stats.busy << " busy, "
              << stats.reclaims << " reclaims, " << stats.evictions
              << " evictions, " << stats.passes << " pass(es)\n";
    return 0;
  } catch (const WorkerEvicted& e) {
    // Any document written by an evicted worker must never feed --merge.
    std::error_code ec;
    fs::remove(options.json_path, ec);
    std::cerr << "dqma_bench: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "dqma_bench: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int cli_main(int argc, const char* const* argv,
             const char* forced_experiment) {
  CliOptions options;
  // Compatibility with the CTest bench-smoke harness environment.
  options.smoke = std::getenv("DQMA_BENCH_SMOKE") != nullptr;

  std::string error;
  if (!parse_cli(argc, argv, forced_experiment == nullptr, options, error)) {
    if (error == "help") {
      print_usage(std::cout, forced_experiment);
      return 0;
    }
    std::cerr << "dqma_bench: " << error << "\n";
    print_usage(std::cerr, forced_experiment);
    return 2;
  }
  if (!validate_options(options, error)) {
    std::cerr << "dqma_bench: " << error << "\n";
    return 2;
  }
  // SIMD dispatch resolution (--simd over DQMA_SIMD over CPU detection),
  // up front so a bad level name or an unsupported request fails here with
  // a readable message instead of inside a kernel.
  try {
    linalg::simd::resolve_startup(options.simd);
  } catch (const std::exception& e) {
    std::cerr << "dqma_bench: " << e.what() << "\n";
    return 2;
  }
  // Scratch opt-in for tiled density passes: the flag wins over the
  // DQMA_SCRATCH_DIR environment variable (which ScratchTile reads lazily
  // when no override is set).
  if (!options.scratch.empty()) {
    util::ScratchTile::set_directory(options.scratch);
  }

  if (!options.merge_inputs.empty()) {
    try {
      return run_merge(options);
    } catch (const std::exception& e) {
      std::cerr << "dqma_bench: " << e.what() << "\n";
      return 1;
    }
  }

  if (forced_experiment != nullptr) {
    options.experiments = {forced_experiment};
  }

  if (options.list_only) {
    for (const auto& experiment : experiments()) {
      std::cout << experiment.name << "  " << experiment.description << "\n";
    }
    return 0;
  }

  // Resolve the selection (default: all, in registration order).
  std::vector<const Experiment*> selected;
  if (options.experiments.empty()) {
    for (const auto& experiment : experiments()) {
      selected.push_back(&experiment);
    }
  } else {
    for (const auto& name : options.experiments) {
      const Experiment* found = nullptr;
      for (const auto& experiment : experiments()) {
        if (experiment.name == name) {
          found = &experiment;
          break;
        }
      }
      if (found == nullptr) {
        std::cerr << "dqma_bench: unknown experiment '" << name
                  << "' (--list shows the registry)\n";
        return 2;
      }
      // Dedup repeated selections: experiment names are the JSON
      // document's only identifier, so each may appear at most once.
      if (std::find(selected.begin(), selected.end(), found) ==
          selected.end()) {
        selected.push_back(found);
      }
    }
  }

  ThreadPool pool(options.threads);
  // Second parallelism level: kernels dispatched OUTSIDE sweep jobs (serial
  // heavy-point loops, analyzer construction on the main thread) fan out
  // across the same --threads budget; kernels inside sweep jobs stay serial
  // (sweep/parallel.hpp nesting contract), so the two levels never
  // oversubscribe each other.
  set_kernel_threads(options.threads);

  if (!options.coordinate_dir.empty()) {
    return run_coordinated(options, selected, pool);
  }

  ResultSink sink;
  const bool json_to_stdout = options.json_path == "-";
  std::ostream& out = std::cout;

  RunControls controls;
  std::optional<CheckpointLog> checkpoint;
  if (!options.shard.empty()) {
    controls.shard = ShardSpec::parse(options.shard);
  }
  if (!options.resume_path.empty()) {
    try {
      checkpoint.emplace(options.resume_path, options.seed, options.smoke,
                         controls.shard);
    } catch (const std::exception& e) {
      std::cerr << "dqma_bench: " << e.what() << "\n";
      return 1;
    }
    controls.checkpoint = &*checkpoint;
    if (checkpoint->loaded_entries() > 0 && !json_to_stdout) {
      out << "Resuming from " << options.resume_path << ": "
          << checkpoint->loaded_entries() << " completed point(s)\n";
    }
  }

  util::Table summary({"experiment", "points", "wall (ms)"});
  for (const Experiment* experiment : selected) {
    if (!json_to_stdout) {
      out << "==== experiment: " << experiment->name << " ====\n"
          << experiment->description << "\n";
    }
    sink.begin_experiment(experiment->name, experiment->description);
    const std::size_t points_before = sink.point_count();
    const auto start = std::chrono::steady_clock::now();
    if (json_to_stdout) {
      // Suppress ASCII tables so stdout stays a valid JSON document.
      std::ofstream null_stream;
      null_stream.setstate(std::ios_base::badbit);
      ExperimentContext context(*experiment, pool, sink, null_stream,
                                options.smoke, options.seed, &controls);
      experiment->run(context);
    } else {
      ExperimentContext context(*experiment, pool, sink, out, options.smoke,
                                options.seed, &controls);
      experiment->run(context);
    }
    const double wall = elapsed_ms(start);
    sink.end_experiment(wall);
    summary.add_row({experiment->name,
                     util::Table::fmt(static_cast<long long>(
                         sink.point_count() - points_before)),
                     util::Table::fmt(static_cast<long long>(wall + 0.5))});
  }

  if (!json_to_stdout) {
    out << "\n";
    util::print_banner(out, "summary",
                       "Wall-clock per experiment at --threads " +
                           std::to_string(pool.thread_count()) +
                           (options.smoke ? " (smoke mode)" : "") + ".");
    summary.print(out);
  }

  if (!options.json_path.empty()) {
    const ResultSink::WriteOptions write_options{
        options.smoke,          options.seed,
        options.timings,        controls.shard.index,
        controls.shard.count};
    if (json_to_stdout) {
      sink.write_json(std::cout, write_options);
    } else {
      std::ofstream file(options.json_path);
      if (!file) {
        std::cerr << "dqma_bench: cannot open " << options.json_path
                  << " for writing\n";
        return 1;
      }
      sink.write_json(file, write_options);
      out << "\nWrote " << sink.point_count() << " points ("
          << selected.size() << " experiments) to " << options.json_path
          << (controls.shard.active()
                  ? " (shard " + controls.shard.label() + ")"
                  : "")
          << "\n";
    }
  }

  if (!options.compare_path.empty()) {
    Trajectory current;
    current.smoke = options.smoke;
    current.base_seed = options.seed;
    current.has_timings = options.timings;
    current.experiments = sink.experiments();
    try {
      return run_compare(current, options);
    } catch (const std::exception& e) {
      std::cerr << "dqma_bench: " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace dqma::sweep

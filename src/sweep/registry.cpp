#include "sweep/registry.hpp"

#include "sweep/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>

#include "util/require.hpp"
#include "util/table.hpp"

namespace dqma::sweep {
namespace {

std::vector<Experiment>& registry() {
  static std::vector<Experiment> experiments;
  return experiments;
}

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

void register_experiment(Experiment experiment) {
  util::require(!experiment.name.empty(),
                "register_experiment: empty experiment name");
  for (const auto& existing : registry()) {
    util::require(existing.name != experiment.name,
                  "register_experiment: duplicate name " + experiment.name);
  }
  registry().push_back(std::move(experiment));
}

const std::vector<Experiment>& experiments() { return registry(); }

ExperimentContext::ExperimentContext(const Experiment& experiment,
                                     ThreadPool& pool, ResultSink& sink,
                                     std::ostream& out, bool smoke,
                                     std::uint64_t global_seed)
    : pool_(pool),
      sink_(sink),
      out_(out),
      smoke_(smoke),
      base_seed_(util::derive_seed(global_seed, fnv1a64(experiment.name))) {}

std::vector<JobResult> ExperimentContext::sweep(
    const std::string& series, const std::vector<ParamPoint>& points,
    const JobFn& fn) {
  const std::uint64_t series_seed =
      util::derive_seed(base_seed_, fnv1a64(series));
  auto results = run_sweep(pool_, points, series_seed, fn);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ParamPoint params;
    params.set("series", series);
    for (const auto& [name, value] : points[i].entries()) {
      params.set(name, value);
    }
    sink_.add_point(std::move(params), results[i].metrics,
                    results[i].wall_ms);
  }
  return results;
}

std::vector<JobResult> ExperimentContext::sweep(const std::string& series,
                                                const ParamGrid& grid,
                                                const JobFn& fn) {
  return sweep(series, grid.enumerate(), fn);
}

std::vector<JobResult> ExperimentContext::serial_sweep(
    const std::string& series, const std::vector<ParamPoint>& points,
    const JobFn& fn) {
  std::vector<JobResult> results(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    util::Rng rng = point_rng(series, i);
    const auto start = std::chrono::steady_clock::now();
    results[i].metrics = fn(points[i], rng);
    results[i].wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    record(series, points[i], results[i].metrics, results[i].wall_ms);
  }
  return results;
}

void ExperimentContext::record(const std::string& series, ParamPoint params,
                               Metrics metrics, double wall_ms) {
  ParamPoint prefixed;
  prefixed.set("series", series);
  for (const auto& [name, value] : params.entries()) {
    prefixed.set(name, value);
  }
  sink_.add_point(std::move(prefixed), std::move(metrics), wall_ms);
}

util::Rng ExperimentContext::series_rng(const std::string& series) const {
  return util::Rng(util::derive_seed(base_seed_, fnv1a64(series)));
}

util::Rng ExperimentContext::point_rng(const std::string& series,
                                       std::size_t index) const {
  const std::uint64_t series_seed =
      util::derive_seed(base_seed_, fnv1a64(series));
  return util::Rng(util::derive_seed(series_seed, index));
}

namespace {

void print_usage(std::ostream& os, const char* forced_experiment) {
  os << "Usage: dqma_bench [options]\n\n"
        "Options:\n";
  if (forced_experiment == nullptr) {
    os << "  --experiment <name|all>  experiment(s) to run (repeatable; "
          "default all)\n"
          "  --list                   list registered experiments and exit\n";
  }
  os << "  --json <path>            write structured results (schema v1); "
        "'-' for stdout\n"
        "  --threads <N>            sweep threads (default: hardware "
        "concurrency)\n"
        "  --smoke                  shrink heavy sweeps (same as "
        "DQMA_BENCH_SMOKE=1)\n"
        "  --seed <N>               global base seed (default 0)\n"
        "  --timings                include nondeterministic wall_ms fields "
        "in JSON\n"
        "  --help                   this message\n";
}

bool parse_cli(int argc, const char* const* argv, bool allow_select,
               CliOptions& options, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        error = std::string(flag) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--experiment" && allow_select) {
      const char* value = next_value("--experiment");
      if (value == nullptr) return false;
      if (std::strcmp(value, "all") != 0) {
        options.experiments.emplace_back(value);
      }
    } else if (arg == "--list" && allow_select) {
      options.list_only = true;
    } else if (arg == "--json") {
      const char* value = next_value("--json");
      if (value == nullptr) return false;
      options.json_path = value;
    } else if (arg == "--threads") {
      const char* value = next_value("--threads");
      if (value == nullptr) return false;
      options.threads = std::atoi(value);
      if (options.threads <= 0) {
        error = "--threads requires a positive integer";
        return false;
      }
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--timings") {
      options.timings = true;
    } else if (arg == "--seed") {
      const char* value = next_value("--seed");
      if (value == nullptr) return false;
      options.seed = std::strtoull(value, nullptr, 0);
    } else if (arg == "--help" || arg == "-h") {
      options.list_only = false;
      error = "help";
      return false;
    } else {
      error = "unknown option " + arg;
      return false;
    }
  }
  return true;
}

}  // namespace

int cli_main(int argc, const char* const* argv,
             const char* forced_experiment) {
  CliOptions options;
  // Compatibility with the CTest bench-smoke harness environment.
  options.smoke = std::getenv("DQMA_BENCH_SMOKE") != nullptr;

  std::string error;
  if (!parse_cli(argc, argv, forced_experiment == nullptr, options, error)) {
    if (error == "help") {
      print_usage(std::cout, forced_experiment);
      return 0;
    }
    std::cerr << "dqma_bench: " << error << "\n";
    print_usage(std::cerr, forced_experiment);
    return 2;
  }

  if (forced_experiment != nullptr) {
    options.experiments = {forced_experiment};
  }

  if (options.list_only) {
    for (const auto& experiment : experiments()) {
      std::cout << experiment.name << "  " << experiment.description << "\n";
    }
    return 0;
  }

  // Resolve the selection (default: all, in registration order).
  std::vector<const Experiment*> selected;
  if (options.experiments.empty()) {
    for (const auto& experiment : experiments()) {
      selected.push_back(&experiment);
    }
  } else {
    for (const auto& name : options.experiments) {
      const Experiment* found = nullptr;
      for (const auto& experiment : experiments()) {
        if (experiment.name == name) {
          found = &experiment;
          break;
        }
      }
      if (found == nullptr) {
        std::cerr << "dqma_bench: unknown experiment '" << name
                  << "' (--list shows the registry)\n";
        return 2;
      }
      // Dedup repeated selections: experiment names are the JSON
      // document's only identifier, so each may appear at most once.
      if (std::find(selected.begin(), selected.end(), found) ==
          selected.end()) {
        selected.push_back(found);
      }
    }
  }

  ThreadPool pool(options.threads);
  // Second parallelism level: kernels dispatched OUTSIDE sweep jobs (serial
  // heavy-point loops, analyzer construction on the main thread) fan out
  // across the same --threads budget; kernels inside sweep jobs stay serial
  // (sweep/parallel.hpp nesting contract), so the two levels never
  // oversubscribe each other.
  set_kernel_threads(options.threads);
  ResultSink sink;
  const bool json_to_stdout = options.json_path == "-";
  std::ostream& out = std::cout;

  util::Table summary({"experiment", "points", "wall (ms)"});
  for (const Experiment* experiment : selected) {
    if (!json_to_stdout) {
      out << "==== experiment: " << experiment->name << " ====\n"
          << experiment->description << "\n";
    }
    sink.begin_experiment(experiment->name, experiment->description);
    const std::size_t points_before = sink.point_count();
    const auto start = std::chrono::steady_clock::now();
    if (json_to_stdout) {
      // Suppress ASCII tables so stdout stays a valid JSON document.
      std::ofstream null_stream;
      null_stream.setstate(std::ios_base::badbit);
      ExperimentContext context(*experiment, pool, sink, null_stream,
                                options.smoke, options.seed);
      experiment->run(context);
    } else {
      ExperimentContext context(*experiment, pool, sink, out, options.smoke,
                                options.seed);
      experiment->run(context);
    }
    const double wall = elapsed_ms(start);
    sink.end_experiment(wall);
    summary.add_row({experiment->name,
                     util::Table::fmt(static_cast<long long>(
                         sink.point_count() - points_before)),
                     util::Table::fmt(static_cast<long long>(wall + 0.5))});
  }

  if (!json_to_stdout) {
    out << "\n";
    util::print_banner(out, "summary",
                       "Wall-clock per experiment at --threads " +
                           std::to_string(pool.thread_count()) +
                           (options.smoke ? " (smoke mode)" : "") + ".");
    summary.print(out);
  }

  if (!options.json_path.empty()) {
    const ResultSink::WriteOptions write_options{
        options.smoke, options.seed, options.timings};
    if (json_to_stdout) {
      sink.write_json(std::cout, write_options);
    } else {
      std::ofstream file(options.json_path);
      if (!file) {
        std::cerr << "dqma_bench: cannot open " << options.json_path
                  << " for writing\n";
        return 1;
      }
      sink.write_json(file, write_options);
      out << "\nWrote " << sink.point_count() << " points ("
          << selected.size() << " experiments) to " << options.json_path
          << "\n";
    }
  }
  return 0;
}

}  // namespace dqma::sweep

// A minimal JSON document builder for the sweep ResultSink. Zero external
// dependencies (the container bans new packages); write-only — the repo
// never parses JSON, CI tooling does.
//
// Serialization is fully deterministic: object keys keep insertion order,
// doubles use shortest round-trip formatting, and the writer itself adds
// no timestamps or environment data. This is what makes the determinism
// acceptance check (`cmp` of --threads 1 vs --threads 8 output) possible.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sweep/sweep.hpp"

namespace dqma::sweep {

/// A JSON value: null, bool, integer, double, string, array, or object.
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(int value) : kind_(Kind::kInt), int_(value) {}
  Json(long long value) : kind_(Kind::kInt), int_(value) {}
  Json(std::uint64_t value) : kind_(Kind::kUint), uint_(value) {}
  Json(double value) : kind_(Kind::kDouble), double_(value) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  /// Converts a sweep Value (param or metric) to the matching JSON scalar.
  Json(const Value& value);

  static Json array();
  static Json object();
  /// An object with one member per NamedValues entry, in entry order.
  static Json from_named_values(const NamedValues& values);

  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Appends to an array (require()s array kind).
  Json& push_back(Json value);
  /// Appends a member to an object (require()s object kind; no dedup —
  /// callers own key uniqueness).
  Json& add(std::string key, Json value);

  /// Pretty-prints with 2-space indentation and a trailing newline at the
  /// top level, RFC 8259 string escaping.
  void write(std::ostream& os) const;
  std::string dump() const;

  /// Single-line form (no whitespace, no trailing newline) — one JSONL
  /// checkpoint record per line. Same escaping and number formatting as
  /// write(), so values round-trip identically through either form.
  void write_compact(std::ostream& os) const;
  std::string dump_compact() const;

 private:
  enum class Kind {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject
  };

  void write_indented(std::ostream& os, int depth) const;
  void write_scalar(std::ostream& os) const;

  Kind kind_;
  bool bool_ = false;
  long long int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace dqma::sweep

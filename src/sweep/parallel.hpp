// Deterministic intra-instance parallelism: parallel_for / parallel_reduce
// over index ranges, the second level of the two-level parallelism model
// (sweep jobs x kernel chunks).
//
// Determinism contract. A region over [0, count) is split into chunks whose
// boundaries depend ONLY on (count, grain) — never on the thread count or
// on scheduling. parallel_for bodies own disjoint index ranges, and
// parallel_reduce combines per-chunk partials in ascending chunk order on
// the calling thread. Results are therefore byte-identical at any kernel
// thread count (including 1): there is a single code path, serial execution
// just runs the same chunks in order.
//
// Nesting contract. Regions dispatched while the calling thread is already
// executing a ThreadPool batch — a sweep job, or a chunk of an enclosing
// region — run serially inline. The kernel pool is therefore never entered
// reentrantly (no deadlock) and sweep-level parallelism is never
// oversubscribed by kernel-level parallelism: whichever level fans out
// first owns the threads.
//
// The region entry points are templates on the callable: the serial and
// single-chunk paths (every nested or in-job call, and every region too
// small to split) invoke the body directly with no type erasure; only a
// genuinely pooled dispatch erases it, once per region, amortized over all
// its chunks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

namespace dqma::sweep {

/// Upper bound on chunks per region: enough slack for any realistic thread
/// count while keeping per-chunk dispatch overhead negligible.
inline constexpr std::size_t kMaxKernelChunks = 64;

/// Operations a chunk should amortize before fan-out pays for itself; the
/// basis of grain_for_ops.
inline constexpr std::size_t kMinChunkOps = 1 << 15;

/// Grain (minimum items per chunk) that packs roughly kMinChunkOps
/// operations per chunk when each item costs `ops_per_item`. A pure
/// function of the problem size, so chunk boundaries stay deterministic.
inline std::size_t grain_for_ops(std::size_t ops_per_item) {
  if (ops_per_item == 0) {
    ops_per_item = 1;
  }
  return (kMinChunkOps + ops_per_item - 1) / ops_per_item;
}

/// The fixed partition of [0, count): chunk c covers
/// [c * chunk_size, min(count, (c + 1) * chunk_size)).
struct ChunkPlan {
  std::size_t chunk_size = 0;
  std::size_t chunks = 0;
};

/// Computes the partition. chunk_size = max(grain, ceil(count /
/// kMaxKernelChunks)) — a function of (count, grain) only.
ChunkPlan plan_chunks(std::size_t count, std::size_t grain);

/// Sizes the global kernel pool; `threads` <= 0 selects hardware
/// concurrency. Call from a single-threaded context (e.g. CLI startup) —
/// the pool is rebuilt lazily on the next region.
void set_kernel_threads(int threads);

/// RAII override of the kernel pool FOR THE CALLING THREAD ONLY: regions
/// dispatched by this thread while the scope is alive use a private pool
/// of the given size (<= 0: hardware concurrency). Other threads — e.g.
/// concurrently running sweep jobs — are unaffected, so a bench point can
/// pin its kernel thread count without perturbing the rest of the process.
class KernelThreadScope {
 public:
  explicit KernelThreadScope(int threads);
  ~KernelThreadScope();
  KernelThreadScope(const KernelThreadScope&) = delete;
  KernelThreadScope& operator=(const KernelThreadScope&) = delete;

 private:
  void* previous_;  // ThreadPool* of the enclosing scope (or nullptr)
  void* pool_;      // owned ThreadPool*
};

namespace detail {

/// True when the calling thread must run regions inline (it is already
/// executing a ThreadPool batch).
bool must_run_serial();

/// Runs the planned chunks on the kernel pool (the thread's scope pool if
/// one is installed, else the global pool; a busy global pool falls back
/// to serial). The body is type-erased once per region, amortized over
/// its chunks. Same failure contract as ThreadPool::run_indexed.
void dispatch_chunks(
    std::size_t count, const ChunkPlan& plan,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

}  // namespace detail

/// Runs fn(chunk_index, begin, end) for every chunk of the fixed partition
/// of [0, count). Chunks run concurrently on the kernel pool when the
/// calling thread is not already inside a batch, serially in ascending
/// chunk order otherwise; either way every chunk runs, and the first
/// exception (in completion order) is rethrown after the region drains.
template <typename Fn>
void for_each_chunk(std::size_t count, std::size_t grain, Fn&& fn) {
  const ChunkPlan plan = plan_chunks(count, grain);
  if (plan.chunks == 0) {
    return;
  }
  if (plan.chunks == 1) {
    fn(std::size_t{0}, std::size_t{0}, count);
    return;
  }
  if (detail::must_run_serial()) {
    std::exception_ptr error;
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      const std::size_t begin = c * plan.chunk_size;
      const std::size_t end = std::min(count, begin + plan.chunk_size);
      try {
        fn(c, begin, end);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
        }
      }
    }
    if (error) {
      std::rethrow_exception(error);
    }
    return;
  }
  detail::dispatch_chunks(
      count, plan, [&fn](std::size_t c, std::size_t begin, std::size_t end) {
        fn(c, begin, end);
      });
}

/// fn(begin, end) over the fixed partition of [0, count); half-open index
/// ranges, disjoint across calls.
template <typename Fn>
void parallel_for(std::size_t count, std::size_t grain, Fn&& fn) {
  for_each_chunk(count, grain,
                 [&fn](std::size_t, std::size_t begin, std::size_t end) {
                   fn(begin, end);
                 });
}

/// map(begin, end) -> T per chunk; partials combined as
/// combine(combine(identity, p_0), p_1)... in ascending chunk order, so
/// the floating-point reduction tree is fixed at any thread count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t count, std::size_t grain, T identity,
                  const MapFn& map, const CombineFn& combine) {
  const ChunkPlan plan = plan_chunks(count, grain);
  if (plan.chunks == 0) {
    return identity;
  }
  if (plan.chunks == 1) {
    return combine(std::move(identity), map(std::size_t{0}, count));
  }
  std::vector<T> partials(plan.chunks, identity);
  for_each_chunk(count, grain,
                 [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                   partials[chunk] = map(begin, end);
                 });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace dqma::sweep

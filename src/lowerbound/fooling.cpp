#include "lowerbound/fooling.hpp"

#include <unordered_set>

#include "util/require.hpp"

namespace dqma::lowerbound {

using util::require;

std::vector<InputPair> eq_fooling_set(int n, int count, util::Rng& rng) {
  require(n >= 1 && count >= 1, "eq_fooling_set: bad parameters");
  require(n >= 60 || count <= (1 << std::min(n, 30)),
          "eq_fooling_set: count exceeds set size");
  std::vector<InputPair> out;
  std::unordered_set<std::uint64_t> used;
  while (static_cast<int>(out.size()) < count) {
    const Bitstring z = Bitstring::random(n, rng);
    if (used.insert(z.hash()).second) {
      out.emplace_back(z, z);
    }
  }
  return out;
}

std::vector<InputPair> gt_fooling_set(int n, int count, util::Rng& rng) {
  require(n >= 1 && count >= 1, "gt_fooling_set: bad parameters");
  std::vector<InputPair> out;
  std::unordered_set<std::uint64_t> used;
  while (static_cast<int>(out.size()) < count) {
    Bitstring z = Bitstring::random(n, rng);
    // Need z >= 1; decrement to form (z, z-1).
    bool all_zero = z.weight() == 0;
    if (all_zero) {
      z.set(n - 1, true);  // z = 1
    }
    if (!used.insert(z.hash()).second) {
      continue;
    }
    // y = z - 1 via binary decrement (big-endian bit order).
    Bitstring y = z;
    for (int i = n - 1; i >= 0; --i) {
      if (y.get(i)) {
        y.set(i, false);
        break;
      }
      y.set(i, true);
    }
    out.emplace_back(z, y);
  }
  return out;
}

bool is_one_fooling_set(const Predicate& f, const std::vector<InputPair>& set,
                        util::Rng& rng, int max_checks) {
  for (const auto& [x, y] : set) {
    if (!f(x, y)) {
      return false;
    }
  }
  const long long m = static_cast<long long>(set.size());
  const bool exhaustive = m * m <= max_checks;
  const auto check_cross = [&](std::size_t i, std::size_t j) {
    const auto& [x1, y1] = set[i];
    const auto& [x2, y2] = set[j];
    return !f(x1, y2) || !f(x2, y1);
  };
  if (exhaustive) {
    for (std::size_t i = 0; i < set.size(); ++i) {
      for (std::size_t j = i + 1; j < set.size(); ++j) {
        if (!check_cross(i, j)) {
          return false;
        }
      }
    }
    return true;
  }
  for (int c = 0; c < max_checks; ++c) {
    const auto i = static_cast<std::size_t>(rng.next_below(set.size()));
    auto j = static_cast<std::size_t>(rng.next_below(set.size()));
    if (i == j) {
      continue;
    }
    if (!check_cross(i, j)) {
      return false;
    }
  }
  return true;
}

}  // namespace dqma::lowerbound

// 1-fooling sets (paper Sec. 2.2.1) for EQ and GT, with a sampling
// verifier. These drive both the classical (Sec. 4.2) and quantum
// (Sec. 8.1) lower-bound machinery.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace dqma::lowerbound {

using util::Bitstring;

using InputPair = std::pair<Bitstring, Bitstring>;
using Predicate = std::function<bool(const Bitstring&, const Bitstring&)>;

/// `count` distinct members of the size-2^n 1-fooling set {(z, z)} for EQ.
std::vector<InputPair> eq_fooling_set(int n, int count, util::Rng& rng);

/// `count` distinct members of the size-(2^n - 1) 1-fooling set
/// {(z, z - 1)} for GT.
std::vector<InputPair> gt_fooling_set(int n, int count, util::Rng& rng);

/// Verifies the 1-fooling property on all pairs when |set|^2 <= max_checks,
/// otherwise on max_checks random cross pairs: f = 1 on every member, and
/// for distinct members (x1,y1), (x2,y2), f(x1,y2) = 0 or f(x2,y1) = 0.
bool is_one_fooling_set(const Predicate& f, const std::vector<InputPair>& set,
                        util::Rng& rng, int max_checks = 10000);

}  // namespace dqma::lowerbound

#include "lowerbound/accounting.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dqma::lowerbound {

using util::require;

double thm51_total_proof_bound(int r, int n) {
  require(r >= 1 && n >= 2, "thm51_total_proof_bound: bad parameters");
  return static_cast<double>(r) * std::log2(static_cast<double>(n));
}

double cor55_total_proof_bound(int r) {
  require(r >= 1, "cor55_total_proof_bound: bad parameters");
  return static_cast<double>(r);
}

double thm52_bound(int r, int n, double eps, double eps_prime) {
  require(r >= 1 && n >= 2, "thm52_bound: bad parameters");
  require(eps > 0.0 && eps < 0.5 && eps_prime > 0.0, "thm52_bound: bad eps");
  return std::pow(std::log2(static_cast<double>(n)), 0.5 - eps) /
         std::pow(static_cast<double>(r), 1.0 + eps_prime);
}

double thm56_bound(int n, double eps) {
  require(n >= 2, "thm56_bound: bad parameters");
  require(eps > 0.0 && eps < 0.25, "thm56_bound: bad eps");
  return std::pow(std::log2(static_cast<double>(n)), 0.25 - eps);
}

double thm63_disjointness_bound(int n) {
  require(n >= 1, "thm63_disjointness_bound: bad parameters");
  return std::cbrt(static_cast<double>(n));
}

double thm63_inner_product_bound(int n) {
  require(n >= 1, "thm63_inner_product_bound: bad parameters");
  return std::sqrt(static_cast<double>(n));
}

double thm63_pattern_and_bound(int n) {
  require(n >= 1, "thm63_pattern_and_bound: bad parameters");
  return std::cbrt(static_cast<double>(n));
}

}  // namespace dqma::lowerbound

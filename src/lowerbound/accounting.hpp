// Formula-level calculators for the paper's lower bounds (Table 3), printed
// by the benches next to the measured attack results. The *verification* of
// each bound is constructive (attack harnesses); these functions report the
// bound values themselves.
#pragma once

namespace dqma::lowerbound {

/// Theorem 51: total proof size of any dQMA_sep,sep protocol for a function
/// with a 1-fooling set of size 2^n on a path of length r is
/// Omega(r log n). Returns r * log2(n).
double thm51_total_proof_bound(int r, int n);

/// Corollary 55: any non-constant function needs Omega(r) total proof
/// qubits against entangled proofs. Returns r.
double cor55_total_proof_bound(int r);

/// Theorem 52: total proof + cut communication is
/// Omega((log n)^{1/2 - eps} / r^{1 + eps'}).
double thm52_bound(int r, int n, double eps, double eps_prime);

/// Theorem 56: total proof + cut communication is
/// Omega((log n)^{1/4 - eps}).
double thm56_bound(int n, double eps);

/// Theorem 63 instantiations (via one-sided smooth discrepancy, Sec. 8.2).
double thm63_disjointness_bound(int n);  ///< Omega(n^{1/3})
double thm63_inner_product_bound(int n); ///< Omega(n^{1/2})
double thm63_pattern_and_bound(int n);   ///< Omega(n^{1/3})

}  // namespace dqma::lowerbound

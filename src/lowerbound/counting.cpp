#include "lowerbound/counting.hpp"

#include <algorithm>
#include <cmath>

#include "quantum/random.hpp"
#include "util/require.hpp"

namespace dqma::lowerbound {

using util::require;

double max_pairwise_overlap(const std::vector<CVec>& states) {
  double worst = 0.0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = i + 1; j < states.size(); ++j) {
      worst = std::max(worst, std::abs(states[i].dot(states[j])));
    }
  }
  return worst;
}

double welch_overlap_bound(int count, int dim) {
  require(count >= 2 && dim >= 1, "welch_overlap_bound: bad parameters");
  if (count <= dim) {
    return 0.0;
  }
  const double num = static_cast<double>(count - dim);
  const double den = static_cast<double>(dim) * (count - 1);
  return std::sqrt(num / den);
}

double lemma48_qubit_bound(int n, double delta) {
  require(n >= 1, "lemma48_qubit_bound: n must be positive");
  require(delta > 0.0 && delta < 1.0, "lemma48_qubit_bound: bad delta");
  return std::log2(static_cast<double>(n) / (delta * delta));
}

double random_family_max_overlap(int qubits, int count, util::Rng& rng) {
  require(qubits >= 0 && qubits <= 12, "random_family_max_overlap: qubits cap");
  require(count >= 2, "random_family_max_overlap: need at least two states");
  const int dim = 1 << qubits;
  std::vector<CVec> states;
  states.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    states.push_back(quantum::haar_state(dim, rng));
  }
  return max_pairwise_overlap(states);
}

}  // namespace dqma::lowerbound

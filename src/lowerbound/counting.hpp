// The counting argument over quantum states (paper Sec. 8.1): Lemma 48 /
// Claim 49 say that any family of pairwise-far states needs Omega(log n)
// qubits, i.e. packing too many states into too few qubits forces a
// high-overlap pair — the pair that fools a dQMA_sep,sep verifier
// (Proposition 50).
#pragma once

#include <vector>

#include "linalg/vector.hpp"
#include "util/rng.hpp"

namespace dqma::lowerbound {

using linalg::CVec;

/// Maximum |<psi_i|psi_j>| over distinct pairs.
double max_pairwise_overlap(const std::vector<CVec>& states);

/// Welch bound: for N unit vectors in C^d with N > d, the maximal pairwise
/// squared overlap is at least (N - d) / (d (N - 1)). Returns the bound on
/// the overlap (square root), 0 when N <= d.
double welch_overlap_bound(int count, int dim);

/// Lemma 48 qubit bound (contrapositive form used by Claim 49): a family
/// of 2^n states with pairwise overlap <= delta needs at least
/// log2(n / delta^2) - O(1) qubits. Returns that bound (may be fractional).
double lemma48_qubit_bound(int n, double delta);

/// Claim 49 demonstration: draws `count` Haar-random states on `qubits`
/// qubits and reports the maximum pairwise overlap found — compare against
/// delta to exhibit the fooling pair when qubits is below the bound.
double random_family_max_overlap(int qubits, int count, util::Rng& rng);

}  // namespace dqma::lowerbound

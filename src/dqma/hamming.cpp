#include "dqma/hamming.hpp"

namespace dqma::protocol {

HammingGraphProtocol::HammingGraphProtocol(const network::Graph& graph,
                                           std::vector<int> terminals, int n,
                                           int d, double delta, int reps,
                                           std::uint64_t seed)
    : one_way_(std::make_unique<comm::HammingOneWayProtocol>(
          n, d, delta,
          comm::HammingOneWayProtocol::recommended_copies(d, delta), seed)),
      forall_(std::make_unique<ForallFProtocol>(graph, std::move(terminals),
                                                *one_way_, reps)) {}

}  // namespace dqma::protocol

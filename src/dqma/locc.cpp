#include "dqma/locc.hpp"

#include "dqma/eq_path.hpp"
#include "util/require.hpp"

namespace dqma::protocol {

using util::require;

LoccCosts locc_conversion_costs(const CostProfile& source, int dmax) {
  require(dmax >= 1, "locc_conversion_costs: dmax must be positive");
  LoccCosts out;
  const long long s_m = source.local_message_qubits;
  const long long s_tm = source.total_message_qubits;
  out.local_proof_qubits =
      source.local_proof_qubits + static_cast<long long>(dmax) * s_m * s_tm;
  out.local_message_bits = s_m * s_tm;
  return out;
}

LoccCosts corollary21_eq_costs(int n, int r, int node_count, int dmax,
                               double delta) {
  require(node_count >= 2, "corollary21_eq_costs: need at least two nodes");
  // Source: the Theorem 19 protocol at the paper's repetition count. Its
  // total message size scales with the node count (every non-root node
  // sends once per repetition).
  const int reps = EqPathProtocol::paper_reps(r);
  const long long q = EqPathProtocol::fingerprint_qubits(n, delta);
  CostProfile source;
  source.local_proof_qubits = 2LL * reps * q;
  source.total_proof_qubits = source.local_proof_qubits * node_count;
  source.local_message_qubits = static_cast<long long>(reps) * q;
  source.total_message_qubits =
      source.local_message_qubits * (node_count - 1);
  return locc_conversion_costs(source, dmax);
}

}  // namespace dqma::protocol

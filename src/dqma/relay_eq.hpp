// The paper's Theorem 22: EQ on a long path with ~O(r n^{2/3}) TOTAL proof
// size via "relay points" (Algorithm 6).
//
// Relay nodes (every `spacing` positions) receive an n-qubit basis-state
// proof, measure it, and act as classical anchors; the stretches between
// anchors run the symmetrized fingerprint protocol of Algorithm 3 with
// enough parallel repetitions for per-segment soundness. The prover fully
// controls the measured relay strings, so the adversary model gives the
// prover (a) the relay strings and (b) product proofs inside each segment.
//
// The spacing sweep (DESIGN.md ablation D3) shows ceil(n^{1/3}) minimizes
// the total proof size, reproducing the paper's exponent.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dqma/eq_path.hpp"
#include "dqma/model.hpp"
#include "util/bitstring.hpp"

namespace dqma::protocol {

class RelayEqProtocol {
 public:
  /// n: input bits; r: path length; delta: fingerprint overlap; spacing:
  /// relay interval (paper: ceil(n^{1/3})); seg_reps: repetitions of the
  /// segment protocol (paper: 42 * spacing^2).
  RelayEqProtocol(int n, int r, double delta, int spacing, int seg_reps,
                  std::uint64_t seed = 0x0ddba11);

  /// Paper parameterization.
  static int paper_spacing(int n);
  static int paper_seg_reps(int n);

  int n() const { return n_; }
  int r() const { return r_; }
  int spacing() const { return spacing_; }
  int segment_count() const { return static_cast<int>(segments_.size()); }
  int relay_count() const { return static_cast<int>(relay_positions_.size()); }

  CostProfile costs() const;

  /// Formula-level cost accounting without constructing fingerprint codes
  /// (cost sweeps over large n; see EqPathProtocol::costs_for).
  static CostProfile costs_for(int n, int r, double delta, int spacing,
                               int seg_reps);

  /// A full adversarial strategy: the relay strings (one per relay, in
  /// order) and one PathProofReps per segment.
  struct Strategy {
    std::vector<Bitstring> relay_strings;
    std::vector<PathProofReps> segment_proofs;
  };

  Strategy honest_strategy(const Bitstring& x) const;

  /// Exact acceptance probability of a strategy on inputs (x, y).
  double accept_probability(const Bitstring& x, const Bitstring& y,
                            const Strategy& strategy) const;

  double completeness(const Bitstring& x) const;

  /// Strongest implemented attack: relay strings interpolate from x to y in
  /// Hamming space (plus the single-jump variant), with per-segment best
  /// product attacks.
  double best_attack_accept(const Bitstring& x, const Bitstring& y) const;

 private:
  int n_;
  int r_;
  int spacing_;
  int seg_reps_;
  std::vector<int> relay_positions_;            ///< path indices of relays
  std::vector<std::unique_ptr<EqPathProtocol>> segments_;

  double strategy_accept(const std::vector<Bitstring>& anchors,
                         const Strategy& strategy, const Bitstring& x,
                         const Bitstring& y) const;
};

}  // namespace dqma::protocol

// The paper's Theorem 19: dQMA protocol for EQ between t terminals on a
// general network (Algorithm 5), via the spanning-tree construction of
// Sec. 3.3 and the permutation test at internal nodes.
//
// Key improvement over FGNP21 (ablation D2): internal nodes test ALL states
// received from their children together with their prover register using
// one permutation test, instead of SWAP-testing a uniformly random child
// and discarding the rest; this removes the factor-t from the local proof
// size. Both modes are implemented.
#pragma once

#include <cstdint>
#include <vector>

#include "dqma/model.hpp"
#include "fingerprint/fingerprint.hpp"
#include "network/graph.hpp"
#include "network/tree.hpp"
#include "util/bitstring.hpp"

namespace dqma::protocol {

class NoiseModel;  // dqma/noise.hpp

using util::Bitstring;

enum class GraphTestMode {
  kPermutationTest,  ///< Algorithm 5 (this paper)
  kRandomPairSwap,   ///< FGNP21-style: SWAP test against one random child
};

/// dQMA protocol for EQ^t_n on a general graph.
class EqGraphProtocol {
 public:
  /// `terminals` hold the inputs (one n-bit string each, in the same order).
  EqGraphProtocol(const network::Graph& graph, std::vector<int> terminals,
                  int n, double delta, int reps,
                  GraphTestMode mode = GraphTestMode::kPermutationTest,
                  std::uint64_t seed = 0x0ddba11);

  const network::SpanningTree& tree() const { return tree_; }
  int terminal_count() const { return static_cast<int>(terminals_.size()); }
  int reps() const { return reps_; }
  const fingerprint::FingerprintScheme& scheme() const { return scheme_; }

  /// One repetition of a tree proof: the two prover registers of every
  /// non-input tree node (entries of input nodes are unused).
  struct TreeProof {
    std::vector<linalg::CVec> reg0;  ///< indexed by tree node
    std::vector<linalg::CVec> reg1;
  };
  using TreeProofReps = std::vector<TreeProof>;

  CostProfile costs() const;

  /// Honest proof for the all-equal input x.
  TreeProofReps honest_proof(const Bitstring& x) const;

  /// Exact acceptance probability for inputs (per terminal, in terminal
  /// order) under an arbitrary product proof: a tree dynamic program over
  /// the symmetrization coins.
  double accept_probability(const std::vector<Bitstring>& inputs,
                            const TreeProofReps& proof) const;

  /// Exact acceptance of a single repetition (attack search uses this and
  /// raises to the k-th power for identical per-repetition proofs).
  double single_rep_accept(const std::vector<Bitstring>& inputs,
                           const TreeProof& proof) const;

  double completeness(const Bitstring& x) const;

  /// Strongest implemented product attack when some input deviates:
  /// geodesic interpolation along the root-to-deviant-leaf path, plus step
  /// attacks, maximized over deviating terminals.
  double best_attack_accept(const std::vector<Bitstring>& inputs) const;

  /// Noisy variants: every register forwarded from tree node v to its
  /// parent passes a depolarizing channel of strength link_noise.rate(v)
  /// (links are indexed by the CHILD tree node; the root index is never
  /// queried). Per-link models must cover every tree node — give virtual
  /// leaves rate 0, they share a physical vertex with their original node.
  /// Exact: permutation tests use the depolarized closed form, SWAP tests
  /// the damped closed form. With a noiseless model these equal the
  /// noiseless methods bit for bit (same code path).
  double noisy_accept_probability(const std::vector<Bitstring>& inputs,
                                  const TreeProofReps& proof,
                                  const NoiseModel& link_noise) const;
  double noisy_single_rep_accept(const std::vector<Bitstring>& inputs,
                                 const TreeProof& proof,
                                 const NoiseModel& link_noise) const;
  double noisy_completeness(const Bitstring& x,
                            const NoiseModel& link_noise) const;
  double noisy_best_attack_accept(const std::vector<Bitstring>& inputs,
                                  const NoiseModel& link_noise) const;

  /// True iff the tree node carries an input (root terminal or a terminal
  /// leaf, including virtual leaves).
  bool is_input_node(int tree_node) const;

 private:
  std::vector<int> terminals_;
  int reps_;
  GraphTestMode mode_;
  fingerprint::FingerprintScheme scheme_;
  network::SpanningTree tree_;
  std::vector<int> input_of_node_;  ///< terminal index or -1 per tree node

  double accept_one_rep(const std::vector<Bitstring>& inputs,
                        const TreeProof& proof) const;

  /// Shared tree DP; `noise == nullptr` is the noiseless path (and must
  /// stay arithmetically identical to the historical noiseless code).
  double accept_one_rep_impl(const std::vector<Bitstring>& inputs,
                             const TreeProof& proof,
                             const NoiseModel* noise) const;

  double best_attack_accept_impl(const std::vector<Bitstring>& inputs,
                                 const NoiseModel* noise) const;
};

}  // namespace dqma::protocol

#include "dqma/gt.hpp"

#include <algorithm>
#include <cmath>

#include "dqma/attacks.hpp"
#include "dqma/runner.hpp"
#include "qtest/swap_test.hpp"
#include "util/require.hpp"

namespace dqma::protocol {

using linalg::CVec;
using util::require;

bool gt_predicate(GtVariant variant, const Bitstring& x, const Bitstring& y) {
  const int cmp = x.compare(y);
  switch (variant) {
    case GtVariant::kGreater:
      return cmp > 0;
    case GtVariant::kLess:
      return cmp < 0;
    case GtVariant::kGeq:
      return cmp >= 0;
    case GtVariant::kLeq:
      return cmp <= 0;
  }
  return false;
}

GtProtocol::GtProtocol(int n, int r, double delta, int reps, GtVariant variant,
                       std::uint64_t seed)
    : n_(n), r_(r), reps_(reps), variant_(variant), scheme_(n, delta, seed) {
  require(n >= 1, "GtProtocol: n must be positive");
  require(r >= 1, "GtProtocol: r must be positive");
  require(reps >= 1, "GtProtocol: reps must be positive");
}

int GtProtocol::paper_reps(int r) {
  return static_cast<int>(std::ceil(2.0 * 81.0 * r * r / 4.0));
}

CostProfile GtProtocol::costs() const {
  const long long q = scheme_.qubits();
  // Index register: values 0..n (sentinel included): ceil(log2(n+1)).
  long long index_qubits = 0;
  while ((1LL << index_qubits) < n_ + 1) {
    ++index_qubits;
  }
  CostProfile c;
  const long long inner = std::max(0, r_ - 1);
  c.local_proof_qubits = 2LL * reps_ * q + index_qubits;
  c.total_proof_qubits =
      2LL * reps_ * q * inner + index_qubits * (r_ + 1);
  c.local_message_qubits = static_cast<long long>(reps_) * q + index_qubits;
  c.total_message_qubits = c.local_message_qubits * r_;
  return c;
}

bool GtProtocol::x_bit_ok(const Bitstring& x, int i) const {
  switch (variant_) {
    case GtVariant::kGreater:
    case GtVariant::kGeq:
      return x.get(i);  // x_i = 1
    case GtVariant::kLess:
    case GtVariant::kLeq:
      return !x.get(i);  // x_i = 0
  }
  return false;
}

bool GtProtocol::y_bit_ok(const Bitstring& y, int i) const {
  switch (variant_) {
    case GtVariant::kGreater:
    case GtVariant::kGeq:
      return !y.get(i);  // y_i = 0
    case GtVariant::kLess:
    case GtVariant::kLeq:
      return y.get(i);  // y_i = 1
  }
  return false;
}

Bitstring GtProtocol::fingerprint_input(const Bitstring& s, int index) const {
  require(index >= 0 && index <= n_, "GtProtocol: index out of range");
  if (index == n_) {
    return s;  // sentinel: full string
  }
  // Zero-padded prefix s[0..index-1].
  Bitstring out(n_);
  for (int i = 0; i < index; ++i) {
    out.set(i, s.get(i));
  }
  return out;
}

GtProtocol::Strategy GtProtocol::honest_strategy(const Bitstring& x,
                                                 const Bitstring& y) const {
  require(x.size() == n_ && y.size() == n_, "GtProtocol: input length mismatch");
  require(gt_predicate(variant_, x, y),
          "GtProtocol::honest_strategy: predicate does not hold");
  // Find the witness index.
  int witness = -1;
  for (int i = 0; i < n_; ++i) {
    if (x.get(i) != y.get(i)) {
      witness = i;
      break;
    }
  }
  Strategy s;
  if (witness < 0) {
    require(sentinel_allowed(),
            "GtProtocol::honest_strategy: equal inputs need the sentinel");
    s.index = n_;
  } else {
    s.index = witness;
  }
  const CVec h = scheme_.state(fingerprint_input(x, s.index));
  PathProof one;
  one.reg0.assign(static_cast<std::size_t>(std::max(0, r_ - 1)), h);
  one.reg1 = one.reg0;
  s.proof = replicate(one, reps_);
  return s;
}

double GtProtocol::accept_probability(const Bitstring& x, const Bitstring& y,
                                      const Strategy& strategy) const {
  require(x.size() == n_ && y.size() == n_, "GtProtocol: input length mismatch");
  const int i = strategy.index;
  require(i >= 0 && i <= n_, "GtProtocol: index out of range");
  if (i == n_) {
    if (!sentinel_allowed()) {
      return 0.0;  // v_0 rejects an out-of-range index
    }
  } else {
    if (!x_bit_ok(x, i) || !y_bit_ok(y, i)) {
      return 0.0;  // v_0 or v_r rejects deterministically
    }
  }
  require(static_cast<int>(strategy.proof.size()) == reps_,
          "GtProtocol: repetition count mismatch");

  const CVec source = scheme_.state(fingerprint_input(x, i));
  const CVec target = scheme_.state(fingerprint_input(y, i));
  const auto swap_test = [](const CVec& a, const CVec& b) {
    return qtest::swap_test_accept(a, b);
  };
  const auto final_test = [&target](const CVec& received) {
    const double amp = std::abs(target.dot(received));
    return amp * amp;
  };
  double accept = 1.0;
  for (const auto& rep : strategy.proof) {
    require(rep.intermediate_nodes() == std::max(0, r_ - 1),
            "GtProtocol: proof size mismatch");
    accept *= chain_accept(source, rep, swap_test, final_test);
    if (accept == 0.0) {
      break;
    }
  }
  return accept;
}

double GtProtocol::completeness(const Bitstring& x, const Bitstring& y) const {
  return accept_probability(x, y, honest_strategy(x, y));
}

double GtProtocol::best_attack_accept(const Bitstring& x,
                                      const Bitstring& y) const {
  require(x.size() == n_ && y.size() == n_, "GtProtocol: input length mismatch");
  double best_single = 0.0;
  const int inner = std::max(0, r_ - 1);
  const int max_index = sentinel_allowed() ? n_ : n_ - 1;
  const auto swap_test = [](const CVec& a, const CVec& b) {
    return qtest::swap_test_accept(a, b);
  };
  for (int i = 0; i <= max_index; ++i) {
    if (i < n_ && (!x_bit_ok(x, i) || !y_bit_ok(y, i))) {
      continue;
    }
    const Bitstring px = fingerprint_input(x, i);
    const Bitstring py = fingerprint_input(y, i);
    if (px == py) {
      // The predicate holds through this index: the honest sub-proof
      // accepts with probability 1 (this only happens on yes instances).
      return 1.0;
    }
    const CVec hx = scheme_.state(px);
    const CVec hy = scheme_.state(py);
    const auto final_test = [&hy](const CVec& received) {
      const double amp = std::abs(hy.dot(received));
      return amp * amp;
    };
    // Single-repetition acceptance of the product attacks; the k-fold
    // protocol with identical per-repetition proofs accepts with the k-th
    // power.
    double single =
        chain_accept(hx, rotation_attack(hx, hy, inner), swap_test, final_test);
    for (int cut = 0; cut <= inner; ++cut) {
      single = std::max(single, chain_accept(hx, step_attack(hx, hy, inner, cut),
                                             swap_test, final_test));
    }
    best_single = std::max(best_single, single);
  }
  return std::pow(best_single, reps_);
}

}  // namespace dqma::protocol

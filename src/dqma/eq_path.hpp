// The paper's improved dQMA protocol for EQ on a path (Sec. 3.2):
// Algorithm 3 (protocol P_pi with the symmetrization step) and Algorithm 4
// (its k-fold parallel repetition P_pi[k]).
//
// Also implements two ablation baselines (DESIGN.md D1):
//  * kNoSymmetrization — Algorithm 3 with step 3 removed, demonstrating
//    that without symmetrization a product cheating proof achieves
//    acceptance 1 on no-instances (the kept and forwarded registers are
//    uncorrelated);
//  * kFgnpForwarding — the FGNP21-style protocol where each intermediate
//    node holds ONE register and forwards it left with probability 1/2, the
//    SWAP test occurring only when a node kept its register and received
//    its right neighbor's.
#pragma once

#include <cstdint>

#include "dqma/model.hpp"
#include "fingerprint/fingerprint.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace dqma::protocol {

using util::Bitstring;

enum class EqPathMode {
  kSymmetrized,      ///< Algorithm 3 (this paper)
  kNoSymmetrization, ///< ablation: step 3 removed
  kFgnpForwarding,   ///< FGNP21 probabilistic forwarding baseline
};

/// dQMA protocol for EQ between the endpoints of a path v_0 .. v_r.
class EqPathProtocol {
 public:
  /// n: input bits; r: path length (>= 1); delta: fingerprint overlap
  /// bound; reps: parallel repetitions k.
  EqPathProtocol(int n, int r, double delta, int reps,
                 EqPathMode mode = EqPathMode::kSymmetrized,
                 std::uint64_t seed = 0x0ddba11);

  /// Repetition count the paper's analysis prescribes for soundness 1/3:
  /// k = ceil(2 * 81 r^2 / 4).
  static int paper_reps(int r);

  int n() const { return scheme_.input_length(); }
  int r() const { return r_; }
  int reps() const { return reps_; }
  EqPathMode mode() const { return mode_; }
  const fingerprint::FingerprintScheme& scheme() const { return scheme_; }

  /// Definition 6 cost accounting for this instance.
  CostProfile costs() const;

  /// Formula-level cost accounting WITHOUT constructing the (potentially
  /// large) fingerprint code — used by cost sweeps over large n.
  static CostProfile costs_for(int n, int r, double delta, int reps,
                               EqPathMode mode = EqPathMode::kSymmetrized);

  /// Qubits of one fingerprint register for (n, delta).
  static int fingerprint_qubits(int n, double delta);

  /// The honest proof (every register the fingerprint |h_x>).
  PathProofReps honest_proof(const Bitstring& x) const;

  /// Exact acceptance probability on inputs (x, y) under an arbitrary
  /// product proof. The honest proof on x == y accepts with probability 1.
  double accept_probability(const Bitstring& x, const Bitstring& y,
                            const PathProofReps& proof) const;

  /// Exact acceptance of a single repetition (the k-fold protocol with the
  /// same proof in every repetition accepts with this value to the k-th
  /// power; attack search uses this to avoid re-evaluating k copies).
  double single_rep_accept(const Bitstring& x, const Bitstring& y,
                           const PathProof& proof) const;

  /// Completeness: acceptance of the honest run (exactly 1 in
  /// kSymmetrized / kNoSymmetrization; 1 in kFgnpForwarding as well since
  /// all fingerprints agree).
  double completeness(const Bitstring& x) const;

  /// Acceptance under the strongest implemented product attack (see
  /// attacks.hpp): an upper-bound estimate of the soundness error for
  /// product (dQMA_sep,sep) provers.
  double best_attack_accept(const Bitstring& x, const Bitstring& y) const;

 private:
  int r_;
  int reps_;
  EqPathMode mode_;
  fingerprint::FingerprintScheme scheme_;

  double accept_one_rep(const Bitstring& x, const Bitstring& y,
                        const PathProof& proof) const;
  double accept_fgnp_rep(const Bitstring& x, const Bitstring& y,
                         const PathProof& proof) const;
};

}  // namespace dqma::protocol

#include "dqma/relay_eq.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace dqma::protocol {

using util::Bitstring;
using util::require;

RelayEqProtocol::RelayEqProtocol(int n, int r, double delta, int spacing,
                                 int seg_reps, std::uint64_t seed)
    : n_(n), r_(r), spacing_(spacing), seg_reps_(seg_reps) {
  require(n >= 1, "RelayEqProtocol: n must be positive");
  require(r >= 1, "RelayEqProtocol: r must be positive");
  require(spacing >= 1, "RelayEqProtocol: spacing must be positive");
  require(seg_reps >= 1, "RelayEqProtocol: seg_reps must be positive");

  for (int pos = spacing; pos < r; pos += spacing) {
    relay_positions_.push_back(pos);
  }
  // Segments between consecutive anchors (v_0, relays..., v_r).
  int prev = 0;
  for (const int pos : relay_positions_) {
    segments_.push_back(std::make_unique<EqPathProtocol>(
        n, pos - prev, delta, seg_reps, EqPathMode::kSymmetrized, seed));
    prev = pos;
  }
  segments_.push_back(std::make_unique<EqPathProtocol>(
      n, r - prev, delta, seg_reps, EqPathMode::kSymmetrized, seed));
}

int RelayEqProtocol::paper_spacing(int n) {
  // ceil(n^{1/3}) with a guard against cbrt() landing just above an exact
  // cube (cbrt(27) = 3 + ulp would otherwise round to 4).
  return static_cast<int>(std::ceil(std::cbrt(static_cast<double>(n)) - 1e-9));
}

int RelayEqProtocol::paper_seg_reps(int n) {
  const int s = paper_spacing(n);
  return 42 * s * s;
}

CostProfile RelayEqProtocol::costs_for(int n, int r, double delta, int spacing,
                                       int seg_reps) {
  CostProfile c;
  int relays = 0;
  for (int pos = spacing; pos < r; pos += spacing) {
    ++relays;
  }
  c.local_proof_qubits = n;
  c.total_proof_qubits = static_cast<long long>(relays) * n;
  int prev = 0;
  auto add_segment = [&](int length) {
    const CostProfile sc = EqPathProtocol::costs_for(n, length, delta, seg_reps);
    c.local_proof_qubits = std::max(c.local_proof_qubits, sc.local_proof_qubits);
    c.total_proof_qubits += sc.total_proof_qubits;
    c.local_message_qubits =
        std::max(c.local_message_qubits, sc.local_message_qubits);
    c.total_message_qubits += sc.total_message_qubits;
  };
  for (int pos = spacing; pos < r; pos += spacing) {
    add_segment(pos - prev);
    prev = pos;
  }
  add_segment(r - prev);
  return c;
}

CostProfile RelayEqProtocol::costs() const {
  CostProfile c;
  // Relays receive n qubits each.
  c.local_proof_qubits = n_;
  c.total_proof_qubits = static_cast<long long>(relay_count()) * n_;
  // Intermediate (non-relay) nodes carry segment fingerprint registers.
  for (const auto& seg : segments_) {
    const CostProfile sc = seg->costs();
    c.local_proof_qubits = std::max(c.local_proof_qubits, sc.local_proof_qubits);
    c.total_proof_qubits += sc.total_proof_qubits;
    c.local_message_qubits =
        std::max(c.local_message_qubits, sc.local_message_qubits);
    c.total_message_qubits += sc.total_message_qubits;
  }
  return c;
}

RelayEqProtocol::Strategy RelayEqProtocol::honest_strategy(
    const Bitstring& x) const {
  Strategy s;
  s.relay_strings.assign(static_cast<std::size_t>(relay_count()), x);
  for (const auto& seg : segments_) {
    s.segment_proofs.push_back(seg->honest_proof(x));
  }
  return s;
}

double RelayEqProtocol::strategy_accept(const std::vector<Bitstring>& anchors,
                                        const Strategy& strategy,
                                        const Bitstring& /*x*/,
                                        const Bitstring& /*y*/) const {
  double accept = 1.0;
  for (int s = 0; s < segment_count(); ++s) {
    accept *= segments_[static_cast<std::size_t>(s)]->accept_probability(
        anchors[static_cast<std::size_t>(s)],
        anchors[static_cast<std::size_t>(s + 1)],
        strategy.segment_proofs[static_cast<std::size_t>(s)]);
    if (accept == 0.0) {
      break;
    }
  }
  return accept;
}

double RelayEqProtocol::accept_probability(const Bitstring& x,
                                           const Bitstring& y,
                                           const Strategy& strategy) const {
  require(static_cast<int>(strategy.relay_strings.size()) == relay_count(),
          "RelayEqProtocol: relay string count mismatch");
  require(static_cast<int>(strategy.segment_proofs.size()) == segment_count(),
          "RelayEqProtocol: segment proof count mismatch");
  std::vector<Bitstring> anchors;
  anchors.reserve(static_cast<std::size_t>(segment_count()) + 1);
  anchors.push_back(x);
  anchors.insert(anchors.end(), strategy.relay_strings.begin(),
                 strategy.relay_strings.end());
  anchors.push_back(y);
  return strategy_accept(anchors, strategy, x, y);
}

double RelayEqProtocol::completeness(const Bitstring& x) const {
  return accept_probability(x, x, honest_strategy(x));
}

double RelayEqProtocol::best_attack_accept(const Bitstring& x,
                                           const Bitstring& y) const {
  require(x.size() == n_ && y.size() == n_,
          "RelayEqProtocol: input length mismatch");

  // Candidate relay-string assignments.
  std::vector<std::vector<Bitstring>> candidates;

  // (a) Hamming interpolation: relay i flips the first ceil(i * d / (k+1))
  // differing positions of x toward y.
  {
    std::vector<int> diff_positions;
    for (int i = 0; i < n_; ++i) {
      if (x.get(i) != y.get(i)) {
        diff_positions.push_back(i);
      }
    }
    std::vector<Bitstring> relays;
    for (int i = 1; i <= relay_count(); ++i) {
      const int flips = static_cast<int>(
          std::llround(static_cast<double>(i) *
                       static_cast<double>(diff_positions.size()) /
                       (relay_count() + 1)));
      Bitstring z = x;
      for (int f = 0; f < flips; ++f) {
        z.flip(diff_positions[static_cast<std::size_t>(f)]);
      }
      relays.push_back(std::move(z));
    }
    candidates.push_back(std::move(relays));
  }
  // (b) Single jump in each segment position: all relays before the jump
  // hold x, the rest hold y.
  for (int jump = 0; jump <= relay_count(); ++jump) {
    std::vector<Bitstring> relays;
    for (int i = 0; i < relay_count(); ++i) {
      relays.push_back(i < jump ? x : y);
    }
    candidates.push_back(std::move(relays));
  }

  double best = 0.0;
  for (auto& relays : candidates) {
    Strategy s;
    s.relay_strings = relays;
    std::vector<Bitstring> anchors;
    anchors.push_back(x);
    anchors.insert(anchors.end(), relays.begin(), relays.end());
    anchors.push_back(y);
    double accept = 1.0;
    for (int seg = 0; seg < segment_count(); ++seg) {
      const Bitstring& a = anchors[static_cast<std::size_t>(seg)];
      const Bitstring& b = anchors[static_cast<std::size_t>(seg + 1)];
      if (a == b) {
        // Honest sub-proof accepts with certainty.
        continue;
      }
      accept *= segments_[static_cast<std::size_t>(seg)]->best_attack_accept(a, b);
      if (accept == 0.0) {
        break;
      }
    }
    best = std::max(best, accept);
  }
  return best;
}

}  // namespace dqma::protocol

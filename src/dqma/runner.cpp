#include "dqma/runner.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dqma::protocol {

using util::require;

namespace {

// Shared DP core of chain_accept / chain_accept_linked: tests receive the
// index of the link the tested register traversed. The two public entry
// points must stay on this one code path so link-oblivious and link-aware
// evaluations are bit-identical.
template <typename PairTest, typename FinalTest>
double chain_accept_impl(const CVec& source, const PathProof& proof,
                         const PairTest& pair_test,
                         const FinalTest& final_test) {
  const int inner = proof.intermediate_nodes();
  require(static_cast<int>(proof.reg1.size()) == inner,
          "chain_accept: reg0/reg1 size mismatch");
  if (inner == 0) {
    return final_test(0, source);
  }

  // f[c] = expected product of test acceptances over nodes 1..j, given that
  // node j's coin is c (coin 0: keep reg0 / send reg1; coin 1: swapped),
  // including the 1/2 weight of each coin.
  //
  // kept_j(c)  = c == 0 ? reg0[j] : reg1[j]
  // sent_j(c)  = c == 0 ? reg1[j] : reg0[j]
  double f0 = 0.5 * pair_test(0, source, proof.reg0[0]);
  double f1 = 0.5 * pair_test(0, source, proof.reg1[0]);
  for (int j = 1; j < inner; ++j) {
    const CVec& sent_prev_c0 = proof.reg1[static_cast<std::size_t>(j - 1)];
    const CVec& sent_prev_c1 = proof.reg0[static_cast<std::size_t>(j - 1)];
    const CVec& kept_c0 = proof.reg0[static_cast<std::size_t>(j)];
    const CVec& kept_c1 = proof.reg1[static_cast<std::size_t>(j)];
    const double t00 = pair_test(j, sent_prev_c0, kept_c0);
    const double t10 = pair_test(j, sent_prev_c1, kept_c0);
    const double t01 = pair_test(j, sent_prev_c0, kept_c1);
    const double t11 = pair_test(j, sent_prev_c1, kept_c1);
    const double n0 = 0.5 * (f0 * t00 + f1 * t10);
    const double n1 = 0.5 * (f0 * t01 + f1 * t11);
    f0 = n0;
    f1 = n1;
  }
  const int last = inner - 1;
  return f0 * final_test(inner, proof.reg1[static_cast<std::size_t>(last)]) +
         f1 * final_test(inner, proof.reg0[static_cast<std::size_t>(last)]);
}

}  // namespace

double chain_accept(
    const CVec& source, const PathProof& proof,
    const std::function<double(const CVec&, const CVec&)>& pair_test,
    const std::function<double(const CVec&)>& final_test) {
  return chain_accept_impl(
      source, proof,
      [&pair_test](int, const CVec& received, const CVec& kept) {
        return pair_test(received, kept);
      },
      [&final_test](int, const CVec& received) { return final_test(received); });
}

double chain_accept_linked(
    const CVec& source, const PathProof& proof,
    const std::function<double(int, const CVec&, const CVec&)>& pair_test,
    const std::function<double(int, const CVec&)>& final_test) {
  return chain_accept_impl(source, proof, pair_test, final_test);
}

double chain_accept_reps(
    const std::vector<CVec>& sources, const PathProofReps& proofs,
    const std::function<double(const CVec&, const CVec&)>& pair_test,
    const std::function<double(const CVec&)>& final_test) {
  require(sources.size() == proofs.size(),
          "chain_accept_reps: sources/proofs size mismatch");
  double accept = 1.0;
  for (std::size_t k = 0; k < proofs.size(); ++k) {
    accept *= chain_accept(sources[k], proofs[k], pair_test, final_test);
    if (accept == 0.0) {
      break;
    }
  }
  return accept;
}

MonteCarloEstimate RunningStat::finalize() const {
  require(count_ >= 1, "RunningStat: need at least one sample");
  MonteCarloEstimate out;
  out.samples = count_;
  out.mean = mean_;
  const double var = std::max(0.0, m2_ / static_cast<double>(count_));
  out.half_width_95 = 1.96 * std::sqrt(var / static_cast<double>(count_));
  return out;
}

MonteCarloEstimate estimate(const std::function<double()>& sample, int count) {
  require(count >= 1, "estimate: need at least one sample");
  RunningStat stat;
  for (int i = 0; i < count; ++i) {
    stat.add(sample());
  }
  return stat.finalize();
}

}  // namespace dqma::protocol

#include "dqma/qma_star.hpp"

#include <algorithm>

#include "linalg/eigen.hpp"
#include "quantum/random.hpp"
#include "util/require.hpp"

namespace dqma::protocol {

using linalg::CMat;
using linalg::Complex;
using linalg::CVec;
using util::require;

QmaStarInstance::QmaStarInstance(const ExactEqPathAnalyzer& analyzer, int cut,
                                 int register_qubits) {
  op_ = analyzer.acceptance_operator();
  const long long total = analyzer.proof_dim();
  // The analyzer's registers are ordered by node: R_{1,0}, R_{1,1}, ...,
  // so Alice's share (nodes 1..cut) is the most-significant block of the
  // flat index — no reordering needed.
  require(register_qubits >= 1, "QmaStarInstance: register qubits");
  // Infer the per-register dimension from the operator: total = d^{2*inner}.
  long long inner = 0;
  long long dim = 1;
  long long d = 2;
  // Find d and inner such that d^{2*inner} == total, preferring the
  // analyzer's natural d (total is a perfect power).
  for (long long cand = 2; cand <= total; ++cand) {
    long long acc = 1;
    long long count = 0;
    while (acc < total) {
      acc *= cand * cand;
      ++count;
    }
    if (acc == total) {
      d = cand;
      inner = count;
      dim = acc;
      break;
    }
  }
  require(dim == total || total == 1, "QmaStarInstance: non-power proof space");
  if (total == 1) {
    inner = 0;
  }
  require(cut >= 0 && cut <= inner, "QmaStarInstance: cut out of range");

  gamma1_dim_ = 1;
  for (int k = 0; k < 2 * cut; ++k) {
    gamma1_dim_ *= d;
  }
  gamma2_dim_ = total / gamma1_dim_;
  gamma1_qubits_ = 2LL * cut * register_qubits;
  gamma2_qubits_ = 2LL * (inner - cut) * register_qubits;
  mu_qubits_ = register_qubits;
}

double QmaStarInstance::max_accept() const {
  return std::min(1.0, linalg::max_eigenvalue_psd(op_));
}

double QmaStarInstance::max_cut_separable_accept(util::Rng& rng, int restarts,
                                                 int sweeps) const {
  const int g1 = static_cast<int>(gamma1_dim_);
  const int g2 = static_cast<int>(gamma2_dim_);
  if (g1 == 1 || g2 == 1) {
    // One side holds everything: separable equals entangled.
    return max_accept();
  }
  const auto objective = [&](const CVec& alpha, const CVec& beta) {
    const CVec full = alpha.tensor(beta);
    return std::max(0.0, full.dot(op_ * full).real());
  };
  double best = 0.0;
  for (int restart = 0; restart < restarts; ++restart) {
    CVec alpha = quantum::haar_state(g1, rng);
    CVec beta = quantum::haar_state(g2, rng);
    double value = objective(alpha, beta);
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      // Optimize alpha for fixed beta: top eigenvector of
      // M(i,j) = <e_i (x) beta| O |e_j (x) beta>.
      CMat m_alpha(g1, g1);
      for (int i = 0; i < g1; ++i) {
        for (int j = 0; j < g1; ++j) {
          Complex acc{0.0, 0.0};
          for (int k = 0; k < g2; ++k) {
            for (int l = 0; l < g2; ++l) {
              acc += std::conj(beta[k]) * beta[l] *
                     op_(i * g2 + k, j * g2 + l);
            }
          }
          m_alpha(i, j) = acc;
        }
      }
      linalg::top_eigenpair_psd(m_alpha, alpha);
      // Optimize beta for fixed alpha.
      CMat m_beta(g2, g2);
      for (int k = 0; k < g2; ++k) {
        for (int l = 0; l < g2; ++l) {
          Complex acc{0.0, 0.0};
          for (int i = 0; i < g1; ++i) {
            for (int j = 0; j < g1; ++j) {
              acc += std::conj(alpha[i]) * alpha[j] *
                     op_(i * g2 + k, j * g2 + l);
            }
          }
          m_beta(k, l) = acc;
        }
      }
      linalg::top_eigenpair_psd(m_beta, beta);
      const double next = objective(alpha, beta);
      if (next <= value + 1e-12) {
        value = std::max(value, next);
        break;
      }
      value = next;
    }
    best = std::max(best, value);
  }
  return std::min(1.0, best);
}

}  // namespace dqma::protocol

// The paper's Theorem 29: ranking verification (Algorithm 8).
//
// RV^{i,j}_t(x_1..x_t) = 1 iff x_i is the j-th largest input. Following
// Definition 9 we verify the count of terminals k != i with x_i >= x_k;
// for the j-th largest input (inputs distinct) that count is t - j, which
// is the arithmetically consistent form of the paper's t - j + 1 (its sum
// ranges over t - 1 terms, so t - j + 1 is unreachable for j = 1; we use
// t - j and note the off-by-one in EXPERIMENTS.md).
//
// The protocol runs, for every other terminal k, the GT>= or GT< protocol
// of Corollary 28 along the tree path between u_i and u_k, with a
// direction register on every path node; direction registers are compared
// pairwise (a lying prover must lie consistently along the whole path) and
// the root counts the ">=" directions.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dqma/gt.hpp"
#include "dqma/model.hpp"
#include "network/graph.hpp"
#include "network/tree.hpp"
#include "util/bitstring.hpp"

namespace dqma::protocol {

/// Ground truth: is x_i the rank-th largest (rank 1 = maximum) of inputs?
/// Ties are broken toward "larger or equal counts as >=", matching the
/// GT>= sub-protocols.
bool rv_predicate(const std::vector<Bitstring>& inputs, int i, int rank);

class RvProtocol {
 public:
  /// graph + terminals: the network; i: index (into `terminals`) of the
  /// distinguished terminal; rank: claimed rank j (1-based).
  RvProtocol(const network::Graph& graph, std::vector<int> terminals, int i,
             int rank, int n, double delta, int reps,
             std::uint64_t seed = 0x0ddba11);

  int terminal_count() const { return static_cast<int>(terminals_.size()); }
  int rank() const { return rank_; }
  const network::SpanningTree& tree() const { return tree_; }

  CostProfile costs() const;

  /// Acceptance of the honest prover (1 on yes instances, and the honest
  /// count check fails deterministically on no instances).
  double completeness(const std::vector<Bitstring>& inputs) const;

  /// Strongest implemented attack: the prover must claim exactly t - rank
  /// ">=" directions; it assigns the lies to the pairs where the GT attack
  /// is strongest and cheats those sub-protocols.
  double best_attack_accept(const std::vector<Bitstring>& inputs) const;

 private:
  std::vector<int> terminals_;
  int i_;
  int rank_;
  int n_;
  network::SpanningTree tree_;
  std::vector<int> others_;                     ///< terminal indices != i
  std::vector<int> path_lengths_;               ///< tree path length per other
  std::vector<std::unique_ptr<GtProtocol>> geq_;
  std::vector<std::unique_ptr<GtProtocol>> less_;
};

}  // namespace dqma::protocol

#include "dqma/forall_f.hpp"

#include <algorithm>
#include <cmath>

#include "dqma/attacks.hpp"
#include "util/require.hpp"

namespace dqma::protocol {

using comm::qubits_for_dim;
using linalg::Complex;
using linalg::CVec;
using util::require;

double message_swap_accept(const std::vector<CVec>& a,
                           const std::vector<CVec>& b) {
  require(a.size() == b.size(), "message_swap_accept: register count mismatch");
  Complex overlap{1.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) {
    overlap *= a[i].dot(b[i]);
  }
  const double mag = std::abs(overlap);
  return 0.5 + 0.5 * mag * mag;
}

ForallFProtocol::ForallFProtocol(const network::Graph& graph,
                                 std::vector<int> terminals,
                                 const comm::OneWayProtocol& protocol,
                                 int reps)
    : terminals_(std::move(terminals)), protocol_(protocol), reps_(reps) {
  require(terminal_count() >= 2, "ForallFProtocol: need at least two terminals");
  require(reps >= 1, "ForallFProtocol: reps must be positive");
  trees_.reserve(terminals_.size());
  for (const int t : terminals_) {
    trees_.push_back(network::SpanningTree::build(graph, terminals_, t));
  }
}

const network::SpanningTree& ForallFProtocol::tree_for(int j) const {
  require(j >= 0 && j < terminal_count(), "ForallFProtocol: tree index");
  return trees_[static_cast<std::size_t>(j)];
}

CostProfile ForallFProtocol::costs() const {
  const long long mu = protocol_.message_qubits();
  CostProfile c;
  // Per tree: every internal non-root node holds (deg+1) message copies per
  // repetition; aggregate per ORIGINAL graph node across trees for local
  // sizes.
  std::vector<long long> per_node_proof;
  for (const auto& tree : trees_) {
    for (int v = 0; v < tree.size(); ++v) {
      const auto& node = tree.node(v);
      const bool internal = node.parent >= 0 && !node.children.empty();
      if (!internal) {
        continue;
      }
      const long long copies =
          static_cast<long long>(node.children.size()) + 1;
      const long long qubits = copies * reps_ * mu;
      const int orig = node.original;
      if (orig >= static_cast<int>(per_node_proof.size())) {
        per_node_proof.resize(static_cast<std::size_t>(orig) + 1, 0);
      }
      per_node_proof[static_cast<std::size_t>(orig)] += qubits;
      c.total_proof_qubits += qubits;
    }
    // Messages: one per tree edge per repetition.
    c.total_message_qubits += static_cast<long long>(tree.size() - 1) * reps_ * mu;
  }
  for (const long long p : per_node_proof) {
    c.local_proof_qubits = std::max(c.local_proof_qubits, p);
  }
  c.local_message_qubits =
      static_cast<long long>(terminal_count()) * reps_ * mu;
  return c;
}

ForallFProtocol::Proof ForallFProtocol::honest_proof(
    const std::vector<Bitstring>& inputs) const {
  require(static_cast<int>(inputs.size()) == terminal_count(),
          "ForallFProtocol: input count mismatch");
  Proof proof(static_cast<std::size_t>(terminal_count()));
  for (int j = 0; j < terminal_count(); ++j) {
    const auto& tree = trees_[static_cast<std::size_t>(j)];
    const Message honest =
        protocol_.honest_message(inputs[static_cast<std::size_t>(j)]);
    TreeProof one;
    one.bundles.resize(static_cast<std::size_t>(tree.size()));
    for (int v = 0; v < tree.size(); ++v) {
      const auto& node = tree.node(v);
      const bool internal = node.parent >= 0 && !node.children.empty();
      if (internal) {
        one.bundles[static_cast<std::size_t>(v)].assign(
            node.children.size() + 1, honest);
      }
    }
    proof[static_cast<std::size_t>(j)].assign(static_cast<std::size_t>(reps_),
                                              one);
  }
  return proof;
}

bool ForallFProtocol::predicate(const std::vector<Bitstring>& inputs) const {
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      if (i != j && !protocol_.predicate(inputs[i], inputs[j])) {
        return false;
      }
    }
  }
  return true;
}

double ForallFProtocol::completeness(
    const std::vector<Bitstring>& inputs) const {
  require(static_cast<int>(inputs.size()) == terminal_count(),
          "ForallFProtocol: input count mismatch");
  // Honest proof: every SWAP test passes with certainty (all copies equal);
  // each leaf of tree T_j runs Bob's verdict `reps` times on
  // (x_j, x_leaf).
  double accept = 1.0;
  for (int j = 0; j < terminal_count(); ++j) {
    const auto& tree = trees_[static_cast<std::size_t>(j)];
    for (int k = 0; k < terminal_count(); ++k) {
      if (k == j) {
        continue;
      }
      const int leaf =
          tree.leaf_of_terminal(terminals_[static_cast<std::size_t>(k)]);
      require(tree.node(leaf).children.empty(),
              "ForallFProtocol: terminal is not a leaf of its co-tree");
      const double p = protocol_.honest_accept(
          inputs[static_cast<std::size_t>(j)],
          inputs[static_cast<std::size_t>(k)]);
      accept *= std::pow(p, reps_);
    }
  }
  return accept;
}

ForallFProtocol::CompiledTreeProof ForallFProtocol::compile_tree(
    int j, const std::vector<Bitstring>& inputs, const TreeProof& proof) const {
  const auto& tree = trees_[static_cast<std::size_t>(j)];
  const Message root_message =
      protocol_.honest_message(inputs[static_cast<std::size_t>(j)]);

  CompiledTreeProof compiled;
  compiled.swap_accept.resize(static_cast<std::size_t>(tree.size()));
  compiled.leaf_accept.resize(static_cast<std::size_t>(tree.size()));
  for (int v = 0; v < tree.size(); ++v) {
    const auto& node = tree.node(v);
    if (node.parent < 0) {
      continue;  // the root neither tests nor receives
    }
    // Messages that can arrive at v: the parent's bundle copies, or the
    // root's (fixed) honest message.
    const auto& parent = tree.node(node.parent);
    const bool from_root = parent.parent < 0;
    const std::vector<Message>* parent_bundle =
        from_root ? nullptr
                  : &proof.bundles[static_cast<std::size_t>(node.parent)];
    const int sources =
        from_root ? 1 : static_cast<int>(parent_bundle->size());
    const auto arriving = [&](int s) -> const Message& {
      return from_root ? root_message
                       : (*parent_bundle)[static_cast<std::size_t>(s)];
    };

    if (node.children.empty()) {
      // Leaf: Bob's verdict on its own input against every possible
      // arriving copy. Identify which terminal.
      int terminal_idx = -1;
      for (int k = 0; k < terminal_count(); ++k) {
        if (terminals_[static_cast<std::size_t>(k)] == node.original) {
          terminal_idx = k;
          break;
        }
      }
      require(terminal_idx >= 0, "ForallFProtocol: leaf is not a terminal");
      auto& row = compiled.leaf_accept[static_cast<std::size_t>(v)];
      row.resize(static_cast<std::size_t>(sources));
      for (int s = 0; s < sources; ++s) {
        row[static_cast<std::size_t>(s)] = protocol_.accept_product(
            inputs[static_cast<std::size_t>(terminal_idx)], arriving(s));
      }
      continue;
    }
    const auto& bundle = proof.bundles[static_cast<std::size_t>(v)];
    const int copies = static_cast<int>(bundle.size());
    require(copies == static_cast<int>(node.children.size()) + 1,
            "ForallFProtocol: bundle size mismatch");
    auto& table = compiled.swap_accept[static_cast<std::size_t>(v)];
    table.resize(static_cast<std::size_t>(sources));
    for (int s = 0; s < sources; ++s) {
      auto& row = table[static_cast<std::size_t>(s)];
      row.resize(static_cast<std::size_t>(copies));
      for (int c = 0; c < copies; ++c) {
        row[static_cast<std::size_t>(c)] = message_swap_accept(
            bundle[static_cast<std::size_t>(c)], arriving(s));
      }
    }
  }
  return compiled;
}

double ForallFProtocol::sample_compiled_accept(
    int j, const CompiledTreeProof& compiled, util::Rng& rng,
    std::vector<int>& perm_scratch, std::vector<int>& arrived_scratch) const {
  const auto& tree = trees_[static_cast<std::size_t>(j)];
  // arrived[v]: which of the parent's copies reached v (0 when the parent
  // is the root). Same walk, same Fisher-Yates draws, same multiplication
  // order as the former per-shot evaluation — only the probabilities come
  // from the precomputed tables.
  arrived_scratch.assign(static_cast<std::size_t>(tree.size()), 0);
  double accept = 1.0;
  // Pre-order: parents before children (tree nodes are emitted in BFS
  // order by construction, so ascending index order works).
  for (int v = 0; v < tree.size(); ++v) {
    const auto& node = tree.node(v);
    if (node.parent < 0) {
      continue;  // children keep arrived = 0: the root's honest message
    }
    const int src = arrived_scratch[static_cast<std::size_t>(v)];
    if (node.children.empty()) {
      accept *= compiled.leaf_accept[static_cast<std::size_t>(v)]
                                    [static_cast<std::size_t>(src)];
      continue;
    }
    // Internal node: uniform permutation of its (deg+1) copies; last slot
    // kept (SWAP-tested against the arriving copy), others forwarded to
    // children in order.
    const auto& row = compiled.swap_accept[static_cast<std::size_t>(v)]
                                          [static_cast<std::size_t>(src)];
    const int copies = static_cast<int>(row.size());
    perm_scratch.resize(static_cast<std::size_t>(copies));
    for (int c = 0; c < copies; ++c) {
      perm_scratch[static_cast<std::size_t>(c)] = c;
    }
    for (int c = copies - 1; c > 0; --c) {
      const int swap_with =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(c) + 1));
      std::swap(perm_scratch[static_cast<std::size_t>(c)],
                perm_scratch[static_cast<std::size_t>(swap_with)]);
    }
    accept *= row[static_cast<std::size_t>(perm_scratch.back())];
    for (std::size_t c = 0; c < node.children.size(); ++c) {
      arrived_scratch[static_cast<std::size_t>(node.children[c])] =
          perm_scratch[c];
    }
  }
  return accept;
}

MonteCarloEstimate ForallFProtocol::accept_probability(
    const std::vector<Bitstring>& inputs, const Proof& proof, util::Rng& rng,
    int samples) const {
  require(static_cast<int>(proof.size()) == terminal_count(),
          "ForallFProtocol: proof tree count mismatch");
  require(samples >= 1, "ForallFProtocol: need at least one sample");
  // Precompute every (tree, repetition)'s acceptance tables once; the
  // sampling loop below is then permutation draws and lookups only, with
  // no per-shot state preparation or std::function dispatch.
  std::vector<std::vector<CompiledTreeProof>> compiled(
      static_cast<std::size_t>(terminal_count()));
  for (int j = 0; j < terminal_count(); ++j) {
    const auto& reps = proof[static_cast<std::size_t>(j)];
    compiled[static_cast<std::size_t>(j)].reserve(reps.size());
    for (const auto& rep : reps) {
      compiled[static_cast<std::size_t>(j)].push_back(
          compile_tree(j, inputs, rep));
    }
  }
  std::vector<int> perm_scratch;
  std::vector<int> arrived_scratch;
  RunningStat stat;
  for (int s = 0; s < samples; ++s) {
    double accept = 1.0;
    for (int j = 0; j < terminal_count() && accept != 0.0; ++j) {
      for (const auto& rep : compiled[static_cast<std::size_t>(j)]) {
        accept *= sample_compiled_accept(j, rep, rng, perm_scratch,
                                         arrived_scratch);
        if (accept == 0.0) {
          break;
        }
      }
    }
    stat.add(accept);
  }
  return stat.finalize();
}

MonteCarloEstimate ForallFProtocol::best_attack_accept(
    const std::vector<Bitstring>& inputs, util::Rng& rng, int samples) const {
  // Identify a violated ordered pair; cheat only on the corresponding tree
  // path (all other trees stay honest, contributing their exact honest
  // factor).
  Proof proof = honest_proof(inputs);
  MonteCarloEstimate best;
  best.mean = -1.0;
  for (int j = 0; j < terminal_count(); ++j) {
    for (int k = 0; k < terminal_count(); ++k) {
      if (j == k || protocol_.predicate(inputs[static_cast<std::size_t>(j)],
                                        inputs[static_cast<std::size_t>(k)])) {
        continue;
      }
      // Interpolate messages from psi(x_j) to psi(x_k) down the path.
      const auto& tree = trees_[static_cast<std::size_t>(j)];
      const int leaf =
          tree.leaf_of_terminal(terminals_[static_cast<std::size_t>(k)]);
      const auto path = tree.path_between(tree.root(), leaf);
      const Message source =
          protocol_.honest_message(inputs[static_cast<std::size_t>(j)]);
      const Message target =
          protocol_.honest_message(inputs[static_cast<std::size_t>(k)]);
      // Per-register geodesics with one waypoint per inner path node.
      const int inner = static_cast<int>(path.size()) - 2;
      Proof cheat = proof;
      for (int p = 1; p <= inner; ++p) {
        const int v = path[static_cast<std::size_t>(p)];
        const auto& node = tree.node(v);
        const bool internal = node.parent >= 0 && !node.children.empty();
        if (!internal) {
          continue;
        }
        Message waypoint;
        waypoint.reserve(source.size());
        for (std::size_t reg = 0; reg < source.size(); ++reg) {
          auto states = geodesic_states(source[reg], target[reg], inner);
          waypoint.push_back(std::move(states[static_cast<std::size_t>(p - 1)]));
        }
        for (auto& rep : cheat[static_cast<std::size_t>(j)]) {
          rep.bundles[static_cast<std::size_t>(v)].assign(
              node.children.size() + 1, waypoint);
        }
      }
      const MonteCarloEstimate est =
          accept_probability(inputs, cheat, rng, samples);
      if (est.mean > best.mean) {
        best = est;
      }
    }
  }
  require(best.mean >= 0.0,
          "ForallFProtocol::best_attack_accept: inputs satisfy the predicate");
  return best;
}

}  // namespace dqma::protocol

#include "dqma/exact_runner.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.hpp"
#include "quantum/local_ops.hpp"
#include "quantum/random.hpp"
#include "quantum/unitary.hpp"
#include "sweep/parallel.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::protocol {

using linalg::Complex;
using quantum::LocalOpPlan;
using quantum::RegisterShape;
using util::require;

namespace {

/// <w| effect |w> for the product state w = tensor of the listed registers'
/// states: the per-group factor of a product proof's acceptance. O(b^2) for
/// block dimension b, with exact zeros of the effect skipped.
double local_expectation(const CMat& effect, const std::vector<int>& group,
                         const std::vector<CVec>& states) {
  CVec w = states[static_cast<std::size_t>(group.front())];
  for (std::size_t k = 1; k < group.size(); ++k) {
    w = w.tensor(states[static_cast<std::size_t>(group[k])]);
  }
  Complex acc{0.0, 0.0};
  for (int i = 0; i < effect.rows(); ++i) {
    const Complex ci = std::conj(w[i]);
    Complex row{0.0, 0.0};
    for (int j = 0; j < effect.cols(); ++j) {
      const Complex v = effect(i, j);
      if (v == Complex{0.0, 0.0}) continue;
      row += v * w[j];
    }
    acc += ci * row;
  }
  return acc.real();
}

/// Partial contraction of a two-register effect, leaving the register at
/// `pos` (0 or 1) free: the d x d conditional block M with
///   pos == 0:  M(i, j) = sum_{a,b} conj(v[a]) E(i*d+a, j*d+b) v[b]
///   pos == 1:  M(a, b) = sum_{i,j} conj(u[i]) E(i*d+a, j*d+b) u[j]
/// contracted in two O(d^4) + O(d^3) stages.
CMat pair_conditional(const CMat& effect, int pos, const CVec& other, int d) {
  CMat m(d, d);
  if (pos == 0) {
    // Stage 1 over b: C(i*d+a, j) = sum_b E(i*d+a, j*d+b) other[b].
    CMat c(d * d, d);
    for (int row = 0; row < d * d; ++row) {
      for (int j = 0; j < d; ++j) {
        Complex acc{0.0, 0.0};
        for (int b = 0; b < d; ++b) {
          const Complex v = effect(row, j * d + b);
          if (v == Complex{0.0, 0.0}) continue;
          acc += v * other[b];
        }
        c(row, j) = acc;
      }
    }
    // Stage 2 over a: M(i, j) = sum_a conj(other[a]) C(i*d+a, j).
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        Complex acc{0.0, 0.0};
        for (int a = 0; a < d; ++a) {
          acc += std::conj(other[a]) * c(i * d + a, j);
        }
        m(i, j) = acc;
      }
    }
    return m;
  }
  // pos == 1: stage 1 over i: T(a, j*d+b) = sum_i conj(other[i]) E(i*d+a, .).
  CMat t(d, d * d);
  for (int a = 0; a < d; ++a) {
    for (int col = 0; col < d * d; ++col) {
      Complex acc{0.0, 0.0};
      for (int i = 0; i < d; ++i) {
        const Complex v = effect(i * d + a, col);
        if (v == Complex{0.0, 0.0}) continue;
        acc += std::conj(other[i]) * v;
      }
      t(a, col) = acc;
    }
  }
  // Stage 2 over j: M(a, b) = sum_j T(a, j*d+b) other[j].
  for (int a = 0; a < d; ++a) {
    for (int b = 0; b < d; ++b) {
      Complex acc{0.0, 0.0};
      for (int j = 0; j < d; ++j) {
        acc += t(a, j * d + b) * other[j];
      }
      m(a, b) = acc;
    }
  }
  return m;
}

}  // namespace

ExactEqPathAnalyzer::ExactEqPathAnalyzer(CVec hx, CVec hy, int r, Mode mode)
    : r_(r), d_(hx.dim()) {
  require(r >= 1, "ExactEqPathAnalyzer: path length must be >= 1");
  require(hx.dim() == hy.dim(), "ExactEqPathAnalyzer: state dim mismatch");
  require(d_ >= 2, "ExactEqPathAnalyzer: need dimension >= 2");

  const int regs = 2 * std::max(0, r_ - 1);
  long long dim = 1;
  for (int k = 0; k < regs; ++k) {
    dim *= d_;
    require(dim <= util::kMaxExactDim,
            "ExactEqPathAnalyzer: proof space exceeds exact-engine cap");
  }
  shape_ = RegisterShape(std::vector<int>(static_cast<std::size_t>(regs), d_));
  proof_dim_ = dim;

  if (r_ == 1) {
    // No intermediate nodes: v_0 sends |h_x>, v_1 measures {|h_y><h_y|}.
    op_ = CMat(1, 1);
    const double amp = std::abs(hy.dot(hx));
    op_(0, 0) = Complex{amp * amp, 0.0};
    dense_ = true;
    return;
  }

  inner_ = r_ - 1;
  patterns_ = 1 << inner_;

  // Local effects.
  // First test at v_1 with the fixed |h_x> slot contracted:
  // <h_x| (I + SWAP)/2 |h_x> = (I + |h_x><h_x|)/2 acting on kept_1.
  first_ = CMat::identity(d_);
  first_ += CMat::projector(hx);
  first_ *= Complex{0.5, 0.0};
  // Middle swap-test effect on a register pair — only materialized when a
  // pattern can actually contain one (inner_ >= 2): r == 2 paths have a
  // single inner node and skipping the d^2 x d^2 build lets wide-d shallow
  // instances through without the quadratic blowup.
  if (inner_ >= 2) {
    swap_effect_ = quantum::swap_unitary(d_);
    swap_effect_ += CMat::identity(d_ * d_);
    swap_effect_ *= Complex{0.5, 0.0};
  }
  // Final measurement on sent_{r-1}.
  final_ = CMat::projector(hy);

  build_pattern_effects();
  dense_ = (mode == Mode::kDense) ||
           (mode == Mode::kAuto && proof_dim_ <= kMaxDenseProofDim);
  if (dense_) {
    // Explicit kDense may exceed the kAuto threshold up to the dense-matrix
    // memory guard (the seed engine's old cap), so consumers that need the
    // materialized operator on mid-size instances keep an escape hatch.
    require(proof_dim_ <= util::kMaxDenseExactDim,
            "ExactEqPathAnalyzer: proof space too large for the dense mode");
    build_operator();
  }
}

const CMat& ExactEqPathAnalyzer::effect_matrix(EffectKind kind) const {
  switch (kind) {
    case EffectKind::kFirst:
      return first_;
    case EffectKind::kSwap:
      return swap_effect_;
    default:
      return final_;
  }
}

void ExactEqPathAnalyzer::build_pattern_effects() {
  const auto plan_index = [&](const std::vector<int>& regs) {
    for (std::size_t i = 0; i < plans_.size(); ++i) {
      if (plans_[i].regs() == regs) {
        return i;
      }
    }
    plans_.emplace_back(shape_, regs);
    return plans_.size() - 1;
  };
  pattern_effects_.resize(static_cast<std::size_t>(patterns_));
  for (int pattern = 0; pattern < patterns_; ++pattern) {
    const auto kept = [&](int j) {  // j = 1..inner
      const int bit = (pattern >> (j - 1)) & 1;
      return 2 * (j - 1) + bit;
    };
    const auto sent = [&](int j) {
      const int bit = (pattern >> (j - 1)) & 1;
      return 2 * (j - 1) + (1 - bit);
    };
    auto& effects = pattern_effects_[static_cast<std::size_t>(pattern)];
    effects.reserve(static_cast<std::size_t>(inner_ + 1));
    const auto add = [&](EffectKind kind, std::vector<int> regs) {
      const std::size_t plan = plan_index(regs);
      effects.push_back({kind, std::move(regs), plan});
    };
    add(EffectKind::kFirst, {kept(1)});
    for (int j = 2; j <= inner_; ++j) {
      add(EffectKind::kSwap, {sent(j - 1), kept(j)});
    }
    add(EffectKind::kFinal, {sent(inner_)});
  }
}

void ExactEqPathAnalyzer::build_operator() {
  const long long dim = proof_dim_;
  CMat acc(static_cast<int>(dim), static_cast<int>(dim));
  // Stream each pattern's local effects through the matrix-free layer onto
  // an identity matrix: O(D^2 b) per pattern instead of multiplying D x D
  // embeddings (the effects act on disjoint registers, so the application
  // order is immaterial). The pattern loop stays serial — the O(D^2 b)
  // apply_left_local streaming pass inside is the parallel region, which
  // keeps peak memory at one D x D term regardless of thread count.
  for (int pattern = 0; pattern < patterns_; ++pattern) {
    CMat term = CMat::identity(static_cast<int>(dim));
    for (const PatternEffect& pe : pattern_effects_[static_cast<std::size_t>(pattern)]) {
      quantum::apply_left_local(plans_[pe.plan], effect_matrix(pe.kind), term);
    }
    acc += term;
  }
  acc *= Complex{1.0 / static_cast<double>(patterns_), 0.0};
  op_ = std::move(acc);
}

const CMat& ExactEqPathAnalyzer::acceptance_operator() const {
  require(dense_,
          "ExactEqPathAnalyzer: acceptance operator not materialized in "
          "matrix-free mode");
  return op_;
}

CVec ExactEqPathAnalyzer::apply_acceptance(const CVec& psi) const {
  require(static_cast<long long>(psi.dim()) == proof_dim_,
          "ExactEqPathAnalyzer: state dimension mismatch");
  if (r_ == 1) {
    return psi * op_(0, 0);
  }
  if (dense_) {
    return op_ * psi;
  }
  // The pattern loop stays serial (reducing D-dimensional partial vectors
  // across pattern chunks measured strictly slower: each chunk would own a
  // proof-space-sized accumulator). The parallel region is the threaded
  // apply_local inside — D / b free-offset blocks per effect give every
  // kernel thread work at any realistic thread count, with no extra
  // allocation and the exact pre-threading summation order.
  CVec out(static_cast<int>(proof_dim_));
  for (int pattern = 0; pattern < patterns_; ++pattern) {
    CVec tmp = psi;
    for (const PatternEffect& pe :
         pattern_effects_[static_cast<std::size_t>(pattern)]) {
      quantum::apply_local(plans_[pe.plan], effect_matrix(pe.kind), tmp);
    }
    out += tmp;
  }
  out *= Complex{1.0 / static_cast<double>(patterns_), 0.0};
  return out;
}

double ExactEqPathAnalyzer::worst_case_accept(int max_iters) const {
  linalg::SpectralOptions opts;
  opts.max_iters = max_iters;
  return worst_case_accept(opts);
}

double ExactEqPathAnalyzer::worst_case_accept(
    const linalg::SpectralOptions& opts, linalg::SpectralStats* stats) const {
  // Both operator forms feed the same spectral dispatcher: DenseOperator
  // packs op_ to split-complex once (SIMD matvec per iteration),
  // CallbackOperator streams through apply_acceptance.
  if (dense_) {
    const linalg::DenseOperator op(op_);
    return std::min(1.0, linalg::top_eigenvalue_psd(op, opts, nullptr, stats));
  }
  const linalg::CallbackOperator op(
      [this](const CVec& psi) { return apply_acceptance(psi); },
      static_cast<int>(proof_dim_));
  return std::min(1.0, linalg::top_eigenvalue_psd(op, opts, nullptr, stats));
}

double ExactEqPathAnalyzer::product_accept(const std::vector<CVec>& regs) const {
  require(static_cast<int>(regs.size()) == shape_.register_count(),
          "ExactEqPathAnalyzer: register count mismatch");
  if (shape_.register_count() == 0) {
    return op_(0, 0).real();
  }
  for (const CVec& v : regs) {
    require(v.dim() == d_, "ExactEqPathAnalyzer: register dimension mismatch");
  }
  // For a product proof each pattern term factorizes over its disjoint
  // effect groups, so the acceptance is a sum of products of O(d^4) local
  // expectations — no D-dimensional object is touched.
  double total = 0.0;
  for (int pattern = 0; pattern < patterns_; ++pattern) {
    double term = 1.0;
    for (const PatternEffect& pe : pattern_effects_[static_cast<std::size_t>(pattern)]) {
      term *= local_expectation(effect_matrix(pe.kind), pe.regs, regs);
    }
    total += term;
  }
  return std::max(0.0, total / static_cast<double>(patterns_));
}

CMat ExactEqPathAnalyzer::conditional_operator(
    int k, const std::vector<CVec>& regs) const {
  // M_k(i, j) = <psi_-k, e_i| O |psi_-k, e_j>: per pattern, the group
  // containing register k contributes a partially contracted d x d block
  // and every other group a scalar factor (every proof register sits in
  // exactly one effect group of every pattern).
  CMat cond(d_, d_);
  for (int pattern = 0; pattern < patterns_; ++pattern) {
    double scale = 1.0;
    bool found = false;
    CMat part;
    for (const PatternEffect& pe :
         pattern_effects_[static_cast<std::size_t>(pattern)]) {
      const auto it = std::find(pe.regs.begin(), pe.regs.end(), k);
      if (it == pe.regs.end()) {
        scale *= local_expectation(effect_matrix(pe.kind), pe.regs, regs);
        continue;
      }
      found = true;
      if (pe.regs.size() == 1) {
        part = effect_matrix(pe.kind);
      } else {
        const int pos = static_cast<int>(it - pe.regs.begin());
        const CVec& other =
            regs[static_cast<std::size_t>(pe.regs[pos == 0 ? 1 : 0])];
        part = pair_conditional(effect_matrix(pe.kind), pos, other, d_);
      }
    }
    util::ensure(found, "ExactEqPathAnalyzer: register not covered by any "
                        "effect group");
    part *= Complex{scale, 0.0};
    cond += part;
  }
  cond *= Complex{1.0 / static_cast<double>(patterns_), 0.0};
  return cond;
}

double ExactEqPathAnalyzer::best_product_accept(util::Rng& rng, int restarts,
                                                int sweeps) const {
  if (shape_.register_count() == 0) {
    return op_(0, 0).real();
  }
  const int nregs = shape_.register_count();
  double best = 0.0;
  for (int restart = 0; restart < restarts; ++restart) {
    std::vector<CVec> regs;
    regs.reserve(static_cast<std::size_t>(nregs));
    for (int k = 0; k < nregs; ++k) {
      regs.push_back(quantum::haar_state(d_, rng));
    }
    double value = product_accept(regs);
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (int k = 0; k < nregs; ++k) {
        const CMat conditional = conditional_operator(k, regs);
        const auto es = linalg::eigh(conditional);
        CVec top(d_);
        for (int i = 0; i < d_; ++i) {
          top[i] = es.vectors(i, d_ - 1);
        }
        regs[static_cast<std::size_t>(k)] = std::move(top);
      }
      const double next = product_accept(regs);
      if (next <= value + 1e-12) {
        value = std::max(value, next);
        break;
      }
      value = next;
    }
    best = std::max(best, value);
  }
  return std::min(1.0, best);
}

}  // namespace dqma::protocol

#include "dqma/exact_runner.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.hpp"
#include "quantum/density.hpp"
#include "quantum/random.hpp"
#include "quantum/unitary.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::protocol {

using linalg::Complex;
using quantum::RegisterShape;
using util::require;

namespace {

/// Tensor product of a list of register states (register 0 most
/// significant, matching RegisterShape's row-major convention).
CVec tensor_all(const std::vector<CVec>& regs) {
  require(!regs.empty(), "tensor_all: empty register list");
  CVec out = regs.front();
  for (std::size_t k = 1; k < regs.size(); ++k) {
    out = out.tensor(regs[k]);
  }
  return out;
}

}  // namespace

ExactEqPathAnalyzer::ExactEqPathAnalyzer(CVec hx, CVec hy, int r)
    : r_(r), d_(hx.dim()) {
  require(r >= 1, "ExactEqPathAnalyzer: path length must be >= 1");
  require(hx.dim() == hy.dim(), "ExactEqPathAnalyzer: state dim mismatch");
  require(d_ >= 2, "ExactEqPathAnalyzer: need dimension >= 2");

  const int regs = 2 * std::max(0, r_ - 1);
  long long dim = 1;
  for (int k = 0; k < regs; ++k) {
    dim *= d_;
    require(dim <= util::kMaxExactDim,
            "ExactEqPathAnalyzer: proof space exceeds exact-engine cap");
  }
  shape_ = RegisterShape(std::vector<int>(static_cast<std::size_t>(regs), d_));
  build_operator(hx, hy);
}

void ExactEqPathAnalyzer::build_operator(const CVec& hx, const CVec& hy) {
  const long long dim = shape_.total_dim();
  if (r_ == 1) {
    // No intermediate nodes: v_0 sends |h_x>, v_1 measures {|h_y><h_y|}.
    op_ = CMat(1, 1);
    const double amp = std::abs(hy.dot(hx));
    op_(0, 0) = Complex{amp * amp, 0.0};
    return;
  }

  // Local effects.
  // First test at v_1 with the fixed |h_x| slot contracted:
  // <h_x| (I + SWAP)/2 |h_x> = (I + |h_x><h_x|)/2 acting on kept_1.
  CMat first = CMat::identity(d_);
  first += CMat::projector(hx);
  first *= Complex{0.5, 0.0};
  // Middle swap-test effect on a register pair.
  CMat swap_effect = quantum::swap_unitary(d_);
  swap_effect += CMat::identity(d_ * d_);
  swap_effect *= Complex{0.5, 0.0};
  // Final measurement on sent_{r-1}.
  const CMat final_effect = CMat::projector(hy);

  const int inner = r_ - 1;
  CMat acc(static_cast<int>(dim), static_cast<int>(dim));
  const int patterns = 1 << inner;
  for (int pattern = 0; pattern < patterns; ++pattern) {
    const auto kept = [&](int j) {  // j = 1..inner
      const int bit = (pattern >> (j - 1)) & 1;
      return 2 * (j - 1) + bit;
    };
    const auto sent = [&](int j) {
      const int bit = (pattern >> (j - 1)) & 1;
      return 2 * (j - 1) + (1 - bit);
    };
    CMat term = quantum::embed_operator(shape_, first, {kept(1)});
    for (int j = 2; j <= inner; ++j) {
      term = term *
             quantum::embed_operator(shape_, swap_effect, {sent(j - 1), kept(j)});
    }
    term = term * quantum::embed_operator(shape_, final_effect, {sent(inner)});
    acc += term;
  }
  acc *= Complex{1.0 / static_cast<double>(patterns), 0.0};
  op_ = std::move(acc);
}

double ExactEqPathAnalyzer::worst_case_accept() const {
  return std::min(1.0, linalg::max_eigenvalue_psd(op_));
}

double ExactEqPathAnalyzer::product_accept(const std::vector<CVec>& regs) const {
  require(static_cast<int>(regs.size()) == shape_.register_count(),
          "ExactEqPathAnalyzer: register count mismatch");
  if (shape_.register_count() == 0) {
    return op_(0, 0).real();
  }
  const CVec psi = tensor_all(regs);
  return std::max(0.0, psi.dot(op_ * psi).real());
}

double ExactEqPathAnalyzer::best_product_accept(util::Rng& rng, int restarts,
                                                int sweeps) const {
  if (shape_.register_count() == 0) {
    return op_(0, 0).real();
  }
  const int nregs = shape_.register_count();
  double best = 0.0;
  for (int restart = 0; restart < restarts; ++restart) {
    std::vector<CVec> regs;
    regs.reserve(static_cast<std::size_t>(nregs));
    for (int k = 0; k < nregs; ++k) {
      regs.push_back(quantum::haar_state(d_, rng));
    }
    double value = product_accept(regs);
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (int k = 0; k < nregs; ++k) {
        // Conditional operator M_k(i, j) = <psi_-k, e_i| O |psi_-k, e_j>.
        CMat conditional(d_, d_);
        std::vector<CVec> probe = regs;
        for (int j = 0; j < d_; ++j) {
          probe[static_cast<std::size_t>(k)] = CVec::basis(d_, j);
          const CVec image = op_ * tensor_all(probe);
          for (int i = 0; i < d_; ++i) {
            probe[static_cast<std::size_t>(k)] = CVec::basis(d_, i);
            conditional(i, j) = tensor_all(probe).dot(image);
          }
          probe[static_cast<std::size_t>(k)] = regs[static_cast<std::size_t>(k)];
        }
        const auto es = linalg::eigh(conditional);
        CVec top(d_);
        for (int i = 0; i < d_; ++i) {
          top[i] = es.vectors(i, d_ - 1);
        }
        regs[static_cast<std::size_t>(k)] = std::move(top);
      }
      const double next = product_accept(regs);
      if (next <= value + 1e-12) {
        value = std::max(value, next);
        break;
      }
      value = next;
    }
    best = std::max(best, value);
  }
  return std::min(1.0, best);
}

}  // namespace dqma::protocol

// Exact worst-case prover analysis for the EQ path protocol (Algorithm 3)
// on small instances.
//
// The protocol's acceptance probability is linear in the proof density
// operator: Pr[accept | rho] = tr(O rho) for the *acceptance operator*
//
//   O = E_coins  (<h_x| tensor I)  ProdTests(coins)  (|h_x> tensor I)
//
// where the coin average runs over the 2^{r-1} symmetrization patterns and
// ProdTests is the tensor product of the local accept effects (the tests
// act on pairwise-disjoint registers, so their product is a POVM element).
// Hence:
//   * worst-case acceptance over ALL (entangled) proofs = lambda_max(O);
//   * worst-case over product proofs (dQMA_sep,sep provers) is computed by
//     alternating optimization, which at each step maximizes the Rayleigh
//     quotient of a single register's conditional operator.
// Comparing the two quantifies how much entangled provers gain — the
// question behind the paper's Sec. 8 lower bounds.
//
// Dimensions: the proof space has dimension d^{2(r-1)} for fingerprint
// stand-ins of dimension d; constructors enforce the exact-engine cap.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "quantum/state.hpp"
#include "util/rng.hpp"

namespace dqma::protocol {

using linalg::CMat;
using linalg::CVec;

/// Exact analyzer for one repetition of Algorithm 3 with endpoint states
/// |h_x> = `hx`, |h_y> = `hy` (any equal dimension d >= 2) on the path of
/// length `r`.
class ExactEqPathAnalyzer {
 public:
  ExactEqPathAnalyzer(CVec hx, CVec hy, int r);

  /// The full acceptance operator O on the proof space.
  const CMat& acceptance_operator() const { return op_; }

  /// Proof-space dimension d^{2(r-1)}.
  long long proof_dim() const { return static_cast<long long>(op_.rows()); }

  /// max over all (entangled) proofs of Pr[accept].
  double worst_case_accept() const;

  /// max over product proofs, by alternating optimization with `restarts`
  /// random restarts. A lower bound on worst_case_accept() that is tight in
  /// practice for these operators.
  double best_product_accept(util::Rng& rng, int restarts = 8,
                             int sweeps = 60) const;

  /// Acceptance of an explicit product proof (one state per register, in
  /// order R_{1,0}, R_{1,1}, ..., R_{r-1,0}, R_{r-1,1}).
  double product_accept(const std::vector<CVec>& regs) const;

 private:
  int r_;
  int d_;
  quantum::RegisterShape shape_;  // 2(r-1) registers of dimension d
  CMat op_;

  void build_operator(const CVec& hx, const CVec& hy);
};

}  // namespace dqma::protocol

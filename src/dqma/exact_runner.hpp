// Exact worst-case prover analysis for the EQ path protocol (Algorithm 3).
//
// The protocol's acceptance probability is linear in the proof density
// operator: Pr[accept | rho] = tr(O rho) for the *acceptance operator*
//
//   O = E_coins  (<h_x| tensor I)  ProdTests(coins)  (|h_x> tensor I)
//
// where the coin average runs over the 2^{r-1} symmetrization patterns and
// ProdTests is the tensor product of the local accept effects (the tests
// act on pairwise-disjoint registers, so their product is a POVM element).
// Hence:
//   * worst-case acceptance over ALL (entangled) proofs = lambda_max(O);
//   * worst-case over product proofs (dQMA_sep,sep provers) is computed by
//     alternating optimization, which at each step maximizes the Rayleigh
//     quotient of a single register's conditional operator.
// Comparing the two quantifies how much entangled provers gain — the
// question behind the paper's Sec. 8 lower bounds.
//
// Engine modes. The analyzer keeps O in *structured form* — the per-pattern
// lists of local effects — and streams them through the matrix-free
// local-operator layer (quantum/local_ops.hpp):
//   * kDense (small proof spaces): O is additionally materialized by
//     applying the local effects to an identity matrix (O(D^2 b) per
//     pattern instead of the former O(D^3) embedded products), so spectral
//     routines and QMA* reductions can consume the dense matrix;
//   * kMatrixFree (large proof spaces): O is never materialized; its action
//     on a vector costs O(patterns * r * D * b), worst_case_accept runs
//     power iteration on that action, and the product-prover optimizer
//     contracts the local effects register by register in O(d^4) per term.
// kAuto picks kDense up to kMaxDenseProofDim and kMatrixFree beyond.
//
// Dimensions: the proof space has dimension d^{2(r-1)} for fingerprint
// stand-ins of dimension d; constructors enforce the exact-engine cap
// (util::kMaxExactDim, which the matrix-free mode can actually reach).
#pragma once

#include <vector>

#include "linalg/lanczos.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "quantum/local_ops.hpp"
#include "quantum/state.hpp"
#include "util/rng.hpp"

namespace dqma::protocol {

using linalg::CMat;
using linalg::CVec;

/// Exact analyzer for one repetition of Algorithm 3 with endpoint states
/// |h_x> = `hx`, |h_y> = `hy` (any equal dimension d >= 2) on the path of
/// length `r`.
class ExactEqPathAnalyzer {
 public:
  enum class Mode {
    kAuto,        ///< dense up to kMaxDenseProofDim, matrix-free beyond
    kDense,       ///< materialize the acceptance operator (allowed up to
                  ///< util::kMaxDenseExactDim, the dense-matrix memory guard)
    kMatrixFree,  ///< structured form only; O(D) memory
  };

  /// Largest proof dimension for which kAuto materializes the operator
  /// (explicit kDense goes further, to util::kMaxDenseExactDim).
  static constexpr long long kMaxDenseProofDim = 1LL << 12;

  ExactEqPathAnalyzer(CVec hx, CVec hy, int r, Mode mode = Mode::kAuto);

  /// The full acceptance operator O on the proof space (dense modes only).
  const CMat& acceptance_operator() const;

  /// Whether the dense operator is materialized.
  bool dense() const { return dense_; }

  /// Proof-space dimension d^{2(r-1)}.
  long long proof_dim() const { return proof_dim_; }

  /// O |psi>: dense matvec when materialized, otherwise the matrix-free
  /// pattern-streamed application.
  CVec apply_acceptance(const CVec& psi) const;

  /// max over all (entangled) proofs of Pr[accept]. Top eigenvalue of the
  /// acceptance operator via the spectral dispatcher (linalg/lanczos.hpp:
  /// deterministic Lanczos, power fallback on tiny proof spaces);
  /// `max_iters` bounds the work (the estimate is a lower bound that is
  /// tight at convergence).
  double worst_case_accept(int max_iters = 2000) const;

  /// Same quantity with explicit solver options; fills *stats (matvec
  /// counts, iterations) when given, so callers can record solver cost as
  /// JSON metrics.
  double worst_case_accept(const linalg::SpectralOptions& opts,
                           linalg::SpectralStats* stats = nullptr) const;

  /// max over product proofs, by alternating optimization with `restarts`
  /// random restarts. A lower bound on worst_case_accept() that is tight in
  /// practice for these operators. Works in every mode: the conditional
  /// operators are contracted from the local effects, never from O.
  double best_product_accept(util::Rng& rng, int restarts = 8,
                             int sweeps = 60) const;

  /// Acceptance of an explicit product proof (one state per register, in
  /// order R_{1,0}, R_{1,1}, ..., R_{r-1,0}, R_{r-1,1}).
  double product_accept(const std::vector<CVec>& regs) const;

 private:
  int r_;
  int d_;
  int inner_ = 0;
  int patterns_ = 1;
  quantum::RegisterShape shape_;  // 2(r-1) registers of dimension d
  long long proof_dim_ = 1;
  bool dense_ = true;
  // Local effects of Algorithm 3 (shared across patterns).
  CMat first_;        // (I + |h_x><h_x|)/2 on kept_1
  CMat swap_effect_;  // (I + SWAP)/2 on (sent_{j-1}, kept_j)
  CMat final_;        // |h_y><h_y| on sent_{r-1}
  CMat op_;           // dense modes (and the r == 1 scalar)

  /// Which of the three local effects a pattern entry applies; resolved to
  /// the member matrix at use time so cached entries survive copies.
  enum class EffectKind { kFirst, kSwap, kFinal };

  /// One symmetrization pattern's local effect: operator kind, register
  /// list, and the index of its (deduplicated) stride plan in plans_.
  struct PatternEffect {
    EffectKind kind;
    std::vector<int> regs;
    std::size_t plan;
  };
  // Built once in the constructor: the effect lists of every pattern. The
  // register lists repeat across patterns, so the plans are deduplicated
  // (at most ~4r distinct ones) and the matrix-free hot loops never
  // rebuild offset tables.
  std::vector<std::vector<PatternEffect>> pattern_effects_;
  std::vector<quantum::LocalOpPlan> plans_;

  const CMat& effect_matrix(EffectKind kind) const;
  void build_pattern_effects();
  void build_operator();
  CMat conditional_operator(int k, const std::vector<CVec>& regs) const;
};

}  // namespace dqma::protocol

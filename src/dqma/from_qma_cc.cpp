#include "dqma/from_qma_cc.hpp"

#include <algorithm>
#include <cmath>

#include "comm/one_way.hpp"
#include "dqma/attacks.hpp"
#include "linalg/eigen.hpp"
#include "qtest/swap_test.hpp"
#include "util/require.hpp"

namespace dqma::protocol {

using linalg::CMat;
using linalg::CVec;
using util::require;

QmaCcPathProtocol::QmaCcPathProtocol(comm::QmaOneWayInstance instance, int r,
                                     int reps)
    : instance_(std::move(instance)), r_(r), reps_(reps) {
  require(r >= 1, "QmaCcPathProtocol: r must be positive");
  require(reps >= 1, "QmaCcPathProtocol: reps must be positive");
}

CostProfile QmaCcPathProtocol::costs() const {
  const long long gamma = instance_.gamma_qubits;
  const long long mu =
      comm::qubits_for_dim(instance_.message_dim());
  CostProfile c;
  const long long inner = std::max(0, r_ - 1);
  // v_0 receives the proof; intermediate nodes two message registers each.
  c.local_proof_qubits = std::max<long long>(
      static_cast<long long>(reps_) * gamma, 2LL * reps_ * mu);
  c.total_proof_qubits =
      static_cast<long long>(reps_) * gamma + 2LL * reps_ * mu * inner;
  c.local_message_qubits = static_cast<long long>(reps_) * mu;
  c.total_message_qubits = c.local_message_qubits * r_;
  return c;
}

QmaCcPathProtocol::Strategy QmaCcPathProtocol::honest_strategy() const {
  require(instance_.yes_instance,
          "QmaCcPathProtocol: honest strategy needs a yes instance");
  Strategy s;
  CVec message = instance_.alice * instance_.honest_proof;
  if (message.norm() > 1e-12) {
    message.normalize();
  }
  PathProof one;
  one.reg0.assign(static_cast<std::size_t>(std::max(0, r_ - 1)), message);
  one.reg1 = one.reg0;
  s.proofs.assign(static_cast<std::size_t>(reps_), instance_.honest_proof);
  s.chain = replicate(one, reps_);
  return s;
}

double QmaCcPathProtocol::accept_one_rep(const CVec& proof,
                                         const PathProof& chain) const {
  require(proof.dim() == instance_.proof_dim(),
          "QmaCcPathProtocol: proof dimension mismatch");
  CVec message = instance_.alice * proof;
  const double alpha = message.norm_sq();  // Alice's own pass probability
  if (alpha < 1e-14) {
    return 0.0;
  }
  message *= linalg::Complex{1.0 / std::sqrt(alpha), 0.0};
  const auto swap_test = [](const CVec& a, const CVec& b) {
    return qtest::swap_test_accept(a, b);
  };
  const auto final_test = [this](const CVec& received) {
    const CVec image = instance_.bob_accept * received;
    return std::clamp(received.dot(image).real(), 0.0, 1.0);
  };
  return alpha * chain_accept(message, chain, swap_test, final_test);
}

double QmaCcPathProtocol::accept_probability(const Strategy& strategy) const {
  require(static_cast<int>(strategy.proofs.size()) == reps_ &&
              static_cast<int>(strategy.chain.size()) == reps_,
          "QmaCcPathProtocol: repetition count mismatch");
  double accept = 1.0;
  for (int k = 0; k < reps_; ++k) {
    accept *= accept_one_rep(strategy.proofs[static_cast<std::size_t>(k)],
                             strategy.chain[static_cast<std::size_t>(k)]);
    if (accept == 0.0) {
      break;
    }
  }
  return accept;
}

double QmaCcPathProtocol::completeness() const {
  return accept_probability(honest_strategy());
}

double QmaCcPathProtocol::best_attack_accept() const {
  const int inner = std::max(0, r_ - 1);
  const int pdim = instance_.proof_dim();
  const int mdim = instance_.message_dim();

  // Candidate proofs: top eigenvector of V^dagger M V (best end-to-end) and
  // top eigenvector of V^dagger V (best Alice-pass probability).
  std::vector<CVec> proofs;
  {
    const CMat direct = instance_.alice.adjoint_times(instance_.bob_accept) *
                        instance_.alice;
    const auto es = linalg::eigh(direct);
    CVec top(pdim);
    for (int i = 0; i < pdim; ++i) {
      top[i] = es.vectors(i, pdim - 1);
    }
    proofs.push_back(std::move(top));
  }
  {
    const CMat gram = instance_.alice.adjoint_times(instance_.alice);
    const auto es = linalg::eigh(gram);
    CVec top(pdim);
    for (int i = 0; i < pdim; ++i) {
      top[i] = es.vectors(i, pdim - 1);
    }
    proofs.push_back(std::move(top));
  }
  // Bob's most-accepting message.
  CVec bob_top(mdim);
  {
    const auto es = linalg::eigh(instance_.bob_accept);
    for (int i = 0; i < mdim; ++i) {
      bob_top[i] = es.vectors(i, mdim - 1);
    }
  }

  double best_single = 0.0;
  for (const auto& proof : proofs) {
    CVec message = instance_.alice * proof;
    if (message.norm() < 1e-12) {
      continue;
    }
    message.normalize();
    // Honest-looking chain (all registers = the emitted message).
    PathProof honest_chain;
    honest_chain.reg0.assign(static_cast<std::size_t>(inner), message);
    honest_chain.reg1 = honest_chain.reg0;
    best_single =
        std::max(best_single, accept_one_rep(proof, honest_chain));
    // Chain rotating from the emission toward Bob's favorite message.
    best_single = std::max(
        best_single,
        accept_one_rep(proof, rotation_attack(message, bob_top, inner)));
  }
  return std::pow(best_single, reps_);
}

Theorem46Report theorem46_costs(long long c, int r) {
  require(c >= 1 && r >= 1, "theorem46_costs: bad parameters");
  Theorem46Report rep;
  rep.source_cost_c = c;
  rep.qmacc_cost = 2 * c;  // inequality (1)
  // LSD dimension m = 2^{O(C)}: Lemma 44's reduction vector space. The
  // stored value saturates at 2^40; the log-scale quantities below use the
  // un-saturated exponent so the report stays meaningful for large C.
  const double log2_m = 2.0 * static_cast<double>(c);
  rep.lsd_ambient_dim = 1LL << std::min<long long>(2 * c, 40);
  // Finite-precision LSD input size O(m^2 log m), saturating at int64 max.
  const double input_bits_log2 = 2.0 * log2_m + std::log2(std::max(1.0, log2_m));
  rep.lsd_input_bits =
      input_bits_log2 >= 62.0
          ? (1LL << 62)
          : static_cast<long long>(std::ceil(std::exp2(input_bits_log2)));
  // Theorem 42 applied to the O(log m)-cost LSD one-way protocol:
  // O(r^2 (gamma + mu) log(n + r)) with gamma + mu = O(C); the log factor
  // is log2 of the LSD input size, i.e. O(C) itself.
  const double logs = input_bits_log2 + std::log2(1.0 + r);
  rep.per_node_proof_qubits = static_cast<long long>(
      std::ceil(static_cast<double>(r) * r * (2.0 * c) * logs));
  return rep;
}

}  // namespace dqma::protocol

#include "dqma/circuit_sim.hpp"

#include <cmath>
#include <utility>

#include "quantum/local_ops.hpp"
#include "quantum/state.hpp"
#include "quantum/unitary.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::protocol {

using linalg::CMat;
using linalg::Complex;
using linalg::CVec;
using quantum::LocalOpPlan;
using quantum::RegisterShape;
using util::require;

MonteCarloEstimate circuit_eq_path_accept(const CVec& source,
                                          const CVec& target,
                                          const PathProof& proof,
                                          util::Rng& rng, int samples) {
  const int d = source.dim();
  require(target.dim() == d, "circuit_eq_path_accept: dimension mismatch");
  require(2 * d * d <= util::kMaxExactDim,
          "circuit_eq_path_accept: dimension too large for circuit simulation");
  for (const auto& v : proof.reg0) {
    require(v.dim() == d, "circuit_eq_path_accept: proof dimension mismatch");
  }
  for (const auto& v : proof.reg1) {
    require(v.dim() == d, "circuit_eq_path_accept: proof dimension mismatch");
  }

  // One SWAP-test circuit (Algorithm 1) on registers {ancilla, A, B}; the
  // shape, the Hadamard plan and the state buffer are built once and reused
  // across every test of every sample — the per-test work is the engine's
  // O(d^2) stride passes, never a dense 2d^2 x 2d^2 operator.
  const RegisterShape shape({2, d, d});
  const CMat h = quantum::hadamard();
  const LocalOpPlan h_plan(shape, {0});
  const int dd = d * d;
  CVec amp(2 * dd);

  const int inner = proof.intermediate_nodes();
  const auto run_once = [&]() -> double {
    // `received` travels down the chain; it is always a pure register
    // disjoint from previously tested pairs.
    CVec received = source;
    for (int j = 0; j < inner; ++j) {
      const bool coin = rng.next_bool(0.5);  // symmetrization (step 3)
      const CVec& kept =
          coin ? proof.reg1[static_cast<std::size_t>(j)]
               : proof.reg0[static_cast<std::size_t>(j)];
      const CVec& sent =
          coin ? proof.reg0[static_cast<std::size_t>(j)]
               : proof.reg1[static_cast<std::size_t>(j)];
      // Algorithm 1 verbatim: ancilla |0>, H, controlled-SWAP, H, measure.
      // |0>|received>|kept>: the ancilla-0 block carries the product state.
      for (int a = 0; a < d; ++a) {
        for (int b = 0; b < d; ++b) {
          amp[a * d + b] = received[a] * kept[b];
        }
      }
      for (int x = 0; x < dd; ++x) {
        amp[dd + x] = Complex{0.0, 0.0};
      }
      quantum::apply_local(h_plan, h, amp);
      // Controlled-SWAP = identity on the ancilla-0 block, SWAP of the two
      // d-registers on the ancilla-1 block.
      for (int a = 0; a < d; ++a) {
        for (int b = a + 1; b < d; ++b) {
          std::swap(amp[dd + a * d + b], amp[dd + b * d + a]);
        }
      }
      quantum::apply_local(h_plan, h, amp);
      // Measure the ancilla: Pr[0] is the weight of the first block (the
      // ancilla is the most significant register). Reject on outcome 1; the
      // tested pair is consumed either way, so no collapse is needed.
      double p0 = 0.0;
      for (int x = 0; x < dd; ++x) {
        p0 += std::norm(amp[x]);
      }
      if (rng.next_double() >= p0) {
        return 0.0;  // this node rejects
      }
      received = sent;
    }
    // v_r: projective measurement {|h_y><h_y|, I - ...}.
    const double p = std::norm(target.dot(received));
    return rng.next_bool(p) ? 1.0 : 0.0;
  };

  return estimate(run_once, samples);
}

}  // namespace dqma::protocol

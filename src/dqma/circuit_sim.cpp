#include "dqma/circuit_sim.hpp"

#include <cmath>

#include "quantum/state.hpp"
#include "quantum/unitary.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::protocol {

using linalg::CMat;
using linalg::CVec;
using quantum::PureState;
using quantum::RegisterShape;
using util::require;

MonteCarloEstimate circuit_eq_path_accept(const CVec& source,
                                          const CVec& target,
                                          const PathProof& proof,
                                          util::Rng& rng, int samples) {
  const int d = source.dim();
  require(target.dim() == d, "circuit_eq_path_accept: dimension mismatch");
  require(2 * d * d <= util::kMaxExactDim,
          "circuit_eq_path_accept: dimension too large for circuit simulation");
  for (const auto& v : proof.reg0) {
    require(v.dim() == d, "circuit_eq_path_accept: proof dimension mismatch");
  }
  for (const auto& v : proof.reg1) {
    require(v.dim() == d, "circuit_eq_path_accept: proof dimension mismatch");
  }

  // The SWAP-test circuit operators (Algorithm 1), built once.
  const CMat h = quantum::hadamard();
  const CMat cswap = quantum::select_unitary(
      {CMat::identity(d * d), quantum::swap_unitary(d)});

  const int inner = proof.intermediate_nodes();
  const auto run_once = [&]() -> double {
    // `received` travels down the chain; it is always a pure register
    // disjoint from previously tested pairs.
    CVec received = source;
    for (int j = 0; j < inner; ++j) {
      const bool coin = rng.next_bool(0.5);  // symmetrization (step 3)
      const CVec& kept =
          coin ? proof.reg1[static_cast<std::size_t>(j)]
               : proof.reg0[static_cast<std::size_t>(j)];
      const CVec& sent =
          coin ? proof.reg0[static_cast<std::size_t>(j)]
               : proof.reg1[static_cast<std::size_t>(j)];
      // Algorithm 1 verbatim: ancilla |0>, H, controlled-SWAP, H, measure.
      PureState psi = PureState::single(CVec::basis(2, 0))
                          .tensor(PureState::single(received))
                          .tensor(PureState::single(kept));
      psi.apply(h, {0});
      psi.apply(cswap, {0, 1, 2});
      psi.apply(h, {0});
      if (psi.measure_register(0, rng) != 0) {
        return 0.0;  // this node rejects
      }
      received = sent;
    }
    // v_r: projective measurement {|h_y><h_y|, I - ...}.
    const double p = std::norm(target.dot(received));
    return rng.next_bool(p) ? 1.0 : 0.0;
  };

  return estimate(run_once, samples);
}

}  // namespace dqma::protocol

#include "dqma/circuit_sim.hpp"

#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "quantum/local_ops.hpp"
#include "quantum/state.hpp"
#include "quantum/unitary.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::protocol {

using linalg::CMat;
using linalg::Complex;
using linalg::CVec;
using quantum::LocalOpPlan;
using quantum::RegisterShape;
using util::require;

namespace {

/// Precompute-then-sample path. Node j's SWAP test acts on
/// (sent_{j-1}(prev_coin), kept_j(coin)) — four (prev_coin, coin)
/// combinations per node, two for the first node (the source is fixed) —
/// so all test probabilities are closed-form inner products computed once.
/// Each shot then replays Algorithm 3's exact draw sequence against the
/// tables: coin, acceptance draw per surviving node, final Bernoulli.
MonteCarloEstimate batched_accept(const CVec& source, const CVec& target,
                                  const PathProof& proof, util::Rng& rng,
                                  int samples) {
  const int inner = proof.intermediate_nodes();
  const auto swap_p0 = [](const CVec& a, const CVec& b) {
    const double mag = std::abs(a.dot(b));
    return 0.5 + 0.5 * mag * mag;
  };
  // p0[j][prev][cur]: Pr[ancilla = 0] at node j given the previous node's
  // coin `prev` (which fixes the arriving register) and node j's own coin
  // `cur` (which fixes the kept register). Row prev is ignored at j = 0.
  std::vector<std::array<std::array<double, 2>, 2>> p0(
      static_cast<std::size_t>(inner));
  for (int j = 0; j < inner; ++j) {
    for (int prev = 0; prev < 2; ++prev) {
      const CVec& received =
          j == 0 ? source
                 : (prev == 0 ? proof.reg1[static_cast<std::size_t>(j - 1)]
                              : proof.reg0[static_cast<std::size_t>(j - 1)]);
      for (int cur = 0; cur < 2; ++cur) {
        const CVec& kept = cur == 0 ? proof.reg0[static_cast<std::size_t>(j)]
                                    : proof.reg1[static_cast<std::size_t>(j)];
        p0[static_cast<std::size_t>(j)][static_cast<std::size_t>(prev)]
          [static_cast<std::size_t>(cur)] = swap_p0(received, kept);
      }
    }
  }
  // Final projective measurement on sent_{r-1}(coin).
  std::array<double, 2> p_final = {0.0, 0.0};
  if (inner > 0) {
    const int last = inner - 1;
    p_final[0] =
        std::norm(target.dot(proof.reg1[static_cast<std::size_t>(last)]));
    p_final[1] =
        std::norm(target.dot(proof.reg0[static_cast<std::size_t>(last)]));
  } else {
    p_final[0] = p_final[1] = std::norm(target.dot(source));
  }

  RunningStat stat;
  for (int s = 0; s < samples; ++s) {
    int prev = 0;
    bool rejected = false;
    for (int j = 0; j < inner; ++j) {
      const bool coin = rng.next_bool(0.5);
      const int cur = coin ? 1 : 0;
      const double p =
          p0[static_cast<std::size_t>(j)][static_cast<std::size_t>(prev)]
            [static_cast<std::size_t>(cur)];
      if (rng.next_double() >= p) {
        rejected = true;  // this node rejects; later draws are skipped,
        break;            // exactly like the per-shot circuit path
      }
      prev = cur;
    }
    if (rejected) {
      stat.add(0.0);
      continue;
    }
    stat.add(rng.next_bool(p_final[static_cast<std::size_t>(prev)]) ? 1.0
                                                                    : 0.0);
  }
  return stat.finalize();
}

}  // namespace

MonteCarloEstimate circuit_eq_path_accept(const CVec& source,
                                          const CVec& target,
                                          const PathProof& proof,
                                          util::Rng& rng, int samples,
                                          CircuitMcStrategy strategy) {
  const int d = source.dim();
  require(target.dim() == d, "circuit_eq_path_accept: dimension mismatch");
  require(2 * d * d <= util::kMaxExactDim,
          "circuit_eq_path_accept: dimension too large for circuit simulation");
  for (const auto& v : proof.reg0) {
    require(v.dim() == d, "circuit_eq_path_accept: proof dimension mismatch");
  }
  for (const auto& v : proof.reg1) {
    require(v.dim() == d, "circuit_eq_path_accept: proof dimension mismatch");
  }
  require(samples >= 1, "circuit_eq_path_accept: need at least one sample");

  if (strategy == CircuitMcStrategy::kBatched) {
    return batched_accept(source, target, proof, rng, samples);
  }

  // One SWAP-test circuit (Algorithm 1) on registers {ancilla, A, B}; the
  // shape, the Hadamard plan and the state buffer are built once and reused
  // across every test of every sample — the per-test work is the engine's
  // O(d^2) stride passes, never a dense 2d^2 x 2d^2 operator.
  const RegisterShape shape({2, d, d});
  const CMat h = quantum::hadamard();
  const LocalOpPlan h_plan(shape, {0});
  const int dd = d * d;
  CVec amp(2 * dd);

  const int inner = proof.intermediate_nodes();
  const auto run_once = [&]() -> double {
    // `received` travels down the chain; it is always a pure register
    // disjoint from previously tested pairs.
    CVec received = source;
    for (int j = 0; j < inner; ++j) {
      const bool coin = rng.next_bool(0.5);  // symmetrization (step 3)
      const CVec& kept =
          coin ? proof.reg1[static_cast<std::size_t>(j)]
               : proof.reg0[static_cast<std::size_t>(j)];
      const CVec& sent =
          coin ? proof.reg0[static_cast<std::size_t>(j)]
               : proof.reg1[static_cast<std::size_t>(j)];
      // Algorithm 1 verbatim: ancilla |0>, H, controlled-SWAP, H, measure.
      // |0>|received>|kept>: the ancilla-0 block carries the product state.
      for (int a = 0; a < d; ++a) {
        for (int b = 0; b < d; ++b) {
          amp[a * d + b] = received[a] * kept[b];
        }
      }
      for (int x = 0; x < dd; ++x) {
        amp[dd + x] = Complex{0.0, 0.0};
      }
      quantum::apply_local(h_plan, h, amp);
      // Controlled-SWAP = identity on the ancilla-0 block, SWAP of the two
      // d-registers on the ancilla-1 block.
      for (int a = 0; a < d; ++a) {
        for (int b = a + 1; b < d; ++b) {
          std::swap(amp[dd + a * d + b], amp[dd + b * d + a]);
        }
      }
      quantum::apply_local(h_plan, h, amp);
      // Measure the ancilla: Pr[0] is the weight of the first block (the
      // ancilla is the most significant register). Reject on outcome 1; the
      // tested pair is consumed either way, so no collapse is needed.
      double p0 = 0.0;
      for (int x = 0; x < dd; ++x) {
        p0 += std::norm(amp[x]);
      }
      if (rng.next_double() >= p0) {
        return 0.0;  // this node rejects
      }
      received = sent;
    }
    // v_r: projective measurement {|h_y><h_y|, I - ...}.
    const double p = std::norm(target.dot(received));
    return rng.next_bool(p) ? 1.0 : 0.0;
  };

  return estimate(run_once, samples);
}

}  // namespace dqma::protocol

// Structured cheating provers used to *measure* soundness of the dQMA
// protocols under product (separable-between-nodes) proofs.
//
// Soundness statements quantify over all proofs; these families realize the
// known near-optimal strategies, and the exact engine (exact_runner.hpp)
// certifies on small instances that nothing much stronger exists:
//
//  * rotation attack — node j receives the normalized interpolation between
//    |h_x> and |h_y> at angle (j/r) theta, spreading the unavoidable
//    rejection probability evenly along the path (the quantum analog of the
//    classical "where does the proof flip?" argument);
//  * step attack — nodes up to a cut hold |h_x>, the rest |h_y>: a single
//    test absorbs the whole discrepancy (the naive cheat; strictly weaker);
//  * all-target attack — every node holds |h_y>: only v_1's test suffers.
#pragma once

#include <vector>

#include "dqma/model.hpp"
#include "fingerprint/fingerprint.hpp"
#include "util/bitstring.hpp"

namespace dqma::protocol {

using util::Bitstring;

/// Normalized interpolation path between two pure states: returns `count`
/// states |phi_j> = normalize(cos(t_j theta)|a> + sin(t_j theta)|b_perp>)
/// with t_j = (j+1)/(count+1), where |b_perp> completes |a>, |b> to an
/// orthonormal pair in their span, so that |phi> sweeps the geodesic from
/// |a> (t=0) to |b> (t=1).
std::vector<linalg::CVec> geodesic_states(const linalg::CVec& a,
                                          const linalg::CVec& b, int count);

/// Rotation attack proof for a path protocol with `inner` intermediate
/// nodes: both registers of node j hold the geodesic state at fraction
/// j/(inner+1).
PathProof rotation_attack(const linalg::CVec& hx, const linalg::CVec& hy,
                          int inner);

/// Step attack: nodes 1..cut hold |h_x>, the rest |h_y>.
PathProof step_attack(const linalg::CVec& hx, const linalg::CVec& hy,
                      int inner, int cut);

/// All-target attack: every node holds |h_y>.
PathProof all_target_attack(const linalg::CVec& hy, int inner);

/// Replicates a single-repetition attack across k repetitions.
PathProofReps replicate(const PathProof& proof, int reps);

}  // namespace dqma::protocol

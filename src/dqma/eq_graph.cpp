#include "dqma/eq_graph.hpp"

#include <algorithm>
#include <cmath>

#include "dqma/attacks.hpp"
#include "dqma/noise.hpp"
#include "qtest/permutation_test.hpp"
#include "qtest/swap_test.hpp"
#include "util/require.hpp"

namespace dqma::protocol {

using linalg::CVec;
using util::require;

EqGraphProtocol::EqGraphProtocol(const network::Graph& graph,
                                 std::vector<int> terminals, int n,
                                 double delta, int reps, GraphTestMode mode,
                                 std::uint64_t seed)
    : terminals_(std::move(terminals)),
      reps_(reps),
      mode_(mode),
      scheme_(n, delta, seed),
      tree_(network::SpanningTree::build(graph, terminals_)) {
  require(!terminals_.empty(), "EqGraphProtocol: need at least one terminal");
  require(reps >= 1, "EqGraphProtocol: repetitions must be >= 1");

  // Map tree nodes to terminal indices: the root and the leaf image of
  // every terminal are input nodes.
  input_of_node_.assign(static_cast<std::size_t>(tree_.size()), -1);
  for (int k = 0; k < terminal_count(); ++k) {
    const int leaf = tree_.leaf_of_terminal(terminals_[static_cast<std::size_t>(k)]);
    if (leaf == tree_.root() ||
        tree_.node(leaf).children.empty()) {
      input_of_node_[static_cast<std::size_t>(leaf)] = k;
    }
  }
  // The root terminal's input node is the root itself.
  for (int k = 0; k < terminal_count(); ++k) {
    if (tree_.node(tree_.root()).original ==
        terminals_[static_cast<std::size_t>(k)]) {
      input_of_node_[static_cast<std::size_t>(tree_.root())] = k;
    }
  }
}

bool EqGraphProtocol::is_input_node(int tree_node) const {
  return input_of_node_[static_cast<std::size_t>(tree_node)] >= 0;
}

CostProfile EqGraphProtocol::costs() const {
  const long long q = scheme_.qubits();
  long long non_input = 0;
  for (int v = 0; v < tree_.size(); ++v) {
    if (!is_input_node(v)) {
      ++non_input;
    }
  }
  CostProfile c;
  c.local_proof_qubits = 2LL * reps_ * q;
  c.total_proof_qubits = c.local_proof_qubits * non_input;
  c.local_message_qubits = static_cast<long long>(reps_) * q;
  // One message per tree edge (every non-root node sends to its parent).
  c.total_message_qubits = c.local_message_qubits * (tree_.size() - 1);
  return c;
}

EqGraphProtocol::TreeProofReps EqGraphProtocol::honest_proof(
    const Bitstring& x) const {
  const CVec hx = scheme_.state(x);
  TreeProof one;
  one.reg0.assign(static_cast<std::size_t>(tree_.size()), hx);
  one.reg1 = one.reg0;
  return TreeProofReps(static_cast<std::size_t>(reps_), one);
}

double EqGraphProtocol::accept_one_rep(const std::vector<Bitstring>& inputs,
                                       const TreeProof& proof) const {
  return accept_one_rep_impl(inputs, proof, nullptr);
}

double EqGraphProtocol::accept_one_rep_impl(const std::vector<Bitstring>& inputs,
                                            const TreeProof& proof,
                                            const NoiseModel* noise) const {
  require(static_cast<int>(inputs.size()) == terminal_count(),
          "EqGraphProtocol: input count mismatch");
  require(static_cast<int>(proof.reg0.size()) == tree_.size() &&
              static_cast<int>(proof.reg1.size()) == tree_.size(),
          "EqGraphProtocol: proof size mismatch");

  const bool noisy = noise != nullptr && !noise->is_noiseless();
  const double depol_swap = 0.5 + 0.5 / static_cast<double>(scheme_.dim());
  // Local test at node v holding `kept`, receiving `sents` from its
  // children (in child order; the register from child c traversed link c).
  const auto local_test = [&](int v, const CVec& kept,
                              const std::vector<CVec>& sents) {
    const auto& children = tree_.node(v).children;
    if (mode_ == GraphTestMode::kPermutationTest) {
      std::vector<CVec> factors;
      factors.reserve(sents.size() + 1);
      factors.push_back(kept);
      factors.insert(factors.end(), sents.begin(), sents.end());
      if (!noisy) {
        return qtest::permutation_test_accept(factors);
      }
      std::vector<double> rates;
      rates.reserve(factors.size());
      rates.push_back(0.0);  // `kept` never crossed a channel
      for (const int child : children) {
        rates.push_back(noise->rate(child));
      }
      return qtest::depolarized_permutation_test_accept(factors, rates);
    }
    // Random-pair SWAP baseline: test one uniformly chosen child.
    double acc = 0.0;
    for (std::size_t c = 0; c < sents.size(); ++c) {
      const double clean = qtest::swap_test_accept(kept, sents[c]);
      acc += noisy ? noise->damp(children[c], clean, depol_swap) : clean;
    }
    return sents.empty() ? 1.0 : acc / static_cast<double>(sents.size());
  };

  // Per-node DP options: (probability weight including own coin, state sent
  // upward). Input leaves have one option; non-input nodes have two.
  struct Option {
    double weight;
    const CVec* sent;
  };
  std::vector<std::vector<Option>> options(
      static_cast<std::size_t>(tree_.size()));

  // Enumerate child option combinations, accumulating sum over combos of
  // (product of child weights) * test(kept, sent states).
  const auto children_sum = [&](int v, const CVec* kept) {
    const auto& children = tree_.node(v).children;
    const int deg = static_cast<int>(children.size());
    std::vector<int> pick(static_cast<std::size_t>(deg), 0);
    double total = 0.0;
    for (;;) {
      double w = 1.0;
      std::vector<CVec> sents;
      sents.reserve(static_cast<std::size_t>(deg));
      for (int c = 0; c < deg; ++c) {
        const auto& opt =
            options[static_cast<std::size_t>(children[static_cast<std::size_t>(c)])]
                   [static_cast<std::size_t>(pick[static_cast<std::size_t>(c)])];
        w *= opt.weight;
        sents.push_back(*opt.sent);
      }
      if (w > 0.0) {
        total += w * (kept != nullptr ? local_test(v, *kept, sents) : 1.0);
      }
      // Next combination.
      int c = 0;
      while (c < deg) {
        if (++pick[static_cast<std::size_t>(c)] <
            static_cast<int>(
                options[static_cast<std::size_t>(
                            children[static_cast<std::size_t>(c)])]
                    .size())) {
          break;
        }
        pick[static_cast<std::size_t>(c)] = 0;
        ++c;
      }
      if (c == deg) {
        break;
      }
    }
    return total;
  };

  // Fingerprints of the inputs (computed once).
  std::vector<CVec> input_states;
  input_states.reserve(inputs.size());
  for (const auto& x : inputs) {
    input_states.push_back(scheme_.state(x));
  }

  for (const int v : tree_.post_order()) {
    if (v == tree_.root()) {
      continue;  // handled after the loop
    }
    const int input_idx = input_of_node_[static_cast<std::size_t>(v)];
    if (input_idx >= 0) {
      // Terminal leaf: sends its fingerprint; no test, no coin.
      options[static_cast<std::size_t>(v)] = {
          {1.0, &input_states[static_cast<std::size_t>(input_idx)]}};
      continue;
    }
    // Non-input node: coin 0 keeps reg0 / sends reg1; coin 1 swapped.
    const CVec* r0 = &proof.reg0[static_cast<std::size_t>(v)];
    const CVec* r1 = &proof.reg1[static_cast<std::size_t>(v)];
    const double w0 = 0.5 * children_sum(v, r0);
    const double w1 = 0.5 * children_sum(v, r1);
    options[static_cast<std::size_t>(v)] = {{w0, r1}, {w1, r0}};
  }

  // Root: performs the test with its own input fingerprint.
  const int root_input = input_of_node_[static_cast<std::size_t>(tree_.root())];
  require(root_input >= 0, "EqGraphProtocol: root must be a terminal");
  return children_sum(tree_.root(),
                      &input_states[static_cast<std::size_t>(root_input)]);
}

double EqGraphProtocol::single_rep_accept(const std::vector<Bitstring>& inputs,
                                          const TreeProof& proof) const {
  return accept_one_rep(inputs, proof);
}

double EqGraphProtocol::accept_probability(
    const std::vector<Bitstring>& inputs, const TreeProofReps& proof) const {
  require(static_cast<int>(proof.size()) == reps_,
          "EqGraphProtocol: repetition count mismatch");
  double accept = 1.0;
  for (const auto& rep : proof) {
    accept *= accept_one_rep(inputs, rep);
    if (accept == 0.0) {
      break;
    }
  }
  return accept;
}

double EqGraphProtocol::completeness(const Bitstring& x) const {
  const std::vector<Bitstring> inputs(
      static_cast<std::size_t>(terminal_count()), x);
  return accept_probability(inputs, honest_proof(x));
}

double EqGraphProtocol::best_attack_accept(
    const std::vector<Bitstring>& inputs) const {
  return best_attack_accept_impl(inputs, nullptr);
}

double EqGraphProtocol::best_attack_accept_impl(
    const std::vector<Bitstring>& inputs, const NoiseModel* noise) const {
  require(static_cast<int>(inputs.size()) == terminal_count(),
          "EqGraphProtocol: input count mismatch");
  const int root_input = input_of_node_[static_cast<std::size_t>(tree_.root())];
  const CVec h_root = scheme_.state(inputs[static_cast<std::size_t>(root_input)]);

  double best = 0.0;
  for (int k = 0; k < terminal_count(); ++k) {
    if (inputs[static_cast<std::size_t>(k)] ==
        inputs[static_cast<std::size_t>(root_input)]) {
      continue;
    }
    const CVec h_dev = scheme_.state(inputs[static_cast<std::size_t>(k)]);
    const int leaf = tree_.leaf_of_terminal(terminals_[static_cast<std::size_t>(k)]);
    const auto path = tree_.path_between(tree_.root(), leaf);
    // Geodesic states along the path (excluding both endpoints).
    const int inner = static_cast<int>(path.size()) - 2;
    const auto states = geodesic_states(h_root, h_dev, std::max(0, inner));

    TreeProof cheat;
    cheat.reg0.assign(static_cast<std::size_t>(tree_.size()), h_root);
    cheat.reg1 = cheat.reg0;
    for (int p = 1; p + 1 < static_cast<int>(path.size()); ++p) {
      const int v = path[static_cast<std::size_t>(p)];
      if (!is_input_node(v)) {
        cheat.reg0[static_cast<std::size_t>(v)] =
            states[static_cast<std::size_t>(p - 1)];
        cheat.reg1[static_cast<std::size_t>(v)] =
            states[static_cast<std::size_t>(p - 1)];
      }
    }
    best = std::max(best, accept_one_rep_impl(inputs, cheat, noise));
  }
  return std::pow(best, reps_);
}

double EqGraphProtocol::noisy_accept_probability(
    const std::vector<Bitstring>& inputs, const TreeProofReps& proof,
    const NoiseModel& link_noise) const {
  require(static_cast<int>(proof.size()) == reps_,
          "EqGraphProtocol: repetition count mismatch");
  double accept = 1.0;
  for (const auto& rep : proof) {
    accept *= accept_one_rep_impl(inputs, rep, &link_noise);
    if (accept == 0.0) {
      break;
    }
  }
  return accept;
}

double EqGraphProtocol::noisy_single_rep_accept(
    const std::vector<Bitstring>& inputs, const TreeProof& proof,
    const NoiseModel& link_noise) const {
  return accept_one_rep_impl(inputs, proof, &link_noise);
}

double EqGraphProtocol::noisy_completeness(const Bitstring& x,
                                           const NoiseModel& link_noise) const {
  const std::vector<Bitstring> inputs(
      static_cast<std::size_t>(terminal_count()), x);
  return noisy_accept_probability(inputs, honest_proof(x), link_noise);
}

double EqGraphProtocol::noisy_best_attack_accept(
    const std::vector<Bitstring>& inputs, const NoiseModel& link_noise) const {
  return best_attack_accept_impl(inputs, &link_noise);
}

}  // namespace dqma::protocol

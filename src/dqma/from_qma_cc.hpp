// The paper's Theorem 42 (Algorithm 10): converting a QMA one-way
// communication protocol into a dQMA protocol on a path, and the Theorem 46
// pipeline that turns ANY dQMA protocol (viewed through its QMA*
// communication cost C) into a 1-round dQMA_sep protocol of size
// ~O(r^2 C^2) via the LSD complete problem.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/history_state.hpp"
#include "comm/qma_one_way.hpp"
#include "dqma/model.hpp"
#include "dqma/runner.hpp"
#include "util/rng.hpp"

namespace dqma::protocol {

/// dQMA protocol on the path v_0..v_r carrying the messages of a QMA
/// one-way protocol instance (Algorithm 10): v_0 holds the proof and
/// applies Alice's contraction; intermediate nodes symmetrize-and-forward
/// message-dimension registers SWAP-tested pairwise; v_r applies Bob's
/// accept effect.
class QmaCcPathProtocol {
 public:
  QmaCcPathProtocol(comm::QmaOneWayInstance instance, int r, int reps);

  int r() const { return r_; }
  int reps() const { return reps_; }
  const comm::QmaOneWayInstance& instance() const { return instance_; }

  CostProfile costs() const;

  /// One repetition of a prover strategy: Merlin's proof for v_0 plus the
  /// chain registers.
  struct Strategy {
    std::vector<linalg::CVec> proofs;  ///< one per repetition (proof_dim)
    PathProofReps chain;               ///< message-dim registers
  };

  Strategy honest_strategy() const;

  /// Exact acceptance probability of a strategy. Alice's contraction folds
  /// her own accept/reject into the norm of the emitted message.
  double accept_probability(const Strategy& strategy) const;

  double completeness() const;

  /// Strongest implemented attack: the proof maximizing Alice's pass
  /// probability, with the chain interpolating from Alice's emission to the
  /// top eigenvector of Bob's effect; plus the direct top-eigenvector proof
  /// with an honest-looking chain.
  double best_attack_accept() const;

 private:
  comm::QmaOneWayInstance instance_;
  int r_;
  int reps_;

  double accept_one_rep(const linalg::CVec& proof,
                        const PathProof& chain) const;
};

/// Cost report of the Theorem 46 simulation: a dQMA protocol of QMA*
/// communication cost C on a path of length r becomes a 1-round dQMA_sep
/// protocol via LSD with the listed parameters.
struct Theorem46Report {
  long long source_cost_c = 0;       ///< C = total proof + min cut message
  long long qmacc_cost = 0;          ///< <= 2C (inequality (1))
  long long lsd_ambient_dim = 0;     ///< m = 2^{O(C)}
  long long lsd_input_bits = 0;      ///< O(m^2 log m)
  long long per_node_proof_qubits = 0;  ///< O(r^2 C^2) up to logs
};

/// Computes the Theorem 46 cost accounting for a source protocol of QMA*
/// cost `c` on a path of length `r` (formula-level; the executable pipeline
/// is exercised end-to-end in tests/benches via lsd_from_qma_instance +
/// QmaCcPathProtocol on small instances).
Theorem46Report theorem46_costs(long long c, int r);

}  // namespace dqma::protocol

// Circuit-level simulation of the EQ path protocol (Algorithm 3): one
// repetition executed as an actual quantum circuit on a state-vector
// machine — ancilla + Hadamard + controlled-SWAP + measurement for every
// SWAP test (Algorithm 1 verbatim), explicit symmetrization coins, and a
// projective final measurement.
//
// This is the third, fully independent implementation of the protocol's
// semantics (next to the closed-form coin DP of runner.hpp and the
// acceptance-operator engine of exact_runner.hpp); the three are
// cross-checked in tests. It is Monte-Carlo (samples coins and measurement
// outcomes) and exponential in the register count, so it runs on small
// fingerprint dimensions only — exactly its purpose.
#pragma once

#include "dqma/model.hpp"
#include "dqma/runner.hpp"
#include "util/rng.hpp"

namespace dqma::protocol {

/// How the Monte-Carlo estimate executes each shot.
enum class CircuitMcStrategy {
  /// Full state-vector machine per shot: ancilla + Hadamards +
  /// controlled-SWAP + measurement, O(inner * d^2) per shot. The reference
  /// implementation.
  kStateVector,
  /// Precompute-then-sample: each node's four coin-conditioned SWAP-test
  /// acceptance probabilities are computed ONCE via the closed form
  /// Pr[0] = (1 + |<a|b>|^2) / 2 — O(inner * d) total — and every shot is
  /// then O(inner) coin flips and table lookups. The RNG draw order is
  /// identical to kStateVector (coin, acceptance draw per node, final
  /// Bernoulli), so both strategies walk the same sample paths; only
  /// ulp-level rounding of the per-test probabilities differs.
  kBatched,
};

/// Simulates `samples` runs of one repetition of Algorithm 3 at circuit
/// level and returns the empirical acceptance probability.
///
/// * `source`: the state v_0 sends (e.g. |h_x>);
/// * `target`: v_r's reference state (accept projector |h_y><h_y|);
/// * `proof`: the intermediate nodes' registers (product proof).
/// The total simulated system holds 2(r-1)+2 registers of the proof
/// dimension plus one ancilla qubit (reused); dimensions are capped by the
/// exact-engine limit.
MonteCarloEstimate circuit_eq_path_accept(
    const linalg::CVec& source, const linalg::CVec& target,
    const PathProof& proof, util::Rng& rng, int samples,
    CircuitMcStrategy strategy = CircuitMcStrategy::kBatched);

}  // namespace dqma::protocol

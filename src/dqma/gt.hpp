// The paper's Theorem 26: dQMA protocol for the greater-than function on a
// path (Algorithm 7), and the GT<, GT>=, GT<= variants of Corollary 28.
//
// GT(x, y) = 1 iff there is an index i with x_i = 1, y_i = 0 and
// x[i] = y[i] (equal proper prefixes). The prover broadcasts the index in
// classical index registers — every node measures and compares with its
// neighbor, so inconsistent indices are rejected with certainty and the
// adversary is reduced to choosing one index — and the EQ chain protocol
// runs on *prefix fingerprints*.
//
// Prefixes of different lengths are fingerprinted by zero-padding to n bits
// (prefix equality at a common index i is equivalent to padded-string
// equality, and index agreement is enforced separately). The i = 0 prefix
// is the all-zero padding, realizing the paper's |bot> state. For the >=
// and <= variants a sentinel index i = n means "the strings are equal" and
// the chain runs on full-string fingerprints.
#pragma once

#include <cstdint>

#include "dqma/model.hpp"
#include "fingerprint/fingerprint.hpp"
#include "util/bitstring.hpp"

namespace dqma::protocol {

using util::Bitstring;

enum class GtVariant { kGreater, kLess, kGeq, kLeq };

/// Evaluates the variant's predicate on integers encoded big-endian.
bool gt_predicate(GtVariant variant, const Bitstring& x, const Bitstring& y);

class GtProtocol {
 public:
  GtProtocol(int n, int r, double delta, int reps,
             GtVariant variant = GtVariant::kGreater,
             std::uint64_t seed = 0x0ddba11);

  /// Repetition count for soundness 1/3 (same analysis as the EQ chain:
  /// k = ceil(81 r^2 / 2)).
  static int paper_reps(int r);

  int n() const { return n_; }
  int r() const { return r_; }
  int reps() const { return reps_; }
  GtVariant variant() const { return variant_; }

  CostProfile costs() const;

  /// A full prover strategy: the broadcast index (0..n-1, or n for the
  /// equality sentinel in the >= / <= variants) plus the chain proof.
  struct Strategy {
    int index = 0;
    PathProofReps proof;
  };

  /// Honest strategy; requires the predicate to hold (throws otherwise).
  Strategy honest_strategy(const Bitstring& x, const Bitstring& y) const;

  /// Exact acceptance probability of a strategy.
  double accept_probability(const Bitstring& x, const Bitstring& y,
                            const Strategy& strategy) const;

  double completeness(const Bitstring& x, const Bitstring& y) const;

  /// Strongest implemented attack: maximize over all admissible indices
  /// (endpoint bit checks satisfied) and the product attacks on the prefix
  /// EQ chain.
  double best_attack_accept(const Bitstring& x, const Bitstring& y) const;

  /// The fingerprint input used at index i for an input string (padded
  /// prefix, or the full string for the sentinel). Exposed for tests.
  Bitstring fingerprint_input(const Bitstring& s, int index) const;

 private:
  int n_;
  int r_;
  int reps_;
  GtVariant variant_;
  fingerprint::FingerprintScheme scheme_;

  bool sentinel_allowed() const {
    return variant_ == GtVariant::kGeq || variant_ == GtVariant::kLeq;
  }
  /// Endpoint bit conditions at a non-sentinel index.
  bool x_bit_ok(const Bitstring& x, int i) const;
  bool y_bit_ok(const Bitstring& y, int i) const;
};

}  // namespace dqma::protocol

// LOCC dQMA conversion (paper Lemma 20, from [GMN23a], and Corollary 21):
// any dQMA protocol can be run with CLASSICAL communication between the
// verifiers, at the cost of extra prover-supplied registers.
//
// Lemma 20's overheads, for a source protocol with local proof size s_c,
// local message size s_m, and s_tm total verification qubits on a network
// of maximum degree dmax:
//   local proof   ->  s_c + O(dmax * s_m * s_tm)
//   local message ->  O(s_m * s_tm)
// Corollary 21 instantiates this with our Theorem 19 EQ protocol, giving
// local proof O(dmax |V| r^4 log^2 n) and message O(|V| r^4 log^2 n).
//
// This module provides the cost accounting (the executable LOCC simulation
// itself belongs to [GMN23a]; we reproduce the costs the paper reports).
#pragma once

#include "dqma/model.hpp"

namespace dqma::protocol {

/// Costs of the Lemma 20 conversion applied to a source protocol.
struct LoccCosts {
  long long local_proof_qubits = 0;
  long long local_message_bits = 0;  ///< communication is classical
};

/// Applies Lemma 20's overhead formulas. `total_verification_qubits` is
/// s_tm (the total number of qubits sent in the source's verification
/// stage, i.e. its total message size).
LoccCosts locc_conversion_costs(const CostProfile& source, int dmax);

/// Corollary 21: the LOCC EQ protocol on a network with `node_count`
/// nodes, radius r, max degree dmax, inputs of n bits.
LoccCosts corollary21_eq_costs(int n, int r, int node_count, int dmax,
                               double delta = 0.3);

}  // namespace dqma::protocol

// The paper's Theorem 32 (generalizing Theorem 30 / Algorithm 9): a dQMA
// protocol on a general graph for the multi-input predicate
//   forall_t f(x_1..x_t) = 1  iff  f(x_i, x_j) = 1 for all i, j,
// built from any one-way quantum communication protocol for f.
//
// One spanning tree per terminal, each rooted at that terminal. In tree
// T_j, messages flow root -> leaves: the root emits the honest one-way
// message for its own input, internal nodes hold (deg+1) prover-supplied
// copies, permute them uniformly at random, keep one (SWAP-tested against
// what the parent sent) and forward the rest, and every leaf runs Bob's
// verdict of the one-way protocol on its own input.
//
// Acceptance under product proofs is estimated by Monte-Carlo over the
// nodes' permutation choices (each sampled run multiplies exact
// closed-form test probabilities, so the only error is the sampling error
// of the permutation average, reported as a confidence interval);
// completeness of the honest proof is computed exactly.
//
// The Monte-Carlo path is precompute-then-sample: the message arriving at
// a node is always one of its parent's (deg+1) bundle copies (or the
// root's honest message), so every SWAP-test acceptance and every leaf
// verdict is tabulated once per (tree, repetition) — O(nodes * copies^2)
// inner products total — and each shot only samples permutations and
// multiplies table entries. Shot values and RNG draw order are identical
// to the former per-shot evaluation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/one_way.hpp"
#include "dqma/model.hpp"
#include "dqma/runner.hpp"
#include "network/graph.hpp"
#include "network/tree.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace dqma::protocol {

using util::Bitstring;

class ForallFProtocol {
 public:
  /// `protocol` must outlive this object.
  ForallFProtocol(const network::Graph& graph, std::vector<int> terminals,
                  const comm::OneWayProtocol& protocol, int reps);

  int terminal_count() const { return static_cast<int>(terminals_.size()); }
  int reps() const { return reps_; }
  const network::SpanningTree& tree_for(int j) const;

  CostProfile costs() const;

  /// A one-way message: one pure state per protocol register.
  using Message = std::vector<linalg::CVec>;

  /// Proof of one tree repetition: for every tree node, the (deg+1)
  /// message copies of internal non-root nodes (empty for root/leaves).
  struct TreeProof {
    std::vector<std::vector<Message>> bundles;  ///< [tree node][copy]
  };
  /// proof[j][rep] is the TreeProof of repetition `rep` on tree T_j.
  using Proof = std::vector<std::vector<TreeProof>>;

  Proof honest_proof(const std::vector<Bitstring>& inputs) const;

  /// Ground truth forall_t f.
  bool predicate(const std::vector<Bitstring>& inputs) const;

  /// Exact completeness of the honest proof (all SWAP tests pass with
  /// certainty; only the leaves' Bob verdicts contribute).
  double completeness(const std::vector<Bitstring>& inputs) const;

  /// Monte-Carlo acceptance of an arbitrary product proof.
  MonteCarloEstimate accept_probability(const std::vector<Bitstring>& inputs,
                                        const Proof& proof, util::Rng& rng,
                                        int samples = 2000) const;

  /// Strongest implemented attack: for each violated ordered pair
  /// (root j, leaf l), interpolate the messages along the tree path from
  /// psi(x_j) to psi(x_l) register-by-register.
  MonteCarloEstimate best_attack_accept(const std::vector<Bitstring>& inputs,
                                        util::Rng& rng,
                                        int samples = 2000) const;

 private:
  std::vector<int> terminals_;
  const comm::OneWayProtocol& protocol_;
  int reps_;
  std::vector<network::SpanningTree> trees_;

  /// Acceptance tables of one (tree, repetition): every test probability a
  /// shot can encounter, indexed by [node][arriving-copy][(own copy)].
  /// The arriving-copy index addresses the parent's bundle (a single slot
  /// when the parent is the root, whose honest message is fixed).
  struct CompiledTreeProof {
    std::vector<std::vector<std::vector<double>>> swap_accept;
    std::vector<std::vector<double>> leaf_accept;
  };

  CompiledTreeProof compile_tree(int j, const std::vector<Bitstring>& inputs,
                                 const TreeProof& proof) const;
  double sample_compiled_accept(int j, const CompiledTreeProof& compiled,
                                util::Rng& rng,
                                std::vector<int>& perm_scratch,
                                std::vector<int>& arrived_scratch) const;
};

/// SWAP-test acceptance for two product messages: 1/2 + |prod_i <a_i|b_i>|^2 / 2.
double message_swap_accept(const std::vector<linalg::CVec>& a,
                           const std::vector<linalg::CVec>& b);

}  // namespace dqma::protocol

#include "dqma/noise.hpp"

#include <algorithm>
#include <cmath>

#include "dqma/attacks.hpp"
#include "dqma/runner.hpp"
#include "qtest/swap_test.hpp"
#include "util/require.hpp"

namespace dqma::protocol {

using linalg::CVec;
using util::require;

NoiseModel NoiseModel::uniform(double rate) {
  require(rate >= 0.0 && rate <= 1.0, "NoiseModel::uniform: rate out of range");
  NoiseModel model;
  model.uniform_rate_ = rate;
  return model;
}

NoiseModel NoiseModel::per_link(std::vector<double> rates) {
  require(!rates.empty(), "NoiseModel::per_link: need at least one link");
  for (const double rate : rates) {
    require(rate >= 0.0 && rate <= 1.0,
            "NoiseModel::per_link: rate out of range");
  }
  NoiseModel model;
  model.rates_ = std::move(rates);
  return model;
}

bool NoiseModel::is_noiseless() const {
  if (rates_.empty()) {
    return uniform_rate_ == 0.0;
  }
  return std::all_of(rates_.begin(), rates_.end(),
                     [](double rate) { return rate == 0.0; });
}

double NoiseModel::rate(int link) const {
  require(link >= 0, "NoiseModel::rate: negative link index");
  if (rates_.empty()) {
    return uniform_rate_;
  }
  require(link < static_cast<int>(rates_.size()),
          "NoiseModel::rate: link index beyond the per-link table");
  return rates_[static_cast<std::size_t>(link)];
}

double NoiseModel::max_rate() const {
  if (rates_.empty()) {
    return uniform_rate_;
  }
  return *std::max_element(rates_.begin(), rates_.end());
}

NoiseModel NoiseModel::scaled(double factor) const {
  require(factor >= 0.0, "NoiseModel::scaled: negative factor");
  const auto clamp01 = [](double rate) {
    return std::min(1.0, std::max(0.0, rate));
  };
  if (rates_.empty()) {
    return uniform(clamp01(uniform_rate_ * factor));
  }
  std::vector<double> scaled_rates(rates_.size());
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    scaled_rates[i] = clamp01(rates_[i] * factor);
  }
  return per_link(std::move(scaled_rates));
}

namespace {

double noisy_chain(const EqPathProtocol& protocol, const Bitstring& x,
                   const Bitstring& y, const PathProofReps& proof,
                   const NoiseModel& noise) {
  require(protocol.mode() == EqPathMode::kSymmetrized,
          "noisy_chain: noise model implemented for the symmetrized protocol");
  if (!noise.is_uniform()) {
    require(noise.link_count() >= protocol.r(),
            "noisy_chain: per-link model must cover every path link");
  }
  const auto& scheme = protocol.scheme();
  const CVec hx = scheme.state(x);
  const CVec hy = scheme.state(y);
  const double d = static_cast<double>(scheme.dim());
  const double depol_swap = 0.5 + 0.5 / d;
  // Node v_j's pair test receives through link j-1; chain_accept_linked
  // hands that link index straight to the tests.
  const auto pair_test = [&](int link, const CVec& received,
                             const CVec& kept) {
    return noise.damp(link, qtest::swap_test_accept(received, kept),
                      depol_swap);
  };
  const auto final_test = [&](int link, const CVec& received) {
    const double p = noise.rate(link);
    const double amp = std::abs(hy.dot(received));
    return (1.0 - p) * amp * amp + p / d;
  };
  double accept = 1.0;
  for (const auto& rep : proof) {
    accept *= chain_accept_linked(hx, rep, pair_test, final_test);
    if (accept == 0.0) {
      break;
    }
  }
  return accept;
}

}  // namespace

double noisy_accept_probability(const EqPathProtocol& protocol,
                                const Bitstring& x, const Bitstring& y,
                                const PathProofReps& proof,
                                const NoiseModel& noise) {
  require(static_cast<int>(proof.size()) == protocol.reps(),
          "noisy_accept_probability: repetition count mismatch");
  return noisy_chain(protocol, x, y, proof, noise);
}

double noisy_completeness(const EqPathProtocol& protocol, const Bitstring& x,
                          const NoiseModel& noise) {
  return noisy_accept_probability(protocol, x, x, protocol.honest_proof(x),
                                  noise);
}

double noisy_attack_accept(const EqPathProtocol& protocol, const Bitstring& x,
                           const Bitstring& y, const NoiseModel& noise) {
  const CVec hx = protocol.scheme().state(x);
  const CVec hy = protocol.scheme().state(y);
  const int inner = std::max(0, protocol.r() - 1);
  double best_single = 0.0;
  const auto single = [&](const PathProof& attack) {
    return noisy_chain(protocol, x, y, PathProofReps{attack}, noise);
  };
  best_single = single(rotation_attack(hx, hy, inner));
  for (int cut = 0; cut <= inner; ++cut) {
    best_single = std::max(best_single, single(step_attack(hx, hy, inner, cut)));
  }
  return std::pow(best_single, protocol.reps());
}

double noise_threshold(const EqPathProtocol& protocol, const Bitstring& x,
                       const Bitstring& y, double tol,
                       const NoiseModel& profile) {
  require(tol > 0.0, "noise_threshold: tolerance must be positive");
  const auto separated = [&](double scale) {
    const NoiseModel scaled = profile.scaled(scale);
    return noisy_completeness(protocol, x, scaled) >= 2.0 / 3.0 &&
           noisy_attack_accept(protocol, x, y, scaled) <= 1.0 / 3.0;
  };
  if (!separated(0.0)) {
    return 0.0;
  }
  double lo = 0.0;
  double hi = 1.0;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (separated(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace dqma::protocol

#include "dqma/noise.hpp"

#include <algorithm>
#include <cmath>

#include "dqma/attacks.hpp"
#include "dqma/runner.hpp"
#include "qtest/swap_test.hpp"
#include "util/require.hpp"

namespace dqma::protocol {

using linalg::CVec;
using util::require;

namespace {

double noisy_chain(const EqPathProtocol& protocol, const Bitstring& x,
                   const Bitstring& y, const PathProofReps& proof,
                   double noise) {
  require(noise >= 0.0 && noise <= 1.0, "noisy_chain: noise out of range");
  require(protocol.mode() == EqPathMode::kSymmetrized,
          "noisy_chain: noise model implemented for the symmetrized protocol");
  const auto& scheme = protocol.scheme();
  const CVec hx = scheme.state(x);
  const CVec hy = scheme.state(y);
  const double d = static_cast<double>(scheme.dim());
  const double depol_swap = 0.5 + 0.5 / d;
  const auto pair_test = [&](const CVec& a, const CVec& b) {
    return (1.0 - noise) * qtest::swap_test_accept(a, b) + noise * depol_swap;
  };
  const auto final_test = [&](const CVec& received) {
    const double amp = std::abs(hy.dot(received));
    return (1.0 - noise) * amp * amp + noise / d;
  };
  double accept = 1.0;
  for (const auto& rep : proof) {
    accept *= chain_accept(hx, rep, pair_test, final_test);
    if (accept == 0.0) {
      break;
    }
  }
  return accept;
}

}  // namespace

double noisy_accept_probability(const EqPathProtocol& protocol,
                                const Bitstring& x, const Bitstring& y,
                                const PathProofReps& proof, double noise) {
  require(static_cast<int>(proof.size()) == protocol.reps(),
          "noisy_accept_probability: repetition count mismatch");
  return noisy_chain(protocol, x, y, proof, noise);
}

double noisy_completeness(const EqPathProtocol& protocol, const Bitstring& x,
                          double noise) {
  return noisy_accept_probability(protocol, x, x, protocol.honest_proof(x),
                                  noise);
}

double noisy_attack_accept(const EqPathProtocol& protocol, const Bitstring& x,
                           const Bitstring& y, double noise) {
  const CVec hx = protocol.scheme().state(x);
  const CVec hy = protocol.scheme().state(y);
  const int inner = std::max(0, protocol.r() - 1);
  double best_single = 0.0;
  const auto single = [&](const PathProof& attack) {
    return noisy_chain(protocol, x, y, PathProofReps{attack}, noise);
  };
  best_single = single(rotation_attack(hx, hy, inner));
  for (int cut = 0; cut <= inner; ++cut) {
    best_single = std::max(best_single, single(step_attack(hx, hy, inner, cut)));
  }
  return std::pow(best_single, protocol.reps());
}

double noise_threshold(const EqPathProtocol& protocol, const Bitstring& x,
                       const Bitstring& y, double tol) {
  require(tol > 0.0, "noise_threshold: tolerance must be positive");
  const auto separated = [&](double p) {
    return noisy_completeness(protocol, x, p) >= 2.0 / 3.0 &&
           noisy_attack_accept(protocol, x, y, p) <= 1.0 / 3.0;
  };
  if (!separated(0.0)) {
    return 0.0;
  }
  double lo = 0.0;
  double hi = 1.0;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (separated(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace dqma::protocol

// Execution engines for the product-state (fast) regime.
//
// chain_accept() is the workhorse shared by every path protocol in the
// paper (Algorithms 3, 7, 10): v_0 emits a state, every intermediate node
// symmetrizes its two registers with a fair coin, forwards one, tests the
// other against what arrived from the left, and v_r applies a final
// measurement. For product proofs the acceptance probability is *exact*:
// the coin dependence forms a chain, so a 2-state dynamic program over coin
// values evaluates the expectation in O(r) closed-form test evaluations —
// no Monte-Carlo error anywhere.
#pragma once

#include <functional>

#include "dqma/model.hpp"
#include "util/rng.hpp"

namespace dqma::protocol {

/// Exact acceptance probability of one repetition of a symmetrize-and-
/// forward chain.
///
/// * `source`: the state v_0 sends to v_1 (e.g. |h_x>).
/// * `proof`: the two registers of each intermediate node v_1..v_{r-1}.
/// * `pair_test(received, kept)`: acceptance probability of the local test
///   at an intermediate node (e.g. the SWAP test closed form).
/// * `final_test(received)`: acceptance probability of v_r's measurement.
///
/// With zero intermediate nodes (r = 1) this reduces to
/// final_test(source).
double chain_accept(
    const CVec& source, const PathProof& proof,
    const std::function<double(const CVec&, const CVec&)>& pair_test,
    const std::function<double(const CVec&)>& final_test);

/// chain_accept with link-aware tests, for per-link heterogeneous noise
/// models (dqma/noise.hpp): each test receives the index of the channel
/// the tested register traversed. Link j connects v_j to v_{j+1}, so node
/// v_j's pair test receives through link j-1 and the final measurement at
/// v_r through link r-1 (= `inner`). With link-oblivious adapters this is
/// arithmetically identical to chain_accept — both run the same DP.
double chain_accept_linked(
    const CVec& source, const PathProof& proof,
    const std::function<double(int, const CVec&, const CVec&)>& pair_test,
    const std::function<double(int, const CVec&)>& final_test);

/// Acceptance of k independent repetitions where every node rejects if any
/// of its k local tests rejects: the product of per-repetition chain
/// acceptances (registers across repetitions are disjoint and coins are
/// independent).
double chain_accept_reps(
    const std::vector<CVec>& sources, const PathProofReps& proofs,
    const std::function<double(const CVec&, const CVec&)>& pair_test,
    const std::function<double(const CVec&)>& final_test);

/// Mean and a (approximate, normal) 95% confidence half-width of Bernoulli
/// or bounded samples; used by Monte-Carlo estimates in tree protocols.
struct MonteCarloEstimate {
  double mean = 0.0;
  double half_width_95 = 0.0;
  int samples = 0;
};

/// Numerically stable one-pass mean/variance accumulator (Welford). The
/// batched Monte-Carlo paths accumulate into this directly — no per-shot
/// std::function dispatch — and estimate() funnels through it too, so both
/// paths report identical statistics for identical samples. Unlike the
/// former sum_sq/count - mean^2 form, the variance cannot cancel
/// catastrophically for means far from zero; for the protocols' bounded
/// samples the two agree to the last few ulps.
class RunningStat {
 public:
  void add(double value) {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
  }

  int count() const { return count_; }

  /// Mean plus the normal-approximation 95% half-width from the population
  /// variance m2/count (matching the pre-Welford convention).
  MonteCarloEstimate finalize() const;

 private:
  int count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Averages `sample()` over `count` draws.
MonteCarloEstimate estimate(const std::function<double()>& sample, int count);

}  // namespace dqma::protocol

#include "dqma/rv.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace dqma::protocol {

using util::require;

bool rv_predicate(const std::vector<Bitstring>& inputs, int i, int rank) {
  const int t = static_cast<int>(inputs.size());
  require(i >= 0 && i < t, "rv_predicate: index out of range");
  require(rank >= 1 && rank <= t, "rv_predicate: rank out of range");
  int geq_count = 0;
  for (int k = 0; k < t; ++k) {
    if (k != i && inputs[static_cast<std::size_t>(i)] >=
                      inputs[static_cast<std::size_t>(k)]) {
      ++geq_count;
    }
  }
  return geq_count == t - rank;
}

RvProtocol::RvProtocol(const network::Graph& graph, std::vector<int> terminals,
                       int i, int rank, int n, double delta, int reps,
                       std::uint64_t seed)
    : terminals_(std::move(terminals)),
      i_(i),
      rank_(rank),
      n_(n),
      tree_(network::SpanningTree::build(
          graph, terminals_,
          terminals_.at(static_cast<std::size_t>(i)))) {
  const int t = terminal_count();
  require(t >= 2, "RvProtocol: need at least two terminals");
  require(i >= 0 && i < t, "RvProtocol: index out of range");
  require(rank >= 1 && rank <= t, "RvProtocol: rank out of range");

  for (int k = 0; k < t; ++k) {
    if (k == i_) {
      continue;
    }
    others_.push_back(k);
    const int leaf =
        tree_.leaf_of_terminal(terminals_[static_cast<std::size_t>(k)]);
    const auto path = tree_.path_between(tree_.root(), leaf);
    const int length = std::max(1, static_cast<int>(path.size()) - 1);
    path_lengths_.push_back(length);
    geq_.push_back(std::make_unique<GtProtocol>(n, length, delta, reps,
                                                GtVariant::kGeq, seed));
    less_.push_back(std::make_unique<GtProtocol>(n, length, delta, reps,
                                                 GtVariant::kLess, seed));
  }
}

CostProfile RvProtocol::costs() const {
  CostProfile c;
  for (std::size_t k = 0; k < others_.size(); ++k) {
    const CostProfile gc = geq_[k]->costs();
    // Direction register: one qubit per node on the path.
    const long long dir_bits = path_lengths_[k] + 1;
    c.total_proof_qubits += gc.total_proof_qubits + dir_bits;
    c.total_message_qubits += gc.total_message_qubits + path_lengths_[k];
    // Local sizes: a node may sit on up to t-1 paths (e.g. the root).
    c.local_proof_qubits += gc.local_proof_qubits + 1;
    c.local_message_qubits += gc.local_message_qubits + 1;
  }
  return c;
}

double RvProtocol::completeness(const std::vector<Bitstring>& inputs) const {
  require(static_cast<int>(inputs.size()) == terminal_count(),
          "RvProtocol: input count mismatch");
  if (!rv_predicate(inputs, i_, rank_)) {
    // The honest prover's true directions fail the root's count check.
    return 0.0;
  }
  // True directions; every GT sub-protocol runs on a yes instance of its
  // variant, so each accepts with probability 1.
  double accept = 1.0;
  for (std::size_t k = 0; k < others_.size(); ++k) {
    const Bitstring& xi = inputs[static_cast<std::size_t>(i_)];
    const Bitstring& xk =
        inputs[static_cast<std::size_t>(others_[k])];
    if (xi >= xk) {
      accept *= geq_[k]->completeness(xi, xk);
    } else {
      accept *= less_[k]->completeness(xi, xk);
    }
  }
  return accept;
}

double RvProtocol::best_attack_accept(
    const std::vector<Bitstring>& inputs) const {
  require(static_cast<int>(inputs.size()) == terminal_count(),
          "RvProtocol: input count mismatch");
  const int t = terminal_count();
  const int needed_geq = t - rank_;
  const Bitstring& xi = inputs[static_cast<std::size_t>(i_)];

  // Per pair: acceptance if labeled ">=" (a) or "<" (b). True labels give
  // probability 1 (honest sub-proof); lies are the best GT attack.
  const int m = static_cast<int>(others_.size());
  std::vector<double> a(static_cast<std::size_t>(m));
  std::vector<double> b(static_cast<std::size_t>(m));
  for (int k = 0; k < m; ++k) {
    const Bitstring& xk =
        inputs[static_cast<std::size_t>(others_[static_cast<std::size_t>(k)])];
    const bool truly_geq = xi >= xk;
    a[static_cast<std::size_t>(k)] =
        truly_geq ? 1.0 : geq_[static_cast<std::size_t>(k)]->best_attack_accept(xi, xk);
    b[static_cast<std::size_t>(k)] =
        truly_geq ? less_[static_cast<std::size_t>(k)]->best_attack_accept(xi, xk)
                  : 1.0;
  }

  if (needed_geq < 0 || needed_geq > m) {
    return 0.0;  // no direction assignment passes the root's count check
  }
  // Choose exactly `needed_geq` pairs to label ">=" maximizing the product
  // prod_{chosen} a_k * prod_{rest} b_k: pick the largest log(a/b) gaps.
  std::vector<int> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  const auto gap = [&](int k) {
    const double ak = a[static_cast<std::size_t>(k)];
    const double bk = b[static_cast<std::size_t>(k)];
    if (ak == 0.0) return -1e300;
    if (bk == 0.0) return 1e300;
    return std::log(ak) - std::log(bk);
  };
  std::sort(order.begin(), order.end(),
            [&](int u, int v) { return gap(u) > gap(v); });
  double accept = 1.0;
  for (int pos = 0; pos < m; ++pos) {
    const int k = order[static_cast<std::size_t>(pos)];
    accept *= pos < needed_geq ? a[static_cast<std::size_t>(k)]
                               : b[static_cast<std::size_t>(k)];
  }
  return accept;
}

}  // namespace dqma::protocol

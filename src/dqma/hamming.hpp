// The paper's Theorem 30: dQMA protocol for the multi-party Hamming
// distance predicate HAM^{<=d}_{t,n} on a general graph — the flagship
// instantiation of the forall_t f construction (Algorithm 9) with the
// one-way Hamming-distance protocol as f.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/hamming_protocol.hpp"
#include "dqma/forall_f.hpp"

namespace dqma::protocol {

class HammingGraphProtocol {
 public:
  HammingGraphProtocol(const network::Graph& graph,
                       std::vector<int> terminals, int n, int d, double delta,
                       int reps, std::uint64_t seed = 0xd15ea5e);

  const comm::HammingOneWayProtocol& one_way() const { return *one_way_; }
  const ForallFProtocol& forall() const { return *forall_; }

  int threshold() const { return one_way_->threshold(); }
  CostProfile costs() const { return forall_->costs(); }

  bool predicate(const std::vector<Bitstring>& inputs) const {
    return forall_->predicate(inputs);
  }
  double completeness(const std::vector<Bitstring>& inputs) const {
    return forall_->completeness(inputs);
  }
  MonteCarloEstimate best_attack_accept(const std::vector<Bitstring>& inputs,
                                        util::Rng& rng,
                                        int samples = 2000) const {
    return forall_->best_attack_accept(inputs, rng, samples);
  }

 private:
  std::unique_ptr<comm::HammingOneWayProtocol> one_way_;
  std::unique_ptr<ForallFProtocol> forall_;
};

}  // namespace dqma::protocol

// Algorithm 11 (paper Sec. 8.2): the reduction from a dQMA protocol on a
// path to a QMA* communication protocol — Alice simulates v_0..v_i, Bob
// simulates v_{i+1}..v_r, Merlin's proof splits across the cut and may be
// entangled.
//
// Executed on the exact EQ path engine: the dQMA protocol's acceptance
// operator, with the proof registers regrouped into Alice's and Bob's
// shares, IS the QMA* protocol's acceptance operator, so the reduction
// preserves the accept probability verbatim for every proof. What changes
// is the *accounting*: the QMA* cost is gamma_1 + gamma_2 + mu =
// sum_j c(v_j) + m(v_i, v_{i+1}), which is what feeds Klauck's lower
// bounds (Theorem 63). This module materializes the instance, verifies the
// preservation, and exposes both the entangled optimum (top eigenvalue)
// and the cut-separable optimum (two-block alternating optimization) —
// quantifying how much cross-cut entanglement buys Merlin.
#pragma once

#include "dqma/exact_runner.hpp"
#include "util/rng.hpp"

namespace dqma::protocol {

/// A QMA* communication instance extracted from a path dQMA protocol.
class QmaStarInstance {
 public:
  /// Builds the i-th reduction (cut between v_cut and v_cut+1) from the
  /// exact analyzer of an EQ path protocol of length r. Requires
  /// 1 <= cut <= r - 1.
  QmaStarInstance(const ExactEqPathAnalyzer& analyzer, int cut,
                  int register_qubits);

  long long alice_proof_dim() const { return gamma1_dim_; }
  long long bob_proof_dim() const { return gamma2_dim_; }

  /// Declared costs: gamma_1, gamma_2 (proof shares) and mu (the one
  /// message crossing the cut).
  long long gamma1_qubits() const { return gamma1_qubits_; }
  long long gamma2_qubits() const { return gamma2_qubits_; }
  long long mu_qubits() const { return mu_qubits_; }
  long long total_cost_qubits() const {
    return gamma1_qubits_ + gamma2_qubits_ + mu_qubits_;
  }

  /// Worst-case acceptance over all (entangled) proofs — equals the source
  /// dQMA protocol's worst case by construction; verified in tests.
  double max_accept() const;

  /// Worst case over proofs SEPARABLE across the Alice/Bob cut (each share
  /// may be internally entangled): two-block alternating optimization.
  double max_cut_separable_accept(util::Rng& rng, int restarts = 6,
                                  int sweeps = 40) const;

 private:
  linalg::CMat op_;       // acceptance operator, Alice registers first
  long long gamma1_dim_;
  long long gamma2_dim_;
  long long gamma1_qubits_;
  long long gamma2_qubits_;
  long long mu_qubits_;
};

}  // namespace dqma::protocol

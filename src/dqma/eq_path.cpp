#include "dqma/eq_path.hpp"

#include <algorithm>
#include <cmath>

#include "code/linear_code.hpp"
#include "dqma/attacks.hpp"
#include "dqma/runner.hpp"
#include "qtest/swap_test.hpp"
#include "util/require.hpp"

namespace dqma::protocol {

using linalg::CVec;
using util::require;

EqPathProtocol::EqPathProtocol(int n, int r, double delta, int reps,
                               EqPathMode mode, std::uint64_t seed)
    : r_(r), reps_(reps), mode_(mode), scheme_(n, delta, seed) {
  require(r >= 1, "EqPathProtocol: path length must be >= 1");
  require(reps >= 1, "EqPathProtocol: repetitions must be >= 1");
}

int EqPathProtocol::paper_reps(int r) {
  return static_cast<int>(std::ceil(2.0 * 81.0 * r * r / 4.0));
}

namespace {

CostProfile eq_path_costs(long long q, int r, int reps, EqPathMode mode) {
  CostProfile c;
  const long long inner = std::max(0, r - 1);
  if (mode == EqPathMode::kFgnpForwarding) {
    // One register per intermediate node and per repetition.
    c.local_proof_qubits = static_cast<long long>(reps) * q;
    c.total_proof_qubits = c.local_proof_qubits * inner;
  } else {
    // Two registers per intermediate node and per repetition (Algorithm 4).
    c.local_proof_qubits = 2LL * reps * q;
    c.total_proof_qubits = c.local_proof_qubits * inner;
  }
  c.local_message_qubits = static_cast<long long>(reps) * q;
  c.total_message_qubits = c.local_message_qubits * r;
  return c;
}

}  // namespace

CostProfile EqPathProtocol::costs() const {
  return eq_path_costs(scheme_.qubits(), r_, reps_, mode_);
}

int EqPathProtocol::fingerprint_qubits(int n, double delta) {
  const int m = code::recommended_block_length(n, delta);
  int q = 0;
  while ((1 << q) < m) {
    ++q;
  }
  return q;
}

CostProfile EqPathProtocol::costs_for(int n, int r, double delta, int reps,
                                      EqPathMode mode) {
  return eq_path_costs(fingerprint_qubits(n, delta), r, reps, mode);
}

PathProofReps EqPathProtocol::honest_proof(const Bitstring& x) const {
  const CVec hx = scheme_.state(x);
  PathProof one;
  one.reg0.assign(static_cast<std::size_t>(std::max(0, r_ - 1)), hx);
  one.reg1 = one.reg0;
  return replicate(one, reps_);
}

double EqPathProtocol::accept_one_rep(const Bitstring& x, const Bitstring& y,
                                      const PathProof& proof) const {
  const CVec hx = scheme_.state(x);
  const CVec hy = scheme_.state(y);
  const auto swap_test = [](const CVec& a, const CVec& b) {
    return qtest::swap_test_accept(a, b);
  };
  const auto final_test = [&hy](const CVec& received) {
    const double amp = std::abs(hy.dot(received));
    return amp * amp;
  };

  switch (mode_) {
    case EqPathMode::kSymmetrized:
      return chain_accept(hx, proof, swap_test, final_test);
    case EqPathMode::kNoSymmetrization: {
      // Deterministic forwarding: node j always keeps reg0 and sends reg1.
      double accept = swap_test(hx, proof.reg0.empty() ? hx : proof.reg0[0]);
      const int inner = proof.intermediate_nodes();
      if (inner == 0) {
        return final_test(hx);
      }
      for (int j = 1; j < inner; ++j) {
        accept *= swap_test(proof.reg1[static_cast<std::size_t>(j - 1)],
                            proof.reg0[static_cast<std::size_t>(j)]);
      }
      return accept *
             final_test(proof.reg1[static_cast<std::size_t>(inner - 1)]);
    }
    case EqPathMode::kFgnpForwarding:
      return accept_fgnp_rep(x, y, proof);
  }
  return 0.0;
}

double EqPathProtocol::accept_fgnp_rep(const Bitstring& x, const Bitstring& y,
                                       const PathProof& proof) const {
  // One register per intermediate node (reg0); reg1 is ignored. Nodes
  // v_1..v_{r-1} hold proofs, v_r holds the self-prepared |h_y>. Each of
  // v_1..v_r flips a fair coin c_j: on 1 it sends its register to the left
  // neighbor. Node v_j (j = 0..r-1) performs the SWAP test on
  // (own, received) iff it still holds its own register (c_j = 0; v_0
  // always holds |h_x>) and its right neighbor sent (c_{j+1} = 1).
  const CVec hx = scheme_.state(x);
  const CVec hy = scheme_.state(y);
  const int inner = proof.intermediate_nodes();
  require(inner == std::max(0, r_ - 1),
          "EqPathProtocol: proof size does not match path length");

  // own[j] for j = 0..r: v_0 -> h_x, v_j -> proof.reg0[j-1], v_r -> h_y.
  std::vector<const CVec*> own(static_cast<std::size_t>(r_) + 1);
  own[0] = &hx;
  for (int j = 1; j < r_; ++j) {
    own[static_cast<std::size_t>(j)] = &proof.reg0[static_cast<std::size_t>(j - 1)];
  }
  own[static_cast<std::size_t>(r_)] = &hy;

  // DP over coins c_1..c_r; the test at node j-1 is decided by
  // (c_{j-1}, c_j) with c_0 = 0 fixed.
  // f[c] = expected product of tests at nodes 0..j-1 given c_j = c.
  const auto test = [&](int j, int cj, int cj1) {
    // Test at node j active iff c_j == 0 and c_{j+1} == 1.
    if (cj != 0 || cj1 != 1) {
      return 1.0;
    }
    return qtest::swap_test_accept(*own[static_cast<std::size_t>(j)],
                                   *own[static_cast<std::size_t>(j + 1)]);
  };
  double f0 = 0.5 * test(0, 0, 0);
  double f1 = 0.5 * test(0, 0, 1);
  for (int j = 2; j <= r_; ++j) {
    const double n0 =
        0.5 * (f0 * test(j - 1, 0, 0) + f1 * test(j - 1, 1, 0));
    const double n1 =
        0.5 * (f0 * test(j - 1, 0, 1) + f1 * test(j - 1, 1, 1));
    f0 = n0;
    f1 = n1;
  }
  return f0 + f1;
}

double EqPathProtocol::single_rep_accept(const Bitstring& x,
                                         const Bitstring& y,
                                         const PathProof& proof) const {
  require(proof.intermediate_nodes() == std::max(0, r_ - 1),
          "EqPathProtocol: proof size does not match path length");
  return accept_one_rep(x, y, proof);
}

double EqPathProtocol::accept_probability(const Bitstring& x,
                                          const Bitstring& y,
                                          const PathProofReps& proof) const {
  require(static_cast<int>(proof.size()) == reps_,
          "EqPathProtocol: repetition count mismatch");
  double accept = 1.0;
  for (const auto& rep : proof) {
    require(rep.intermediate_nodes() == std::max(0, r_ - 1),
            "EqPathProtocol: proof size does not match path length");
    accept *= accept_one_rep(x, y, rep);
    if (accept == 0.0) {
      break;
    }
  }
  return accept;
}

double EqPathProtocol::completeness(const Bitstring& x) const {
  return accept_probability(x, x, honest_proof(x));
}

double EqPathProtocol::best_attack_accept(const Bitstring& x,
                                          const Bitstring& y) const {
  const CVec hx = scheme_.state(x);
  const CVec hy = scheme_.state(y);
  const int inner = std::max(0, r_ - 1);
  // The attack proof is identical in every repetition, so the k-fold
  // acceptance is the single-repetition acceptance to the k-th power.
  double best = single_rep_accept(x, y, rotation_attack(hx, hy, inner));
  for (int cut = 0; cut <= inner; ++cut) {
    best = std::max(best, single_rep_accept(x, y, step_attack(hx, hy, inner, cut)));
  }
  return std::pow(best, reps_);
}

}  // namespace dqma::protocol

// Channel-noise modelling for the verification protocols.
//
// The paper assumes noiseless communication; a practical deployment would
// not have it. Every forwarded register passes through a depolarizing
// channel D_p(rho) = (1-p) rho + p I/d, which admits exact closed forms for
// every test in the protocols:
//   * SWAP test on (noisy received, clean kept):
//       (1-p) * swap(a, b) + p * (1/2 + 1/(2d));
//   * final projector |h_y><h_y| on a noisy register:
//       (1-p) |<h_y|b>|^2 + p/d;
//   * permutation tests with several independently depolarized factors are
//     handled exactly by qtest::depolarized_permutation_test_accept.
// Depolarization damps every test statistic toward its mixed-state
// baseline, so it hurts whichever side relies on near-deterministic
// outcomes — primarily completeness, which needs ALL r*k tests to accept:
// it decays as ~(1 - p/2)^{r k}, making the paper's k = Theta(r^2)
// repetition count a genuine robustness liability.
//
// NoiseModel is the protocol-generic description of that noise: one
// depolarizing rate per link, with the uniform model (the same rate on
// every link) as a special case. Links are indexed by whatever integer the
// consuming protocol uses — path protocols use link j = channel v_j -> v_{j+1},
// tree protocols (EqGraphProtocol::noisy_accept_probability) use the child
// tree-node index of each upward edge, and the scenario engine
// (src/scenario/) maps seeded per-edge rates of a generated topology onto
// either convention.
#pragma once

#include <vector>

#include "dqma/eq_path.hpp"

namespace dqma::protocol {

/// Per-link depolarizing channel strengths. Default-constructed models are
/// noiseless; uniform models apply one rate to every link a protocol asks
/// about (any link index); per-link models hold an explicit rate table and
/// reject out-of-range links loudly.
class NoiseModel {
 public:
  /// Noiseless (rate 0 on every link).
  NoiseModel() = default;

  /// The same depolarizing rate on every link. Requires rate in [0, 1].
  static NoiseModel uniform(double rate);

  /// Heterogeneous rates, one per link in the consumer's link order.
  /// Requires every rate in [0, 1].
  static NoiseModel per_link(std::vector<double> rates);

  /// True when one rate applies to every link (including the default
  /// noiseless model).
  bool is_uniform() const { return rates_.empty(); }

  /// True when every link is noiseless (rate exactly 0).
  bool is_noiseless() const;

  /// Depolarizing rate of `link`. Uniform models accept any non-negative
  /// link index; per-link models require 0 <= link < link_count().
  double rate(int link) const;

  /// Number of explicit links, or -1 for uniform models (unbounded).
  int link_count() const {
    return rates_.empty() ? -1 : static_cast<int>(rates_.size());
  }

  /// Largest per-link rate (the uniform rate for uniform models).
  double max_rate() const;

  /// Every rate multiplied by `factor` and clamped to [0, 1]; used by
  /// threshold searches that scale a heterogeneous profile. Requires
  /// factor >= 0.
  NoiseModel scaled(double factor) const;

  /// Closed-form damping of a test statistic on `link`: with probability
  /// (1 - p) the register arrives intact (statistic `clean`), with
  /// probability p it is replaced by the maximally mixed state (statistic
  /// `baseline`).
  double damp(int link, double clean, double baseline) const {
    const double p = rate(link);
    return (1.0 - p) * clean + p * baseline;
  }

 private:
  double uniform_rate_ = 0.0;
  std::vector<double> rates_;  ///< empty => uniform model
};

/// Exact acceptance of a product proof where the register forwarded over
/// link j (channel v_j -> v_{j+1}) passes a depolarizing channel of
/// strength noise.rate(j); k repetitions multiply. Per-link models must
/// cover links 0..r-1.
double noisy_accept_probability(const EqPathProtocol& protocol,
                                const Bitstring& x, const Bitstring& y,
                                const PathProofReps& proof,
                                const NoiseModel& noise);

/// Completeness of the honest proof under noise.
double noisy_completeness(const EqPathProtocol& protocol, const Bitstring& x,
                          const NoiseModel& noise);

/// Best implemented product attack (rotation + step cuts) under noise.
double noisy_attack_accept(const EqPathProtocol& protocol, const Bitstring& x,
                           const Bitstring& y, const NoiseModel& noise);

/// Largest scale s (binary search over [0, 1], resolution `tol`) at which
/// the protocol under profile.scaled(s) still has completeness >= 2/3 AND
/// attack acceptance <= 1/3 simultaneously; returns 0 if the protocol
/// fails even noiselessly. With the default uniform unit profile the
/// returned scale IS the largest tolerable uniform rate.
double noise_threshold(const EqPathProtocol& protocol, const Bitstring& x,
                       const Bitstring& y, double tol = 1e-3,
                       const NoiseModel& profile = NoiseModel::uniform(1.0));

}  // namespace dqma::protocol

// Failure injection: the EQ path protocol under depolarizing noise on the
// verifier-to-verifier channels.
//
// The paper assumes noiseless communication; a practical deployment would
// not have it. We model each forwarded register passing through a
// depolarizing channel D_p(rho) = (1-p) rho + p I/d, which admits exact
// closed forms for every test in the protocol:
//   * SWAP test on (noisy received, clean kept):
//       (1-p) * swap(a, b) + p * (1/2 + 1/(2d));
//   * final projector |h_y><h_y| on a noisy register:
//       (1-p) |<h_y|b>|^2 + p/d.
// Depolarization damps every test statistic toward its mixed-state
// baseline (1/2 + 1/2d for SWAP tests, 1/d for the final projector), so it
// hurts whichever side relies on near-deterministic outcomes — primarily
// completeness, which needs ALL r*k tests to accept: it decays as
// ~(1 - p/2)^{r k}, making the paper's k = Theta(r^2) repetition count a
// genuine robustness liability. noise_threshold() reports the largest p at
// which the protocol still separates completeness >= 2/3 from attacked
// soundness <= 1/3 at a given repetition count.
#pragma once

#include "dqma/eq_path.hpp"

namespace dqma::protocol {

/// Exact acceptance of a product proof under depolarizing noise of
/// strength p on every forwarded register (k repetitions multiply).
double noisy_accept_probability(const EqPathProtocol& protocol,
                                const Bitstring& x, const Bitstring& y,
                                const PathProofReps& proof, double noise);

/// Completeness of the honest proof under noise.
double noisy_completeness(const EqPathProtocol& protocol, const Bitstring& x,
                          double noise);

/// Best implemented product attack (rotation + step cuts) under noise.
double noisy_attack_accept(const EqPathProtocol& protocol, const Bitstring& x,
                           const Bitstring& y, double noise);

/// Largest noise level (binary search, resolution `tol`) at which
/// completeness >= 2/3 AND the attack acceptance <= 1/3 simultaneously;
/// returns 0 if the protocol fails even noiselessly.
double noise_threshold(const EqPathProtocol& protocol, const Bitstring& x,
                       const Bitstring& y, double tol = 1e-3);

}  // namespace dqma::protocol

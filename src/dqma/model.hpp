// Shared types of the dQMA protocol implementations: cost accounting and
// proof containers for the fast (product-state) runner.
//
// Conventions
// -----------
// * Costs are in qubits, following the paper's Definition 6: local proof
//   size = max over nodes, total proof size = sum over nodes, and likewise
//   for messages over edges.
// * The fast runner represents proofs as *products of pure states*, one per
//   proof register. This is exactly the honest-prover regime (the paper's
//   protocols are dQMA_sep) and the dQMA_sep,sep adversary regime; entangled
//   adversaries are handled by the exact engine (exact_runner.hpp) on small
//   instances.
#pragma once

#include <vector>

#include "linalg/vector.hpp"

namespace dqma::protocol {

using linalg::CVec;

/// Qubit cost profile of a protocol instance (Definition 6 accounting).
struct CostProfile {
  long long local_proof_qubits = 0;    ///< max_u c(u)
  long long total_proof_qubits = 0;    ///< sum_u c(u)
  long long local_message_qubits = 0;  ///< max_{v,w} m(v,w)
  long long total_message_qubits = 0;  ///< sum_{v,w} m(v,w)
};

/// One repetition of a path proof (Algorithm 3): the two fingerprint-sized
/// registers R_{j,0}, R_{j,1} of every intermediate node v_j, j = 1..r-1.
struct PathProof {
  std::vector<CVec> reg0;  ///< R_{j,0}, index j-1
  std::vector<CVec> reg1;  ///< R_{j,1}, index j-1

  int intermediate_nodes() const { return static_cast<int>(reg0.size()); }
};

/// k independent repetitions (Algorithm 4).
using PathProofReps = std::vector<PathProof>;

}  // namespace dqma::protocol

#include "dqma/attacks.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dqma::protocol {

using linalg::Complex;
using linalg::CVec;
using util::require;

std::vector<CVec> geodesic_states(const CVec& a, const CVec& b, int count) {
  require(a.dim() == b.dim(), "geodesic_states: dimension mismatch");
  require(count >= 0, "geodesic_states: negative count");
  // Phase-align b so that <a|b'> is real and non-negative (a global phase
  // does not change the state), then orthonormalize:
  // b' = cos(theta) a + sin(theta) b_perp.
  const Complex raw_overlap = a.dot(b);
  CVec b_aligned = b;
  if (std::abs(raw_overlap) > 1e-12) {
    b_aligned *= std::conj(raw_overlap) / std::abs(raw_overlap);
  }
  const double overlap = std::abs(raw_overlap);
  CVec b_perp = b_aligned;
  for (int i = 0; i < b.dim(); ++i) {
    b_perp[i] -= overlap * a[i];
  }
  double theta = 0.0;
  if (b_perp.norm() > 1e-12) {
    b_perp.normalize();
    theta = std::atan2(std::sqrt(std::max(0.0, 1.0 - overlap * overlap)),
                       overlap);
  }
  std::vector<CVec> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int j = 1; j <= count; ++j) {
    const double t = static_cast<double>(j) / (count + 1);
    CVec phi(a.dim());
    const double c = std::cos(t * theta);
    const double s = std::sin(t * theta);
    for (int i = 0; i < a.dim(); ++i) {
      phi[i] = c * a[i] + (theta > 0.0 ? s * b_perp[i] : Complex{0.0, 0.0});
    }
    phi.normalize();
    out.push_back(std::move(phi));
  }
  return out;
}

PathProof rotation_attack(const CVec& hx, const CVec& hy, int inner) {
  PathProof proof;
  const auto states = geodesic_states(hx, hy, inner);
  proof.reg0 = states;
  proof.reg1 = states;
  return proof;
}

PathProof step_attack(const CVec& hx, const CVec& hy, int inner, int cut) {
  require(cut >= 0 && cut <= inner, "step_attack: cut out of range");
  PathProof proof;
  for (int j = 0; j < inner; ++j) {
    proof.reg0.push_back(j < cut ? hx : hy);
    proof.reg1.push_back(j < cut ? hx : hy);
  }
  return proof;
}

PathProof all_target_attack(const CVec& hy, int inner) {
  return step_attack(hy, hy, inner, 0);
}

PathProofReps replicate(const PathProof& proof, int reps) {
  require(reps >= 1, "replicate: reps must be positive");
  return PathProofReps(static_cast<std::size_t>(reps), proof);
}

}  // namespace dqma::protocol

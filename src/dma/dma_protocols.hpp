// Classical dMA protocols for EQ on a path — the baselines of the paper's
// classical lower bounds (Sec. 4.2: Lemma 23, Proposition 24, Corollary 25).
//
// All protocols share one shape: the prover writes a per-node tag; v_0
// checks the first tag against tag(x), adjacent nodes cross-check equality,
// v_r checks the last tag against tag(y). The trivial protocol tags with
// the whole input (sound, Theta(rn) total bits); the budgeted variants tag
// with fewer bits and are broken by the constructive attacks in
// dma/attacks.hpp exactly as the lower-bound proofs predict.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace dqma::dma {

using util::Bitstring;

/// Deterministic 1-round dMA protocol for EQ on the path v_0..v_r where the
/// proof at every intermediate node is `tag(input)`.
class TagDmaEq {
 public:
  virtual ~TagDmaEq() = default;

  TagDmaEq(int n, int r);

  int n() const { return n_; }
  int r() const { return r_; }

  /// Bits of one node's proof.
  virtual int proof_bits() const = 0;

  /// The tag of an input (honest proof content).
  virtual Bitstring tag(const Bitstring& x) const = 0;

  /// Total proof bits over all nodes.
  long long total_proof_bits() const {
    return static_cast<long long>(proof_bits()) * std::max(0, r_ - 1);
  }

  /// Honest proof: tag(x) at every intermediate node.
  std::vector<Bitstring> honest_proof(const Bitstring& x) const;

  /// Per-node verdicts (v_0..v_r) for inputs and an arbitrary proof.
  std::vector<bool> node_verdicts(const Bitstring& x, const Bitstring& y,
                                  const std::vector<Bitstring>& proof) const;

  /// True iff every node accepts.
  bool accepts(const Bitstring& x, const Bitstring& y,
               const std::vector<Bitstring>& proof) const;

 private:
  int n_;
  int r_;
};

/// Sound baseline: the tag is the whole input (proof_bits = n).
class TrivialDmaEq final : public TagDmaEq {
 public:
  TrivialDmaEq(int n, int r) : TagDmaEq(n, r) {}
  int proof_bits() const override { return n(); }
  Bitstring tag(const Bitstring& x) const override { return x; }
};

/// Budgeted protocol: the tag is a seeded `bits`-bit hash of the input.
/// For bits < n collisions exist and the collision attack achieves
/// soundness error 1 (Lemma 23 made constructive).
class HashDmaEq final : public TagDmaEq {
 public:
  HashDmaEq(int n, int r, int bits, std::uint64_t seed = 0xdead);
  int proof_bits() const override { return bits_; }
  Bitstring tag(const Bitstring& x) const override;

 private:
  int bits_;
  std::uint64_t seed_;
};

/// Budgeted protocol tagging with the first `bits` input bits; collisions
/// are trivially constructible (any two strings sharing a prefix).
class PrefixDmaEq final : public TagDmaEq {
 public:
  PrefixDmaEq(int n, int r, int bits);
  int proof_bits() const override { return bits_; }
  Bitstring tag(const Bitstring& x) const override;

 private:
  int bits_;
};

/// The "proof gap" protocol of Lemma 53's classical analog: full n-bit tags
/// everywhere EXCEPT two consecutive nodes (gap_start, gap_start+1), which
/// receive nothing. With 1-round verification, no check spans the gap, so
/// the spliced proof (tags of x on the left, tags of y on the right) is
/// accepted by every node even when x != y.
class ZeroWindowDmaEq {
 public:
  ZeroWindowDmaEq(int n, int r, int gap_start);

  int n() const { return n_; }
  int r() const { return r_; }
  int gap_start() const { return gap_start_; }

  long long total_proof_bits() const;

  /// proof[j] for j = 1..r-1 (index j-1); entries inside the gap must be
  /// empty bitstrings.
  std::vector<Bitstring> honest_proof(const Bitstring& x) const;

  std::vector<bool> node_verdicts(const Bitstring& x, const Bitstring& y,
                                  const std::vector<Bitstring>& proof) const;
  bool accepts(const Bitstring& x, const Bitstring& y,
               const std::vector<Bitstring>& proof) const;

  /// The Lemma 53 splice: x-tags left of the gap, y-tags right of it.
  std::vector<Bitstring> splice_attack(const Bitstring& x,
                                       const Bitstring& y) const;

 private:
  int n_;
  int r_;
  int gap_start_;

  bool has_proof(int j) const { return j != gap_start_ && j != gap_start_ + 1; }
};

}  // namespace dqma::dma

// Constructive attacks realizing the classical lower bounds of Sec. 4.2.
#pragma once

#include <optional>
#include <utility>

#include "dma/dma_protocols.hpp"
#include "util/rng.hpp"

namespace dqma::dma {

/// Searches for a tag collision x != y with tag(x) == tag(y): the fooling
/// pair that makes the budgeted protocol accept a no instance with
/// certainty (the constructive core of Lemma 23). Exhaustive for n <= 20,
/// birthday sampling otherwise. Returns nullopt if none found within
/// `budget` probes.
std::optional<std::pair<Bitstring, Bitstring>> find_tag_collision(
    const TagDmaEq& protocol, int budget, util::Rng& rng);

/// Measured soundness error of a budgeted protocol: 1.0 when a collision
/// attack exists (the spliced proof is accepted by every node), else 0.0.
double collision_attack_soundness_error(const TagDmaEq& protocol, int budget,
                                        util::Rng& rng);

}  // namespace dqma::dma

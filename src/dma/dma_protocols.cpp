#include "dma/dma_protocols.hpp"

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dqma::dma {

using util::require;
using util::Rng;

TagDmaEq::TagDmaEq(int n, int r) : n_(n), r_(r) {
  require(n >= 1, "TagDmaEq: n must be positive");
  require(r >= 2, "TagDmaEq: need at least one intermediate node");
}

std::vector<Bitstring> TagDmaEq::honest_proof(const Bitstring& x) const {
  require(x.size() == n_, "TagDmaEq: input length mismatch");
  return std::vector<Bitstring>(static_cast<std::size_t>(r_ - 1), tag(x));
}

std::vector<bool> TagDmaEq::node_verdicts(
    const Bitstring& x, const Bitstring& y,
    const std::vector<Bitstring>& proof) const {
  require(static_cast<int>(proof.size()) == r_ - 1,
          "TagDmaEq: proof entry count mismatch");
  std::vector<bool> verdicts(static_cast<std::size_t>(r_) + 1, true);
  verdicts[0] = proof.front() == tag(x);
  for (int j = 1; j < r_ - 1; ++j) {
    verdicts[static_cast<std::size_t>(j)] =
        proof[static_cast<std::size_t>(j - 1)] ==
        proof[static_cast<std::size_t>(j)];
  }
  // Node v_{r-1} compares its proof with v_r's check... the final check is
  // v_r's: last tag against tag(y).
  verdicts[static_cast<std::size_t>(r_)] = proof.back() == tag(y);
  return verdicts;
}

bool TagDmaEq::accepts(const Bitstring& x, const Bitstring& y,
                       const std::vector<Bitstring>& proof) const {
  for (const bool v : node_verdicts(x, y, proof)) {
    if (!v) {
      return false;
    }
  }
  return true;
}

HashDmaEq::HashDmaEq(int n, int r, int bits, std::uint64_t seed)
    : TagDmaEq(n, r), bits_(bits), seed_(seed) {
  require(bits >= 1 && bits <= 63, "HashDmaEq: bits must be in [1, 63]");
}

Bitstring HashDmaEq::tag(const Bitstring& x) const {
  // Seeded 64-bit mix of the content hash, truncated to `bits`.
  Rng rng(x.hash() ^ seed_);
  const std::uint64_t h = rng.next_u64() & ((1ULL << bits_) - 1);
  return Bitstring::from_integer(h, bits_);
}

PrefixDmaEq::PrefixDmaEq(int n, int r, int bits)
    : TagDmaEq(n, r), bits_(bits) {
  require(bits >= 0 && bits <= n, "PrefixDmaEq: bits out of range");
}

Bitstring PrefixDmaEq::tag(const Bitstring& x) const {
  return x.prefix(bits_);
}

ZeroWindowDmaEq::ZeroWindowDmaEq(int n, int r, int gap_start)
    : n_(n), r_(r), gap_start_(gap_start) {
  require(n >= 1, "ZeroWindowDmaEq: n must be positive");
  require(r >= 4, "ZeroWindowDmaEq: path too short for a 2-node gap");
  require(gap_start >= 1 && gap_start + 1 <= r - 1,
          "ZeroWindowDmaEq: gap out of range");
}

long long ZeroWindowDmaEq::total_proof_bits() const {
  return static_cast<long long>(n_) * (r_ - 1 - 2);
}

std::vector<Bitstring> ZeroWindowDmaEq::honest_proof(const Bitstring& x) const {
  require(x.size() == n_, "ZeroWindowDmaEq: input length mismatch");
  std::vector<Bitstring> proof;
  for (int j = 1; j <= r_ - 1; ++j) {
    proof.push_back(has_proof(j) ? x : Bitstring(0));
  }
  return proof;
}

std::vector<bool> ZeroWindowDmaEq::node_verdicts(
    const Bitstring& x, const Bitstring& y,
    const std::vector<Bitstring>& proof) const {
  require(static_cast<int>(proof.size()) == r_ - 1,
          "ZeroWindowDmaEq: proof entry count mismatch");
  std::vector<bool> verdicts(static_cast<std::size_t>(r_) + 1, true);
  const auto entry = [&](int j) -> const Bitstring& {
    return proof[static_cast<std::size_t>(j - 1)];
  };
  // v_0 checks against v_1 if v_1 carries a proof.
  if (has_proof(1)) {
    verdicts[0] = entry(1) == x;
  }
  // Adjacent checks where both sides carry proofs.
  for (int j = 1; j <= r_ - 2; ++j) {
    if (has_proof(j) && has_proof(j + 1)) {
      verdicts[static_cast<std::size_t>(j)] = entry(j) == entry(j + 1);
    }
  }
  if (has_proof(r_ - 1)) {
    verdicts[static_cast<std::size_t>(r_)] = entry(r_ - 1) == y;
  }
  return verdicts;
}

bool ZeroWindowDmaEq::accepts(const Bitstring& x, const Bitstring& y,
                              const std::vector<Bitstring>& proof) const {
  for (const bool v : node_verdicts(x, y, proof)) {
    if (!v) {
      return false;
    }
  }
  return true;
}

std::vector<Bitstring> ZeroWindowDmaEq::splice_attack(
    const Bitstring& x, const Bitstring& y) const {
  std::vector<Bitstring> proof;
  for (int j = 1; j <= r_ - 1; ++j) {
    if (!has_proof(j)) {
      proof.push_back(Bitstring(0));
    } else {
      proof.push_back(j < gap_start_ ? x : y);
    }
  }
  return proof;
}

}  // namespace dqma::dma

#include "dma/attacks.hpp"

#include <unordered_map>

#include "util/require.hpp"

namespace dqma::dma {

using util::Bitstring;
using util::require;

std::optional<std::pair<Bitstring, Bitstring>> find_tag_collision(
    const TagDmaEq& protocol, int budget, util::Rng& rng) {
  const int n = protocol.n();
  std::unordered_map<std::uint64_t, Bitstring> seen;
  const auto probe = [&](const Bitstring& x)
      -> std::optional<std::pair<Bitstring, Bitstring>> {
    const Bitstring t = protocol.tag(x);
    // Key on (tag content, tag length) via the stable hash; verify equality
    // to rule out hash-of-tag collisions.
    const auto it = seen.find(t.hash());
    if (it != seen.end()) {
      if (it->second != x && protocol.tag(it->second) == t) {
        return std::make_pair(it->second, x);
      }
    } else {
      seen.emplace(t.hash(), x);
    }
    return std::nullopt;
  };

  if (n <= 20) {
    for (std::uint64_t v = 0; v < (1ULL << n); ++v) {
      if (auto hit = probe(Bitstring::from_integer(v, n))) {
        return hit;
      }
    }
    return std::nullopt;
  }
  for (int i = 0; i < budget; ++i) {
    if (auto hit = probe(Bitstring::random(n, rng))) {
      return hit;
    }
  }
  return std::nullopt;
}

double collision_attack_soundness_error(const TagDmaEq& protocol, int budget,
                                        util::Rng& rng) {
  const auto pair = find_tag_collision(protocol, budget, rng);
  if (!pair) {
    return 0.0;
  }
  // The colliding pair's honest proof is accepted on the no instance
  // (x, y): every node's check passes because the tags agree.
  const bool accepted =
      protocol.accepts(pair->first, pair->second,
                       protocol.honest_proof(pair->first));
  require(accepted, "collision_attack: collision must be accepted");
  return 1.0;
}

}  // namespace dqma::dma

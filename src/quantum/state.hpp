// Pure quantum states over a list of registers (qudits of arbitrary
// dimension), with register-local operations.
//
// The simulators model a protocol's quantum data as a small list of named
// registers (fingerprint registers, index registers, ancillas). A
// RegisterShape records their dimensions; flat indices are row-major over
// the registers in order.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/rng.hpp"

namespace dqma::quantum {

using linalg::CMat;
using linalg::Complex;
using linalg::CVec;

/// Dimensions of an ordered list of registers.
class RegisterShape {
 public:
  RegisterShape() = default;
  explicit RegisterShape(std::vector<int> dims);

  int register_count() const { return static_cast<int>(dims_.size()); }
  int dim(int reg) const;
  const std::vector<int>& dims() const { return dims_; }

  /// Product of all register dimensions (the global Hilbert dimension).
  long long total_dim() const;

  /// Flat index from per-register indices (row-major).
  long long flatten(const std::vector<int>& idx) const;

  /// Per-register indices from a flat index.
  std::vector<int> unflatten(long long flat) const;

  bool operator==(const RegisterShape& other) const {
    return dims_ == other.dims_;
  }

 private:
  std::vector<int> dims_;
};

/// A pure state over a RegisterShape.
class PureState {
 public:
  PureState() = default;

  /// |0...0> over the given shape.
  explicit PureState(RegisterShape shape);

  /// From amplitudes (must match the shape's total dimension); normalizes
  /// if `normalize` is true, otherwise requires unit norm.
  PureState(RegisterShape shape, CVec amplitudes, bool normalize = false);

  /// Single-register state from a bare vector.
  static PureState single(const CVec& amplitudes);

  /// Tensor product (concatenates register lists).
  PureState tensor(const PureState& other) const;

  const RegisterShape& shape() const { return shape_; }
  const CVec& amplitudes() const { return amp_; }

  /// Overlap <this|other> (same total dimension required).
  Complex overlap(const PureState& other) const;

  /// Applies a unitary acting on the listed registers (in the listed order).
  /// The unitary's dimension must equal the product of those registers'
  /// dimensions.
  void apply(const CMat& u, const std::vector<int>& regs);

  /// Measures one register in the computational basis: samples an outcome,
  /// collapses the state in place, and returns the outcome.
  int measure_register(int reg, util::Rng& rng);

  /// Probability of obtaining `outcome` when measuring `reg` (no collapse).
  double outcome_probability(int reg, int outcome) const;

 private:
  RegisterShape shape_;
  CVec amp_;
};

}  // namespace dqma::quantum

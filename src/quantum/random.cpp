#include "quantum/random.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dqma::quantum {

using linalg::CMat;
using linalg::Complex;
using linalg::CVec;
using util::require;

CVec haar_state(int dim, util::Rng& rng) {
  require(dim >= 1, "haar_state: dimension must be positive");
  CVec v(dim);
  for (int i = 0; i < dim; ++i) {
    v[i] = Complex{rng.next_gaussian(), rng.next_gaussian()};
  }
  v.normalize();
  return v;
}

CMat haar_unitary(int dim, util::Rng& rng) {
  require(dim >= 1, "haar_unitary: dimension must be positive");
  // Columns = Gram-Schmidt of Ginibre columns; phases fixed by making the
  // diagonal of R positive (Mezzadri's recipe).
  std::vector<CVec> cols;
  cols.reserve(static_cast<std::size_t>(dim));
  for (int c = 0; c < dim; ++c) {
    CVec v(dim);
    for (int i = 0; i < dim; ++i) {
      v[i] = Complex{rng.next_gaussian(), rng.next_gaussian()};
    }
    for (const auto& prev : cols) {
      const Complex coeff = prev.dot(v);
      for (int i = 0; i < dim; ++i) {
        v[i] -= coeff * prev[i];
      }
    }
    v.normalize();
    cols.push_back(std::move(v));
  }
  CMat u(dim, dim);
  for (int c = 0; c < dim; ++c) {
    for (int i = 0; i < dim; ++i) {
      u(i, c) = cols[static_cast<std::size_t>(c)][i];
    }
  }
  return u;
}

CMat random_density(int dim, util::Rng& rng) {
  // rho = G G^dagger / tr(G G^dagger) for a Ginibre G: the Hilbert-Schmidt
  // ensemble, full rank almost surely.
  CMat g(dim, dim);
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) {
      g(i, j) = Complex{rng.next_gaussian(), rng.next_gaussian()};
    }
  }
  CMat rho = g.times_adjoint(g);
  const double tr = rho.trace().real();
  rho *= Complex{1.0 / tr, 0.0};
  return rho;
}

}  // namespace dqma::quantum

// Partial trace over register subsets (the tr_i / tr_{\bar i} operations of
// the paper's Sec. 2.1).
#pragma once

#include <vector>

#include "quantum/density.hpp"

namespace dqma::quantum {

/// Traces out the listed registers, returning the reduced state on the
/// remaining registers (in their original order).
Density partial_trace(const Density& rho, const std::vector<int>& traced_out);

/// Keeps only the listed registers (complement of partial_trace).
Density reduce_to(const Density& rho, const std::vector<int>& kept);

/// Reduced state of one register of a pure state (common fast path).
Density reduced_single(const PureState& psi, int reg);

}  // namespace dqma::quantum

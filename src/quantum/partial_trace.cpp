#include "quantum/partial_trace.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dqma::quantum {

using util::require;

Density partial_trace(const Density& rho, const std::vector<int>& traced_out) {
  const RegisterShape& shape = rho.shape();
  const int nregs = shape.register_count();
  std::vector<bool> traced(static_cast<std::size_t>(nregs), false);
  for (const int r : traced_out) {
    require(r >= 0 && r < nregs, "partial_trace: register out of range");
    require(!traced[static_cast<std::size_t>(r)],
            "partial_trace: duplicate register");
    traced[static_cast<std::size_t>(r)] = true;
  }

  std::vector<int> kept;
  for (int r = 0; r < nregs; ++r) {
    if (!traced[static_cast<std::size_t>(r)]) {
      kept.push_back(r);
    }
  }
  return reduce_to(rho, kept);
}

Density reduce_to(const Density& rho, const std::vector<int>& kept) {
  const RegisterShape& shape = rho.shape();
  const int nregs = shape.register_count();
  std::vector<bool> keep(static_cast<std::size_t>(nregs), false);
  for (const int r : kept) {
    require(r >= 0 && r < nregs, "reduce_to: register out of range");
    require(!keep[static_cast<std::size_t>(r)], "reduce_to: duplicate register");
    keep[static_cast<std::size_t>(r)] = true;
  }
  // `kept` must preserve the original register order so indices stay stable.
  for (std::size_t k = 1; k < kept.size(); ++k) {
    require(kept[k] > kept[k - 1], "reduce_to: registers must be ascending");
  }

  std::vector<int> kept_dims;
  std::vector<int> traced_regs;
  for (int r = 0; r < nregs; ++r) {
    if (keep[static_cast<std::size_t>(r)]) {
      kept_dims.push_back(shape.dim(r));
    } else {
      traced_regs.push_back(r);
    }
  }

  // Strides in the full flat index.
  std::vector<long long> stride(static_cast<std::size_t>(nregs), 1);
  for (int r = nregs - 2; r >= 0; --r) {
    stride[static_cast<std::size_t>(r)] =
        stride[static_cast<std::size_t>(r + 1)] * shape.dim(r + 1);
  }

  RegisterShape out_shape{kept_dims};
  const long long out_dim = out_shape.total_dim();
  long long traced_count = 1;
  for (const int r : traced_regs) {
    traced_count *= shape.dim(r);
  }

  auto offset_of = [&](const std::vector<int>& regs, long long value) {
    long long rem = value;
    long long off = 0;
    for (int k = static_cast<int>(regs.size()) - 1; k >= 0; --k) {
      const int r = regs[static_cast<std::size_t>(k)];
      const int d = shape.dim(r);
      off += (rem % d) * stride[static_cast<std::size_t>(r)];
      rem /= d;
    }
    return off;
  };

  CMat out(static_cast<int>(out_dim), static_cast<int>(out_dim));
  const CMat& full = rho.matrix();
  for (long long i = 0; i < out_dim; ++i) {
    const long long base_i = offset_of(kept, i);
    for (long long j = 0; j < out_dim; ++j) {
      const long long base_j = offset_of(kept, j);
      Complex acc{0.0, 0.0};
      for (long long t = 0; t < traced_count; ++t) {
        const long long off = offset_of(traced_regs, t);
        acc += full(static_cast<int>(base_i + off),
                    static_cast<int>(base_j + off));
      }
      out(static_cast<int>(i), static_cast<int>(j)) = acc;
    }
  }
  return Density(std::move(out_shape), std::move(out));
}

Density reduced_single(const PureState& psi, int reg) {
  return reduce_to(Density::from_pure(psi), {reg});
}

}  // namespace dqma::quantum

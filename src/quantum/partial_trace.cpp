#include "quantum/partial_trace.hpp"

#include <algorithm>

#include "linalg/complex_view.hpp"
#include "quantum/local_ops.hpp"
#include "sweep/parallel.hpp"
#include "util/require.hpp"

namespace dqma::quantum {

using util::require;

Density partial_trace(const Density& rho, const std::vector<int>& traced_out) {
  const RegisterShape& shape = rho.shape();
  const int nregs = shape.register_count();
  std::vector<bool> traced(static_cast<std::size_t>(nregs), false);
  for (const int r : traced_out) {
    require(r >= 0 && r < nregs, "partial_trace: register out of range");
    require(!traced[static_cast<std::size_t>(r)],
            "partial_trace: duplicate register");
    traced[static_cast<std::size_t>(r)] = true;
  }

  std::vector<int> kept;
  for (int r = 0; r < nregs; ++r) {
    if (!traced[static_cast<std::size_t>(r)]) {
      kept.push_back(r);
    }
  }
  return reduce_to(rho, kept);
}

Density reduce_to(const Density& rho, const std::vector<int>& kept) {
  const RegisterShape& shape = rho.shape();
  const int nregs = shape.register_count();
  std::vector<bool> keep(static_cast<std::size_t>(nregs), false);
  for (const int r : kept) {
    require(r >= 0 && r < nregs, "reduce_to: register out of range");
    require(!keep[static_cast<std::size_t>(r)], "reduce_to: duplicate register");
    keep[static_cast<std::size_t>(r)] = true;
  }
  // `kept` must preserve the original register order so indices stay stable.
  for (std::size_t k = 1; k < kept.size(); ++k) {
    require(kept[k] > kept[k - 1], "reduce_to: registers must be ascending");
  }

  std::vector<int> kept_dims;
  for (const int r : kept) {
    kept_dims.push_back(shape.dim(r));
  }
  RegisterShape out_shape{kept_dims};
  const long long out_dim = out_shape.total_dim();

  // The kept registers are the plan's targets, so its precomputed offset
  // tables are exactly the kept-index and traced-index flat offsets — no
  // per-entry offset recomputation.
  const LocalOpPlan plan(shape, kept);
  const auto& kept_off = plan.target_offsets();
  const auto& traced_off = plan.free_offsets();

  CMat out(static_cast<int>(out_dim), static_cast<int>(out_dim));
  // Layout-agnostic view over the full density (flat strided gathers, so
  // the kernel never names the storage layout — in-core and tile-backed
  // densities reduce through the same gather loop).
  const linalg::ConstComplexView full = rho.view();
  const long long full_cols = full.cols();
  // Output rows are independent (each entry one serial diagonal sum), so
  // row panels run in parallel with thread-count-invariant values.
  const std::size_t row_ops =
      static_cast<std::size_t>(out_dim) * traced_off.size();
  sweep::parallel_for(
      static_cast<std::size_t>(out_dim), sweep::grain_for_ops(row_ops),
      [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t ii = i_begin; ii < i_end; ++ii) {
          const long long i = static_cast<long long>(ii);
          const long long base_i = kept_off[static_cast<std::size_t>(i)];
          for (long long j = 0; j < out_dim; ++j) {
            const long long base_j = kept_off[static_cast<std::size_t>(j)];
            Complex acc{0.0, 0.0};
            for (const long long off : traced_off) {
              acc += full.load((base_i + off) * full_cols + (base_j + off));
            }
            out(static_cast<int>(i), static_cast<int>(j)) = acc;
          }
        }
      });
  return Density(std::move(out_shape), std::move(out));
}

Density reduced_single(const PureState& psi, int reg) {
  return reduce_to(Density::from_pure(psi), {reg});
}

}  // namespace dqma::quantum

// Density operators over register lists: the state representation of the
// exact protocol engine (arbitrary, possibly entangled proofs; mixed states
// arising from measurement and symmetrization).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "quantum/state.hpp"

namespace dqma::quantum {

/// Embeds `op` (acting on the listed registers, in the listed order) into
/// the full Hilbert space of `shape` as op tensor identity-on-the-rest.
///
/// This is the *reference* implementation: the hot paths (Density's
/// apply/expectation/project, the exact protocol engine) apply local
/// operators matrix-free via quantum/local_ops.hpp and never materialize
/// the D x D embedding; the randomized property tests cross-validate the
/// matrix-free passes against this function.
CMat embed_operator(const RegisterShape& shape, const CMat& op,
                    const std::vector<int>& regs);

/// A density operator over a RegisterShape.
class Density {
 public:
  Density() = default;

  /// Maximally mixed state over the shape.
  static Density maximally_mixed(RegisterShape shape);

  /// |psi><psi| for a pure state.
  static Density from_pure(const PureState& psi);

  /// From an explicit matrix; validates Hermiticity and unit trace.
  Density(RegisterShape shape, CMat rho);

  const RegisterShape& shape() const { return shape_; }
  const CMat& matrix() const { return rho_; }

  /// Tensor product (register lists concatenate).
  Density tensor(const Density& other) const;

  /// Applies a unitary on the listed registers: rho <- U rho U^dagger.
  void apply(const CMat& u, const std::vector<int>& regs);

  /// Mixes in place: rho <- p * rho + (1-p) * other (same shape required).
  void mix_with(const Density& other, double p_this);

  /// Expectation tr(E rho) of a Hermitian effect acting on the listed
  /// registers (identity elsewhere). Returns a real number.
  double expectation(const CMat& effect, const std::vector<int>& regs) const;

  /// Projects onto `effect` on the listed registers and renormalizes:
  /// rho <- (E rho E^dagger) / tr(...). Returns the branch probability.
  /// If the probability is ~0 the state is left untouched and 0 is returned.
  double project(const CMat& effect, const std::vector<int>& regs);

 private:
  RegisterShape shape_;
  CMat rho_;
};

}  // namespace dqma::quantum

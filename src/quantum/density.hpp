// Density operators over register lists: the state representation of the
// exact protocol engine (arbitrary, possibly entangled proofs; mixed states
// arising from measurement and symmetrization).
//
// Storage is either an in-core CMat (dimensions up to kMaxDenseExactDim,
// exactly as before) or — above that, behind the scratch opt-in
// (util/scratch.hpp) — a memory-mapped ScratchTile holding the same
// row-major AoS layout up to kMaxTiledDenseDim. Every dense pass
// (sandwich_local, expectation_local, project_local, partial_trace) already
// streams row panels through ComplexView, so both storages feed the
// identical kernels and the tiled path is byte-identical to the in-core one.
#pragma once

#include <memory>
#include <vector>

#include "linalg/complex_view.hpp"
#include "linalg/matrix.hpp"
#include "quantum/state.hpp"

namespace dqma::util {
class ScratchTile;
}

namespace dqma::quantum {

/// Embeds `op` (acting on the listed registers, in the listed order) into
/// the full Hilbert space of `shape` as op tensor identity-on-the-rest.
///
/// This is the *reference* implementation: the hot paths (Density's
/// apply/expectation/project, the exact protocol engine) apply local
/// operators matrix-free via quantum/local_ops.hpp and never materialize
/// the D x D embedding; the randomized property tests cross-validate the
/// matrix-free passes against this function.
CMat embed_operator(const RegisterShape& shape, const CMat& op,
                    const std::vector<int>& regs);

/// A density operator over a RegisterShape.
class Density {
 public:
  Density() = default;
  Density(const Density& other);
  Density& operator=(const Density& other);
  Density(Density&&) noexcept = default;
  Density& operator=(Density&&) noexcept = default;
  ~Density();

  /// Maximally mixed state over the shape.
  static Density maximally_mixed(RegisterShape shape);

  /// Diagonal (classical) mixture: rho = diag(probs). Probabilities must be
  /// nonnegative and sum to 1. The cheap O(D) constructor for big mixed
  /// states — the natural entry point for the tiled path.
  static Density diagonal(RegisterShape shape,
                          const std::vector<double>& probs);

  /// |psi><psi| for a pure state.
  static Density from_pure(const PureState& psi);

  /// From an explicit matrix; validates Hermiticity and unit trace.
  Density(RegisterShape shape, CMat rho);

  const RegisterShape& shape() const { return shape_; }

  /// The in-core matrix. Throws when the density is tile-backed — dense
  /// consumers that need a CMat (trace distance, fidelity, swap tests) are
  /// in-core-only by design; streaming passes use view().
  const CMat& matrix() const;

  /// True when the matrix lives in a memory-mapped scratch tile.
  bool tiled() const { return tile_ != nullptr; }

  /// Matrix-shaped view of the storage (in-core or tiled alike) — what the
  /// local-operator kernels and partial_trace consume.
  linalg::MutComplexView view();
  linalg::ConstComplexView view() const;

  /// Tensor product (register lists concatenate). In-core operands only.
  Density tensor(const Density& other) const;

  /// Applies a unitary on the listed registers: rho <- U rho U^dagger.
  void apply(const CMat& u, const std::vector<int>& regs);

  /// Mixes in place: rho <- p * rho + (1-p) * other (same shape required).
  void mix_with(const Density& other, double p_this);

  /// Expectation tr(E rho) of a Hermitian effect acting on the listed
  /// registers (identity elsewhere). Returns a real number.
  double expectation(const CMat& effect, const std::vector<int>& regs) const;

  /// Projects onto `effect` on the listed registers and renormalizes:
  /// rho <- (E rho E^dagger) / tr(...). Returns the branch probability.
  /// If the probability is ~0 the state is left untouched and 0 is returned.
  double project(const CMat& effect, const std::vector<int>& regs);

 private:
  RegisterShape shape_;
  CMat rho_;                                 ///< in-core storage
  std::unique_ptr<util::ScratchTile> tile_;  ///< tiled storage (exclusive)
};

/// RAII override (thread-local) of the dimension threshold above which a
/// Density is placed in a ScratchTile instead of an in-core CMat. The
/// default threshold is kMaxDenseExactDim, so in-core behavior is unchanged;
/// tests and benchmarks lower it to force small densities through the tiled
/// path and pin tiled == in-core byte identity. Scratch must be enabled for
/// the override to have any effect.
class TiledDensityScope {
 public:
  explicit TiledDensityScope(long long threshold);
  ~TiledDensityScope();
  TiledDensityScope(const TiledDensityScope&) = delete;
  TiledDensityScope& operator=(const TiledDensityScope&) = delete;

 private:
  long long prev_;
};

}  // namespace dqma::quantum

#include "quantum/density.hpp"

#include <cmath>

#include "quantum/local_ops.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::quantum {

using util::require;

Density Density::maximally_mixed(RegisterShape shape) {
  const long long d = shape.total_dim();
  require(d <= util::kMaxDenseExactDim,
          "Density: dimension exceeds dense-engine cap");
  CMat rho = CMat::identity(static_cast<int>(d));
  rho *= Complex{1.0 / static_cast<double>(d), 0.0};
  return Density(std::move(shape), std::move(rho));
}

Density Density::from_pure(const PureState& psi) {
  return Density(psi.shape(), CMat::projector(psi.amplitudes()));
}

Density::Density(RegisterShape shape, CMat rho)
    : shape_(std::move(shape)), rho_(std::move(rho)) {
  const long long d = shape_.total_dim();
  require(d <= util::kMaxDenseExactDim,
          "Density: dimension exceeds dense-engine cap");
  require(rho_.rows() == d && rho_.cols() == d,
          "Density: matrix does not match shape");
  require(rho_.is_hermitian(1e-7), "Density: matrix not Hermitian");
  require(std::abs(rho_.trace().real() - 1.0) < 1e-6 &&
              std::abs(rho_.trace().imag()) < 1e-7,
          "Density: trace is not 1");
}

Density Density::tensor(const Density& other) const {
  std::vector<int> dims;
  dims.reserve(shape_.dims().size() + other.shape_.dims().size());
  dims.insert(dims.end(), shape_.dims().begin(), shape_.dims().end());
  dims.insert(dims.end(), other.shape_.dims().begin(),
              other.shape_.dims().end());
  return Density(RegisterShape(std::move(dims)), rho_.kron(other.rho_));
}

CMat embed_operator(const RegisterShape& shape, const CMat& op,
                    const std::vector<int>& regs) {
  // Reference implementation kept for cross-validation: the hot paths apply
  // local operators matrix-free (quantum/local_ops.hpp) instead of
  // embedding them. The plan precomputes both offset tables once per call.
  const LocalOpPlan plan(shape, regs);
  require(static_cast<long long>(op.rows()) == plan.block() &&
              static_cast<long long>(op.cols()) == plan.block(),
          "embed_operator: operator dimension mismatch");
  const auto& toff = plan.target_offsets();
  const long long block = plan.block();
  const long long total = plan.total_dim();
  CMat out(static_cast<int>(total), static_cast<int>(total));
  for (const long long base : plan.free_offsets()) {
    for (long long i = 0; i < block; ++i) {
      for (long long j = 0; j < block; ++j) {
        const Complex v = op(static_cast<int>(i), static_cast<int>(j));
        // Component-wise exact zero (not std::norm == 0, whose squares
        // underflow on subnormal entries and would drop them).
        if (v.real() == 0.0 && v.imag() == 0.0) continue;
        out(static_cast<int>(base + toff[static_cast<std::size_t>(i)]),
            static_cast<int>(base + toff[static_cast<std::size_t>(j)])) = v;
      }
    }
  }
  return out;
}

void Density::apply(const CMat& u, const std::vector<int>& regs) {
  const LocalOpPlan plan(shape_, regs);
  sandwich_local(plan, u, rho_);
}

void Density::mix_with(const Density& other, double p_this) {
  require(shape_ == other.shape_, "Density::mix_with: shape mismatch");
  require(p_this >= 0.0 && p_this <= 1.0,
          "Density::mix_with: probability out of range");
  rho_.blend(other.rho_, Complex{p_this, 0.0}, Complex{1.0 - p_this, 0.0});
}

double Density::expectation(const CMat& effect,
                            const std::vector<int>& regs) const {
  const LocalOpPlan plan(shape_, regs);
  return expectation_local(plan, effect, rho_);
}

double Density::project(const CMat& effect, const std::vector<int>& regs) {
  const LocalOpPlan plan(shape_, regs);
  return project_local(plan, effect, rho_);
}

}  // namespace dqma::quantum

#include "quantum/density.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::quantum {

using util::require;

Density Density::maximally_mixed(RegisterShape shape) {
  const long long d = shape.total_dim();
  require(d <= util::kMaxExactDim, "Density: dimension exceeds exact-engine cap");
  CMat rho = CMat::identity(static_cast<int>(d));
  rho *= Complex{1.0 / static_cast<double>(d), 0.0};
  return Density(std::move(shape), std::move(rho));
}

Density Density::from_pure(const PureState& psi) {
  return Density(psi.shape(), CMat::projector(psi.amplitudes()));
}

Density::Density(RegisterShape shape, CMat rho)
    : shape_(std::move(shape)), rho_(std::move(rho)) {
  const long long d = shape_.total_dim();
  require(d <= util::kMaxExactDim, "Density: dimension exceeds exact-engine cap");
  require(rho_.rows() == d && rho_.cols() == d,
          "Density: matrix does not match shape");
  require(rho_.is_hermitian(1e-7), "Density: matrix not Hermitian");
  require(std::abs(rho_.trace().real() - 1.0) < 1e-6 &&
              std::abs(rho_.trace().imag()) < 1e-7,
          "Density: trace is not 1");
}

Density Density::tensor(const Density& other) const {
  std::vector<int> dims = shape_.dims();
  dims.insert(dims.end(), other.shape_.dims().begin(),
              other.shape_.dims().end());
  return Density(RegisterShape(std::move(dims)), rho_.kron(other.rho_));
}

CMat embed_operator(const RegisterShape& shape, const CMat& op,
                    const std::vector<int>& regs) {
  const int nregs = shape.register_count();
  long long block = 1;
  for (const int r : regs) {
    block *= shape.dim(r);
  }
  require(static_cast<long long>(op.rows()) == block &&
              static_cast<long long>(op.cols()) == block,
          "embed_operator: operator dimension mismatch");

  std::vector<long long> stride(static_cast<std::size_t>(nregs), 1);
  for (int r = nregs - 2; r >= 0; --r) {
    stride[static_cast<std::size_t>(r)] =
        stride[static_cast<std::size_t>(r + 1)] * shape.dim(r + 1);
  }

  // target index -> flat offset contribution
  auto target_offset = [&](long long b) {
    long long rem = b;
    long long off = 0;
    for (int k = static_cast<int>(regs.size()) - 1; k >= 0; --k) {
      const int r = regs[static_cast<std::size_t>(k)];
      const int d = shape.dim(r);
      off += (rem % d) * stride[static_cast<std::size_t>(r)];
      rem /= d;
    }
    return off;
  };

  std::vector<int> free_regs;
  std::vector<bool> is_target(static_cast<std::size_t>(nregs), false);
  for (const int r : regs) {
    is_target[static_cast<std::size_t>(r)] = true;
  }
  for (int r = 0; r < nregs; ++r) {
    if (!is_target[static_cast<std::size_t>(r)]) {
      free_regs.push_back(r);
    }
  }
  long long free_count = 1;
  for (const int r : free_regs) {
    free_count *= shape.dim(r);
  }

  const long long total = shape.total_dim();
  CMat out(static_cast<int>(total), static_cast<int>(total));
  for (long long f = 0; f < free_count; ++f) {
    long long rem = f;
    long long base = 0;
    for (int k = static_cast<int>(free_regs.size()) - 1; k >= 0; --k) {
      const int r = free_regs[static_cast<std::size_t>(k)];
      const int d = shape.dim(r);
      base += (rem % d) * stride[static_cast<std::size_t>(r)];
      rem /= d;
    }
    for (long long i = 0; i < block; ++i) {
      for (long long j = 0; j < block; ++j) {
        const Complex v = op(static_cast<int>(i), static_cast<int>(j));
        if (v == Complex{0.0, 0.0}) continue;
        out(static_cast<int>(base + target_offset(i)),
            static_cast<int>(base + target_offset(j))) = v;
      }
    }
  }
  return out;
}

void Density::apply(const CMat& u, const std::vector<int>& regs) {
  const CMat big = embed_operator(shape_, u, regs);
  rho_ = big * rho_ * big.adjoint();
}

void Density::mix_with(const Density& other, double p_this) {
  require(shape_ == other.shape_, "Density::mix_with: shape mismatch");
  require(p_this >= 0.0 && p_this <= 1.0,
          "Density::mix_with: probability out of range");
  rho_ *= Complex{p_this, 0.0};
  CMat scaled = other.rho_;
  scaled *= Complex{1.0 - p_this, 0.0};
  rho_ += scaled;
}

double Density::expectation(const CMat& effect,
                            const std::vector<int>& regs) const {
  const CMat big = embed_operator(shape_, effect, regs);
  return (big * rho_).trace().real();
}

double Density::project(const CMat& effect, const std::vector<int>& regs) {
  const CMat big = embed_operator(shape_, effect, regs);
  CMat projected = big * rho_ * big.adjoint();
  const double p = projected.trace().real();
  if (p < 1e-14) {
    return 0.0;
  }
  projected *= Complex{1.0 / p, 0.0};
  rho_ = std::move(projected);
  return p;
}

}  // namespace dqma::quantum

#include "quantum/density.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "quantum/local_ops.hpp"
#include "sweep/parallel.hpp"
#include "util/require.hpp"
#include "util/scratch.hpp"
#include "util/tolerance.hpp"

namespace dqma::quantum {

using util::require;

namespace {

/// Dimensions above this threshold go to tiled storage (when scratch is
/// enabled). Thread-local so TiledDensityScope can force small densities
/// onto the tiled path in tests without perturbing other threads.
thread_local long long g_tile_threshold = util::kMaxDenseExactDim;

/// The dense-dimension guard in effect: the classic in-core cap, raised to
/// the tiled cap when the scratch opt-in is active.
long long dense_cap() {
  return util::ScratchTile::enabled() ? util::kMaxTiledDenseDim
                                      : util::kMaxDenseExactDim;
}

bool wants_tile(long long d) {
  return util::ScratchTile::enabled() && d > g_tile_threshold;
}

std::unique_ptr<util::ScratchTile> make_tile(long long d) {
  return std::make_unique<util::ScratchTile>(d * d *
                                             static_cast<long long>(sizeof(Complex)));
}

/// Tile allocation with graceful degradation: when the scratch directory is
/// configured but cannot hold the tile (ENOSPC, quota), densities that still
/// fit the in-core cap silently fall back to resident storage (the two
/// layouts are byte-identical by the tiled-density gates); larger densities
/// rethrow so only the single job fails, with a diagnostic naming the dim.
std::unique_ptr<util::ScratchTile> try_make_tile(long long d) {
  try {
    return make_tile(d);
  } catch (const util::ScratchAllocationError& e) {
    if (d > util::kMaxDenseExactDim) {
      throw util::ScratchAllocationError(
          std::string(e.what()) + " — dim " + std::to_string(d) +
          " exceeds the in-core cap kMaxDenseExactDim, so this job cannot "
          "fall back to resident storage; the job fails, the run continues");
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "dqma: %s; falling back to in-core density storage\n",
                   e.what());
    }
    return nullptr;
  }
}

Complex* tile_data(util::ScratchTile& tile) {
  return static_cast<Complex*>(tile.data());
}

}  // namespace

TiledDensityScope::TiledDensityScope(long long threshold)
    : prev_(g_tile_threshold) {
  g_tile_threshold = threshold;
}

TiledDensityScope::~TiledDensityScope() { g_tile_threshold = prev_; }

Density::~Density() = default;

Density::Density(const Density& other) : shape_(other.shape_) {
  if (other.tile_ != nullptr) {
    const long long d = shape_.total_dim();
    tile_ = try_make_tile(d);
    if (tile_ != nullptr) {
      std::memcpy(tile_->data(), other.tile_->data(),
                  static_cast<std::size_t>(tile_->size_bytes()));
    } else {
      const Complex* src = tile_data(*other.tile_);
      CMat rho(static_cast<int>(d), static_cast<int>(d));
      for (long long i = 0; i < d; ++i) {
        for (long long j = 0; j < d; ++j) {
          rho(static_cast<int>(i), static_cast<int>(j)) = src[i * d + j];
        }
      }
      rho_ = std::move(rho);
    }
  } else {
    rho_ = other.rho_;
  }
}

Density& Density::operator=(const Density& other) {
  if (this != &other) {
    Density copy(other);
    *this = std::move(copy);
  }
  return *this;
}

const CMat& Density::matrix() const {
  require(tile_ == nullptr,
          "Density::matrix: density is tile-backed (out-of-core); this "
          "consumer needs the in-core path — use view() instead");
  return rho_;
}

linalg::MutComplexView Density::view() {
  const long long d = shape_.total_dim();
  if (tile_ != nullptr) {
    return linalg::MutComplexView::aos(tile_data(*tile_), d * d, d);
  }
  return linalg::MutComplexView(rho_);
}

linalg::ConstComplexView Density::view() const {
  const long long d = shape_.total_dim();
  if (tile_ != nullptr) {
    return linalg::ConstComplexView::aos(tile_data(*tile_), d * d, d);
  }
  return linalg::ConstComplexView(rho_);
}

Density Density::maximally_mixed(RegisterShape shape) {
  const long long d = shape.total_dim();
  require(d <= dense_cap(),
          "Density: dimension exceeds the dense-engine cap (enable the "
          "scratch opt-in — --scratch / DQMA_SCRATCH_DIR — for the tiled "
          "path up to kMaxTiledDenseDim)");
  if (wants_tile(d)) {
    if (auto tile = try_make_tile(d)) {
      Density out;
      out.shape_ = std::move(shape);
      out.tile_ = std::move(tile);
      Complex* data = tile_data(*out.tile_);
      const Complex p = Complex{1.0, 0.0} * Complex{1.0 / static_cast<double>(d), 0.0};
      for (long long i = 0; i < d; ++i) {
        data[i * d + i] = p;  // off-diagonal pages stay zero-filled holes
      }
      return out;
    }
  }
  CMat rho = CMat::identity(static_cast<int>(d));
  rho *= Complex{1.0 / static_cast<double>(d), 0.0};
  return Density(std::move(shape), std::move(rho));
}

Density Density::diagonal(RegisterShape shape,
                          const std::vector<double>& probs) {
  const long long d = shape.total_dim();
  require(static_cast<long long>(probs.size()) == d,
          "Density::diagonal: probability vector does not match shape");
  require(d <= dense_cap(),
          "Density: dimension exceeds the dense-engine cap (enable the "
          "scratch opt-in — --scratch / DQMA_SCRATCH_DIR — for the tiled "
          "path up to kMaxTiledDenseDim)");
  double sum = 0.0;
  for (const double p : probs) {
    require(p >= 0.0, "Density::diagonal: negative probability");
    sum += p;
  }
  require(std::abs(sum - 1.0) < 1e-9, "Density::diagonal: trace is not 1");
  if (wants_tile(d)) {
    if (auto tile = try_make_tile(d)) {
      Density out;
      out.shape_ = std::move(shape);
      out.tile_ = std::move(tile);
      Complex* data = tile_data(*out.tile_);
      for (long long i = 0; i < d; ++i) {
        data[i * d + i] = Complex{probs[static_cast<std::size_t>(i)], 0.0};
      }
      return out;
    }
  }
  CMat rho(static_cast<int>(d), static_cast<int>(d));
  for (long long i = 0; i < d; ++i) {
    rho(static_cast<int>(i), static_cast<int>(i)) =
        Complex{probs[static_cast<std::size_t>(i)], 0.0};
  }
  Density out;
  out.shape_ = std::move(shape);
  out.rho_ = std::move(rho);
  return out;
}

Density Density::from_pure(const PureState& psi) {
  const long long d = psi.shape().total_dim();
  if (wants_tile(d)) {
    require(d <= dense_cap(), "Density: dimension exceeds the dense-engine cap");
    auto tile = try_make_tile(d);
    if (tile == nullptr) {
      return Density(psi.shape(), CMat::projector(psi.amplitudes()));
    }
    const CVec& amps = psi.amplitudes();
    Density out;
    out.shape_ = psi.shape();
    out.tile_ = std::move(tile);
    Complex* data = tile_data(*out.tile_);
    // Same elementwise expression (and zero-skip) as CMat::outer, streamed
    // by row panels: byte-identical to the in-core projector.
    sweep::parallel_for(
        static_cast<std::size_t>(d), sweep::grain_for_ops(static_cast<std::size_t>(d)),
        [&](std::size_t i_begin, std::size_t i_end) {
          for (std::size_t i = i_begin; i < i_end; ++i) {
            const Complex ui = amps[static_cast<int>(i)];
            if (ui == Complex{0.0, 0.0}) continue;
            Complex* row = data + static_cast<long long>(i) * d;
            for (long long j = 0; j < d; ++j) {
              row[j] = ui * std::conj(amps[static_cast<int>(j)]);
            }
          }
        });
    return out;
  }
  return Density(psi.shape(), CMat::projector(psi.amplitudes()));
}

Density::Density(RegisterShape shape, CMat rho)
    : shape_(std::move(shape)), rho_(std::move(rho)) {
  const long long d = shape_.total_dim();
  require(d <= dense_cap(),
          "Density: dimension exceeds the dense-engine cap (enable the "
          "scratch opt-in — --scratch / DQMA_SCRATCH_DIR — for the tiled "
          "path up to kMaxTiledDenseDim)");
  require(rho_.rows() == d && rho_.cols() == d,
          "Density: matrix does not match shape");
  require(rho_.is_hermitian(1e-7), "Density: matrix not Hermitian");
  require(std::abs(rho_.trace().real() - 1.0) < 1e-6 &&
              std::abs(rho_.trace().imag()) < 1e-7,
          "Density: trace is not 1");
  if (wants_tile(d)) {
    // Already resident: a failed tile allocation just keeps the in-core copy.
    tile_ = try_make_tile(d);
    if (tile_ != nullptr) {
      std::memcpy(tile_->data(), &rho_(0, 0),
                  static_cast<std::size_t>(tile_->size_bytes()));
      rho_ = CMat();
    }
  }
}

Density Density::tensor(const Density& other) const {
  require(tile_ == nullptr && other.tile_ == nullptr,
          "Density::tensor: tile-backed operands are not supported (the "
          "product would square an already out-of-core dimension)");
  std::vector<int> dims;
  dims.reserve(shape_.dims().size() + other.shape_.dims().size());
  dims.insert(dims.end(), shape_.dims().begin(), shape_.dims().end());
  dims.insert(dims.end(), other.shape_.dims().begin(),
              other.shape_.dims().end());
  return Density(RegisterShape(std::move(dims)), rho_.kron(other.rho_));
}

CMat embed_operator(const RegisterShape& shape, const CMat& op,
                    const std::vector<int>& regs) {
  // Reference implementation kept for cross-validation: the hot paths apply
  // local operators matrix-free (quantum/local_ops.hpp) instead of
  // embedding them. The plan precomputes both offset tables once per call.
  const LocalOpPlan plan(shape, regs);
  require(static_cast<long long>(op.rows()) == plan.block() &&
              static_cast<long long>(op.cols()) == plan.block(),
          "embed_operator: operator dimension mismatch");
  const auto& toff = plan.target_offsets();
  const long long block = plan.block();
  const long long total = plan.total_dim();
  CMat out(static_cast<int>(total), static_cast<int>(total));
  for (const long long base : plan.free_offsets()) {
    for (long long i = 0; i < block; ++i) {
      for (long long j = 0; j < block; ++j) {
        const Complex v = op(static_cast<int>(i), static_cast<int>(j));
        // Component-wise exact zero (not std::norm == 0, whose squares
        // underflow on subnormal entries and would drop them).
        if (v.real() == 0.0 && v.imag() == 0.0) continue;
        out(static_cast<int>(base + toff[static_cast<std::size_t>(i)]),
            static_cast<int>(base + toff[static_cast<std::size_t>(j)])) = v;
      }
    }
  }
  return out;
}

void Density::apply(const CMat& u, const std::vector<int>& regs) {
  const LocalOpPlan plan(shape_, regs);
  sandwich_local(plan, u, view());
}

void Density::mix_with(const Density& other, double p_this) {
  require(shape_ == other.shape_, "Density::mix_with: shape mismatch");
  require(p_this >= 0.0 && p_this <= 1.0,
          "Density::mix_with: probability out of range");
  const Complex w_this{p_this, 0.0};
  const Complex w_other{1.0 - p_this, 0.0};
  if (tile_ == nullptr && other.tile_ == nullptr) {
    rho_.blend(other.rho_, w_this, w_other);
    return;
  }
  // Tiled blend: the same elementwise expression as CMat::blend, streamed
  // by row panels (disjoint writes — thread-count invariant bytes).
  const long long d = shape_.total_dim();
  linalg::MutComplexView dst = view();
  const linalg::ConstComplexView src = other.view();
  sweep::parallel_for(
      static_cast<std::size_t>(d), sweep::grain_for_ops(static_cast<std::size_t>(d)),
      [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t i = i_begin; i < i_end; ++i) {
          const long long base = static_cast<long long>(i) * d;
          for (long long j = 0; j < d; ++j) {
            dst.store(base + j,
                      w_this * dst.load(base + j) + w_other * src.load(base + j));
          }
        }
      });
}

double Density::expectation(const CMat& effect,
                            const std::vector<int>& regs) const {
  const LocalOpPlan plan(shape_, regs);
  return expectation_local(plan, effect, view());
}

double Density::project(const CMat& effect, const std::vector<int>& regs) {
  const LocalOpPlan plan(shape_, regs);
  return project_local(plan, effect, view());
}

}  // namespace dqma::quantum

#include "quantum/measurement.hpp"

#include <algorithm>

#include "linalg/eigen.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::quantum {

using util::require;

BinaryPovm::BinaryPovm(CMat accept_element) : m1_(std::move(accept_element)) {
  require(m1_.rows() == m1_.cols(), "BinaryPovm: element not square");
  require(m1_.is_hermitian(1e-8), "BinaryPovm: element not Hermitian");
  // Spectral sandwich check 0 <= M1 <= I (only for small dims; the check is
  // O(d^3) and the constructor is not on a hot path).
  if (m1_.rows() <= 256) {
    const auto es = linalg::eigh(m1_);
    require(es.values.front() >= -1e-7 && es.values.back() <= 1.0 + 1e-7,
            "BinaryPovm: element not in [0, I]");
  }
}

double BinaryPovm::accept_probability(const Density& rho) const {
  require(rho.matrix().rows() == m1_.rows(),
          "BinaryPovm: state dimension mismatch");
  return std::clamp((m1_ * rho.matrix()).trace().real(), 0.0, 1.0);
}

double BinaryPovm::accept_probability(const PureState& psi) const {
  require(psi.amplitudes().dim() == m1_.rows(),
          "BinaryPovm: state dimension mismatch");
  const CVec image = m1_ * psi.amplitudes();
  return std::clamp(psi.amplitudes().dot(image).real(), 0.0, 1.0);
}

bool BinaryPovm::sample(const PureState& psi, util::Rng& rng) const {
  return rng.next_bool(accept_probability(psi));
}

BinaryPovm projective_povm(const CMat& projector) {
  require(projector.linf_distance(projector * projector) < 1e-7,
          "projective_povm: matrix is not idempotent");
  return BinaryPovm(projector);
}

}  // namespace dqma::quantum

#include "quantum/local_ops.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/aligned.hpp"
#include "linalg/simd.hpp"
#include "sweep/parallel.hpp"
#include "util/require.hpp"

namespace dqma::quantum {

using linalg::ConstComplexView;
using linalg::Layout;
using linalg::MutComplexView;
using linalg::SplitBuffer;
using util::require;

namespace simd = linalg::simd;

namespace {

/// Enumerates the flat offsets of every row-major assignment of `regs`
/// (last register least significant) by odometer, avoiding a div/mod chain
/// per assignment.
std::vector<long long> enumerate_offsets(const RegisterShape& shape,
                                         const std::vector<int>& regs,
                                         const std::vector<long long>& stride,
                                         long long count) {
  std::vector<long long> offsets(static_cast<std::size_t>(count), 0);
  std::vector<int> idx(regs.size(), 0);
  long long off = 0;
  for (long long t = 0; t < count; ++t) {
    offsets[static_cast<std::size_t>(t)] = off;
    for (int k = static_cast<int>(regs.size()) - 1; k >= 0; --k) {
      const int r = regs[static_cast<std::size_t>(k)];
      const int d = shape.dim(r);
      if (++idx[static_cast<std::size_t>(k)] < d) {
        off += stride[static_cast<std::size_t>(r)];
        break;
      }
      off -= stride[static_cast<std::size_t>(r)] * (d - 1);
      idx[static_cast<std::size_t>(k)] = 0;
    }
  }
  return offsets;
}

/// Exact zero test for the sparsity skips, component-wise. Deliberately NOT
/// std::norm(v) == 0.0 (its squares underflow to zero on subnormal entries,
/// silently dropping them) and not |re| + |im| == 0.0 (the fabs/add chain
/// measured ~5x slower than two compares on the matrix-free power
/// iteration).
inline bool is_zero(const Complex& v) {
  return v.real() == 0.0 && v.imag() == 0.0;
}

/// op entry under the optional adjoint view.
inline Complex op_entry(const CMat& op, long long i, long long j,
                        bool adjoint) {
  return adjoint ? std::conj(op(static_cast<int>(j), static_cast<int>(i)))
                 : op(static_cast<int>(i), static_cast<int>(j));
}

void require_op_shape(const LocalOpPlan& plan, const CMat& op,
                      const char* what) {
  require(static_cast<long long>(op.rows()) == plan.block() &&
              static_cast<long long>(op.cols()) == plan.block(),
          what);
}

/// Whether a kernel should take the split-complex path: always for SoA
/// views (the scalar loops are AoS-only), and for AoS views whenever a
/// vector level is active and the packed operator is dense enough to beat
/// the scalar zero-skip loop. Pure function of (level, layout, op) — never
/// thread-count dependent.
bool use_split_path(simd::Level level, Layout layout,
                    const simd::PackedOp& packed) {
  if (layout == Layout::kSoA) {
    return true;
  }
  return level != simd::Level::kScalar && packed.dense_enough();
}

/// Strided gather of the block at `base` into split buffers.
void gather_block(ConstComplexView view, long long base,
                  const std::vector<long long>& toff, long long b,
                  double* re, double* im) {
  if (view.layout() == Layout::kAoS) {
    const Complex* p = view.aos_data();
    for (long long t = 0; t < b; ++t) {
      const Complex v = p[base + toff[static_cast<std::size_t>(t)]];
      re[t] = v.real();
      im[t] = v.imag();
    }
  } else {
    const double* pr = view.re();
    const double* pi = view.im();
    for (long long t = 0; t < b; ++t) {
      const long long at = base + toff[static_cast<std::size_t>(t)];
      re[t] = pr[at];
      im[t] = pi[at];
    }
  }
}

/// Strided scatter of split buffers back to the block at `base`.
void scatter_block(MutComplexView view, long long base,
                   const std::vector<long long>& toff, long long b,
                   const double* re, const double* im) {
  if (view.layout() == Layout::kAoS) {
    Complex* p = view.aos_data();
    for (long long t = 0; t < b; ++t) {
      p[base + toff[static_cast<std::size_t>(t)]] = Complex{re[t], im[t]};
    }
  } else {
    double* pr = view.re();
    double* pi = view.im();
    for (long long t = 0; t < b; ++t) {
      const long long at = base + toff[static_cast<std::size_t>(t)];
      pr[at] = re[t];
      pi[at] = im[t];
    }
  }
}

}  // namespace

LocalOpPlan::LocalOpPlan(const RegisterShape& shape, std::vector<int> regs)
    : regs_(std::move(regs)) {
  const int nregs = shape.register_count();
  std::vector<bool> is_target(static_cast<std::size_t>(nregs), false);
  for (const int r : regs_) {
    require(r >= 0 && r < nregs, "LocalOpPlan: register out of range");
    require(!is_target[static_cast<std::size_t>(r)],
            "LocalOpPlan: duplicate register");
    is_target[static_cast<std::size_t>(r)] = true;
  }

  std::vector<long long> stride(static_cast<std::size_t>(nregs), 1);
  for (int r = nregs - 2; r >= 0; --r) {
    stride[static_cast<std::size_t>(r)] =
        stride[static_cast<std::size_t>(r + 1)] * shape.dim(r + 1);
  }

  total_ = shape.total_dim();
  for (const int r : regs_) {
    block_ *= shape.dim(r);
  }
  target_off_ = enumerate_offsets(shape, regs_, stride, block_);

  std::vector<int> free_regs;
  long long free_count = 1;
  for (int r = 0; r < nregs; ++r) {
    if (!is_target[static_cast<std::size_t>(r)]) {
      free_regs.push_back(r);
      free_count *= shape.dim(r);
    }
  }
  free_off_ = enumerate_offsets(shape, free_regs, stride, free_count);
}

void apply_local(const LocalOpPlan& plan, const CMat& op,
                 MutComplexView psi) {
  require(psi.extent() == plan.total_dim() && !psi.is_matrix(),
          "apply_local: state dimension mismatch");
  require_op_shape(plan, op, "apply_local: operator dimension mismatch");
  const long long b = plan.block();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  // SIMD level resolved once, on the calling thread (LevelScope overrides
  // do not reach pool workers); captured by the closures below.
  const simd::Level level = simd::active();
  const simd::PackedOp packed =
      level != simd::Level::kScalar || psi.layout() == Layout::kSoA
          ? simd::pack_operator(op, /*transpose=*/false, /*conjugate=*/false)
          : simd::PackedOp{};
  if (packed.rows > 0 && use_split_path(level, psi.layout(), packed)) {
    // Split path: gather each free block into SoA scratch, run the packed
    // block operator as vectorized column axpys, scatter back. Free blocks
    // touch disjoint amplitude sets, so chunks of blocks run in parallel.
    sweep::parallel_for(
        foff.size(), sweep::grain_for_ops(static_cast<std::size_t>(b * b)),
        [&](std::size_t f_begin, std::size_t f_end) {
          SplitBuffer in(b);
          SplitBuffer out(b);
          for (std::size_t f = f_begin; f < f_end; ++f) {
            const long long base = foff[f];
            gather_block(psi, base, toff, b, in.re(), in.im());
            simd::block_apply(level, packed, in.re(), in.im(), out.re(),
                              out.im());
            scatter_block(psi, base, toff, b, out.re(), out.im());
          }
        });
    return;
  }
  // Scalar AoS reference path — kept verbatim from the pre-SIMD engine
  // (byte-identical output under DQMA_SIMD=scalar).
  Complex* amps = psi.aos_data();
  sweep::parallel_for(
      foff.size(), sweep::grain_for_ops(static_cast<std::size_t>(b * b)),
      [&](std::size_t f_begin, std::size_t f_end) {
        linalg::AlignedVector<Complex> in(static_cast<std::size_t>(b));
        linalg::AlignedVector<Complex> out(static_cast<std::size_t>(b));
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const long long base = foff[f];
          for (long long t = 0; t < b; ++t) {
            in[static_cast<std::size_t>(t)] =
                amps[base + toff[static_cast<std::size_t>(t)]];
          }
          for (long long i = 0; i < b; ++i) {
            Complex acc{0.0, 0.0};
            for (long long j = 0; j < b; ++j) {
              const Complex v = op(static_cast<int>(i), static_cast<int>(j));
              if (is_zero(v)) continue;
              acc += v * in[static_cast<std::size_t>(j)];
            }
            out[static_cast<std::size_t>(i)] = acc;
          }
          for (long long t = 0; t < b; ++t) {
            amps[base + toff[static_cast<std::size_t>(t)]] =
                out[static_cast<std::size_t>(t)];
          }
        }
      });
}

void apply_local(const RegisterShape& shape, const CMat& op,
                 const std::vector<int>& regs, MutComplexView psi) {
  const LocalOpPlan plan(shape, regs);
  apply_local(plan, op, psi);
}

namespace {

double expectation_vector(const LocalOpPlan& plan, const CMat& effect,
                          ConstComplexView psi) {
  const long long b = plan.block();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  const simd::Level level = simd::active();
  const simd::PackedOp packed =
      level != simd::Level::kScalar || psi.layout() == Layout::kSoA
          ? simd::pack_operator(effect, /*transpose=*/false,
                                /*conjugate=*/false)
          : simd::PackedOp{};
  // Chunked reduction over free blocks: per-chunk partial sums combined in
  // chunk order (sweep/parallel.hpp), so the value is identical at any
  // thread count.
  if (packed.rows > 0 && use_split_path(level, psi.layout(), packed)) {
    const Complex acc = sweep::parallel_reduce<Complex>(
        foff.size(), sweep::grain_for_ops(static_cast<std::size_t>(b * b)),
        Complex{0.0, 0.0},
        [&](std::size_t f_begin, std::size_t f_end) {
          SplitBuffer in(b);
          SplitBuffer img(b);
          Complex part{0.0, 0.0};
          for (std::size_t f = f_begin; f < f_end; ++f) {
            const long long base = foff[f];
            gather_block(psi, base, toff, b, in.re(), in.im());
            simd::block_apply(level, packed, in.re(), in.im(), img.re(),
                              img.im());
            // <block| E |block> as one conjugated split dot.
            part += simd::dot(level, /*conj_a=*/true, in.re(), in.im(),
                              img.re(), img.im(), b);
          }
          return part;
        },
        [](Complex a, Complex c) { return a + c; });
    return acc.real();
  }
  const Complex* amps = psi.aos_data();
  const Complex acc = sweep::parallel_reduce<Complex>(
      foff.size(), sweep::grain_for_ops(static_cast<std::size_t>(b * b)),
      Complex{0.0, 0.0},
      [&](std::size_t f_begin, std::size_t f_end) {
        Complex part{0.0, 0.0};
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const long long base = foff[f];
          for (long long i = 0; i < b; ++i) {
            const Complex ci =
                std::conj(amps[base + toff[static_cast<std::size_t>(i)]]);
            if (is_zero(ci)) continue;
            Complex row{0.0, 0.0};
            for (long long j = 0; j < b; ++j) {
              const Complex v = effect(static_cast<int>(i), static_cast<int>(j));
              if (is_zero(v)) continue;
              row += v * amps[base + toff[static_cast<std::size_t>(j)]];
            }
            part += ci * row;
          }
        }
        return part;
      },
      [](Complex a, Complex c) { return a + c; });
  return acc.real();
}

double expectation_density(const LocalOpPlan& plan, const CMat& effect,
                           ConstComplexView rho) {
  const long long d = plan.total_dim();
  const long long b = plan.block();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  // tr((E tensor I) rho) = sum_base sum_{i,j} E(i,j) rho(base+t_j, base+t_i);
  // chunked over free blocks, partials combined in chunk order. The access
  // pattern is a strided 2-D gather with O(b^2) touched entries per block —
  // memory-latency bound, so it stays on the zero-skip scalar loop at
  // every dispatch level (layout handled by the element loads).
  const bool aos = rho.layout() == Layout::kAoS;
  const Complex* amps = aos ? rho.aos_data() : nullptr;
  const Complex acc = sweep::parallel_reduce<Complex>(
      foff.size(), sweep::grain_for_ops(static_cast<std::size_t>(b * b)),
      Complex{0.0, 0.0},
      [&](std::size_t f_begin, std::size_t f_end) {
        Complex part{0.0, 0.0};
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const long long base = foff[f];
          for (long long i = 0; i < b; ++i) {
            for (long long j = 0; j < b; ++j) {
              const Complex v = effect(static_cast<int>(i), static_cast<int>(j));
              if (is_zero(v)) continue;
              const long long at =
                  (base + toff[static_cast<std::size_t>(j)]) * d +
                  (base + toff[static_cast<std::size_t>(i)]);
              part += v * (aos ? amps[at] : rho.load(at));
            }
          }
        }
        return part;
      },
      [](Complex a, Complex c) { return a + c; });
  return acc.real();
}

}  // namespace

double expectation_local(const LocalOpPlan& plan, const CMat& effect,
                         ConstComplexView state) {
  require_op_shape(plan, effect,
                   "expectation_local: effect dimension mismatch");
  if (state.is_matrix()) {
    require(state.rows() == plan.total_dim() &&
                state.cols() == plan.total_dim(),
            "expectation_local: density dimension mismatch");
    return expectation_density(plan, effect, state);
  }
  require(state.extent() == plan.total_dim(),
          "expectation_local: state dimension mismatch");
  return expectation_vector(plan, effect, state);
}

namespace {

/// Row-mixing pass shared by apply_left_local and sandwich_local. Free
/// blocks mix disjoint row sets, so chunks of blocks run in parallel; each
/// chunk owns one b x cols workspace reused across its blocks. The split
/// path packs the block's rows to SoA and runs each coefficient as one
/// vectorized axpy over a full row — same (j outer, i inner) ascending
/// order and the same exact-zero coefficient skip as the scalar loop.
void apply_left_blocks(const LocalOpPlan& plan, const CMat& op,
                       bool adjoint_op, MutComplexView a) {
  const long long b = plan.block();
  const long long cols = a.cols();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  const simd::Level level = simd::active();
  if (level != simd::Level::kScalar || a.layout() == Layout::kSoA) {
    // m(i, j) = op_entry(i, j, adjoint): column-major pack so coefficient
    // (i, j) sits at [j * b + i].
    const simd::PackedOp packed =
        simd::pack_operator(op, /*transpose=*/adjoint_op,
                            /*conjugate=*/adjoint_op);
    sweep::parallel_for(
        foff.size(),
        sweep::grain_for_ops(static_cast<std::size_t>(b * b * cols)),
        [&](std::size_t f_begin, std::size_t f_end) {
          SplitBuffer src(b * cols);
          SplitBuffer dst(b * cols);
          for (std::size_t f = f_begin; f < f_end; ++f) {
            const long long base = foff[f];
            for (long long j = 0; j < b; ++j) {
              const long long row =
                  base + toff[static_cast<std::size_t>(j)];
              if (a.layout() == Layout::kAoS) {
                simd::deinterleave(level, a.aos_data() + row * cols, cols,
                                   src.re() + j * cols, src.im() + j * cols);
              } else {
                std::copy(a.re() + row * cols, a.re() + (row + 1) * cols,
                          src.re() + j * cols);
                std::copy(a.im() + row * cols, a.im() + (row + 1) * cols,
                          src.im() + j * cols);
              }
            }
            std::fill(dst.re(), dst.re() + b * cols, 0.0);
            std::fill(dst.im(), dst.im() + b * cols, 0.0);
            for (long long j = 0; j < b; ++j) {
              for (long long i = 0; i < b; ++i) {
                const double vr =
                    packed.re[static_cast<std::size_t>(j * b + i)];
                const double vi =
                    packed.im[static_cast<std::size_t>(j * b + i)];
                if (vr == 0.0 && vi == 0.0) continue;
                simd::axpy(level, vr, vi, src.re() + j * cols,
                           src.im() + j * cols, dst.re() + i * cols,
                           dst.im() + i * cols, cols);
              }
            }
            for (long long i = 0; i < b; ++i) {
              const long long row =
                  base + toff[static_cast<std::size_t>(i)];
              if (a.layout() == Layout::kAoS) {
                simd::interleave(level, dst.re() + i * cols,
                                 dst.im() + i * cols, cols,
                                 a.aos_data() + row * cols);
              } else {
                std::copy(dst.re() + i * cols, dst.re() + (i + 1) * cols,
                          a.re() + row * cols);
                std::copy(dst.im() + i * cols, dst.im() + (i + 1) * cols,
                          a.im() + row * cols);
              }
            }
          }
        });
    return;
  }
  Complex* amps = a.aos_data();
  sweep::parallel_for(
      foff.size(),
      sweep::grain_for_ops(static_cast<std::size_t>(b * b * cols)),
      [&](std::size_t f_begin, std::size_t f_end) {
        linalg::AlignedVector<Complex> ws(static_cast<std::size_t>(b * cols));
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const long long base = foff[f];
          std::fill(ws.begin(), ws.end(), Complex{0.0, 0.0});
          for (long long j = 0; j < b; ++j) {
            const Complex* src =
                amps + (base + toff[static_cast<std::size_t>(j)]) * cols;
            for (long long i = 0; i < b; ++i) {
              const Complex v = op_entry(op, i, j, adjoint_op);
              if (is_zero(v)) continue;
              Complex* dst = ws.data() + static_cast<std::size_t>(i * cols);
              for (long long c = 0; c < cols; ++c) {
                dst[static_cast<std::size_t>(c)] += v * src[c];
              }
            }
          }
          for (long long i = 0; i < b; ++i) {
            Complex* dst =
                amps + (base + toff[static_cast<std::size_t>(i)]) * cols;
            const Complex* src = ws.data() + static_cast<std::size_t>(i * cols);
            std::copy(src, src + cols, dst);
          }
        }
      });
}

/// Column-mixing pass shared by apply_right_local and sandwich_local; rows
/// are independent, so chunks of rows run in parallel with per-chunk
/// gather/scatter buffers. The split path packs op so that
/// m(j, i) = op_entry(i, j, adjoint) and runs each free block through the
/// vectorized block_apply.
void apply_right_rowwise(const LocalOpPlan& plan, const CMat& op,
                         bool adjoint_op, MutComplexView a) {
  const long long b = plan.block();
  const long long cols = a.cols();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  const std::size_t row_ops = foff.size() * static_cast<std::size_t>(b * b);
  const simd::Level level = simd::active();
  // out_j = sum_i in_i * op_entry(i, j, adjoint) means the packed block
  // operator is m(o=j, s=i) = op_entry(s, o, adjoint): the plain transpose
  // without adjoint, the conjugate (untransposed) with it.
  const simd::PackedOp packed =
      level != simd::Level::kScalar || a.layout() == Layout::kSoA
          ? simd::pack_operator(op, /*transpose=*/!adjoint_op,
                                /*conjugate=*/adjoint_op)
          : simd::PackedOp{};
  if (packed.rows > 0 && use_split_path(level, a.layout(), packed)) {
    sweep::parallel_for(
        static_cast<std::size_t>(a.rows()), sweep::grain_for_ops(row_ops),
        [&](std::size_t x_begin, std::size_t x_end) {
          SplitBuffer in(b);
          SplitBuffer out(b);
          for (std::size_t x = x_begin; x < x_end; ++x) {
            const long long row_base = static_cast<long long>(x) * cols;
            for (const long long base : foff) {
              gather_block(a, row_base + base, toff, b, in.re(), in.im());
              simd::block_apply(level, packed, in.re(), in.im(), out.re(),
                                out.im());
              scatter_block(a, row_base + base, toff, b, out.re(), out.im());
            }
          }
        });
    return;
  }
  Complex* amps = a.aos_data();
  sweep::parallel_for(
      static_cast<std::size_t>(a.rows()), sweep::grain_for_ops(row_ops),
      [&](std::size_t x_begin, std::size_t x_end) {
        linalg::AlignedVector<Complex> in(static_cast<std::size_t>(b));
        linalg::AlignedVector<Complex> out(static_cast<std::size_t>(b));
        for (std::size_t x = x_begin; x < x_end; ++x) {
          Complex* row = amps + static_cast<long long>(x) * cols;
          for (const long long base : foff) {
            for (long long i = 0; i < b; ++i) {
              in[static_cast<std::size_t>(i)] = row[static_cast<std::size_t>(
                  base + toff[static_cast<std::size_t>(i)])];
            }
            for (long long j = 0; j < b; ++j) {
              Complex acc{0.0, 0.0};
              for (long long i = 0; i < b; ++i) {
                const Complex v = op_entry(op, i, j, adjoint_op);
                if (is_zero(v)) continue;
                acc += in[static_cast<std::size_t>(i)] * v;
              }
              out[static_cast<std::size_t>(j)] = acc;
            }
            for (long long j = 0; j < b; ++j) {
              row[static_cast<std::size_t>(
                  base + toff[static_cast<std::size_t>(j)])] =
                  out[static_cast<std::size_t>(j)];
            }
          }
        }
      });
}

/// Trace of a square matrix-shaped view.
Complex view_trace(ConstComplexView a) {
  Complex acc{0.0, 0.0};
  for (long long i = 0; i < a.rows(); ++i) {
    acc += a.load(i * a.cols() + i);
  }
  return acc;
}

/// In-place real rescale of a view.
void view_scale(MutComplexView a, double s) {
  if (a.layout() == Layout::kAoS) {
    Complex* p = a.aos_data();
    for (long long i = 0; i < a.extent(); ++i) {
      p[i] *= s;
    }
  } else {
    double* re = a.re();
    double* im = a.im();
    for (long long i = 0; i < a.extent(); ++i) {
      re[i] *= s;
      im[i] *= s;
    }
  }
}

}  // namespace

void apply_left_local(const LocalOpPlan& plan, const CMat& op,
                      MutComplexView a, bool adjoint_op) {
  require(a.is_matrix() && a.rows() == plan.total_dim(),
          "apply_left_local: row dimension mismatch");
  require_op_shape(plan, op, "apply_left_local: operator dimension mismatch");
  apply_left_blocks(plan, op, adjoint_op, a);
}

void apply_right_local(const LocalOpPlan& plan, const CMat& op,
                       MutComplexView a, bool adjoint_op) {
  require(a.is_matrix() && a.cols() == plan.total_dim(),
          "apply_right_local: column dimension mismatch");
  require_op_shape(plan, op, "apply_right_local: operator dimension mismatch");
  apply_right_rowwise(plan, op, adjoint_op, a);
}

void sandwich_local(const LocalOpPlan& plan, const CMat& u,
                    MutComplexView rho) {
  require(rho.is_matrix() && rho.rows() == plan.total_dim() &&
              rho.cols() == plan.total_dim(),
          "sandwich_local: density dimension mismatch");
  require_op_shape(plan, u, "sandwich_local: operator dimension mismatch");
  // rho <- (U tensor I) rho, then rho <- rho (U^dagger tensor I).
  apply_left_blocks(plan, u, /*adjoint_op=*/false, rho);
  apply_right_rowwise(plan, u, /*adjoint_op=*/true, rho);
}

double project_local(const LocalOpPlan& plan, const CMat& effect,
                     MutComplexView rho) {
  require(rho.is_matrix() && rho.rows() == plan.total_dim() &&
              rho.cols() == plan.total_dim(),
          "project_local: density dimension mismatch");
  require_op_shape(plan, effect, "project_local: effect dimension mismatch");
  // Branch probability first, via tr(E rho E^dagger) = tr((E^dagger E) rho)
  // with the b x b product E^dagger E: the ~0 branch leaves rho untouched
  // without ever copying it.
  const CMat gram = effect.adjoint_times(effect);
  if (expectation_local(plan, gram, rho) < 1e-14) {
    return 0.0;
  }
  sandwich_local(plan, effect, rho);
  const double p = view_trace(rho).real();
  view_scale(rho, 1.0 / p);
  return p;
}

}  // namespace dqma::quantum

#include "quantum/local_ops.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/aligned.hpp"
#include "sweep/parallel.hpp"
#include "util/require.hpp"

namespace dqma::quantum {

using util::require;

namespace {

/// Enumerates the flat offsets of every row-major assignment of `regs`
/// (last register least significant) by odometer, avoiding a div/mod chain
/// per assignment.
std::vector<long long> enumerate_offsets(const RegisterShape& shape,
                                         const std::vector<int>& regs,
                                         const std::vector<long long>& stride,
                                         long long count) {
  std::vector<long long> offsets(static_cast<std::size_t>(count), 0);
  std::vector<int> idx(regs.size(), 0);
  long long off = 0;
  for (long long t = 0; t < count; ++t) {
    offsets[static_cast<std::size_t>(t)] = off;
    for (int k = static_cast<int>(regs.size()) - 1; k >= 0; --k) {
      const int r = regs[static_cast<std::size_t>(k)];
      const int d = shape.dim(r);
      if (++idx[static_cast<std::size_t>(k)] < d) {
        off += stride[static_cast<std::size_t>(r)];
        break;
      }
      off -= stride[static_cast<std::size_t>(r)] * (d - 1);
      idx[static_cast<std::size_t>(k)] = 0;
    }
  }
  return offsets;
}

/// Exact zero test for the sparsity skips, component-wise. Deliberately NOT
/// std::norm(v) == 0.0 (its squares underflow to zero on subnormal entries,
/// silently dropping them) and not |re| + |im| == 0.0 (the fabs/add chain
/// measured ~5x slower than two compares on the matrix-free power
/// iteration).
inline bool is_zero(const Complex& v) {
  return v.real() == 0.0 && v.imag() == 0.0;
}

/// op entry under the optional adjoint view.
inline Complex op_entry(const CMat& op, long long i, long long j,
                        bool adjoint) {
  return adjoint ? std::conj(op(static_cast<int>(j), static_cast<int>(i)))
                 : op(static_cast<int>(i), static_cast<int>(j));
}

void require_op_shape(const LocalOpPlan& plan, const CMat& op,
                      const char* what) {
  require(static_cast<long long>(op.rows()) == plan.block() &&
              static_cast<long long>(op.cols()) == plan.block(),
          what);
}

}  // namespace

LocalOpPlan::LocalOpPlan(const RegisterShape& shape, std::vector<int> regs)
    : regs_(std::move(regs)) {
  const int nregs = shape.register_count();
  std::vector<bool> is_target(static_cast<std::size_t>(nregs), false);
  for (const int r : regs_) {
    require(r >= 0 && r < nregs, "LocalOpPlan: register out of range");
    require(!is_target[static_cast<std::size_t>(r)],
            "LocalOpPlan: duplicate register");
    is_target[static_cast<std::size_t>(r)] = true;
  }

  std::vector<long long> stride(static_cast<std::size_t>(nregs), 1);
  for (int r = nregs - 2; r >= 0; --r) {
    stride[static_cast<std::size_t>(r)] =
        stride[static_cast<std::size_t>(r + 1)] * shape.dim(r + 1);
  }

  total_ = shape.total_dim();
  for (const int r : regs_) {
    block_ *= shape.dim(r);
  }
  target_off_ = enumerate_offsets(shape, regs_, stride, block_);

  std::vector<int> free_regs;
  long long free_count = 1;
  for (int r = 0; r < nregs; ++r) {
    if (!is_target[static_cast<std::size_t>(r)]) {
      free_regs.push_back(r);
      free_count *= shape.dim(r);
    }
  }
  free_off_ = enumerate_offsets(shape, free_regs, stride, free_count);
}

void apply_local(const LocalOpPlan& plan, const CMat& op, CVec& psi) {
  require(static_cast<long long>(psi.dim()) == plan.total_dim(),
          "apply_local: state dimension mismatch");
  require_op_shape(plan, op, "apply_local: operator dimension mismatch");
  const long long b = plan.block();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  // Free-offset blocks touch disjoint amplitude sets, so chunks of blocks
  // run in parallel; each chunk owns its gather/scatter buffers.
  sweep::parallel_for(
      foff.size(), sweep::grain_for_ops(static_cast<std::size_t>(b * b)),
      [&](std::size_t f_begin, std::size_t f_end) {
        linalg::AlignedVector<Complex> in(static_cast<std::size_t>(b));
        linalg::AlignedVector<Complex> out(static_cast<std::size_t>(b));
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const long long base = foff[f];
          for (long long t = 0; t < b; ++t) {
            in[static_cast<std::size_t>(t)] =
                psi[static_cast<int>(base + toff[static_cast<std::size_t>(t)])];
          }
          for (long long i = 0; i < b; ++i) {
            Complex acc{0.0, 0.0};
            for (long long j = 0; j < b; ++j) {
              const Complex v = op(static_cast<int>(i), static_cast<int>(j));
              if (is_zero(v)) continue;
              acc += v * in[static_cast<std::size_t>(j)];
            }
            out[static_cast<std::size_t>(i)] = acc;
          }
          for (long long t = 0; t < b; ++t) {
            psi[static_cast<int>(base + toff[static_cast<std::size_t>(t)])] =
                out[static_cast<std::size_t>(t)];
          }
        }
      });
}

void apply_local(const RegisterShape& shape, const CMat& op,
                 const std::vector<int>& regs, CVec& psi) {
  const LocalOpPlan plan(shape, regs);
  apply_local(plan, op, psi);
}

double expectation_local(const LocalOpPlan& plan, const CMat& effect,
                         const CVec& psi) {
  require(static_cast<long long>(psi.dim()) == plan.total_dim(),
          "expectation_local: state dimension mismatch");
  require_op_shape(plan, effect, "expectation_local: effect dimension mismatch");
  const long long b = plan.block();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  // Chunked reduction over free blocks: per-chunk partial sums combined in
  // chunk order (sweep/parallel.hpp), so the value is identical at any
  // thread count.
  const Complex acc = sweep::parallel_reduce<Complex>(
      foff.size(), sweep::grain_for_ops(static_cast<std::size_t>(b * b)),
      Complex{0.0, 0.0},
      [&](std::size_t f_begin, std::size_t f_end) {
        Complex part{0.0, 0.0};
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const long long base = foff[f];
          for (long long i = 0; i < b; ++i) {
            const Complex ci = std::conj(
                psi[static_cast<int>(base + toff[static_cast<std::size_t>(i)])]);
            if (is_zero(ci)) continue;
            Complex row{0.0, 0.0};
            for (long long j = 0; j < b; ++j) {
              const Complex v = effect(static_cast<int>(i), static_cast<int>(j));
              if (is_zero(v)) continue;
              row += v * psi[static_cast<int>(
                         base + toff[static_cast<std::size_t>(j)])];
            }
            part += ci * row;
          }
        }
        return part;
      },
      [](Complex a, Complex c) { return a + c; });
  return acc.real();
}

double expectation_local(const LocalOpPlan& plan, const CMat& effect,
                         const linalg::CMat& rho) {
  require(static_cast<long long>(rho.rows()) == plan.total_dim() &&
              static_cast<long long>(rho.cols()) == plan.total_dim(),
          "expectation_local: density dimension mismatch");
  require_op_shape(plan, effect, "expectation_local: effect dimension mismatch");
  const long long b = plan.block();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  // tr((E tensor I) rho) = sum_base sum_{i,j} E(i,j) rho(base+t_j, base+t_i);
  // chunked over free blocks, partials combined in chunk order.
  const Complex acc = sweep::parallel_reduce<Complex>(
      foff.size(), sweep::grain_for_ops(static_cast<std::size_t>(b * b)),
      Complex{0.0, 0.0},
      [&](std::size_t f_begin, std::size_t f_end) {
        Complex part{0.0, 0.0};
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const long long base = foff[f];
          for (long long i = 0; i < b; ++i) {
            for (long long j = 0; j < b; ++j) {
              const Complex v = effect(static_cast<int>(i), static_cast<int>(j));
              if (is_zero(v)) continue;
              part += v * rho(static_cast<int>(
                              base + toff[static_cast<std::size_t>(j)]),
                          static_cast<int>(
                              base + toff[static_cast<std::size_t>(i)]));
            }
          }
        }
        return part;
      },
      [](Complex a, Complex c) { return a + c; });
  return acc.real();
}

namespace {

/// Row-mixing pass shared by apply_left_local and sandwich_local. Free
/// blocks mix disjoint row sets, so chunks of blocks run in parallel; each
/// chunk owns one b x cols workspace reused across its blocks.
void apply_left_blocks(const LocalOpPlan& plan, const CMat& op,
                       bool adjoint_op, linalg::CMat& a) {
  const long long b = plan.block();
  const long long cols = a.cols();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  sweep::parallel_for(
      foff.size(),
      sweep::grain_for_ops(static_cast<std::size_t>(b * b * cols)),
      [&](std::size_t f_begin, std::size_t f_end) {
        linalg::AlignedVector<Complex> ws(static_cast<std::size_t>(b * cols));
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const long long base = foff[f];
          std::fill(ws.begin(), ws.end(), Complex{0.0, 0.0});
          for (long long j = 0; j < b; ++j) {
            const Complex* src = &a(
                static_cast<int>(base + toff[static_cast<std::size_t>(j)]), 0);
            for (long long i = 0; i < b; ++i) {
              const Complex v = op_entry(op, i, j, adjoint_op);
              if (is_zero(v)) continue;
              Complex* dst = ws.data() + static_cast<std::size_t>(i * cols);
              for (long long c = 0; c < cols; ++c) {
                dst[static_cast<std::size_t>(c)] += v * src[c];
              }
            }
          }
          for (long long i = 0; i < b; ++i) {
            Complex* dst = &a(
                static_cast<int>(base + toff[static_cast<std::size_t>(i)]), 0);
            const Complex* src = ws.data() + static_cast<std::size_t>(i * cols);
            std::copy(src, src + cols, dst);
          }
        }
      });
}

/// Column-mixing pass shared by apply_right_local and sandwich_local; rows
/// are independent, so chunks of rows run in parallel with per-chunk
/// gather/scatter buffers.
void apply_right_rowwise(const LocalOpPlan& plan, const CMat& op,
                         bool adjoint_op, linalg::CMat& a) {
  const long long b = plan.block();
  const auto& toff = plan.target_offsets();
  const auto& foff = plan.free_offsets();
  const std::size_t row_ops =
      foff.size() * static_cast<std::size_t>(b * b);
  sweep::parallel_for(
      static_cast<std::size_t>(a.rows()), sweep::grain_for_ops(row_ops),
      [&](std::size_t x_begin, std::size_t x_end) {
        linalg::AlignedVector<Complex> in(static_cast<std::size_t>(b));
        linalg::AlignedVector<Complex> out(static_cast<std::size_t>(b));
        for (std::size_t x = x_begin; x < x_end; ++x) {
          Complex* row = &a(static_cast<int>(x), 0);
          for (const long long base : foff) {
            for (long long i = 0; i < b; ++i) {
              in[static_cast<std::size_t>(i)] = row[static_cast<std::size_t>(
                  base + toff[static_cast<std::size_t>(i)])];
            }
            for (long long j = 0; j < b; ++j) {
              Complex acc{0.0, 0.0};
              for (long long i = 0; i < b; ++i) {
                const Complex v = op_entry(op, i, j, adjoint_op);
                if (is_zero(v)) continue;
                acc += in[static_cast<std::size_t>(i)] * v;
              }
              out[static_cast<std::size_t>(j)] = acc;
            }
            for (long long j = 0; j < b; ++j) {
              row[static_cast<std::size_t>(
                  base + toff[static_cast<std::size_t>(j)])] =
                  out[static_cast<std::size_t>(j)];
            }
          }
        }
      });
}

}  // namespace

void apply_left_local(const LocalOpPlan& plan, const CMat& op, linalg::CMat& a,
                      bool adjoint_op) {
  require(static_cast<long long>(a.rows()) == plan.total_dim(),
          "apply_left_local: row dimension mismatch");
  require_op_shape(plan, op, "apply_left_local: operator dimension mismatch");
  apply_left_blocks(plan, op, adjoint_op, a);
}

void apply_right_local(const LocalOpPlan& plan, const CMat& op,
                       linalg::CMat& a, bool adjoint_op) {
  require(static_cast<long long>(a.cols()) == plan.total_dim(),
          "apply_right_local: column dimension mismatch");
  require_op_shape(plan, op, "apply_right_local: operator dimension mismatch");
  apply_right_rowwise(plan, op, adjoint_op, a);
}

void sandwich_local(const LocalOpPlan& plan, const CMat& u, linalg::CMat& rho) {
  require(static_cast<long long>(rho.rows()) == plan.total_dim() &&
              static_cast<long long>(rho.cols()) == plan.total_dim(),
          "sandwich_local: density dimension mismatch");
  require_op_shape(plan, u, "sandwich_local: operator dimension mismatch");
  // rho <- (U tensor I) rho, then rho <- rho (U^dagger tensor I).
  apply_left_blocks(plan, u, /*adjoint_op=*/false, rho);
  apply_right_rowwise(plan, u, /*adjoint_op=*/true, rho);
}

double project_local(const LocalOpPlan& plan, const CMat& effect,
                     linalg::CMat& rho) {
  require(static_cast<long long>(rho.rows()) == plan.total_dim() &&
              static_cast<long long>(rho.cols()) == plan.total_dim(),
          "project_local: density dimension mismatch");
  require_op_shape(plan, effect, "project_local: effect dimension mismatch");
  // Branch probability first, via tr(E rho E^dagger) = tr((E^dagger E) rho)
  // with the b x b product E^dagger E: the ~0 branch leaves rho untouched
  // without ever copying it.
  const CMat gram = effect.adjoint_times(effect);
  if (expectation_local(plan, gram, rho) < 1e-14) {
    return 0.0;
  }
  sandwich_local(plan, effect, rho);
  const double p = rho.trace().real();
  rho *= Complex{1.0 / p, 0.0};
  return p;
}

}  // namespace dqma::quantum

// Two-outcome measurements (accept/reject POVMs) and sampling helpers.
//
// Every local test in the paper's protocols is a binary POVM {M_1, M_0} with
// M_1 + M_0 = I. This module provides a value type for such measurements
// plus expectation and sampling entry points on pure and mixed states.
#pragma once

#include "linalg/matrix.hpp"
#include "quantum/density.hpp"
#include "quantum/state.hpp"
#include "util/rng.hpp"

namespace dqma::quantum {

/// A binary POVM given by its accept element M1 (M0 = I - M1 implicitly).
class BinaryPovm {
 public:
  /// Validates Hermiticity and 0 <= M1 <= I (spectrally, within tolerance).
  explicit BinaryPovm(CMat accept_element);

  const CMat& accept_element() const { return m1_; }
  int dim() const { return m1_.rows(); }

  /// Acceptance probability tr(M1 rho) for a state on matching dimension.
  double accept_probability(const Density& rho) const;

  /// Acceptance probability <psi|M1|psi> for a pure state.
  double accept_probability(const PureState& psi) const;

  /// Samples accept/reject on a pure state *without* modeling the
  /// post-measurement state (used where the tested registers are consumed).
  bool sample(const PureState& psi, util::Rng& rng) const;

 private:
  CMat m1_;
};

/// Projective accept measurement from a projector P (validates P^2 = P).
BinaryPovm projective_povm(const CMat& projector);

}  // namespace dqma::quantum

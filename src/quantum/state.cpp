#include "quantum/state.hpp"

#include <cmath>

#include "quantum/local_ops.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::quantum {

using util::require;

RegisterShape::RegisterShape(std::vector<int> dims) : dims_(std::move(dims)) {
  for (const int d : dims_) {
    require(d >= 1, "RegisterShape: register dimension must be >= 1");
  }
}

int RegisterShape::dim(int reg) const {
  require(reg >= 0 && reg < register_count(),
          "RegisterShape::dim: register index out of range");
  return dims_[static_cast<std::size_t>(reg)];
}

long long RegisterShape::total_dim() const {
  long long total = 1;
  for (const int d : dims_) {
    total *= d;
  }
  return total;
}

long long RegisterShape::flatten(const std::vector<int>& idx) const {
  require(static_cast<int>(idx.size()) == register_count(),
          "RegisterShape::flatten: index arity mismatch");
  long long flat = 0;
  for (int r = 0; r < register_count(); ++r) {
    const int i = idx[static_cast<std::size_t>(r)];
    require(i >= 0 && i < dims_[static_cast<std::size_t>(r)],
            "RegisterShape::flatten: index out of range");
    flat = flat * dims_[static_cast<std::size_t>(r)] + i;
  }
  return flat;
}

std::vector<int> RegisterShape::unflatten(long long flat) const {
  require(flat >= 0 && flat < total_dim(),
          "RegisterShape::unflatten: flat index out of range");
  std::vector<int> idx(static_cast<std::size_t>(register_count()));
  for (int r = register_count() - 1; r >= 0; --r) {
    const int d = dims_[static_cast<std::size_t>(r)];
    idx[static_cast<std::size_t>(r)] = static_cast<int>(flat % d);
    flat /= d;
  }
  return idx;
}

PureState::PureState(RegisterShape shape)
    : shape_(std::move(shape)), amp_(static_cast<int>(shape_.total_dim())) {
  amp_[0] = Complex{1.0, 0.0};
}

PureState::PureState(RegisterShape shape, CVec amplitudes, bool normalize)
    : shape_(std::move(shape)), amp_(std::move(amplitudes)) {
  require(static_cast<long long>(amp_.dim()) == shape_.total_dim(),
          "PureState: amplitude count does not match shape");
  if (normalize) {
    amp_.normalize();
  } else {
    require(std::abs(amp_.norm() - 1.0) < 1e-6,
            "PureState: amplitudes not normalized");
  }
}

PureState PureState::single(const CVec& amplitudes) {
  return PureState(RegisterShape({amplitudes.dim()}), amplitudes,
                   /*normalize=*/false);
}

PureState PureState::tensor(const PureState& other) const {
  std::vector<int> dims;
  dims.reserve(shape_.dims().size() + other.shape_.dims().size());
  dims.insert(dims.end(), shape_.dims().begin(), shape_.dims().end());
  dims.insert(dims.end(), other.shape_.dims().begin(),
              other.shape_.dims().end());
  return PureState(RegisterShape(std::move(dims)), amp_.tensor(other.amp_),
                   /*normalize=*/false);
}

Complex PureState::overlap(const PureState& other) const {
  return amp_.dot(other.amp_);
}

void PureState::apply(const CMat& u, const std::vector<int>& regs) {
  require(u.rows() == u.cols(), "PureState::apply: unitary not square");
  // The gather/matvec/scatter pass lives in the matrix-free local-operator
  // engine; this is a thin wrapper that validates the unitary's dimension.
  const LocalOpPlan plan(shape_, regs);
  require(static_cast<long long>(u.rows()) == plan.block(),
          "PureState::apply: unitary dimension does not match registers");
  apply_local(plan, u, amp_);
}

namespace {

/// Stride of `reg` in the flat index (product of the dims to its right).
long long register_stride(const RegisterShape& shape, int reg) {
  long long stride = 1;
  for (int r = shape.register_count() - 1; r > reg; --r) {
    stride *= shape.dim(r);
  }
  return stride;
}

}  // namespace

int PureState::measure_register(int reg, util::Rng& rng) {
  const int d = shape_.dim(reg);
  std::vector<double> probs(static_cast<std::size_t>(d), 0.0);
  for (int o = 0; o < d; ++o) {
    probs[static_cast<std::size_t>(o)] = outcome_probability(reg, o);
  }
  double u = rng.next_double();
  int outcome = d - 1;
  for (int o = 0; o < d; ++o) {
    if (u < probs[static_cast<std::size_t>(o)]) {
      outcome = o;
      break;
    }
    u -= probs[static_cast<std::size_t>(o)];
  }
  // Collapse: zero out amplitudes inconsistent with the outcome, renormalize.
  // Stride arithmetic instead of per-index unflatten: the flat index splits
  // as outer * (d * stride) + value * stride + inner.
  const long long total = shape_.total_dim();
  const long long stride = register_stride(shape_, reg);
  const long long span = stride * d;
  double norm_sq = 0.0;
  for (long long outer = 0; outer < total; outer += span) {
    for (int o = 0; o < d; ++o) {
      const long long base = outer + static_cast<long long>(o) * stride;
      if (o != outcome) {
        for (long long inner = 0; inner < stride; ++inner) {
          amp_[static_cast<int>(base + inner)] = Complex{0.0, 0.0};
        }
      } else {
        for (long long inner = 0; inner < stride; ++inner) {
          norm_sq += std::norm(amp_[static_cast<int>(base + inner)]);
        }
      }
    }
  }
  require(norm_sq > 1e-300, "PureState::measure_register: zero-probability branch");
  const double scale = 1.0 / std::sqrt(norm_sq);
  amp_ *= Complex{scale, 0.0};
  return outcome;
}

double PureState::outcome_probability(int reg, int outcome) const {
  require(outcome >= 0 && outcome < shape_.dim(reg),
          "PureState::outcome_probability: outcome out of range");
  const long long total = shape_.total_dim();
  const long long stride = register_stride(shape_, reg);
  const long long span = stride * shape_.dim(reg);
  const long long base_off = static_cast<long long>(outcome) * stride;
  double p = 0.0;
  for (long long outer = 0; outer < total; outer += span) {
    const long long base = outer + base_off;
    for (long long inner = 0; inner < stride; ++inner) {
      p += std::norm(amp_[static_cast<int>(base + inner)]);
    }
  }
  return p;
}

}  // namespace dqma::quantum

#include "quantum/state.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::quantum {

using util::require;

RegisterShape::RegisterShape(std::vector<int> dims) : dims_(std::move(dims)) {
  for (const int d : dims_) {
    require(d >= 1, "RegisterShape: register dimension must be >= 1");
  }
}

int RegisterShape::dim(int reg) const {
  require(reg >= 0 && reg < register_count(),
          "RegisterShape::dim: register index out of range");
  return dims_[static_cast<std::size_t>(reg)];
}

long long RegisterShape::total_dim() const {
  long long total = 1;
  for (const int d : dims_) {
    total *= d;
  }
  return total;
}

long long RegisterShape::flatten(const std::vector<int>& idx) const {
  require(static_cast<int>(idx.size()) == register_count(),
          "RegisterShape::flatten: index arity mismatch");
  long long flat = 0;
  for (int r = 0; r < register_count(); ++r) {
    const int i = idx[static_cast<std::size_t>(r)];
    require(i >= 0 && i < dims_[static_cast<std::size_t>(r)],
            "RegisterShape::flatten: index out of range");
    flat = flat * dims_[static_cast<std::size_t>(r)] + i;
  }
  return flat;
}

std::vector<int> RegisterShape::unflatten(long long flat) const {
  require(flat >= 0 && flat < total_dim(),
          "RegisterShape::unflatten: flat index out of range");
  std::vector<int> idx(static_cast<std::size_t>(register_count()));
  for (int r = register_count() - 1; r >= 0; --r) {
    const int d = dims_[static_cast<std::size_t>(r)];
    idx[static_cast<std::size_t>(r)] = static_cast<int>(flat % d);
    flat /= d;
  }
  return idx;
}

PureState::PureState(RegisterShape shape)
    : shape_(std::move(shape)), amp_(static_cast<int>(shape_.total_dim())) {
  amp_[0] = Complex{1.0, 0.0};
}

PureState::PureState(RegisterShape shape, CVec amplitudes, bool normalize)
    : shape_(std::move(shape)), amp_(std::move(amplitudes)) {
  require(static_cast<long long>(amp_.dim()) == shape_.total_dim(),
          "PureState: amplitude count does not match shape");
  if (normalize) {
    amp_.normalize();
  } else {
    require(std::abs(amp_.norm() - 1.0) < 1e-6,
            "PureState: amplitudes not normalized");
  }
}

PureState PureState::single(const CVec& amplitudes) {
  return PureState(RegisterShape({amplitudes.dim()}), amplitudes,
                   /*normalize=*/false);
}

PureState PureState::tensor(const PureState& other) const {
  std::vector<int> dims = shape_.dims();
  dims.insert(dims.end(), other.shape_.dims().begin(),
              other.shape_.dims().end());
  return PureState(RegisterShape(std::move(dims)), amp_.tensor(other.amp_),
                   /*normalize=*/false);
}

Complex PureState::overlap(const PureState& other) const {
  return amp_.dot(other.amp_);
}

void PureState::apply(const CMat& u, const std::vector<int>& regs) {
  require(u.rows() == u.cols(), "PureState::apply: unitary not square");
  long long block = 1;
  for (const int r : regs) {
    block *= shape_.dim(r);
  }
  require(static_cast<long long>(u.rows()) == block,
          "PureState::apply: unitary dimension does not match registers");

  // Strides of each register in the flat index.
  const int nregs = shape_.register_count();
  std::vector<long long> stride(static_cast<std::size_t>(nregs), 1);
  for (int r = nregs - 2; r >= 0; --r) {
    stride[static_cast<std::size_t>(r)] =
        stride[static_cast<std::size_t>(r + 1)] * shape_.dim(r + 1);
  }

  // Enumerate assignments of the non-target registers; within each, gather
  // the `block` amplitudes indexed by the target registers, multiply by u,
  // scatter back.
  std::vector<bool> is_target(static_cast<std::size_t>(nregs), false);
  for (const int r : regs) {
    require(r >= 0 && r < nregs, "PureState::apply: register out of range");
    require(!is_target[static_cast<std::size_t>(r)],
            "PureState::apply: duplicate register");
    is_target[static_cast<std::size_t>(r)] = true;
  }

  // Offsets of each of the `block` target assignments.
  std::vector<long long> target_offset(static_cast<std::size_t>(block), 0);
  {
    for (long long b = 0; b < block; ++b) {
      long long rem = b;
      long long off = 0;
      for (int k = static_cast<int>(regs.size()) - 1; k >= 0; --k) {
        const int r = regs[static_cast<std::size_t>(k)];
        const int d = shape_.dim(r);
        off += (rem % d) * stride[static_cast<std::size_t>(r)];
        rem /= d;
      }
      target_offset[static_cast<std::size_t>(b)] = off;
    }
  }

  // Enumerate the complement.
  std::vector<int> free_regs;
  for (int r = 0; r < nregs; ++r) {
    if (!is_target[static_cast<std::size_t>(r)]) {
      free_regs.push_back(r);
    }
  }
  long long free_count = 1;
  for (const int r : free_regs) {
    free_count *= shape_.dim(r);
  }

  std::vector<Complex> in(static_cast<std::size_t>(block));
  std::vector<Complex> out(static_cast<std::size_t>(block));
  for (long long f = 0; f < free_count; ++f) {
    long long rem = f;
    long long base = 0;
    for (int k = static_cast<int>(free_regs.size()) - 1; k >= 0; --k) {
      const int r = free_regs[static_cast<std::size_t>(k)];
      const int d = shape_.dim(r);
      base += (rem % d) * stride[static_cast<std::size_t>(r)];
      rem /= d;
    }
    for (long long b = 0; b < block; ++b) {
      in[static_cast<std::size_t>(b)] =
          amp_[static_cast<int>(base + target_offset[static_cast<std::size_t>(b)])];
    }
    for (long long i = 0; i < block; ++i) {
      Complex acc{0.0, 0.0};
      for (long long j = 0; j < block; ++j) {
        acc += u(static_cast<int>(i), static_cast<int>(j)) *
               in[static_cast<std::size_t>(j)];
      }
      out[static_cast<std::size_t>(i)] = acc;
    }
    for (long long b = 0; b < block; ++b) {
      amp_[static_cast<int>(base + target_offset[static_cast<std::size_t>(b)])] =
          out[static_cast<std::size_t>(b)];
    }
  }
}

int PureState::measure_register(int reg, util::Rng& rng) {
  const int d = shape_.dim(reg);
  std::vector<double> probs(static_cast<std::size_t>(d), 0.0);
  for (int o = 0; o < d; ++o) {
    probs[static_cast<std::size_t>(o)] = outcome_probability(reg, o);
  }
  double u = rng.next_double();
  int outcome = d - 1;
  for (int o = 0; o < d; ++o) {
    if (u < probs[static_cast<std::size_t>(o)]) {
      outcome = o;
      break;
    }
    u -= probs[static_cast<std::size_t>(o)];
  }
  // Collapse: zero out amplitudes inconsistent with the outcome, renormalize.
  const long long total = shape_.total_dim();
  double norm_sq = 0.0;
  for (long long flat = 0; flat < total; ++flat) {
    const auto idx = shape_.unflatten(flat);
    if (idx[static_cast<std::size_t>(reg)] != outcome) {
      amp_[static_cast<int>(flat)] = Complex{0.0, 0.0};
    } else {
      norm_sq += std::norm(amp_[static_cast<int>(flat)]);
    }
  }
  require(norm_sq > 1e-300, "PureState::measure_register: zero-probability branch");
  const double scale = 1.0 / std::sqrt(norm_sq);
  amp_ *= Complex{scale, 0.0};
  return outcome;
}

double PureState::outcome_probability(int reg, int outcome) const {
  require(outcome >= 0 && outcome < shape_.dim(reg),
          "PureState::outcome_probability: outcome out of range");
  const long long total = shape_.total_dim();
  double p = 0.0;
  for (long long flat = 0; flat < total; ++flat) {
    const auto idx = shape_.unflatten(flat);
    if (idx[static_cast<std::size_t>(reg)] == outcome) {
      p += std::norm(amp_[static_cast<int>(flat)]);
    }
  }
  return p;
}

}  // namespace dqma::quantum

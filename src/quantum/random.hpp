// Haar-random pure states and unitaries (Ginibre + Gram-Schmidt), used by
// property tests and by adversarial proof search.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/rng.hpp"

namespace dqma::quantum {

/// Haar-random pure state in C^dim.
linalg::CVec haar_state(int dim, util::Rng& rng);

/// Haar-random unitary on C^dim (QR of a Ginibre matrix with phase fixing).
linalg::CMat haar_unitary(int dim, util::Rng& rng);

/// Random density matrix: partial trace of a Haar state on C^dim x C^dim.
linalg::CMat random_density(int dim, util::Rng& rng);

}  // namespace dqma::quantum

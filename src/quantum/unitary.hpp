// Constructors for the unitaries the protocols use: Hadamard, SWAP between
// equal-dimension registers, k-party permutation unitaries U_pi (Sec. 3.1),
// and controlled versions with a separate control register.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace dqma::quantum {

using linalg::CMat;

/// 2x2 Hadamard.
CMat hadamard();

/// SWAP on two registers of dimension d each (acts on C^d tensor C^d).
CMat swap_unitary(int d);

/// U_pi on k registers of dimension d each:
///   U_pi |i_1 ... i_k> = |i_{pi^{-1}(1)} ... i_{pi^{-1}(k)}>
/// (the paper's convention in Sec. 3.1). `perm` lists pi(0..k-1) 0-based.
CMat permutation_unitary(int d, const std::vector<int>& perm);

/// Controlled-U with a control register of dimension `controls`:
/// |c> |psi> -> |c> (U_c |psi>), where U_c is us[c]. All us must be square
/// and of equal dimension. Used for the controlled-SWAP of the SWAP test and
/// the controlled-permutation of the permutation test.
CMat select_unitary(const std::vector<CMat>& us);

/// All permutations of {0..k-1} in lexicographic order (k <= 8).
std::vector<std::vector<int>> all_permutations(int k);

}  // namespace dqma::quantum

// Distance measures between quantum states: trace distance and fidelity,
// with the Fuchs-van de Graaf relations (Fact 1 of the paper) available as
// checked helpers. Pure-state fast paths avoid the eigensolver.
#pragma once

#include "quantum/density.hpp"

namespace dqma::quantum {

/// Trace distance D(rho, sigma) = (1/2) || rho - sigma ||_1.
double trace_distance(const Density& rho, const Density& sigma);

/// Fidelity F(rho, sigma) = tr sqrt( sqrt(rho) sigma sqrt(rho) ).
double fidelity(const Density& rho, const Density& sigma);

/// Pure-state fast paths: D = sqrt(1 - |<a|b>|^2), F = |<a|b>|.
double trace_distance(const PureState& a, const PureState& b);
double fidelity(const PureState& a, const PureState& b);

/// Fuchs-van de Graaf bounds (Fact 1): returns true iff
/// 1 - F <= D <= sqrt(1 - F^2) holds within `tol`. Used by property tests.
bool fuchs_van_de_graaf_holds(double trace_dist, double fid, double tol);

}  // namespace dqma::quantum

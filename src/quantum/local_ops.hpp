// Matrix-free application of local operators: the middle layer of the exact
// engine (linalg kernels -> local_ops -> protocol analyzers).
//
// Every local test and unitary in the protocols acts on a small subset of
// registers. Embedding such a k-register operator into the full Hilbert
// space (quantum::embed_operator) and multiplying dense D x D matrices
// costs O(D^3); applying it directly by stride arithmetic over the
// RegisterShape costs O(D * b) per state-vector pass and O(D^2 * b) per
// density-matrix pass, where b (<< D) is the local block dimension. This
// module provides those passes:
//
//   * LocalOpPlan      — precomputed gather/scatter offsets for (shape, regs);
//   * apply_local      — psi <- (op tensor I) psi, in place;
//   * expectation_local — <psi| E tensor I |psi> and tr((E tensor I) rho);
//   * apply_left/right_local — A <- (op tensor I) A and A <- A (op tensor I),
//     with an adjoint switch that never materializes op^dagger;
//   * sandwich_local   — rho <- U rho U^dagger through one reused workspace;
//   * project_local    — rho <- (E rho E^dagger) / tr(...), returning the
//     branch probability.
//
// State/density arguments are layout-aware views (linalg/complex_view.hpp):
// CVec / CMat convert implicitly (AoS), SplitBuffer converts to an SoA
// view, and no caller ever names a layout. Each kernel resolves the SIMD
// dispatch level once on the calling thread (linalg/simd.hpp) and picks a
// path: the scalar AoS loops are kept verbatim as the kScalar reference
// (byte-identical to the pre-SIMD engine), the vector levels run gather /
// block-apply / scatter over split-complex buffers, and operators too
// sparse to pay for dense vector arithmetic (PackedOp::dense_enough) stay
// on the zero-skip loops. Every path fixes its summation order as a pure
// function of the shape, so each (level, layout) pair is deterministic
// across the kernel-thread axis.
//
// embed_operator remains as the reference implementation; the randomized
// property tests in tests/local_ops_test.cpp cross-validate every entry
// point against it on random shapes and register subsets.
#pragma once

#include <vector>

#include "linalg/complex_view.hpp"
#include "linalg/matrix.hpp"
#include "quantum/state.hpp"

namespace dqma::quantum {

/// Precomputed stride tables for applying operators on the listed registers
/// (in the listed order, which may be non-adjacent and permuted) of a
/// RegisterShape. Building a plan costs O(b + D/b + nregs); reuse it when
/// the same (shape, regs) pair is applied repeatedly.
class LocalOpPlan {
 public:
  LocalOpPlan(const RegisterShape& shape, std::vector<int> regs);

  /// Global Hilbert dimension D of the shape.
  long long total_dim() const { return total_; }

  /// Local block dimension b: the product of the target registers' dims.
  long long block() const { return block_; }

  const std::vector<int>& regs() const { return regs_; }

  /// Flat-offset contribution of each of the `block()` target assignments
  /// (target registers enumerated row-major in the listed order).
  const std::vector<long long>& target_offsets() const { return target_off_; }

  /// Base flat offset of every assignment of the non-target registers
  /// (size D / b).
  const std::vector<long long>& free_offsets() const { return free_off_; }

 private:
  std::vector<int> regs_;
  long long total_ = 1;
  long long block_ = 1;
  std::vector<long long> target_off_;
  std::vector<long long> free_off_;
};

/// psi <- (op tensor I) psi in place over a flat state view. O(D * b) plus
/// the op's sparsity wins (exact-zero entries are skipped, so permutation
/// blocks cost O(D)).
void apply_local(const LocalOpPlan& plan, const CMat& op,
                 linalg::MutComplexView psi);

/// Convenience overload that builds the plan on the fly.
void apply_local(const RegisterShape& shape, const CMat& op,
                 const std::vector<int>& regs, linalg::MutComplexView psi);

/// <psi| (effect tensor I) |psi> for a flat state view, or
/// tr((effect tensor I) rho) for a matrix-shaped view — dispatched on the
/// view's shape. Real part; O(D * b) resp. O(D^2 * b). Chunk partials are
/// combined in chunk order, so the value is thread-count invariant.
double expectation_local(const LocalOpPlan& plan, const CMat& effect,
                         linalg::ConstComplexView state);

/// a <- (op tensor I) a (rows mixed) over a matrix-shaped view. With
/// `adjoint_op`, uses op^dagger without materializing it.
/// O(D * b * cols(a)).
void apply_left_local(const LocalOpPlan& plan, const CMat& op,
                      linalg::MutComplexView a, bool adjoint_op = false);

/// a <- a (op tensor I) (columns mixed) over a matrix-shaped view. With
/// `adjoint_op`, uses op^dagger without materializing it.
/// O(D * b * rows(a)).
void apply_right_local(const LocalOpPlan& plan, const CMat& op,
                       linalg::MutComplexView a, bool adjoint_op = false);

/// rho <- (u tensor I) rho (u^dagger tensor I) in place through one reused
/// row workspace — no embedded operator, no adjoint copy, no temporaries of
/// the full matrix. O(D^2 * b).
void sandwich_local(const LocalOpPlan& plan, const CMat& u,
                    linalg::MutComplexView rho);

/// rho <- (E rho E^dagger) / p with p = tr(E rho E^dagger); returns p.
/// If p is ~0 the state is left untouched and 0 is returned (matching
/// Density::project's contract).
double project_local(const LocalOpPlan& plan, const CMat& effect,
                     linalg::MutComplexView rho);

}  // namespace dqma::quantum

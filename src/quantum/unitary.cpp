#include "quantum/unitary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace dqma::quantum {

using linalg::Complex;
using util::require;

CMat hadamard() {
  CMat h(2, 2);
  const double s = 1.0 / std::sqrt(2.0);
  h(0, 0) = Complex{s, 0.0};
  h(0, 1) = Complex{s, 0.0};
  h(1, 0) = Complex{s, 0.0};
  h(1, 1) = Complex{-s, 0.0};
  return h;
}

CMat swap_unitary(int d) {
  require(d >= 1, "swap_unitary: dimension must be positive");
  CMat u(d * d, d * d);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      u(j * d + i, i * d + j) = Complex{1.0, 0.0};
    }
  }
  return u;
}

CMat permutation_unitary(int d, const std::vector<int>& perm) {
  const int k = static_cast<int>(perm.size());
  require(k >= 1, "permutation_unitary: empty permutation");
  // Validate that perm is a permutation of 0..k-1 and build its inverse.
  std::vector<int> inverse(static_cast<std::size_t>(k), -1);
  for (int pos = 0; pos < k; ++pos) {
    const int image = perm[static_cast<std::size_t>(pos)];
    require(image >= 0 && image < k, "permutation_unitary: entry out of range");
    require(inverse[static_cast<std::size_t>(image)] == -1,
            "permutation_unitary: not a permutation");
    inverse[static_cast<std::size_t>(image)] = pos;
  }

  long long dim = 1;
  for (int s = 0; s < k; ++s) {
    dim *= d;
  }
  require(dim <= (1 << 14), "permutation_unitary: dimension too large");

  CMat u(static_cast<int>(dim), static_cast<int>(dim));
  std::vector<int> idx(static_cast<std::size_t>(k));
  for (long long col = 0; col < dim; ++col) {
    // Decode |i_1 ... i_k> from the column index (register 0 most significant).
    long long rem = col;
    for (int s = k - 1; s >= 0; --s) {
      idx[static_cast<std::size_t>(s)] = static_cast<int>(rem % d);
      rem /= d;
    }
    // U_pi |i_1..i_k> = |j_1..j_k> with j_s = i_{pi^{-1}(s)}.
    long long row = 0;
    for (int s = 0; s < k; ++s) {
      const int source = inverse[static_cast<std::size_t>(s)];
      row = row * d + idx[static_cast<std::size_t>(source)];
    }
    u(static_cast<int>(row), static_cast<int>(col)) = Complex{1.0, 0.0};
  }
  return u;
}

CMat select_unitary(const std::vector<CMat>& us) {
  require(!us.empty(), "select_unitary: need at least one unitary");
  const int d = us.front().rows();
  for (const auto& u : us) {
    require(u.rows() == d && u.cols() == d,
            "select_unitary: all blocks must be square of equal dimension");
  }
  const int c = static_cast<int>(us.size());
  CMat out(c * d, c * d);
  for (int b = 0; b < c; ++b) {
    const CMat& u = us[static_cast<std::size_t>(b)];
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        out(b * d + i, b * d + j) = u(i, j);
      }
    }
  }
  return out;
}

std::vector<std::vector<int>> all_permutations(int k) {
  require(k >= 1 && k <= 8, "all_permutations: k must be in [1,8]");
  std::vector<int> base(static_cast<std::size_t>(k));
  std::iota(base.begin(), base.end(), 0);
  std::vector<std::vector<int>> out;
  do {
    out.push_back(base);
  } while (std::next_permutation(base.begin(), base.end()));
  return out;
}

}  // namespace dqma::quantum

#include "quantum/distance.hpp"

#include <cmath>

#include "linalg/eigen.hpp"
#include "util/require.hpp"

namespace dqma::quantum {

using util::require;

double trace_distance(const Density& rho, const Density& sigma) {
  require(rho.shape() == sigma.shape(), "trace_distance: shape mismatch");
  return 0.5 * linalg::trace_norm(rho.matrix() - sigma.matrix());
}

double fidelity(const Density& rho, const Density& sigma) {
  require(rho.shape() == sigma.shape(), "fidelity: shape mismatch");
  const CMat root = linalg::sqrt_psd(rho.matrix());
  const CMat inner = root * sigma.matrix() * root;
  const linalg::EigenSystem es = linalg::eigh(inner);
  double acc = 0.0;
  for (const double lam : es.values) {
    acc += std::sqrt(std::max(0.0, lam));
  }
  return acc;
}

double trace_distance(const PureState& a, const PureState& b) {
  const double f = std::abs(a.overlap(b));
  return std::sqrt(std::max(0.0, 1.0 - f * f));
}

double fidelity(const PureState& a, const PureState& b) {
  return std::abs(a.overlap(b));
}

bool fuchs_van_de_graaf_holds(double trace_dist, double fid, double tol) {
  const double lower = 1.0 - fid;
  const double upper = std::sqrt(std::max(0.0, 1.0 - fid * fid));
  return trace_dist >= lower - tol && trace_dist <= upper + tol;
}

}  // namespace dqma::quantum

// Quantum fingerprints |h_x> [BCWdW01], the proof payload of the paper's
// EQ, GT, RV and relay protocols.
//
// We use the phase encoding |h_x> = m^{-1/2} sum_i (-1)^{E(x)_i} |i>, so the
// overlap has the exact closed form <h_x|h_y> = 1 - 2 d(E(x), E(y)) / m.
// The scheme also provides the one-way EQ protocol "pi" of Sec. 2.2.1: Bob's
// accept POVM on input y is the rank-one projector onto |h_y>, giving
// perfect completeness and soundness error at most delta^2.
#pragma once

#include <memory>

#include "code/linear_code.hpp"
#include "linalg/vector.hpp"
#include "util/bitstring.hpp"

namespace dqma::fingerprint {

using linalg::CVec;
using util::Bitstring;

/// A fingerprinting scheme for n-bit inputs with target overlap bound delta.
class FingerprintScheme {
 public:
  /// Builds the scheme with a deterministic code of recommended block
  /// length for (n, delta). All nodes constructing a scheme with the same
  /// (n, delta, seed) share the same code.
  FingerprintScheme(int n, double delta, std::uint64_t seed = 0x0ddba11);

  /// Scheme with an explicit block length (testing / ablations).
  FingerprintScheme(int n, int block_length, double delta, std::uint64_t seed);

  int input_length() const { return n_; }
  int dim() const { return code_.block_length(); }

  /// Number of qubits of one fingerprint register: ceil(log2(dim)).
  int qubits() const;

  /// Design overlap bound delta.
  double delta() const { return delta_; }

  /// The fingerprint state |h_x> as an explicit amplitude vector.
  CVec state(const Bitstring& x) const;

  /// Exact overlap <h_x|h_y> = 1 - 2 d(E(x),E(y)) / m without building
  /// states (the fast-runner path; cost O(m * n / 64)).
  double overlap(const Bitstring& x, const Bitstring& y) const;

  /// The underlying code (exposed for diagnostics and tests).
  const code::LinearCode& code() const { return code_; }

  /// Fingerprint for the empty input |bot>: the all-zero-phase state. Used
  /// by the GT protocol when the prefix length is 0 (paper Sec. 5.1). Two
  /// |bot> states always have overlap 1.
  CVec bottom_state() const;

 private:
  int n_;
  double delta_;
  code::LinearCode code_;
};

}  // namespace dqma::fingerprint

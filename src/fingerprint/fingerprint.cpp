#include "fingerprint/fingerprint.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dqma::fingerprint {

using util::require;

FingerprintScheme::FingerprintScheme(int n, double delta, std::uint64_t seed)
    : FingerprintScheme(n, code::recommended_block_length(n, delta), delta,
                        seed) {}

FingerprintScheme::FingerprintScheme(int n, int block_length, double delta,
                                     std::uint64_t seed)
    : n_(n), delta_(delta), code_(n, block_length, seed) {
  require(n >= 1, "FingerprintScheme: n must be positive");
  require(delta > 0.0 && delta < 1.0,
          "FingerprintScheme: delta must be in (0,1)");
}

int FingerprintScheme::qubits() const {
  int q = 0;
  while ((1 << q) < dim()) {
    ++q;
  }
  return q;
}

CVec FingerprintScheme::state(const Bitstring& x) const {
  require(x.size() == n_, "FingerprintScheme::state: input length mismatch");
  const Bitstring cw = code_.encode(x);
  const int m = dim();
  CVec v(m);
  const double amp = 1.0 / std::sqrt(static_cast<double>(m));
  for (int i = 0; i < m; ++i) {
    v[i] = linalg::Complex{cw.get(i) ? -amp : amp, 0.0};
  }
  return v;
}

double FingerprintScheme::overlap(const Bitstring& x, const Bitstring& y) const {
  require(x.size() == n_ && y.size() == n_,
          "FingerprintScheme::overlap: input length mismatch");
  const int d = code_.encode(x).distance(code_.encode(y));
  return 1.0 - 2.0 * static_cast<double>(d) / static_cast<double>(dim());
}

CVec FingerprintScheme::bottom_state() const {
  const int m = dim();
  CVec v(m);
  const double amp = 1.0 / std::sqrt(static_cast<double>(m));
  for (int i = 0; i < m; ++i) {
    v[i] = linalg::Complex{amp, 0.0};
  }
  return v;
}

}  // namespace dqma::fingerprint

#include "linalg/permanent.hpp"

#include <bit>
#include <cstdint>
#include <vector>

#include "util/require.hpp"

namespace dqma::linalg {

using util::require;

Complex permanent(const CMat& a) {
  require(a.rows() == a.cols(), "permanent: matrix not square");
  const int n = a.rows();
  require(n <= 20, "permanent: dimension too large for Ryser's formula");
  if (n == 0) {
    return Complex{1.0, 0.0};
  }

  // Ryser: perm(A) = (-1)^n sum_{S subset [n]} (-1)^{|S|} prod_i sum_{j in S} a_ij.
  // Gray-code enumeration keeps per-subset work at O(n): when the subset
  // changes by one column j, each row sum changes by +-a_ij.
  std::vector<Complex> row_sum(static_cast<std::size_t>(n), Complex{0.0, 0.0});
  Complex total{0.0, 0.0};
  std::uint64_t gray_prev = 0;
  const std::uint64_t subsets = 1ULL << n;
  for (std::uint64_t iter = 1; iter < subsets; ++iter) {
    const std::uint64_t gray = iter ^ (iter >> 1);
    const std::uint64_t changed = gray ^ gray_prev;
    const int j = std::countr_zero(changed);
    const double sign_col = (gray & changed) != 0 ? 1.0 : -1.0;
    for (int i = 0; i < n; ++i) {
      row_sum[static_cast<std::size_t>(i)] += sign_col * a(i, j);
    }
    Complex prod{1.0, 0.0};
    for (int i = 0; i < n; ++i) {
      prod *= row_sum[static_cast<std::size_t>(i)];
    }
    const int popcount = std::popcount(gray);
    const double sign_subset = ((n - popcount) % 2 == 0) ? 1.0 : -1.0;
    total += sign_subset * prod;
    gray_prev = gray;
  }
  return total;
}

}  // namespace dqma::linalg

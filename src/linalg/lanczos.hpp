// Deterministic Krylov layer for the iterative spectral routines: a Lanczos
// eigensolver with full reorthogonalization against the stored basis, plus
// the shared power-iteration fallback and the dispatch glue between them.
//
// Determinism contract (same as the SIMD kernels, linalg/simd.hpp): for a
// fixed dispatch level the solver is byte-identical across the kernel-thread
// axis. Everything that is solver-local — the start vector, the
// reorthogonalization passes, the tridiagonal bisection/inverse iteration —
// runs serially on the calling thread in a fixed order; the only parallel
// work is the operator application itself, which is thread-count invariant
// by the LinearOperator backends' own contract.
#pragma once

#include <vector>

#include "linalg/eigen.hpp"
#include "linalg/vector.hpp"

namespace dqma::linalg {

/// Per-solve counters every spectral routine fills in, exposed so callers
/// (benchmarks, the exact engine) can record matvec counts as JSON metrics.
struct SpectralStats {
  long long matvecs = 0;  ///< LinearOperator::apply_into invocations
  int iterations = 0;     ///< outer iterations (Lanczos steps / power steps)
  bool converged = false;
  bool used_lanczos = false;
};

/// Solver selection and stopping thresholds for top_eigenvalue_psd.
struct SpectralOptions {
  enum class Method {
    kAuto,     ///< Lanczos above kLanczosMinDim, power iteration below
    kPower,    ///< always power iteration
    kLanczos,  ///< always Lanczos (tiny dims handled by Krylov exhaustion)
  };
  Method method = Method::kAuto;
  int max_iters = 2000;
  double tol = 1e-10;  ///< residual threshold: ||A x - theta x|| <= tol * max(1, theta)
};

/// Below this dimension kAuto keeps power iteration: the Krylov machinery
/// cannot beat a handful of O(d^2) matvecs on operators this small.
inline constexpr int kLanczosMinDim = 17;

/// Lanczos basis cap: full reorthogonalization stores the basis, so memory
/// is (cap * dim) complex entries. Any PSD operator met in practice
/// converges at 1e-9 residual in far fewer steps.
inline constexpr int kMaxLanczosBasis = 350;

/// Largest eigenvalue (and optionally the matching normalized Ritz vector)
/// of a Hermitian PSD operator. Dispatches on opts.method; fills *stats
/// when given. This is the single entry point the legacy
/// max_eigenvalue_psd / top_eigenpair_psd wrappers route through.
double top_eigenvalue_psd(const LinearOperator& op, const SpectralOptions& opts,
                          CVec* vec_out = nullptr,
                          SpectralStats* stats = nullptr);

/// Largest eigenvalue of the symmetric tridiagonal matrix with diagonal
/// `alpha` and off-diagonal `beta` (beta.size() == alpha.size() - 1), by
/// bisection on the Sturm-sequence eigenvalue count inside the Gershgorin
/// bracket. Deterministic; accurate to ~1e-15 relative.
double tridiag_max_eigenvalue(const std::vector<double>& alpha,
                              const std::vector<double>& beta);

}  // namespace dqma::linalg

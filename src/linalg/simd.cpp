#include "linalg/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "util/require.hpp"

// The explicit vector variants are compiled as per-function targets so the
// translation unit itself stays baseline (the binary must boot on any
// x86-64; only the dispatched calls execute wider instructions). Non-x86
// builds compile the scalar variants only and detect_best() reports
// kScalar.
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
#define DQMA_SIMD_X86 1
#include <immintrin.h>
#define DQMA_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define DQMA_TARGET_AVX512 __attribute__((target("avx512f,avx512dq")))
#else
#define DQMA_SIMD_X86 0
#endif

namespace dqma::linalg::simd {
namespace {

// -1 = unresolved; resolved lazily (benign race: every resolver computes
// the same value from the same env + CPU).
std::atomic<int> g_level{-1};
// -1 = no override on this thread; LevelScope saves/restores it, which
// gives nesting for free.
thread_local int tl_level = -1;

Level resolve_from_env() {
  Level level = detect_best();
  if (const char* env = std::getenv("DQMA_SIMD")) {
    level = parse_level(env);
    util::require(is_supported(level),
                  std::string("DQMA_SIMD requests ") + level_name(level) +
                      " but this host only supports " +
                      level_name(detect_best()));
  }
  return level;
}

Level global_level() {
  const int cached = g_level.load(std::memory_order_acquire);
  if (cached >= 0) {
    return static_cast<Level>(cached);
  }
  const Level level = resolve_from_env();
  g_level.store(static_cast<int>(level), std::memory_order_release);
  return level;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "scalar";
}

Level parse_level(const std::string& name) {
  if (name == "scalar") {
    return Level::kScalar;
  }
  if (name == "avx2") {
    return Level::kAvx2;
  }
  if (name == "avx512") {
    return Level::kAvx512;
  }
  if (name == "native") {
    return detect_best();
  }
  throw std::invalid_argument("unknown SIMD level '" + name +
                              "' (expected scalar|avx2|avx512|native)");
}

Level detect_best() {
#if DQMA_SIMD_X86
  static const Level best = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq")) {
      return Level::kAvx512;
    }
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return Level::kAvx2;
    }
    return Level::kScalar;
  }();
  return best;
#else
  return Level::kScalar;
#endif
}

bool is_supported(Level level) {
  return static_cast<int>(level) <= static_cast<int>(detect_best());
}

Level clamp_to_supported(Level level) {
  return is_supported(level) ? level : detect_best();
}

Level active() {
  if (tl_level >= 0) {
    return static_cast<Level>(tl_level);
  }
  return global_level();
}

void set_global_level(Level level) {
  util::require(is_supported(level),
                std::string("SIMD level ") + level_name(level) +
                    " is not supported on this host (best: " +
                    level_name(detect_best()) + ")");
  g_level.store(static_cast<int>(level), std::memory_order_release);
}

void resolve_startup(const std::string& cli_value) {
  if (!cli_value.empty()) {
    set_global_level(parse_level(cli_value));
    return;
  }
  // Forces env parsing now so a bad DQMA_SIMD fails at startup.
  g_level.store(static_cast<int>(resolve_from_env()),
                std::memory_order_release);
}

LevelScope::LevelScope(Level level) : prev_(tl_level) {
  util::require(is_supported(level),
                std::string("LevelScope: ") + level_name(level) +
                    " is not supported on this host");
  tl_level = static_cast<int>(level);
}

LevelScope::~LevelScope() { tl_level = prev_; }

// ---------------------------------------------------------------------------
// Kernel variants. One scalar + one AVX2 + one AVX-512 body per primitive;
// dispatchers switch on the explicit level argument. Loads/stores are the
// unaligned forms throughout: AlignedVector only over-aligns buffers past
// its 4096-byte threshold, and view callers may pass interior pointers.
// ---------------------------------------------------------------------------

namespace {

void deinterleave_scalar(const Complex* src, long long n, double* re,
                         double* im) {
  for (long long i = 0; i < n; ++i) {
    re[i] = src[i].real();
    im[i] = src[i].imag();
  }
}

void interleave_scalar(const double* re, const double* im, long long n,
                       Complex* dst) {
  for (long long i = 0; i < n; ++i) {
    dst[i] = Complex{re[i], im[i]};
  }
}

void axpy_scalar(double ar, double ai, const double* xr, const double* xi,
                 double* yr, double* yi, long long n) {
  for (long long i = 0; i < n; ++i) {
    yr[i] += ar * xr[i] - ai * xi[i];
    yi[i] += ar * xi[i] + ai * xr[i];
  }
}

Complex dot_scalar(bool conj_a, const double* ar, const double* ai,
                   const double* br, const double* bi, long long n) {
  double rr = 0.0;
  double ri = 0.0;
  if (conj_a) {
    for (long long i = 0; i < n; ++i) {
      rr += ar[i] * br[i] + ai[i] * bi[i];
      ri += ar[i] * bi[i] - ai[i] * br[i];
    }
  } else {
    for (long long i = 0; i < n; ++i) {
      rr += ar[i] * br[i] - ai[i] * bi[i];
      ri += ar[i] * bi[i] + ai[i] * br[i];
    }
  }
  return Complex{rr, ri};
}

#if DQMA_SIMD_X86

// ---- AVX2 (4 doubles / vector) ----

DQMA_TARGET_AVX2 void deinterleave_avx2(const Complex* src, long long n,
                                        double* re, double* im) {
  const double* p = reinterpret_cast<const double*>(src);
  long long i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(p + 2 * i);      // r0 i0 r1 i1
    const __m256d v1 = _mm256_loadu_pd(p + 2 * i + 4);  // r2 i2 r3 i3
    const __m256d lo = _mm256_unpacklo_pd(v0, v1);      // r0 r2 r1 r3
    const __m256d hi = _mm256_unpackhi_pd(v0, v1);      // i0 i2 i1 i3
    _mm256_storeu_pd(re + i, _mm256_permute4x64_pd(lo, 0xD8));
    _mm256_storeu_pd(im + i, _mm256_permute4x64_pd(hi, 0xD8));
  }
  for (; i < n; ++i) {
    re[i] = src[i].real();
    im[i] = src[i].imag();
  }
}

DQMA_TARGET_AVX2 void interleave_avx2(const double* re, const double* im,
                                      long long n, Complex* dst) {
  double* p = reinterpret_cast<double*>(dst);
  long long i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_permute4x64_pd(_mm256_loadu_pd(re + i), 0xD8);
    const __m256d m = _mm256_permute4x64_pd(_mm256_loadu_pd(im + i), 0xD8);
    _mm256_storeu_pd(p + 2 * i, _mm256_unpacklo_pd(r, m));
    _mm256_storeu_pd(p + 2 * i + 4, _mm256_unpackhi_pd(r, m));
  }
  for (; i < n; ++i) {
    dst[i] = Complex{re[i], im[i]};
  }
}

DQMA_TARGET_AVX2 void axpy_avx2(double ar, double ai, const double* xr,
                                const double* xi, double* yr, double* yi,
                                long long n) {
  const __m256d var = _mm256_set1_pd(ar);
  const __m256d vai = _mm256_set1_pd(ai);
  long long i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x_re = _mm256_loadu_pd(xr + i);
    const __m256d x_im = _mm256_loadu_pd(xi + i);
    __m256d y_re = _mm256_loadu_pd(yr + i);
    __m256d y_im = _mm256_loadu_pd(yi + i);
    y_re = _mm256_fmadd_pd(var, x_re, _mm256_fnmadd_pd(vai, x_im, y_re));
    y_im = _mm256_fmadd_pd(var, x_im, _mm256_fmadd_pd(vai, x_re, y_im));
    _mm256_storeu_pd(yr + i, y_re);
    _mm256_storeu_pd(yi + i, y_im);
  }
  if (i < n) {
    // Masked tail, NOT a scalar loop: a plain loop here gets
    // auto-vectorized with runtime alias/alignment checks, so which
    // elements round through FMA code would depend on the heap addresses
    // of the buffers — breaking byte-determinism across otherwise
    // identical runs. Masked lanes load as zero and are never stored.
    const long long rem = n - i;
    const __m256i mask = _mm256_set_epi64x(
        rem > 3 ? -1 : 0, rem > 2 ? -1 : 0, rem > 1 ? -1 : 0, -1);
    const __m256d x_re = _mm256_maskload_pd(xr + i, mask);
    const __m256d x_im = _mm256_maskload_pd(xi + i, mask);
    __m256d y_re = _mm256_maskload_pd(yr + i, mask);
    __m256d y_im = _mm256_maskload_pd(yi + i, mask);
    y_re = _mm256_fmadd_pd(var, x_re, _mm256_fnmadd_pd(vai, x_im, y_re));
    y_im = _mm256_fmadd_pd(var, x_im, _mm256_fmadd_pd(vai, x_re, y_im));
    _mm256_maskstore_pd(yr + i, mask, y_re);
    _mm256_maskstore_pd(yi + i, mask, y_im);
  }
}

DQMA_TARGET_AVX2 Complex dot_avx2(bool conj_a, const double* ar,
                                  const double* ai, const double* br,
                                  const double* bi, long long n) {
  __m256d acc_re = _mm256_setzero_pd();
  __m256d acc_im = _mm256_setzero_pd();
  long long i = 0;
  if (conj_a) {
    for (; i + 4 <= n; i += 4) {
      const __m256d a_re = _mm256_loadu_pd(ar + i);
      const __m256d a_im = _mm256_loadu_pd(ai + i);
      const __m256d b_re = _mm256_loadu_pd(br + i);
      const __m256d b_im = _mm256_loadu_pd(bi + i);
      acc_re = _mm256_fmadd_pd(a_re, b_re,
                               _mm256_fmadd_pd(a_im, b_im, acc_re));
      acc_im = _mm256_fmadd_pd(a_re, b_im,
                               _mm256_fnmadd_pd(a_im, b_re, acc_im));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      const __m256d a_re = _mm256_loadu_pd(ar + i);
      const __m256d a_im = _mm256_loadu_pd(ai + i);
      const __m256d b_re = _mm256_loadu_pd(br + i);
      const __m256d b_im = _mm256_loadu_pd(bi + i);
      acc_re = _mm256_fmadd_pd(a_re, b_re,
                               _mm256_fnmadd_pd(a_im, b_im, acc_re));
      acc_im = _mm256_fmadd_pd(a_re, b_im,
                               _mm256_fmadd_pd(a_im, b_re, acc_im));
    }
  }
  // Lane partials combined in ascending lane order, then the scalar tail
  // in ascending index order — the fixed reduction order the determinism
  // contract pins for this level.
  alignas(32) double lanes_re[4];
  alignas(32) double lanes_im[4];
  _mm256_storeu_pd(lanes_re, acc_re);
  _mm256_storeu_pd(lanes_im, acc_im);
  double rr = ((lanes_re[0] + lanes_re[1]) + lanes_re[2]) + lanes_re[3];
  double ri = ((lanes_im[0] + lanes_im[1]) + lanes_im[2]) + lanes_im[3];
  if (conj_a) {
    for (; i < n; ++i) {
      rr += ar[i] * br[i] + ai[i] * bi[i];
      ri += ar[i] * bi[i] - ai[i] * br[i];
    }
  } else {
    for (; i < n; ++i) {
      rr += ar[i] * br[i] - ai[i] * bi[i];
      ri += ar[i] * bi[i] + ai[i] * br[i];
    }
  }
  return Complex{rr, ri};
}

// ---- AVX-512 (8 doubles / vector) ----

DQMA_TARGET_AVX512 void deinterleave_avx512(const Complex* src, long long n,
                                            double* re, double* im) {
  const double* p = reinterpret_cast<const double*>(src);
  const __m512i idx_re = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
  const __m512i idx_im = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
  long long i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d v0 = _mm512_loadu_pd(p + 2 * i);
    const __m512d v1 = _mm512_loadu_pd(p + 2 * i + 8);
    _mm512_storeu_pd(re + i, _mm512_permutex2var_pd(v0, idx_re, v1));
    _mm512_storeu_pd(im + i, _mm512_permutex2var_pd(v0, idx_im, v1));
  }
  for (; i < n; ++i) {
    re[i] = src[i].real();
    im[i] = src[i].imag();
  }
}

DQMA_TARGET_AVX512 void interleave_avx512(const double* re, const double* im,
                                          long long n, Complex* dst) {
  double* p = reinterpret_cast<double*>(dst);
  const __m512i idx_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
  const __m512i idx_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
  long long i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d r = _mm512_loadu_pd(re + i);
    const __m512d m = _mm512_loadu_pd(im + i);
    _mm512_storeu_pd(p + 2 * i, _mm512_permutex2var_pd(r, idx_lo, m));
    _mm512_storeu_pd(p + 2 * i + 8, _mm512_permutex2var_pd(r, idx_hi, m));
  }
  for (; i < n; ++i) {
    dst[i] = Complex{re[i], im[i]};
  }
}

DQMA_TARGET_AVX512 void axpy_avx512(double ar, double ai, const double* xr,
                                    const double* xi, double* yr, double* yi,
                                    long long n) {
  const __m512d var = _mm512_set1_pd(ar);
  const __m512d vai = _mm512_set1_pd(ai);
  long long i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x_re = _mm512_loadu_pd(xr + i);
    const __m512d x_im = _mm512_loadu_pd(xi + i);
    __m512d y_re = _mm512_loadu_pd(yr + i);
    __m512d y_im = _mm512_loadu_pd(yi + i);
    y_re = _mm512_fmadd_pd(var, x_re, _mm512_fnmadd_pd(vai, x_im, y_re));
    y_im = _mm512_fmadd_pd(var, x_im, _mm512_fmadd_pd(vai, x_re, y_im));
    _mm512_storeu_pd(yr + i, y_re);
    _mm512_storeu_pd(yi + i, y_im);
  }
  if (i < n) {
    // Masked tail for the same reason as axpy_avx2: a scalar loop here is
    // auto-vectorized with address-dependent dispatch, which would make
    // tail rounding depend on where the buffers happen to be allocated.
    const __mmask8 mask =
        static_cast<__mmask8>((1u << static_cast<unsigned>(n - i)) - 1u);
    const __m512d x_re = _mm512_maskz_loadu_pd(mask, xr + i);
    const __m512d x_im = _mm512_maskz_loadu_pd(mask, xi + i);
    __m512d y_re = _mm512_maskz_loadu_pd(mask, yr + i);
    __m512d y_im = _mm512_maskz_loadu_pd(mask, yi + i);
    y_re = _mm512_fmadd_pd(var, x_re, _mm512_fnmadd_pd(vai, x_im, y_re));
    y_im = _mm512_fmadd_pd(var, x_im, _mm512_fmadd_pd(vai, x_re, y_im));
    _mm512_mask_storeu_pd(yr + i, mask, y_re);
    _mm512_mask_storeu_pd(yi + i, mask, y_im);
  }
}

DQMA_TARGET_AVX512 Complex dot_avx512(bool conj_a, const double* ar,
                                      const double* ai, const double* br,
                                      const double* bi, long long n) {
  __m512d acc_re = _mm512_setzero_pd();
  __m512d acc_im = _mm512_setzero_pd();
  long long i = 0;
  if (conj_a) {
    for (; i + 8 <= n; i += 8) {
      const __m512d a_re = _mm512_loadu_pd(ar + i);
      const __m512d a_im = _mm512_loadu_pd(ai + i);
      const __m512d b_re = _mm512_loadu_pd(br + i);
      const __m512d b_im = _mm512_loadu_pd(bi + i);
      acc_re = _mm512_fmadd_pd(a_re, b_re,
                               _mm512_fmadd_pd(a_im, b_im, acc_re));
      acc_im = _mm512_fmadd_pd(a_re, b_im,
                               _mm512_fnmadd_pd(a_im, b_re, acc_im));
    }
  } else {
    for (; i + 8 <= n; i += 8) {
      const __m512d a_re = _mm512_loadu_pd(ar + i);
      const __m512d a_im = _mm512_loadu_pd(ai + i);
      const __m512d b_re = _mm512_loadu_pd(br + i);
      const __m512d b_im = _mm512_loadu_pd(bi + i);
      acc_re = _mm512_fmadd_pd(a_re, b_re,
                               _mm512_fnmadd_pd(a_im, b_im, acc_re));
      acc_im = _mm512_fmadd_pd(a_re, b_im,
                               _mm512_fmadd_pd(a_im, b_re, acc_im));
    }
  }
  alignas(64) double lanes_re[8];
  alignas(64) double lanes_im[8];
  _mm512_storeu_pd(lanes_re, acc_re);
  _mm512_storeu_pd(lanes_im, acc_im);
  double rr = 0.0;
  double ri = 0.0;
  for (int lane = 0; lane < 8; ++lane) {
    rr += lanes_re[lane];
    ri += lanes_im[lane];
  }
  if (conj_a) {
    for (; i < n; ++i) {
      rr += ar[i] * br[i] + ai[i] * bi[i];
      ri += ar[i] * bi[i] - ai[i] * br[i];
    }
  } else {
    for (; i < n; ++i) {
      rr += ar[i] * br[i] - ai[i] * bi[i];
      ri += ar[i] * bi[i] + ai[i] * br[i];
    }
  }
  return Complex{rr, ri};
}

#endif  // DQMA_SIMD_X86

}  // namespace

void deinterleave(Level level, const Complex* src, long long n, double* re,
                  double* im) {
#if DQMA_SIMD_X86
  switch (level) {
    case Level::kAvx512:
      deinterleave_avx512(src, n, re, im);
      return;
    case Level::kAvx2:
      deinterleave_avx2(src, n, re, im);
      return;
    case Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  deinterleave_scalar(src, n, re, im);
}

void interleave(Level level, const double* re, const double* im, long long n,
                Complex* dst) {
#if DQMA_SIMD_X86
  switch (level) {
    case Level::kAvx512:
      interleave_avx512(re, im, n, dst);
      return;
    case Level::kAvx2:
      interleave_avx2(re, im, n, dst);
      return;
    case Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  interleave_scalar(re, im, n, dst);
}

void axpy(Level level, double ar, double ai, const double* xr,
          const double* xi, double* yr, double* yi, long long n) {
#if DQMA_SIMD_X86
  switch (level) {
    case Level::kAvx512:
      axpy_avx512(ar, ai, xr, xi, yr, yi, n);
      return;
    case Level::kAvx2:
      axpy_avx2(ar, ai, xr, xi, yr, yi, n);
      return;
    case Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  axpy_scalar(ar, ai, xr, xi, yr, yi, n);
}

Complex dot(Level level, bool conj_a, const double* ar, const double* ai,
            const double* br, const double* bi, long long n) {
#if DQMA_SIMD_X86
  switch (level) {
    case Level::kAvx512:
      return dot_avx512(conj_a, ar, ai, br, bi, n);
    case Level::kAvx2:
      return dot_avx2(conj_a, ar, ai, br, bi, n);
    case Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return dot_scalar(conj_a, ar, ai, br, bi, n);
}

void convert(Level level, ConstComplexView src, MutComplexView dst) {
  util::require(src.extent() == dst.extent(),
                "convert: extent mismatch between views");
  const long long n = src.extent();
  if (n == 0) {
    return;
  }
  if (src.layout() == Layout::kAoS && dst.layout() == Layout::kSoA) {
    deinterleave(level, src.aos_data(), n, dst.re(), dst.im());
  } else if (src.layout() == Layout::kSoA && dst.layout() == Layout::kAoS) {
    interleave(level, src.re(), src.im(), n, dst.aos_data());
  } else if (src.layout() == Layout::kAoS) {
    std::copy(src.aos_data(), src.aos_data() + n, dst.aos_data());
  } else {
    std::copy(src.re(), src.re() + n, dst.re());
    std::copy(src.im(), src.im() + n, dst.im());
  }
}

PackedOp pack_operator(const CMat& op, bool transpose, bool conjugate) {
  PackedOp packed;
  packed.rows = transpose ? op.cols() : op.rows();
  packed.cols = transpose ? op.rows() : op.cols();
  packed.re.assign(static_cast<std::size_t>(packed.rows * packed.cols), 0.0);
  packed.im.assign(static_cast<std::size_t>(packed.rows * packed.cols), 0.0);
  for (long long o = 0; o < packed.rows; ++o) {
    for (long long s = 0; s < packed.cols; ++s) {
      const Complex v = transpose
                            ? op(static_cast<int>(s), static_cast<int>(o))
                            : op(static_cast<int>(o), static_cast<int>(s));
      const double vr = v.real();
      const double vi = conjugate ? -v.imag() : v.imag();
      if (vr != 0.0 || vi != 0.0) {
        ++packed.nnz;
      }
      packed.re[static_cast<std::size_t>(s * packed.rows + o)] = vr;
      packed.im[static_cast<std::size_t>(s * packed.rows + o)] = vi;
    }
  }
  return packed;
}

void block_apply(Level level, const PackedOp& m, const double* in_re,
                 const double* in_im, double* out_re, double* out_im) {
  std::fill(out_re, out_re + m.rows, 0.0);
  std::fill(out_im, out_im + m.rows, 0.0);
  for (long long s = 0; s < m.cols; ++s) {
    const double xr = in_re[s];
    const double xi = in_im[s];
    if (xr == 0.0 && xi == 0.0) {
      continue;
    }
    const double* col_re = m.re.data() + s * m.rows;
    const double* col_im = m.im.data() + s * m.rows;
    axpy(level, xr, xi, col_re, col_im, out_re, out_im, m.rows);
  }
}

}  // namespace dqma::linalg::simd

#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/require.hpp"

namespace dqma::linalg {

using util::require;

namespace {

/// Deterministic start vector shared by every iterative spectral routine:
/// equal superposition with varying phases, so it overlaps any eigenvector
/// with overwhelming probability. Fixed recipe — no RNG — so solves are
/// reproducible across runs, threads, and shards.
CVec spectral_start_vector(int n) {
  CVec x(n);
  for (int i = 0; i < n; ++i) {
    const double angle = 0.7 * static_cast<double>(i) + 0.3;
    x[i] = Complex{std::cos(angle), std::sin(angle)};
  }
  x.normalize();
  return x;
}

/// The shared stop rule: an eigenpair estimate (theta, x) is accepted when
/// the residual ||A x - theta x|| clears tol relative to the eigenvalue
/// scale. Used by both Lanczos (via the beta * |y_last| bound) and power
/// iteration (via the explicit residual), so the two backends certify the
/// same quantity.
bool residual_converged(double resid, double theta, double tol) {
  return resid <= tol * std::max(1.0, std::abs(theta));
}

/// y += a * x, serial (determinism: fixed order, calling thread only).
void axpy(Complex a, const CVec& x, CVec& y) {
  const int n = x.dim();
  for (int i = 0; i < n; ++i) {
    y[i] += a * x[i];
  }
}

/// Sturm-sequence count: number of eigenvalues of the symmetric tridiagonal
/// (alpha, beta) strictly below x, via the LDL^T pivot signs. IEEE inf/0
/// propagation keeps the recurrence well-defined when a pivot collapses.
int sturm_count_below(const std::vector<double>& alpha,
                      const std::vector<double>& beta, double x) {
  int count = 0;
  double d = 1.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    const double off = (i == 0) ? 0.0 : beta[i - 1] * beta[i - 1] / d;
    d = alpha[i] - x - off;
    if (d == 0.0) {
      d = -1e-300;
    }
    if (d < 0.0) {
      ++count;
    }
  }
  return count;
}

/// Unit top eigenvector of the symmetric tridiagonal (alpha, beta) for the
/// (already converged) eigenvalue theta, by two steps of inverse iteration.
/// The shifted solve is Gaussian elimination with partial pivoting on the
/// tridiagonal (LAPACK dgtsv's pivoting pattern, which fills in a second
/// superdiagonal); near-singular pivots — expected, theta is an eigenvalue —
/// are replaced by a tiny scale-relative value, which just boosts the
/// amplification inverse iteration relies on.
std::vector<double> tridiag_top_eigenvector(const std::vector<double>& alpha,
                                            const std::vector<double>& beta,
                                            double theta) {
  const std::size_t m = alpha.size();
  if (m == 1) {
    return {1.0};
  }
  double scale = 1.0;
  for (const double a : alpha) scale = std::max(scale, std::abs(a));
  for (const double b : beta) scale = std::max(scale, std::abs(b));
  const double tiny = 1e-18 * scale;

  std::vector<double> y(m, 1.0 / std::sqrt(static_cast<double>(m)));
  std::vector<double> dl(m - 1), d(m), du(m - 1), du2(m >= 2 ? m - 2 : 0);
  for (int step = 0; step < 2; ++step) {
    for (std::size_t i = 0; i < m - 1; ++i) {
      dl[i] = beta[i];
      du[i] = beta[i];
    }
    for (std::size_t i = 0; i < m; ++i) {
      d[i] = alpha[i] - theta;
    }
    std::fill(du2.begin(), du2.end(), 0.0);
    std::vector<double> b = y;
    for (std::size_t i = 0; i + 1 < m; ++i) {
      if (std::abs(d[i]) < std::abs(dl[i])) {
        // Interchange rows i and i+1.
        const double fact = d[i] / dl[i];
        d[i] = dl[i];
        const double tmp = d[i + 1];
        d[i + 1] = du[i] - fact * tmp;
        if (i + 2 < m) {
          du2[i] = du[i + 1];
          du[i + 1] = -fact * du[i + 1];
        }
        du[i] = tmp;
        std::swap(b[i], b[i + 1]);
        b[i + 1] -= fact * b[i];
      } else {
        if (d[i] == 0.0) {
          d[i] = tiny;
        }
        const double fact = dl[i] / d[i];
        d[i + 1] -= fact * du[i];
        b[i + 1] -= fact * b[i];
      }
    }
    if (d[m - 1] == 0.0) {
      d[m - 1] = tiny;
    }
    // Back substitution through the two superdiagonals.
    b[m - 1] /= d[m - 1];
    b[m - 2] = (b[m - 2] - du[m - 2] * b[m - 1]) / d[m - 2];
    for (std::size_t ii = m; ii-- > 2;) {
      const std::size_t i = ii - 2;
      b[i] = (b[i] - du[i] * b[i + 1] - du2[i] * b[i + 2]) / d[i];
    }
    double nrm_sq = 0.0;
    for (const double v : b) nrm_sq += v * v;
    const double nrm = std::sqrt(nrm_sq);
    if (!std::isfinite(nrm) || nrm == 0.0) {
      // Degenerate solve: fall back to the last basis direction, which makes
      // the beta * |y_last| residual bound a conservative overestimate.
      std::fill(y.begin(), y.end(), 0.0);
      y[m - 1] = 1.0;
      return y;
    }
    for (std::size_t i = 0; i < m; ++i) {
      y[i] = b[i] / nrm;
    }
  }
  return y;
}

/// Power iteration with the residual-augmented stop rule: one operator
/// application per iteration (iteration k's Rayleigh product is reused as
/// iteration k+1's image); convergence needs BOTH a small Rayleigh-quotient
/// delta and a small true residual, so near-degenerate spectra (clustered
/// top eigenvalues) can no longer trip a spurious early exit.
double power_iterate(const LinearOperator& op, int max_iters, double tol,
                     CVec* vec_out, SpectralStats* stats) {
  SpectralStats local;
  const int dim = op.dim();
  if (dim == 0) {
    local.converged = true;
    if (vec_out != nullptr) {
      *vec_out = CVec();
    }
    if (stats != nullptr) {
      *stats = local;
    }
    return 0.0;
  }
  CVec x = spectral_start_vector(dim);
  CVec image(dim);
  op.apply_into(x, image);
  ++local.matvecs;
  double lambda = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    local.iterations = it + 1;
    const double norm = image.norm();
    if (norm < 1e-300) {
      // The operator annihilates the iterate; spectrum is ~0 on it.
      local.converged = true;
      lambda = 0.0;
      break;
    }
    const double inv = 1.0 / norm;
    for (int i = 0; i < dim; ++i) {
      x[i] = image[i] * inv;
    }
    op.apply_into(x, image);
    ++local.matvecs;
    const double next = std::real(x.dot(image));
    double resid_sq = 0.0;
    for (int i = 0; i < dim; ++i) {
      resid_sq += std::norm(image[i] - next * x[i]);
    }
    const bool done =
        std::abs(next - lambda) <= tol * std::max(1.0, next) &&
        residual_converged(std::sqrt(resid_sq), next, tol);
    lambda = next;
    if (done && it > 2) {
      local.converged = true;
      break;
    }
  }
  if (vec_out != nullptr) {
    *vec_out = x;
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return lambda;
}

/// Deterministic Lanczos with full reorthogonalization. Per step: one
/// operator application, two CGS passes against the whole stored basis in
/// ascending index order (always two — no norm-triggered branching, so the
/// instruction stream is input-independent), then the top Ritz pair of the
/// tridiagonal and the standard beta * |y_last| residual bound. Breakdown
/// (beta ~ 0) means the Krylov space is exhausted and the tridiagonal is
/// exact — rank-deficient and tiny-dimension operators converge that way.
double lanczos_iterate(const LinearOperator& op, int max_iters, double tol,
                       CVec* vec_out, SpectralStats* stats) {
  SpectralStats local;
  local.used_lanczos = true;
  const int dim = op.dim();
  if (dim == 0) {
    local.converged = true;
    if (vec_out != nullptr) {
      *vec_out = CVec();
    }
    if (stats != nullptr) {
      *stats = local;
    }
    return 0.0;
  }
  std::vector<CVec> basis;
  basis.push_back(spectral_start_vector(dim));
  std::vector<double> alpha;
  std::vector<double> beta;  // beta[j] couples basis[j] and basis[j + 1]
  std::vector<double> ritz;  // top eigenvector of the current tridiagonal
  CVec w(dim);
  const int m_max = std::max(1, std::min({dim, max_iters, kMaxLanczosBasis}));
  double theta = 0.0;
  for (int j = 0; j < m_max; ++j) {
    op.apply_into(basis[static_cast<std::size_t>(j)], w);
    ++local.matvecs;
    double aj = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < basis.size(); ++i) {
        const Complex h = basis[i].dot(w);
        if (static_cast<int>(i) == j) {
          aj += h.real();
        }
        axpy(-h, basis[i], w);
      }
    }
    alpha.push_back(aj);
    local.iterations = j + 1;
    const double bj = w.norm();
    theta = tridiag_max_eigenvalue(alpha, beta);
    ritz = tridiag_top_eigenvector(alpha, beta, theta);
    if (residual_converged(bj * std::abs(ritz.back()), theta, tol) ||
        bj <= 1e-14 * std::max(1.0, std::abs(theta))) {
      local.converged = true;
      break;
    }
    if (j + 1 >= m_max) {
      break;
    }
    beta.push_back(bj);
    basis.push_back(w * Complex{1.0 / bj, 0.0});
  }
  if (vec_out != nullptr) {
    CVec x(dim);
    for (std::size_t i = 0; i < ritz.size(); ++i) {
      axpy(Complex{ritz[i], 0.0}, basis[i], x);
    }
    const double nrm = x.norm();
    // The Ritz combination of an orthonormal basis with a unit coefficient
    // vector has norm ~1; guard the pathological collapse anyway.
    *vec_out = (nrm > 1e-12) ? x * Complex{1.0 / nrm, 0.0} : basis.front();
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return theta;
}

}  // namespace

double tridiag_max_eigenvalue(const std::vector<double>& alpha,
                              const std::vector<double>& beta) {
  const std::size_t m = alpha.size();
  require(m >= 1 && beta.size() + 1 == m,
          "tridiag_max_eigenvalue: inconsistent band sizes");
  if (m == 1) {
    return alpha[0];
  }
  // Gershgorin bracket, slightly inflated so the upper end always counts
  // every eigenvalue strictly below it.
  double lo = alpha[0];
  double hi = alpha[0];
  for (std::size_t i = 0; i < m; ++i) {
    const double radius = (i > 0 ? std::abs(beta[i - 1]) : 0.0) +
                          (i + 1 < m ? std::abs(beta[i]) : 0.0);
    lo = std::min(lo, alpha[i] - radius);
    hi = std::max(hi, alpha[i] + radius);
  }
  hi += 1e-12 * std::max(1.0, std::abs(hi));
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) {
      break;  // bracket reached machine resolution
    }
    if (sturm_count_below(alpha, beta, mid) >= static_cast<int>(m)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double top_eigenvalue_psd(const LinearOperator& op, const SpectralOptions& opts,
                          CVec* vec_out, SpectralStats* stats) {
  using Method = SpectralOptions::Method;
  const bool use_lanczos =
      opts.method == Method::kLanczos ||
      (opts.method == Method::kAuto && op.dim() >= kLanczosMinDim);
  return use_lanczos
             ? lanczos_iterate(op, opts.max_iters, opts.tol, vec_out, stats)
             : power_iterate(op, opts.max_iters, opts.tol, vec_out, stats);
}

}  // namespace dqma::linalg

#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "linalg/lanczos.hpp"
#include "sweep/parallel.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::linalg {

using util::require;

namespace {

/// Frobenius mass of the strict upper triangle (the Jacobi convergence
/// functional).
double off_diagonal_mass(const CMat& a) {
  double acc = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = i + 1; j < a.cols(); ++j) {
      acc += std::norm(a(i, j));
    }
  }
  return acc;
}

/// Applies the 2x2 unitary
///   U = [ c        -s e^{i phi} ]
///       [ s e^{-i phi}   c      ]
/// on indices (p, q): A <- U^dagger A U, V <- V U.
void apply_rotation(CMat& a, CMat& v, int p, int q, double c, double s,
                    Complex phase) {
  const int n = a.rows();
  // Columns: A <- A U.
  for (int k = 0; k < n; ++k) {
    const Complex akp = a(k, p);
    const Complex akq = a(k, q);
    a(k, p) = akp * c + akq * s * std::conj(phase);
    a(k, q) = -akp * s * phase + akq * c;
  }
  // Rows: A <- U^dagger A.
  for (int k = 0; k < n; ++k) {
    const Complex apk = a(p, k);
    const Complex aqk = a(q, k);
    a(p, k) = apk * c + aqk * s * phase;
    a(q, k) = -apk * s * std::conj(phase) + aqk * c;
  }
  // Accumulate eigenvectors: V <- V U.
  for (int k = 0; k < v.rows(); ++k) {
    const Complex vkp = v(k, p);
    const Complex vkq = v(k, q);
    v(k, p) = vkp * c + vkq * s * std::conj(phase);
    v(k, q) = -vkp * s * phase + vkq * c;
  }
}

}  // namespace

EigenSystem eigh(const CMat& input) {
  require(input.rows() == input.cols(), "eigh: matrix not square");
  require(input.is_hermitian(1e-8), "eigh: matrix not Hermitian");
  const int n = input.rows();

  CMat a = input;
  // Symmetrize exactly so rounding in the input cannot bias the sweeps.
  for (int i = 0; i < n; ++i) {
    a(i, i) = Complex{a(i, i).real(), 0.0};
    for (int j = i + 1; j < n; ++j) {
      const Complex mean = 0.5 * (a(i, j) + std::conj(a(j, i)));
      a(i, j) = mean;
      a(j, i) = std::conj(mean);
    }
  }
  CMat v = CMat::identity(n);

  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (off_diagonal_mass(a) < util::kJacobiTol) {
      break;
    }
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const Complex apq = a(p, q);
        const double r = std::abs(apq);
        if (r < 1e-300) {
          continue;
        }
        const Complex phase = apq / r;  // apq = r * phase
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        // Classical Jacobi angle for the real symmetric 2x2 [[app, r],[r, aqq]].
        const double tau = (aqq - app) / (2.0 * r);
        // With U = [[c, -s e^{i phi}],[s e^{-i phi}, c]], zeroing the pivot
        // requires the root t of t^2 - 2 tau t - 1 = 0 of smaller magnitude.
        const double t =
            -(tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        apply_rotation(a, v, p, q, c, s, phase);
      }
    }
  }

  // Collect eigenpairs and sort ascending.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    diag[static_cast<std::size_t>(i)] = a(i, i).real();
  }
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return diag[static_cast<std::size_t>(x)] < diag[static_cast<std::size_t>(y)];
  });

  EigenSystem out;
  out.values.resize(static_cast<std::size_t>(n));
  out.vectors = CMat(n, n);
  for (int k = 0; k < n; ++k) {
    const int src = order[static_cast<std::size_t>(k)];
    out.values[static_cast<std::size_t>(k)] = diag[static_cast<std::size_t>(src)];
    for (int i = 0; i < n; ++i) {
      out.vectors(i, k) = v(i, src);
    }
  }
  return out;
}

DenseOperator::DenseOperator(const CMat& a)
    : a_(a), level_(simd::active()) {
  require(a.rows() == a.cols(), "DenseOperator: matrix not square");
  // Pack once when a vector level is active and the dot length pays for
  // it; every apply() below reuses the SoA copy. The input scratch xs_ is
  // sized here too, so iterative solves are allocation-free per matvec.
  if (level_ != simd::Level::kScalar && a.cols() >= 8) {
    pack_ = SplitBuffer(static_cast<long long>(a.rows()) * a.cols());
    simd::deinterleave(level_, &a(0, 0), pack_.size(), pack_.re(),
                       pack_.im());
    packed_ = true;
    xs_ = SplitBuffer(a.cols());
  }
}

int DenseOperator::dim() const { return a_.rows(); }

CVec DenseOperator::apply(const CVec& x) const {
  CVec out(a_.rows());
  apply_into(x, out);
  return out;
}

void DenseOperator::apply_into(const CVec& x, CVec& out) const {
  require(x.dim() == a_.cols(), "DenseOperator::apply: dimension mismatch");
  if (!packed_) {
    out = a_ * x;
    return;
  }
  const long long n = a_.cols();
  simd::deinterleave(level_, &x[0], n, xs_.re(), xs_.im());
  if (out.dim() != a_.rows()) {
    out = CVec(a_.rows());
  }
  // Row panels in parallel, one full vectorized dot per row — the same
  // thread-count-invariance argument as the scalar matvec. level_ was
  // resolved on the constructing thread; pool workers just use it.
  sweep::parallel_for(
      static_cast<std::size_t>(a_.rows()),
      sweep::grain_for_ops(static_cast<std::size_t>(n)),
      [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t ii = i_begin; ii < i_end; ++ii) {
          const long long i = static_cast<long long>(ii);
          out[static_cast<int>(ii)] =
              simd::dot(level_, false, pack_.re() + i * n, pack_.im() + i * n,
                        xs_.re(), xs_.im(), n);
        }
      });
}

CallbackOperator::CallbackOperator(std::function<CVec(const CVec&)> apply,
                                   int dim)
    : apply_(std::move(apply)), dim_(dim) {
  require(dim >= 0, "CallbackOperator: negative dimension");
}

int CallbackOperator::dim() const { return dim_; }

CVec CallbackOperator::apply(const CVec& x) const { return apply_(x); }

double max_eigenvalue_psd(const LinearOperator& op, int max_iters,
                          double tol) {
  SpectralOptions opts;
  opts.max_iters = max_iters;
  opts.tol = tol;
  return top_eigenvalue_psd(op, opts);
}

double top_eigenpair_psd(const LinearOperator& op, CVec& vec, int max_iters,
                         double tol) {
  SpectralOptions opts;
  opts.max_iters = max_iters;
  opts.tol = tol;
  return top_eigenvalue_psd(op, opts, &vec);
}

double max_eigenvalue_psd(const CMat& a, int max_iters, double tol) {
  return max_eigenvalue_psd(DenseOperator(a), max_iters, tol);
}

double max_eigenvalue_psd(const std::function<CVec(const CVec&)>& apply,
                          int dim, int max_iters, double tol) {
  return max_eigenvalue_psd(CallbackOperator(apply, dim), max_iters, tol);
}

double top_eigenpair_psd(const CMat& a, CVec& vec, int max_iters, double tol) {
  return top_eigenpair_psd(DenseOperator(a), vec, max_iters, tol);
}

CMat sqrt_psd(const CMat& a) {
  const EigenSystem es = eigh(a);
  const int n = a.rows();
  CMat d(n, n);
  for (int i = 0; i < n; ++i) {
    const double lam = std::max(0.0, es.values[static_cast<std::size_t>(i)]);
    d(i, i) = Complex{std::sqrt(lam), 0.0};
  }
  return (es.vectors * d).times_adjoint(es.vectors);
}

double trace_norm(const CMat& a) {
  if (a.rows() == a.cols() && a.is_hermitian(1e-8)) {
    const EigenSystem es = eigh(a);
    double acc = 0.0;
    for (const double lam : es.values) {
      acc += std::abs(lam);
    }
    return acc;
  }
  // General case: singular values are sqrt(eig(A^dagger A)).
  const EigenSystem es = eigh(a.adjoint_times(a));
  double acc = 0.0;
  for (const double lam : es.values) {
    acc += std::sqrt(std::max(0.0, lam));
  }
  return acc;
}

}  // namespace dqma::linalg

// 64-byte-aligned storage for the dense kernels. Complex amplitude arrays
// aligned to a cache line let the compiler emit aligned vector loads in the
// auto-vectorized inner loops (GEMM panels, stride gathers, reductions) and
// keep parallel chunks from sharing a line at their boundaries.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace dqma::linalg {

/// Minimal aligned allocator: std::allocator semantics with a fixed
/// over-alignment for buffers large enough to be streamed. Small buffers
/// (below kAlignThresholdBytes) take the plain operator new fast path —
/// the aligned path measured ~3x slower per allocation, which dominates
/// the small-matrix-heavy code (eigh sweeps, tensor temporaries) while
/// alignment only pays off on multi-cache-line streams. The branch is on
/// the byte count, which allocate and deallocate both receive, so the two
/// always agree. All instances are interchangeable (stateless).
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;

  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  /// Buffers at least this large get the over-aligned path.
  static constexpr std::size_t kAlignThresholdBytes = 4096;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (bytes < kAlignThresholdBytes) {
      return static_cast<T*>(::operator new(bytes));
    }
    return static_cast<T*>(
        ::operator new(bytes, std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    if (bytes < kAlignThresholdBytes) {
      ::operator delete(p);
      return;
    }
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Cache-line width the amplitude buffers align to.
inline constexpr std::size_t kVectorAlignment = 64;

/// A std::vector whose buffer starts on a 64-byte boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kVectorAlignment>>;

/// Split-complex (structure-of-arrays) storage: the real and imaginary
/// parts of a complex buffer in two separate aligned double arrays. This is
/// the layout the explicitly vectorized kernels in linalg/simd.hpp want —
/// a split complex multiply is four pure FMAs with no shuffles, where the
/// interleaved std::complex layout needs permutes on every vector. Consumers
/// never touch re()/im() directly in kernel code: they hand the buffer to a
/// kernel as a ComplexView (linalg/complex_view.hpp), which carries the
/// layout tag.
class SplitBuffer {
 public:
  SplitBuffer() = default;

  /// Zero-initialized flat buffer of `n` complex entries.
  explicit SplitBuffer(long long n)
      : re_(static_cast<std::size_t>(n), 0.0),
        im_(static_cast<std::size_t>(n), 0.0) {}

  /// Zero-initialized matrix-shaped buffer (row-major, rows x cols); the
  /// shape rides into views created from it.
  SplitBuffer(long long rows, long long cols)
      : re_(static_cast<std::size_t>(rows * cols), 0.0),
        im_(static_cast<std::size_t>(rows * cols), 0.0),
        cols_(cols) {}

  long long size() const { return static_cast<long long>(re_.size()); }
  /// 0 for flat buffers; the row length for matrix-shaped ones.
  long long cols() const { return cols_; }

  double* re() { return re_.data(); }
  double* im() { return im_.data(); }
  const double* re() const { return re_.data(); }
  const double* im() const { return im_.data(); }

 private:
  AlignedVector<double> re_;
  AlignedVector<double> im_;
  long long cols_ = 0;
};

}  // namespace dqma::linalg

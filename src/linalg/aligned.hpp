// 64-byte-aligned storage for the dense kernels. Complex amplitude arrays
// aligned to a cache line let the compiler emit aligned vector loads in the
// auto-vectorized inner loops (GEMM panels, stride gathers, reductions) and
// keep parallel chunks from sharing a line at their boundaries.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace dqma::linalg {

/// Minimal aligned allocator: std::allocator semantics with a fixed
/// over-alignment for buffers large enough to be streamed. Small buffers
/// (below kAlignThresholdBytes) take the plain operator new fast path —
/// the aligned path measured ~3x slower per allocation, which dominates
/// the small-matrix-heavy code (eigh sweeps, tensor temporaries) while
/// alignment only pays off on multi-cache-line streams. The branch is on
/// the byte count, which allocate and deallocate both receive, so the two
/// always agree. All instances are interchangeable (stateless).
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;

  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  /// Buffers at least this large get the over-aligned path.
  static constexpr std::size_t kAlignThresholdBytes = 4096;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (bytes < kAlignThresholdBytes) {
      return static_cast<T*>(::operator new(bytes));
    }
    return static_cast<T*>(
        ::operator new(bytes, std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    if (bytes < kAlignThresholdBytes) {
      ::operator delete(p);
      return;
    }
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Cache-line width the amplitude buffers align to.
inline constexpr std::size_t kVectorAlignment = 64;

/// A std::vector whose buffer starts on a 64-byte boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kVectorAlignment>>;

}  // namespace dqma::linalg

#include "linalg/vector.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::linalg {

using util::require;

CVec::CVec(int dim) {
  require(dim >= 0, "CVec: dimension must be non-negative");
  a_.assign(static_cast<std::size_t>(dim), Complex{0.0, 0.0});
}

CVec::CVec(std::vector<Complex> amplitudes)
    : a_(amplitudes.begin(), amplitudes.end()) {}

CVec CVec::basis(int dim, int index) {
  require(index >= 0 && index < dim, "CVec::basis: index out of range");
  CVec v(dim);
  v[index] = Complex{1.0, 0.0};
  return v;
}

CVec& CVec::operator+=(const CVec& other) {
  require(dim() == other.dim(), "CVec::operator+=: dimension mismatch");
  for (int i = 0; i < dim(); ++i) {
    a_[static_cast<std::size_t>(i)] += other[i];
  }
  return *this;
}

CVec& CVec::operator-=(const CVec& other) {
  require(dim() == other.dim(), "CVec::operator-=: dimension mismatch");
  for (int i = 0; i < dim(); ++i) {
    a_[static_cast<std::size_t>(i)] -= other[i];
  }
  return *this;
}

CVec& CVec::operator*=(Complex scalar) {
  for (auto& x : a_) {
    x *= scalar;
  }
  return *this;
}

CVec CVec::operator+(const CVec& other) const {
  CVec out = *this;
  out += other;
  return out;
}

CVec CVec::operator-(const CVec& other) const {
  CVec out = *this;
  out -= other;
  return out;
}

CVec CVec::operator*(Complex scalar) const {
  CVec out = *this;
  out *= scalar;
  return out;
}

Complex CVec::dot(const CVec& other) const {
  require(dim() == other.dim(), "CVec::dot: dimension mismatch");
  Complex acc{0.0, 0.0};
  for (int i = 0; i < dim(); ++i) {
    acc += std::conj(a_[static_cast<std::size_t>(i)]) * other[i];
  }
  return acc;
}

double CVec::norm_sq() const {
  double acc = 0.0;
  for (const auto& x : a_) {
    acc += std::norm(x);
  }
  return acc;
}

double CVec::norm() const { return std::sqrt(norm_sq()); }

void CVec::normalize() {
  const double n = norm();
  require(n > util::kAlgebraTol, "CVec::normalize: zero vector");
  for (auto& x : a_) {
    x /= n;
  }
}

CVec CVec::normalized() const {
  CVec out = *this;
  out.normalize();
  return out;
}

CVec CVec::tensor(const CVec& other) const {
  CVec out(dim() * other.dim());
  for (int i = 0; i < dim(); ++i) {
    const Complex ai = a_[static_cast<std::size_t>(i)];
    if (ai == Complex{0.0, 0.0}) {
      continue;
    }
    for (int j = 0; j < other.dim(); ++j) {
      out[i * other.dim() + j] = ai * other[j];
    }
  }
  return out;
}

double CVec::linf_distance(const CVec& other) const {
  require(dim() == other.dim(), "CVec::linf_distance: dimension mismatch");
  double worst = 0.0;
  for (int i = 0; i < dim(); ++i) {
    worst = std::max(worst, std::abs(a_[static_cast<std::size_t>(i)] - other[i]));
  }
  return worst;
}

}  // namespace dqma::linalg

// Dense complex vectors: the amplitude representation of pure quantum states.
//
// No external linear-algebra dependency is available in this environment, so
// the library ships its own small dense layer. It is deliberately simple
// (contiguous std::vector storage, value semantics) — the simulators never
// need more than a few thousand dimensions in the exact engine, and the fast
// protocol runner works with closed-form inner products instead.
#pragma once

#include <complex>
#include <vector>

#include "linalg/aligned.hpp"

namespace dqma::linalg {

using Complex = std::complex<double>;

/// Dense complex column vector.
class CVec {
 public:
  CVec() = default;

  /// Zero vector of the given dimension.
  explicit CVec(int dim);

  /// From raw amplitudes.
  explicit CVec(std::vector<Complex> amplitudes);

  /// Computational-basis vector |index> in `dim` dimensions.
  static CVec basis(int dim, int index);

  int dim() const { return static_cast<int>(a_.size()); }

  Complex& operator[](int i) { return a_[static_cast<std::size_t>(i)]; }
  const Complex& operator[](int i) const {
    return a_[static_cast<std::size_t>(i)];
  }

  // Note: there is deliberately no raw data() accessor. Kernels take this
  // buffer through linalg/complex_view.hpp views, which carry the memory
  // layout (AoS here, SoA for SplitBuffer) so consumers never name one.

  CVec& operator+=(const CVec& other);
  CVec& operator-=(const CVec& other);
  CVec& operator*=(Complex scalar);

  CVec operator+(const CVec& other) const;
  CVec operator-(const CVec& other) const;
  CVec operator*(Complex scalar) const;

  /// Inner product <this|other>, conjugate-linear in *this (physics
  /// convention).
  Complex dot(const CVec& other) const;

  /// Euclidean norm.
  double norm() const;

  /// Squared Euclidean norm.
  double norm_sq() const;

  /// Normalizes in place; throws if the norm is (numerically) zero.
  void normalize();

  /// Returns the normalized copy.
  CVec normalized() const;

  /// Tensor (Kronecker) product |this> ⊗ |other>.
  CVec tensor(const CVec& other) const;

  /// Max |a_i - b_i| elementwise distance (testing helper).
  double linf_distance(const CVec& other) const;

 private:
  AlignedVector<Complex> a_;
};

}  // namespace dqma::linalg

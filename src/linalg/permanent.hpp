// Matrix permanent via Ryser's formula.
//
// The permutation test (Sec. 3.1 of the paper) accepts a k-partite product
// state |psi_1> ... |psi_k> with probability perm(G)/k!, where G is the Gram
// matrix G_{ij} = <psi_i|psi_j>. This closed form lets the fast protocol
// runner evaluate permutation tests exactly without building the
// (dim^k)-dimensional symmetric-subspace projector.
#pragma once

#include "linalg/matrix.hpp"

namespace dqma::linalg {

/// Permanent of a square complex matrix, Ryser's inclusion-exclusion formula
/// with Gray-code subset enumeration: O(2^n * n) time. Practical for n <= 20;
/// throws for larger inputs.
Complex permanent(const CMat& a);

}  // namespace dqma::linalg

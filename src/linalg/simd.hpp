// Runtime-dispatched SIMD kernel engine over split-complex (SoA) arrays.
//
// Levels. Three dispatch levels exist: kScalar (plain double loops — the
// cross-validated reference, byte-identical to the pre-SIMD engine),
// kAvx2 (256-bit FMA) and kAvx512 (512-bit). The level is resolved once
// per process — CPU feature detection, overridable by the DQMA_SIMD env
// var and the --simd CLI flag — and kernels receive it explicitly.
//
// Determinism contract (extends the repo-wide one in sweep/parallel.hpp):
// each dispatch level is individually deterministic. Every kernel fixes
// its operation order as a pure function of the problem shape — vector
// lane partials are combined in ascending lane order, then the scalar
// tail in ascending index order, on one code path per level — so for a
// fixed level the results are byte-stable across runs, hosts with that
// level, and the kernel-thread axis. Different levels differ by FMA
// contraction and summation width (~1 ulp per reduction step); they are
// cross-validated within tolerance, never byte-compared.
//
// Thread propagation. active() consults a thread-local override
// (LevelScope) before the process-global level. Kernel-pool worker
// threads never see the caller's override, so kernels resolve the level
// ONCE on the calling thread and capture the resolved value into their
// parallel_for closures. Library code should follow the same rule.
#pragma once

#include <complex>
#include <string>

#include "linalg/aligned.hpp"
#include "linalg/complex_view.hpp"

namespace dqma::linalg {
class CMat;
}  // namespace dqma::linalg

namespace dqma::linalg::simd {

using Complex = std::complex<double>;

/// Dispatch level, ordered: every level implies support for the lower ones.
enum class Level {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// "scalar" | "avx2" | "avx512".
const char* level_name(Level level);

/// Parses a level name ("native" maps to detect_best()); throws
/// std::invalid_argument on anything else.
Level parse_level(const std::string& name);

/// Best level this CPU supports (kScalar on non-x86 builds).
Level detect_best();

/// True when this host can execute `level`.
bool is_supported(Level level);

/// `level`, lowered to the best supported level if the host lacks it.
Level clamp_to_supported(Level level);

/// The level kernels should use *on this thread*: the innermost LevelScope
/// override if one is active, else the process-global level (lazily
/// resolved from DQMA_SIMD / CPU detection on first use). Resolve on the
/// calling thread before entering parallel_for — never on pool workers.
Level active();

/// Sets the process-global level; throws if the host does not support it.
void set_global_level(Level level);

/// Startup resolution for mains: applies `cli_value` (the --simd flag,
/// may be empty) over the DQMA_SIMD env var over CPU detection, throwing
/// std::invalid_argument with a readable message on unknown names or
/// unsupported levels — so misconfiguration fails at startup, not inside
/// a kernel.
void resolve_startup(const std::string& cli_value);

/// RAII thread-local level override (tests, the roofline bench). Only
/// affects active() on the constructing thread; throws if unsupported.
class LevelScope {
 public:
  explicit LevelScope(Level level);
  ~LevelScope();
  LevelScope(const LevelScope&) = delete;
  LevelScope& operator=(const LevelScope&) = delete;

 private:
  int prev_;
};

// ---------------------------------------------------------------------------
// Kernels. All take split re/im double arrays; views convert at the edges.
// ---------------------------------------------------------------------------

/// Split-array elementwise copy with layout conversion: AoS<->SoA in either
/// direction (vectorized shuffles), same-layout as plain copies. Extents
/// must match.
void convert(Level level, ConstComplexView src, MutComplexView dst);

/// dst_re/dst_im[i] = src[i].real()/.imag() for i in [0, n).
void deinterleave(Level level, const Complex* src, long long n, double* re,
                  double* im);

/// dst[i] = {re[i], im[i]} for i in [0, n).
void interleave(Level level, const double* re, const double* im, long long n,
                Complex* dst);

/// y += (ar + i*ai) * x over split arrays, ascending index order.
void axpy(Level level, double ar, double ai, const double* xr,
          const double* xi, double* yr, double* yi, long long n);

/// sum_i a_i * b_i (conj_a applies conj to a): fixed-width lane partials
/// combined in ascending lane order, then the scalar tail ascending.
Complex dot(Level level, bool conj_a, const double* ar, const double* ai,
            const double* br, const double* bi, long long n);

/// A local operator packed to column-major split storage: entry (o, s)
/// lives at [s * rows + o], so block_apply reads output-contiguous
/// columns. `nnz` feeds the density heuristic — permutation-like
/// operators are faster through the scalar zero-skip path than through
/// dense vector arithmetic.
struct PackedOp {
  AlignedVector<double> re;
  AlignedVector<double> im;
  long long rows = 0;
  long long cols = 0;
  long long nnz = 0;

  /// Vector arithmetic beats the scalar zero-skip loop once at least a
  /// quarter of the entries are nonzero.
  bool dense_enough() const { return nnz * 4 >= rows * cols; }
};

/// Packs m(o, s) = op(o, s), transposed and/or conjugated first. The two
/// flags cover all four operator orientations the local-ops kernels need
/// (apply, apply-adjoint, right-apply, right-apply-adjoint).
PackedOp pack_operator(const CMat& op, bool transpose, bool conjugate);

/// out[o] = sum_s m(o, s) * in[s] for a packed block operator; zeroes
/// `out` first. Level-generic by construction: it walks s in ascending
/// order calling axpy on column s, so every out[o] sees the same
/// operation order at any thread count, and the per-level rounding comes
/// entirely from the axpy variant. Exact-zero in[s] are skipped (basis
/// states), which cannot change any sum.
void block_apply(Level level, const PackedOp& m, const double* in_re,
                 const double* in_im, double* out_re, double* out_im);

}  // namespace dqma::linalg::simd

// Layout-aware views over complex buffers: the kernel-facing argument types.
//
// The kernel layer (quantum/local_ops, the SIMD engine in linalg/simd) used
// to take raw `CVec&`/`CMat&` plus `.data()` pointers, which hard-coded the
// interleaved std::complex (AoS) layout into every signature. With the SIMD
// engine a second layout exists — split re/im arrays (SoA, see SplitBuffer
// in linalg/aligned.hpp) — so kernel arguments are now views that carry the
// layout tag, the extent, an optional matrix shape, and const-ness:
//
//   ConstComplexView  — read-only; constructible from const CVec/CMat/
//                       SplitBuffer (and from MutComplexView).
//   MutComplexView    — writable; constructible only from non-const owners,
//                       so const-correctness is enforced at the view
//                       boundary instead of by convention.
//
// The converting constructors are implicit on purpose: call sites keep
// reading `apply_local(plan, u, amp)` with `amp` a CVec — no consumer names
// a concrete layout, which is the point of the redesign. Kernels branch on
// `layout()` once at entry (or convert through linalg/simd's interleave /
// deinterleave routines) and never per element on hot paths.
#pragma once

#include <complex>

#include "util/require.hpp"

namespace dqma::linalg {

using Complex = std::complex<double>;

class CVec;
class CMat;
class SplitBuffer;

/// Memory layout of a complex buffer behind a view.
enum class Layout {
  kAoS,  ///< interleaved std::complex<double> (re,im pairs)
  kSoA,  ///< split arrays: all re parts, separately all im parts
};

/// Read-only layout-tagged view. Non-owning; the underlying buffer must
/// outlive the view (kernels take views by value and never store them).
class ConstComplexView {
 public:
  // Implicit: kernel call sites pass CVec/CMat/SplitBuffer directly.
  ConstComplexView(const CVec& v);              // NOLINT(runtime/explicit)
  ConstComplexView(const CMat& m);              // NOLINT(runtime/explicit)
  ConstComplexView(const SplitBuffer& b);       // NOLINT(runtime/explicit)

  /// Raw-pointer factories for scratch buffers inside kernels.
  static ConstComplexView aos(const Complex* p, long long extent,
                              long long cols = 0);
  static ConstComplexView soa(const double* re, const double* im,
                              long long extent, long long cols = 0);

  Layout layout() const { return layout_; }
  /// Total number of complex entries.
  long long extent() const { return extent_; }
  /// Row length when the buffer is matrix-shaped (row-major); 0 for flat.
  long long cols() const { return cols_; }
  bool is_matrix() const { return cols_ > 0; }
  long long rows() const { return cols_ > 0 ? extent_ / cols_ : 0; }

  const Complex* aos_data() const {
    util::require(layout_ == Layout::kAoS, "aos_data() on an SoA view");
    return aos_;
  }
  const double* re() const {
    util::require(layout_ == Layout::kSoA, "re() on an AoS view");
    return re_;
  }
  const double* im() const {
    util::require(layout_ == Layout::kSoA, "im() on an AoS view");
    return im_;
  }

  /// Layout-dispatching element load (flat index). Cold-path helper: hot
  /// kernels branch on layout() once and walk raw pointers instead.
  Complex load(long long i) const {
    return layout_ == Layout::kAoS ? aos_[i] : Complex{re_[i], im_[i]};
  }

 protected:
  ConstComplexView() = default;

  Layout layout_ = Layout::kAoS;
  long long extent_ = 0;
  long long cols_ = 0;
  const Complex* aos_ = nullptr;
  const double* re_ = nullptr;
  const double* im_ = nullptr;
};

/// Writable layout-tagged view. Constructible only from non-const owners.
class MutComplexView : public ConstComplexView {
 public:
  MutComplexView(CVec& v);                      // NOLINT(runtime/explicit)
  MutComplexView(CMat& m);                      // NOLINT(runtime/explicit)
  MutComplexView(SplitBuffer& b);               // NOLINT(runtime/explicit)

  static MutComplexView aos(Complex* p, long long extent, long long cols = 0);
  static MutComplexView soa(double* re, double* im, long long extent,
                            long long cols = 0);

  Complex* aos_data() const {
    util::require(layout_ == Layout::kAoS, "aos_data() on an SoA view");
    return const_cast<Complex*>(aos_);
  }
  double* re() const {
    util::require(layout_ == Layout::kSoA, "re() on an AoS view");
    return const_cast<double*>(re_);
  }
  double* im() const {
    util::require(layout_ == Layout::kSoA, "im() on an AoS view");
    return const_cast<double*>(im_);
  }

  /// Layout-dispatching element store (flat index); cold-path helper.
  void store(long long i, Complex v) const {
    if (layout_ == Layout::kAoS) {
      const_cast<Complex*>(aos_)[i] = v;
    } else {
      const_cast<double*>(re_)[i] = v.real();
      const_cast<double*>(im_)[i] = v.imag();
    }
  }

 private:
  MutComplexView() = default;
};

}  // namespace dqma::linalg

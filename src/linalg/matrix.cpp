#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/aligned.hpp"
#include "linalg/simd.hpp"
#include "sweep/parallel.hpp"
#include "util/require.hpp"

namespace dqma::linalg {

using util::require;

namespace {

/// The split-complex (SIMD) product paths pay a one-time SoA pack/unpack
/// pass per operand; below these shapes the pack traffic wins over the
/// vector arithmetic, so the scalar std::complex path (which is also the
/// kScalar dispatch reference) runs instead. Pure shape function — never
/// thread-count dependent, so per-level determinism is preserved.
bool worth_splitting(simd::Level level, int rows, int inner, int cols) {
  return level != simd::Level::kScalar && rows >= 1 && inner >= 2 &&
         cols >= 8;
}

}  // namespace

CMat::CMat(int rows, int cols) : rows_(rows), cols_(cols) {
  require(rows >= 0 && cols >= 0, "CMat: negative dimensions");
  a_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            Complex{0.0, 0.0});
}

CMat CMat::identity(int n) {
  CMat m(n, n);
  for (int i = 0; i < n; ++i) {
    m(i, i) = Complex{1.0, 0.0};
  }
  return m;
}

CMat CMat::outer(const CVec& u, const CVec& v) {
  CMat m(u.dim(), v.dim());
  for (int i = 0; i < u.dim(); ++i) {
    if (u[i] == Complex{0.0, 0.0}) continue;
    for (int j = 0; j < v.dim(); ++j) {
      m(i, j) = u[i] * std::conj(v[j]);
    }
  }
  return m;
}

CMat CMat::projector(const CVec& u) { return outer(u, u); }

CMat CMat::diagonal(const std::vector<Complex>& entries) {
  const int n = static_cast<int>(entries.size());
  CMat m(n, n);
  for (int i = 0; i < n; ++i) {
    m(i, i) = entries[static_cast<std::size_t>(i)];
  }
  return m;
}

CMat& CMat::operator+=(const CMat& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "CMat::operator+=: shape mismatch");
  for (std::size_t k = 0; k < a_.size(); ++k) {
    a_[k] += other.a_[k];
  }
  return *this;
}

CMat& CMat::operator-=(const CMat& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "CMat::operator-=: shape mismatch");
  for (std::size_t k = 0; k < a_.size(); ++k) {
    a_[k] -= other.a_[k];
  }
  return *this;
}

CMat& CMat::operator*=(Complex scalar) {
  for (auto& x : a_) {
    x *= scalar;
  }
  return *this;
}

CMat CMat::operator+(const CMat& other) const {
  CMat out = *this;
  out += other;
  return out;
}

CMat CMat::operator-(const CMat& other) const {
  CMat out = *this;
  out -= other;
  return out;
}

CMat CMat::operator*(Complex scalar) const {
  CMat out = *this;
  out *= scalar;
  return out;
}

CMat CMat::operator*(const CMat& other) const {
  require(cols_ == other.rows_, "CMat::operator*: shape mismatch");
  CMat out(rows_, other.cols_);
  // Blocked ikj over row panels: each parallel chunk owns a contiguous
  // panel of output rows and streams the k-panel of `other` (kKB rows)
  // while it is hot, instead of sweeping the whole right factor once per
  // output row. Per-(i,j) summation stays in ascending-k order, so results
  // are bit-identical to the unblocked serial loop at any thread count.
  constexpr int kKB = 64;
  const std::size_t row_ops =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(other.cols_);
  // SIMD level resolved once on the calling thread (LevelScope overrides
  // do not propagate to pool workers) and captured by both paths.
  const simd::Level level = simd::active();
  if (worth_splitting(level, rows_, cols_, other.cols_)) {
    // Split path: deinterleave the right factor and accumulate into a
    // split output, turning the inner j-loop into pure-FMA axpy over the
    // packed row of `other`. The exact-zero skip on the left factor (cheap
    // products with embedded local operators) and the ascending-k order
    // per output element both carry over verbatim.
    const long long n = other.cols_;
    SplitBuffer b_pack(static_cast<long long>(cols_) * n);
    simd::deinterleave(level, &other(0, 0), b_pack.size(), b_pack.re(),
                       b_pack.im());
    SplitBuffer out_pack(static_cast<long long>(rows_) * n);
    sweep::parallel_for(
        static_cast<std::size_t>(rows_), sweep::grain_for_ops(row_ops),
        [&](std::size_t row_begin, std::size_t row_end) {
          for (int kb = 0; kb < cols_; kb += kKB) {
            const int kend = std::min(cols_, kb + kKB);
            for (std::size_t r = row_begin; r < row_end; ++r) {
              const long long i = static_cast<long long>(r);
              for (int k = kb; k < kend; ++k) {
                const Complex aik = (*this)(static_cast<int>(i), k);
                if (aik == Complex{0.0, 0.0}) continue;
                simd::axpy(level, aik.real(), aik.imag(),
                           b_pack.re() + static_cast<long long>(k) * n,
                           b_pack.im() + static_cast<long long>(k) * n,
                           out_pack.re() + i * n, out_pack.im() + i * n, n);
              }
            }
          }
        });
    simd::interleave(level, out_pack.re(), out_pack.im(), out_pack.size(),
                     &out(0, 0));
    return out;
  }
  sweep::parallel_for(
      static_cast<std::size_t>(rows_), sweep::grain_for_ops(row_ops),
      [&](std::size_t row_begin, std::size_t row_end) {
        for (int kb = 0; kb < cols_; kb += kKB) {
          const int kend = std::min(cols_, kb + kKB);
          for (std::size_t r = row_begin; r < row_end; ++r) {
            const int i = static_cast<int>(r);
            Complex* out_row = &out(i, 0);
            for (int k = kb; k < kend; ++k) {
              const Complex aik = (*this)(i, k);
              if (aik == Complex{0.0, 0.0}) continue;
              const Complex* b_row = &other(k, 0);
              for (int j = 0; j < other.cols_; ++j) {
                out_row[static_cast<std::size_t>(j)] +=
                    aik * b_row[static_cast<std::size_t>(j)];
              }
            }
          }
        }
      });
  return out;
}

CMat CMat::adjoint_times(const CMat& other) const {
  require(rows_ == other.rows_, "CMat::adjoint_times: shape mismatch");
  CMat out(cols_, other.cols_);
  // out(i, j) = sum_k conj(a(k, i)) * b(k, j). Parallel chunks own panels
  // of output rows i (disjoint writes); within a panel k stays outer so
  // `other`'s rows stream and per-(i,j) summation stays in ascending-k
  // order — the same value at any thread count. No adjoint copy is ever
  // materialized.
  const std::size_t row_ops =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(other.cols_);
  const simd::Level level = simd::active();
  if (worth_splitting(level, cols_, rows_, other.cols_)) {
    // Same split-axpy formulation as operator*; the conjugated coefficient
    // is just (re, -im) on the axpy scalar, so no adjoint copy appears
    // here either. k stays outer: ascending-k per (i, j) at any thread
    // count.
    const long long n = other.cols_;
    SplitBuffer b_pack(static_cast<long long>(rows_) * n);
    simd::deinterleave(level, &other(0, 0), b_pack.size(), b_pack.re(),
                       b_pack.im());
    SplitBuffer out_pack(static_cast<long long>(cols_) * n);
    sweep::parallel_for(
        static_cast<std::size_t>(cols_), sweep::grain_for_ops(row_ops),
        [&](std::size_t i_begin, std::size_t i_end) {
          for (int k = 0; k < rows_; ++k) {
            const Complex* a_row = &(*this)(k, 0);
            for (std::size_t ii = i_begin; ii < i_end; ++ii) {
              const long long i = static_cast<long long>(ii);
              const Complex aki = a_row[ii];
              if (aki == Complex{0.0, 0.0}) continue;
              simd::axpy(level, aki.real(), -aki.imag(),
                         b_pack.re() + static_cast<long long>(k) * n,
                         b_pack.im() + static_cast<long long>(k) * n,
                         out_pack.re() + i * n, out_pack.im() + i * n, n);
            }
          }
        });
    simd::interleave(level, out_pack.re(), out_pack.im(), out_pack.size(),
                     &out(0, 0));
    return out;
  }
  sweep::parallel_for(
      static_cast<std::size_t>(cols_), sweep::grain_for_ops(row_ops),
      [&](std::size_t i_begin, std::size_t i_end) {
        for (int k = 0; k < rows_; ++k) {
          const Complex* a_row = &(*this)(k, 0);
          const Complex* b_row = &other(k, 0);
          for (std::size_t ii = i_begin; ii < i_end; ++ii) {
            const int i = static_cast<int>(ii);
            const Complex aki = std::conj(a_row[static_cast<std::size_t>(i)]);
            if (aki == Complex{0.0, 0.0}) continue;
            Complex* out_row = &out(i, 0);
            for (int j = 0; j < other.cols_; ++j) {
              out_row[static_cast<std::size_t>(j)] +=
                  aki * b_row[static_cast<std::size_t>(j)];
            }
          }
        }
      });
  return out;
}

CMat CMat::times_adjoint(const CMat& other) const {
  require(cols_ == other.cols_, "CMat::times_adjoint: shape mismatch");
  CMat out(rows_, other.rows_);
  // out(i, j) = sum_k a(i, k) * conj(b(j, k)): row-by-row dot products,
  // both factors read along their contiguous rows; parallel chunks own
  // panels of output rows (each entry a full serial dot, so values are
  // thread-count-invariant).
  const std::size_t row_ops =
      static_cast<std::size_t>(other.rows_) * static_cast<std::size_t>(cols_);
  const simd::Level level = simd::active();
  if (worth_splitting(level, rows_, other.rows_, cols_)) {
    // Both factors read along contiguous rows, so pack each whole matrix
    // to SoA once and every output entry becomes one vectorized dot:
    // out(i, j) = sum_k a(i,k) * conj(b(j,k)) = dot(conj_a, b_row_j,
    // a_row_i). Full serial dot per entry keeps thread-count invariance.
    const long long k_len = cols_;
    SplitBuffer a_pack(static_cast<long long>(rows_) * k_len);
    SplitBuffer b_pack(static_cast<long long>(other.rows_) * k_len);
    simd::deinterleave(level, &(*this)(0, 0), a_pack.size(), a_pack.re(),
                       a_pack.im());
    simd::deinterleave(level, &other(0, 0), b_pack.size(), b_pack.re(),
                       b_pack.im());
    sweep::parallel_for(
        static_cast<std::size_t>(rows_), sweep::grain_for_ops(row_ops),
        [&](std::size_t i_begin, std::size_t i_end) {
          for (std::size_t ii = i_begin; ii < i_end; ++ii) {
            const long long i = static_cast<long long>(ii);
            for (int j = 0; j < other.rows_; ++j) {
              out(static_cast<int>(i), j) = simd::dot(
                  level, true,
                  b_pack.re() + static_cast<long long>(j) * k_len,
                  b_pack.im() + static_cast<long long>(j) * k_len,
                  a_pack.re() + i * k_len, a_pack.im() + i * k_len, k_len);
            }
          }
        });
    return out;
  }
  sweep::parallel_for(
      static_cast<std::size_t>(rows_), sweep::grain_for_ops(row_ops),
      [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t ii = i_begin; ii < i_end; ++ii) {
          const int i = static_cast<int>(ii);
          const Complex* a_row = &(*this)(i, 0);
          for (int j = 0; j < other.rows_; ++j) {
            const Complex* b_row = &other(j, 0);
            Complex acc{0.0, 0.0};
            for (int k = 0; k < cols_; ++k) {
              acc += a_row[static_cast<std::size_t>(k)] *
                     std::conj(b_row[static_cast<std::size_t>(k)]);
            }
            out(i, j) = acc;
          }
        }
      });
  return out;
}

CMat& CMat::blend(const CMat& other, Complex w_this, Complex w_other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "CMat::blend: shape mismatch");
  for (std::size_t k = 0; k < a_.size(); ++k) {
    a_[k] = w_this * a_[k] + w_other * other.a_[k];
  }
  return *this;
}

CVec CMat::operator*(const CVec& v) const {
  require(cols_ == v.dim(), "CMat::operator*(CVec): shape mismatch");
  CVec out(rows_);
  // Row panels in parallel; each output entry is one full serial dot, so
  // the matvec (and everything built on it, e.g. dense power iteration) is
  // thread-count-invariant.
  sweep::parallel_for(
      static_cast<std::size_t>(rows_),
      sweep::grain_for_ops(static_cast<std::size_t>(cols_)),
      [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t ii = i_begin; ii < i_end; ++ii) {
          const int i = static_cast<int>(ii);
          Complex acc{0.0, 0.0};
          for (int j = 0; j < cols_; ++j) {
            acc += (*this)(i, j) * v[j];
          }
          out[i] = acc;
        }
      });
  return out;
}

CMat CMat::adjoint() const {
  CMat out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) {
      out(j, i) = std::conj((*this)(i, j));
    }
  }
  return out;
}

Complex CMat::trace() const {
  require(rows_ == cols_, "CMat::trace: matrix not square");
  Complex acc{0.0, 0.0};
  for (int i = 0; i < rows_; ++i) {
    acc += (*this)(i, i);
  }
  return acc;
}

CMat CMat::kron(const CMat& other) const {
  CMat out(rows_ * other.rows_, cols_ * other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) {
      const Complex aij = (*this)(i, j);
      if (aij == Complex{0.0, 0.0}) continue;
      for (int k = 0; k < other.rows_; ++k) {
        for (int l = 0; l < other.cols_; ++l) {
          out(i * other.rows_ + k, j * other.cols_ + l) = aij * other(k, l);
        }
      }
    }
  }
  return out;
}

double CMat::frobenius_norm() const {
  double acc = 0.0;
  for (const auto& x : a_) {
    acc += std::norm(x);
  }
  return std::sqrt(acc);
}

bool CMat::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  for (int i = 0; i < rows_; ++i) {
    for (int j = i; j < cols_; ++j) {
      if (std::abs((*this)(i, j) - std::conj((*this)(j, i))) > tol) {
        return false;
      }
    }
  }
  return true;
}

bool CMat::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  const CMat product = adjoint_times(*this);
  const CMat id = identity(rows_);
  return product.linf_distance(id) <= tol;
}

double CMat::linf_distance(const CMat& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "CMat::linf_distance: shape mismatch");
  double worst = 0.0;
  for (std::size_t k = 0; k < a_.size(); ++k) {
    worst = std::max(worst, std::abs(a_[k] - other.a_[k]));
  }
  return worst;
}

}  // namespace dqma::linalg

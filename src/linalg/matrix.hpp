// Dense complex matrices (row-major) for density operators, unitaries and
// POVM elements in the exact simulation engine.
#pragma once

#include <complex>
#include <vector>

#include "linalg/vector.hpp"

namespace dqma::linalg {

/// Dense complex matrix with value semantics.
class CMat {
 public:
  CMat() = default;

  /// Zero matrix of shape rows x cols.
  CMat(int rows, int cols);

  /// Identity of size n.
  static CMat identity(int n);

  /// Outer product |u><v| (u conjugated on the right, physics convention:
  /// result(i,j) = u_i * conj(v_j)).
  static CMat outer(const CVec& u, const CVec& v);

  /// Projector |u><u| for a (not necessarily normalized) vector.
  static CMat projector(const CVec& u);

  /// Diagonal matrix from entries.
  static CMat diagonal(const std::vector<Complex>& entries);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Complex& operator()(int i, int j) {
    return a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(j)];
  }
  const Complex& operator()(int i, int j) const {
    return a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(j)];
  }

  // Note: there is deliberately no raw data() accessor; kernels view this
  // storage through linalg/complex_view.hpp (see the note in vector.hpp).

  CMat& operator+=(const CMat& other);
  CMat& operator-=(const CMat& other);
  CMat& operator*=(Complex scalar);

  CMat operator+(const CMat& other) const;
  CMat operator-(const CMat& other) const;
  CMat operator*(Complex scalar) const;

  /// Matrix product (blocked, cache-aware; exact zeros in the left factor
  /// are skipped, which makes products with embedded local operators cheap).
  CMat operator*(const CMat& other) const;

  /// Matrix-vector product.
  CVec operator*(const CVec& v) const;

  /// this^dagger * other without materializing the adjoint copy.
  CMat adjoint_times(const CMat& other) const;

  /// this * other^dagger without materializing the adjoint copy.
  CMat times_adjoint(const CMat& other) const;

  /// In-place convex/linear blend: this <- w_this * this + w_other * other,
  /// in one fused pass (same shape required).
  CMat& blend(const CMat& other, Complex w_this, Complex w_other);

  /// Conjugate transpose.
  CMat adjoint() const;

  /// Trace (requires square).
  Complex trace() const;

  /// Kronecker product this ⊗ other.
  CMat kron(const CMat& other) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Hermiticity check within tolerance.
  bool is_hermitian(double tol) const;

  /// Unitarity check within tolerance (requires square).
  bool is_unitary(double tol) const;

  /// Max elementwise |a_ij - b_ij| (testing helper).
  double linf_distance(const CMat& other) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  AlignedVector<Complex> a_;
};

}  // namespace dqma::linalg

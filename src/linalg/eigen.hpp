// Hermitian eigensolver (cyclic complex Jacobi) plus spectral utilities:
// top eigenvalue via power iteration, PSD matrix square root, trace norm.
//
// These are the numerical workhorses behind trace distance, fidelity, and
// the exact worst-case-prover optimizer (which maximizes acceptance over all
// quantum proofs by computing the top eigenvalue of the acceptance operator).
#pragma once

#include <functional>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace dqma::linalg {

/// Result of a Hermitian eigendecomposition A = V diag(values) V^dagger.
struct EigenSystem {
  std::vector<double> values;  ///< ascending order
  CMat vectors;                ///< column k is the eigenvector of values[k]
};

/// Full eigendecomposition of a Hermitian matrix by cyclic complex Jacobi
/// sweeps. Throws if `a` is not (numerically) Hermitian. Intended for
/// dimensions up to a few hundred; complexity O(d^3) per sweep.
EigenSystem eigh(const CMat& a);

/// Largest eigenvalue of a Hermitian PSD matrix by power iteration with a
/// deterministic start vector and Rayleigh-quotient convergence test.
/// `max_iters` bounds work; accuracy ~`tol` on the eigenvalue.
double max_eigenvalue_psd(const CMat& a, int max_iters = 2000,
                          double tol = 1e-10);

/// Matrix-free variant: largest eigenvalue of a Hermitian PSD operator given
/// only its action on a vector. Shares the dense overload's iteration (one
/// `apply` per iteration — the Rayleigh product doubles as the next image,
/// deterministic start vector); used by the exact engine for proof spaces
/// too large to materialize.
double max_eigenvalue_psd(const std::function<CVec(const CVec&)>& apply,
                          int dim, int max_iters = 2000, double tol = 1e-10);

/// Top eigenpair of a Hermitian PSD matrix by power iteration: returns the
/// eigenvalue and writes the (normalized) eigenvector into `vec`. The cheap
/// replacement for a full eigh() when only the dominant direction is needed
/// (alternating-optimization inner loops).
double top_eigenpair_psd(const CMat& a, CVec& vec, int max_iters = 2000,
                         double tol = 1e-12);

/// Hermitian square root of a PSD matrix (eigenvalues clamped at 0).
CMat sqrt_psd(const CMat& a);

/// Trace norm ||A||_1 = sum of singular values. For Hermitian input this is
/// the sum of |eigenvalues|; for general input it is computed from A^dagger A.
double trace_norm(const CMat& a);

}  // namespace dqma::linalg

// Hermitian eigensolver (cyclic complex Jacobi) plus spectral utilities:
// top eigenvalue via the iterative solvers in linalg/lanczos.hpp (Lanczos
// with a power-iteration fallback), PSD matrix square root, trace norm.
//
// These are the numerical workhorses behind trace distance, fidelity, and
// the exact worst-case-prover optimizer (which maximizes acceptance over all
// quantum proofs by computing the top eigenvalue of the acceptance operator).
#pragma once

#include <functional>
#include <vector>

#include "linalg/aligned.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"
#include "linalg/vector.hpp"

namespace dqma::linalg {

/// Result of a Hermitian eigendecomposition A = V diag(values) V^dagger.
struct EigenSystem {
  std::vector<double> values;  ///< ascending order
  CMat vectors;                ///< column k is the eigenvector of values[k]
};

/// Full eigendecomposition of a Hermitian matrix by cyclic complex Jacobi
/// sweeps. Throws if `a` is not (numerically) Hermitian. Intended for
/// dimensions up to a few hundred; complexity O(d^3) per sweep.
EigenSystem eigh(const CMat& a);

/// The single operator interface the iterative spectral routines consume.
/// Dense matrices and matrix-free callbacks (the exact engine's acceptance
/// operator on proof spaces too large to materialize) both implement it,
/// so every backend — the Lanczos solver in linalg/lanczos.hpp and the
/// power-iteration fallback — is written once against apply() + dim() and
/// works for both. Non-owning adapters: the wrapped matrix/callback must
/// outlive the operator.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;
  /// Dimension of the (square) operator.
  virtual int dim() const = 0;
  /// y = A x.
  virtual CVec apply(const CVec& x) const = 0;
  /// out = A x, reusing out's storage when already sized. Iterative solvers
  /// call this so per-matvec allocations amortize to once per solve;
  /// backends that can, override it allocation-free.
  virtual void apply_into(const CVec& x, CVec& out) const { out = apply(x); }
};

/// Dense-matrix operator. At construction it resolves the SIMD dispatch
/// level (on the constructing thread — see linalg/simd.hpp) and, when a
/// vector level is active, packs the matrix rows to split-complex SoA
/// once; apply() then runs the matvec as one vectorized dot per row.
/// Repeated applications (iterative eigensolvers) amortize the single pack.
/// Each output entry is one full serial dot, so results are thread-count
/// invariant at any fixed dispatch level.
///
/// apply_into() reuses a per-operator split-complex input scratch, so an
/// iterative solve allocates once per solve instead of once per matvec.
/// Consequently a single DenseOperator must not be applied from two threads
/// concurrently (solvers are serial per operator; distinct operators are
/// fine).
class DenseOperator : public LinearOperator {
 public:
  explicit DenseOperator(const CMat& a);

  int dim() const override;
  CVec apply(const CVec& x) const override;
  void apply_into(const CVec& x, CVec& out) const override;

 private:
  const CMat& a_;
  simd::Level level_;
  bool packed_ = false;
  SplitBuffer pack_;        ///< row-major SoA copy of a_ when packed_
  mutable SplitBuffer xs_;  ///< reusable split-complex copy of the input
};

/// Matrix-free operator from an apply callback.
class CallbackOperator : public LinearOperator {
 public:
  CallbackOperator(std::function<CVec(const CVec&)> apply, int dim);

  int dim() const override;
  CVec apply(const CVec& x) const override;

 private:
  std::function<CVec(const CVec&)> apply_;
  int dim_;
};

/// Largest eigenvalue of a Hermitian PSD operator. Routes through the
/// spectral dispatcher in linalg/lanczos.hpp with automatic method choice:
/// deterministic Lanczos with full reorthogonalization above the tiny-dim
/// threshold, power iteration below it. `max_iters` bounds work; `tol` is
/// the residual threshold (||A x - theta x|| <= tol * max(1, theta)).
double max_eigenvalue_psd(const LinearOperator& op, int max_iters = 2000,
                          double tol = 1e-10);

/// Top eigenpair of a Hermitian PSD operator via the same dispatcher:
/// returns the eigenvalue and writes the (normalized) eigenvector into
/// `vec`. The cheap replacement for a full eigh() when only the dominant
/// direction is needed (alternating-optimization inner loops).
double top_eigenpair_psd(const LinearOperator& op, CVec& vec,
                         int max_iters = 2000, double tol = 1e-12);

/// Convenience overload: wraps `a` in a DenseOperator.
double max_eigenvalue_psd(const CMat& a, int max_iters = 2000,
                          double tol = 1e-10);

/// Convenience overload: wraps the callback in a CallbackOperator.
double max_eigenvalue_psd(const std::function<CVec(const CVec&)>& apply,
                          int dim, int max_iters = 2000, double tol = 1e-10);

/// Convenience overload: wraps `a` in a DenseOperator.
double top_eigenpair_psd(const CMat& a, CVec& vec, int max_iters = 2000,
                         double tol = 1e-12);

/// Hermitian square root of a PSD matrix (eigenvalues clamped at 0).
CMat sqrt_psd(const CMat& a);

/// Trace norm ||A||_1 = sum of singular values. For Hermitian input this is
/// the sum of |eigenvalues|; for general input it is computed from A^dagger A.
double trace_norm(const CMat& a);

}  // namespace dqma::linalg

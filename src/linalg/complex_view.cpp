#include "linalg/complex_view.hpp"

#include "linalg/aligned.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace dqma::linalg {
namespace {

// Empty owners yield a null view; &v[0] on an empty vector is UB.
const Complex* first_or_null(const CVec& v) {
  return v.dim() > 0 ? &v[0] : nullptr;
}
const Complex* first_or_null(const CMat& m) {
  return m.rows() > 0 && m.cols() > 0 ? &m(0, 0) : nullptr;
}

}  // namespace

ConstComplexView::ConstComplexView(const CVec& v) {
  layout_ = Layout::kAoS;
  extent_ = v.dim();
  aos_ = first_or_null(v);
}

ConstComplexView::ConstComplexView(const CMat& m) {
  layout_ = Layout::kAoS;
  extent_ = static_cast<long long>(m.rows()) * m.cols();
  cols_ = m.cols();
  aos_ = first_or_null(m);
}

ConstComplexView::ConstComplexView(const SplitBuffer& b) {
  layout_ = Layout::kSoA;
  extent_ = b.size();
  cols_ = b.cols();
  re_ = b.re();
  im_ = b.im();
}

ConstComplexView ConstComplexView::aos(const Complex* p, long long extent,
                                       long long cols) {
  ConstComplexView view;
  view.layout_ = Layout::kAoS;
  view.extent_ = extent;
  view.cols_ = cols;
  view.aos_ = p;
  return view;
}

ConstComplexView ConstComplexView::soa(const double* re, const double* im,
                                       long long extent, long long cols) {
  ConstComplexView view;
  view.layout_ = Layout::kSoA;
  view.extent_ = extent;
  view.cols_ = cols;
  view.re_ = re;
  view.im_ = im;
  return view;
}

MutComplexView::MutComplexView(CVec& v) {
  layout_ = Layout::kAoS;
  extent_ = v.dim();
  aos_ = first_or_null(v);
}

MutComplexView::MutComplexView(CMat& m) {
  layout_ = Layout::kAoS;
  extent_ = static_cast<long long>(m.rows()) * m.cols();
  cols_ = m.cols();
  aos_ = first_or_null(m);
}

MutComplexView::MutComplexView(SplitBuffer& b) {
  layout_ = Layout::kSoA;
  extent_ = b.size();
  cols_ = b.cols();
  re_ = b.re();
  im_ = b.im();
}

MutComplexView MutComplexView::aos(Complex* p, long long extent,
                                   long long cols) {
  MutComplexView view;
  view.layout_ = Layout::kAoS;
  view.extent_ = extent;
  view.cols_ = cols;
  view.aos_ = p;
  return view;
}

MutComplexView MutComplexView::soa(double* re, double* im, long long extent,
                                   long long cols) {
  MutComplexView view;
  view.layout_ = Layout::kSoA;
  view.extent_ = extent;
  view.cols_ = cols;
  view.re_ = re;
  view.im_ = im;
  return view;
}

}  // namespace dqma::linalg

// Binary linear codes for quantum fingerprinting [BCWdW01].
//
// The fingerprint theorems only use one property of the code E: {0,1}^n ->
// {0,1}^m: every nonzero message has Hamming weight close to m/2, so that
// fingerprint overlaps |<h_x|h_y>| = |1 - 2 w(E(x xor y))/m| are at most a
// constant delta < 1. A random linear code achieves this with m = O(n /
// delta^2) (Chernoff + union bound over 2^n messages); we generate the
// matrix deterministically from a seed so protocols on different nodes agree
// on the same code without communication, exactly as the paper assumes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace dqma::code {

using util::Bitstring;

/// A binary linear code with an m x n generator matrix over GF(2).
class LinearCode {
 public:
  /// Random code with the given parameters, reproducible from `seed`.
  /// Requires m >= 1, n >= 1.
  LinearCode(int n, int m, std::uint64_t seed);

  int message_length() const { return n_; }
  int block_length() const { return m_; }

  /// Codeword E(x): bit i is <row_i, x> over GF(2).
  Bitstring encode(const Bitstring& x) const;

  /// Weight of the codeword of `x` (without materializing it).
  int codeword_weight(const Bitstring& x) const;

  /// Exact minimum distance by exhausting all 2^n - 1 nonzero messages
  /// (linear codes: distance = min nonzero codeword weight). Requires
  /// n <= 20.
  int min_distance_exhaustive() const;

  /// Exact max of |1 - 2 w / m| over all nonzero messages (the fingerprint
  /// overlap bound delta). Requires n <= 20.
  double max_overlap_exhaustive() const;

  /// Estimated max overlap from `samples` random nonzero messages.
  double max_overlap_sampled(int samples, util::Rng& rng) const;

 private:
  int n_;
  int m_;
  int words_per_row_;
  // Row-major packed generator matrix: row i occupies words_per_row_ words.
  std::vector<std::uint64_t> rows_;
};

/// Block length that guarantees (whp) overlap at most `delta` for message
/// length n: m = ceil(c * (n + slack) / delta^2) with the constant from the
/// Chernoff + union bound argument. Rounded up to the next power of two so
/// the fingerprint register is a whole number of qubits.
int recommended_block_length(int n, double delta);

}  // namespace dqma::code

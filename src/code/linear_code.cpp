#include "code/linear_code.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/require.hpp"

namespace dqma::code {

using util::require;

LinearCode::LinearCode(int n, int m, std::uint64_t seed)
    : n_(n), m_(m), words_per_row_((n + 63) / 64) {
  require(n >= 1, "LinearCode: message length must be positive");
  require(m >= 1, "LinearCode: block length must be positive");
  util::Rng rng(seed);
  rows_.resize(static_cast<std::size_t>(m) *
               static_cast<std::size_t>(words_per_row_));
  for (auto& w : rows_) {
    w = rng.next_u64();
  }
  // Mask tail bits of every row so weights are exact.
  const int tail = n % 64;
  if (tail != 0) {
    const std::uint64_t mask = (1ULL << tail) - 1;
    for (int i = 0; i < m; ++i) {
      rows_[static_cast<std::size_t>(i) * static_cast<std::size_t>(words_per_row_) +
            static_cast<std::size_t>(words_per_row_ - 1)] &= mask;
    }
  }
}

Bitstring LinearCode::encode(const Bitstring& x) const {
  require(x.size() == n_, "LinearCode::encode: message length mismatch");
  // Pack x into words once.
  std::vector<std::uint64_t> xw(static_cast<std::size_t>(words_per_row_), 0);
  for (int i = 0; i < n_; ++i) {
    if (x.get(i)) {
      xw[static_cast<std::size_t>(i / 64)] |= 1ULL << (i % 64);
    }
  }
  Bitstring out(m_);
  for (int r = 0; r < m_; ++r) {
    std::uint64_t acc = 0;
    const std::size_t base = static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(words_per_row_);
    for (int w = 0; w < words_per_row_; ++w) {
      acc ^= rows_[base + static_cast<std::size_t>(w)] &
             xw[static_cast<std::size_t>(w)];
    }
    if (std::popcount(acc) % 2 == 1) {
      out.set(r, true);
    }
  }
  return out;
}

int LinearCode::codeword_weight(const Bitstring& x) const {
  return encode(x).weight();
}

int LinearCode::min_distance_exhaustive() const {
  require(n_ <= 20, "LinearCode::min_distance_exhaustive: n too large");
  int best = m_;
  for (std::uint64_t msg = 1; msg < (1ULL << n_); ++msg) {
    const Bitstring x = Bitstring::from_integer(msg, n_);
    best = std::min(best, codeword_weight(x));
  }
  return best;
}

double LinearCode::max_overlap_exhaustive() const {
  require(n_ <= 20, "LinearCode::max_overlap_exhaustive: n too large");
  double worst = 0.0;
  for (std::uint64_t msg = 1; msg < (1ULL << n_); ++msg) {
    const Bitstring x = Bitstring::from_integer(msg, n_);
    const double overlap =
        std::abs(1.0 - 2.0 * static_cast<double>(codeword_weight(x)) /
                           static_cast<double>(m_));
    worst = std::max(worst, overlap);
  }
  return worst;
}

double LinearCode::max_overlap_sampled(int samples, util::Rng& rng) const {
  double worst = 0.0;
  for (int s = 0; s < samples; ++s) {
    Bitstring x = Bitstring::random(n_, rng);
    if (x.weight() == 0) {
      x.set(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n_))),
            true);
    }
    const double overlap =
        std::abs(1.0 - 2.0 * static_cast<double>(codeword_weight(x)) /
                           static_cast<double>(m_));
    worst = std::max(worst, overlap);
  }
  return worst;
}

int recommended_block_length(int n, double delta) {
  require(n >= 1, "recommended_block_length: n must be positive");
  require(delta > 0.0 && delta < 1.0,
          "recommended_block_length: delta must be in (0,1)");
  // P[|2w/m - 1| > delta] <= 2 exp(-m delta^2 / 2) per message; union bound
  // over 2^n messages needs m >= 2 (n ln 2 + slack) / delta^2.
  const double slack = 8.0;
  const double raw = 2.0 * (static_cast<double>(n) * 0.6931471805599453 + slack) /
                     (delta * delta);
  int m = 1;
  while (m < raw) {
    m *= 2;
  }
  return m;
}

}  // namespace dqma::code

// The unified adversary interface: every constructive attack in the
// library — quantum product-proof attacks (dqma/attacks.hpp) and classical
// tag-collision attacks (dma/attacks.hpp) — behind one name-keyed strategy
// registry, mirroring sweep::register_experiment. exp_topology enumerates
// adversaries by name; adding an attack is one register_adversary call.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenario/sampler.hpp"
#include "util/rng.hpp"

namespace dqma::scenario {

/// One adversary strategy. `completeness` is the acceptance the honest
/// prover achieves on the sample's network under its link noise (the
/// adversary's own baseline for yes instances — classical protocols report
/// their exact completeness, quantum ones the noisy honest run);
/// `attack` is the acceptance this adversary's cheating prover achieves on
/// a no instance. Both receive a per-sample Rng for strategies with
/// stochastic search; deterministic strategies ignore it.
struct Adversary {
  std::string name;
  std::string description;
  std::function<double(const ScenarioSample&, util::Rng&)> completeness;
  std::function<double(const ScenarioSample&, util::Rng&)> attack;
};

/// Registers an adversary; rejects empty and duplicate names loudly
/// (mirrors sweep::register_experiment).
void register_adversary(Adversary adversary);

/// All registered adversaries in registration order.
const std::vector<Adversary>& adversaries();

/// Lookup by name; nullptr when absent.
const Adversary* find_adversary(const std::string& name);

/// Registers the built-in adversaries exactly once (idempotent):
///   geodesic      — dqma geodesic interpolation along root->deviant path
///   step_cut      — dqma step attacks maximized over the cut position
///   all_target    — dqma all-nodes-hold-the-deviant-state attack
///   tag_collision — dma classical collision attack on the budgeted
///                   tag protocol (HashDmaEq with spec.tag_bits)
void register_builtin_adversaries();

}  // namespace dqma::scenario

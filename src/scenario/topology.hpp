// Seeded topology generation: the random network substrate of the scenario
// engine (ROADMAP item 3).
//
// The paper analyzes fixed worst-case networks (paths, and trees via the
// Sec. 3.3 construction); the scenario engine instead samples networks from
// parameterized families and measures the protocols across the sampled
// space. Every generated topology is a pure function of its 64-bit seed:
// the same (spec, seed) pair reproduces the identical graph, terminal set,
// and per-link noise rates on every platform, which is what lets the sweep
// engine shard and coordinate scenario sweeps with the same byte-identity
// guarantees as every other experiment.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "network/graph.hpp"

namespace dqma::scenario {

enum class TopologyFamily {
  kPath,               ///< v_0 - v_1 - ... - v_{n-1}
  kStar,               ///< center plus n-1 leaves (degree cap exempt)
  kCaterpillar,        ///< spine path with leaf legs
  kRandomTree,         ///< degree-capped random attachment tree
  kBoundedDegreeGraph, ///< random tree plus extra edges within the cap
};

/// Families in enumeration order (for sweep axes and tests).
const std::vector<TopologyFamily>& all_families();

/// Stable lowercase name ("path", "star", "caterpillar", "random_tree",
/// "bounded_degree") used as sweep axis values.
const char* family_name(TopologyFamily family);

/// Inverse of family_name; rejects unknown names loudly.
TopologyFamily family_from_name(const std::string& name);

/// Parameters of one topology draw.
struct TopologySpec {
  TopologyFamily family = TopologyFamily::kRandomTree;
  int nodes = 8;       ///< total node count (>= 2)
  int terminals = 2;   ///< number of terminal nodes (in [2, nodes])
  int max_degree = 4;  ///< degree cap (>= 2); kStar is exempt
  double max_noise = 0.0;  ///< per-link rates drawn uniformly from [0, this]
};

/// One generated network: graph, terminal set, and heterogeneous link
/// noise. `edges` lists every edge once in canonical (u < v, sorted) order;
/// `link_rates` is parallel to it.
struct Topology {
  network::Graph graph{1};  ///< placeholder until generated
  std::vector<int> terminals;
  std::vector<std::pair<int, int>> edges;
  std::vector<double> link_rates;

  /// Depolarizing rate of edge {u, v}; requires the edge to exist.
  double link_rate(int u, int v) const;
};

/// Draws a topology. Pure function of (spec, seed): generation consumes the
/// seeded stream in a pinned order (graph structure, then terminals, then
/// link rates), so adding families can never reshuffle existing draws.
/// Every generated graph is connected and, except for kStar, respects
/// spec.max_degree.
Topology generate_topology(const TopologySpec& spec, std::uint64_t seed);

}  // namespace dqma::scenario

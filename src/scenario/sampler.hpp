// Scenario sampling: one seeded draw = (topology, noise, instance) tuple.
//
// A ScenarioSample is everything an adversary or classifier needs to run a
// protocol on a random network: the generated topology (with per-link
// noise), per-terminal inputs, and whether the instance is a yes (all
// inputs equal) or no (one terminal deviates) instance. Like topology
// generation, draw_scenario is a pure function of its 64-bit seed, so the
// exp_topology sweep derives per-sample seeds through the standard
// util::derive_seed namespacing and stays shardable byte-for-byte.
#pragma once

#include <cstdint>
#include <vector>

#include "dqma/eq_graph.hpp"
#include "dqma/noise.hpp"
#include "scenario/topology.hpp"
#include "util/bitstring.hpp"

namespace dqma::scenario {

using util::Bitstring;

/// Parameters of one scenario draw (topology spec plus protocol-instance
/// parameters).
struct ScenarioSpec {
  TopologySpec topology;
  int n = 8;            ///< input length
  double delta = 0.3;   ///< fingerprint inner-product bound
  int reps = 2;         ///< protocol repetitions
  int tag_bits = 5;     ///< classical budgeted protocol's tag width
  double yes_probability = 0.5;  ///< chance the instance is all-equal
};

/// One sampled scenario.
struct ScenarioSample {
  ScenarioSpec spec;
  Topology topology;
  std::vector<Bitstring> inputs;  ///< one per terminal, in terminal order
  bool yes_instance = false;
  int deviant_terminal = -1;  ///< index into topology.terminals; -1 for yes
};

/// Draws a scenario: topology from a sub-seed, then the instance. Pure
/// function of (spec, seed).
ScenarioSample draw_scenario(const ScenarioSpec& spec, std::uint64_t seed);

/// The quantum protocol under measurement on this sample (Algorithm 5 on
/// the sample's network).
protocol::EqGraphProtocol build_protocol(const ScenarioSample& sample);

/// Maps the topology's per-edge noise rates onto the protocol tree's link
/// convention (links indexed by child tree node): a real tree edge gets the
/// rate of the underlying graph edge, virtual-leaf edges and the root get
/// rate 0 (a virtual leaf shares its physical vertex with the node it
/// re-hung under, so no channel is traversed).
protocol::NoiseModel tree_link_noise(const Topology& topology,
                                     const network::SpanningTree& tree);

}  // namespace dqma::scenario

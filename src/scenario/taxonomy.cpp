#include "scenario/taxonomy.hpp"

#include <algorithm>

#include "network/tree.hpp"
#include "util/require.hpp"

namespace dqma::scenario {

using util::require;

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kCompletenessHolds:
      return "completeness_holds";
    case Outcome::kThresholdViolated:
      return "threshold_violated";
    case Outcome::kSoundnessHolds:
      return "soundness_holds";
    case Outcome::kAttackSucceeds:
      return "attack_succeeds";
    case Outcome::kResourceBoundExceeded:
      return "resource_bound_exceeded";
  }
  require(false, "outcome_name: unknown outcome");
  return "";
}

void TaxonomyCounts::add(Outcome outcome) {
  switch (outcome) {
    case Outcome::kCompletenessHolds:
      ++completeness_holds;
      return;
    case Outcome::kThresholdViolated:
      ++threshold_violated;
      return;
    case Outcome::kSoundnessHolds:
      ++soundness_holds;
      return;
    case Outcome::kAttackSucceeds:
      ++attack_succeeds;
      return;
    case Outcome::kResourceBoundExceeded:
      ++resource_bound_exceeded;
      return;
  }
  require(false, "TaxonomyCounts::add: unknown outcome");
}

Outcome classify(const ScenarioSample& sample, const Adversary& adversary,
                 const ClassifyLimits& limits, util::Rng& rng) {
  require(limits.max_local_test_factors >= 2,
          "classify: max_local_test_factors must be >= 2");
  // Resource check first, independent of the adversary: the widest local
  // test on the verification tree is (children + 1) factors.
  const auto tree = network::SpanningTree::build(sample.topology.graph,
                                                 sample.topology.terminals);
  int widest = 0;
  for (int v = 0; v < tree.size(); ++v) {
    widest = std::max(
        widest, static_cast<int>(tree.node(v).children.size()) + 1);
  }
  if (widest > limits.max_local_test_factors) {
    return Outcome::kResourceBoundExceeded;
  }
  if (sample.yes_instance) {
    const double c = adversary.completeness(sample, rng);
    return c >= limits.completeness_threshold ? Outcome::kCompletenessHolds
                                              : Outcome::kThresholdViolated;
  }
  const double a = adversary.attack(sample, rng);
  return a > limits.soundness_threshold ? Outcome::kAttackSucceeds
                                        : Outcome::kSoundnessHolds;
}

}  // namespace dqma::scenario

#include "scenario/sampler.hpp"

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dqma::scenario {

using util::require;
using util::Rng;

ScenarioSample draw_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  require(spec.n >= 1, "draw_scenario: n must be positive");
  require(spec.reps >= 1, "draw_scenario: reps must be positive");
  require(spec.tag_bits >= 1, "draw_scenario: tag_bits must be positive");
  require(spec.yes_probability >= 0.0 && spec.yes_probability <= 1.0,
          "draw_scenario: yes_probability out of range");

  Rng rng(seed);
  ScenarioSample sample;
  sample.spec = spec;
  // Sub-seed the topology so its internal draw count never shifts the
  // instance draws below.
  sample.topology = generate_topology(spec.topology, rng.next_u64());

  const int t = static_cast<int>(sample.topology.terminals.size());
  const Bitstring x = Bitstring::random(spec.n, rng);
  sample.yes_instance = rng.next_bool(spec.yes_probability);
  sample.inputs.assign(static_cast<std::size_t>(t), x);
  if (!sample.yes_instance) {
    sample.deviant_terminal =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(t)));
    Bitstring y = Bitstring::random(spec.n, rng);
    if (y == x) {
      y.flip(0);
    }
    sample.inputs[static_cast<std::size_t>(sample.deviant_terminal)] = y;
  }
  return sample;
}

protocol::EqGraphProtocol build_protocol(const ScenarioSample& sample) {
  return protocol::EqGraphProtocol(
      sample.topology.graph, sample.topology.terminals, sample.spec.n,
      sample.spec.delta, sample.spec.reps);
}

protocol::NoiseModel tree_link_noise(const Topology& topology,
                                     const network::SpanningTree& tree) {
  std::vector<double> rates(static_cast<std::size_t>(tree.size()), 0.0);
  for (int v = 0; v < tree.size(); ++v) {
    const auto& node = tree.node(v);
    if (node.parent < 0 || node.is_virtual) {
      continue;  // root sends nothing; virtual edges traverse no channel
    }
    const auto& parent = tree.node(node.parent);
    rates[static_cast<std::size_t>(v)] =
        topology.link_rate(node.original, parent.original);
  }
  return protocol::NoiseModel::per_link(std::move(rates));
}

}  // namespace dqma::scenario

#include "scenario/topology.hpp"

#include <algorithm>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dqma::scenario {

using network::Graph;
using util::require;
using util::Rng;

const std::vector<TopologyFamily>& all_families() {
  static const std::vector<TopologyFamily> families = {
      TopologyFamily::kPath, TopologyFamily::kStar,
      TopologyFamily::kCaterpillar, TopologyFamily::kRandomTree,
      TopologyFamily::kBoundedDegreeGraph};
  return families;
}

const char* family_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kPath:
      return "path";
    case TopologyFamily::kStar:
      return "star";
    case TopologyFamily::kCaterpillar:
      return "caterpillar";
    case TopologyFamily::kRandomTree:
      return "random_tree";
    case TopologyFamily::kBoundedDegreeGraph:
      return "bounded_degree";
  }
  require(false, "family_name: unknown family");
  return "";
}

TopologyFamily family_from_name(const std::string& name) {
  for (const TopologyFamily family : all_families()) {
    if (name == family_name(family)) {
      return family;
    }
  }
  require(false, "family_from_name: unknown topology family '" + name + "'");
  return TopologyFamily::kPath;
}

namespace {

/// Random attachment tree where every node keeps degree <= cap.
Graph capped_random_tree(int nodes, int cap, Rng& rng) {
  Graph g(nodes);
  std::vector<int> open;  // nodes with spare degree
  open.push_back(0);
  for (int v = 1; v < nodes; ++v) {
    const std::uint64_t pick = rng.next_below(open.size());
    const int parent = open[static_cast<std::size_t>(pick)];
    g.add_edge(parent, v);
    if (g.degree(parent) >= cap) {
      open[static_cast<std::size_t>(pick)] = open.back();
      open.pop_back();
    }
    if (g.degree(v) < cap) {
      open.push_back(v);
    }
    require(!open.empty() || v == nodes - 1,
            "generate_topology: degree cap leaves no attachment point");
  }
  return g;
}

Graph caterpillar(int nodes, int cap, Rng& rng) {
  // Spine of about half the nodes (at least 2), legs attached to random
  // spine vertices with spare degree.
  const int spine = std::min(nodes, std::max(2, nodes / 2));
  Graph g(nodes);
  for (int v = 1; v < spine; ++v) {
    g.add_edge(v - 1, v);
  }
  std::vector<int> open;
  for (int v = 0; v < spine; ++v) {
    if (g.degree(v) < cap) {
      open.push_back(v);
    }
  }
  for (int v = spine; v < nodes; ++v) {
    require(!open.empty(),
            "generate_topology: caterpillar spine is degree-saturated; "
            "raise max_degree or lower nodes");
    const std::uint64_t pick = rng.next_below(open.size());
    const int host = open[static_cast<std::size_t>(pick)];
    g.add_edge(host, v);
    if (g.degree(host) >= cap) {
      open[static_cast<std::size_t>(pick)] = open.back();
      open.pop_back();
    }
  }
  return g;
}

Graph bounded_degree_graph(int nodes, int cap, Rng& rng) {
  Graph g = capped_random_tree(nodes, cap, rng);
  // Densify with extra edges while respecting the cap. The attempt count
  // is fixed (not success-dependent) so the stream position after
  // generation is a function of `nodes` alone.
  const int attempts = nodes;
  for (int a = 0; a < attempts; ++a) {
    const int u = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(nodes)));
    const int v = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(nodes)));
    if (u == v || g.has_edge(u, v) || g.degree(u) >= cap ||
        g.degree(v) >= cap) {
      continue;
    }
    g.add_edge(u, v);
  }
  return g;
}

}  // namespace

double Topology::link_rate(int u, int v) const {
  const std::pair<int, int> key{std::min(u, v), std::max(u, v)};
  const auto it = std::lower_bound(edges.begin(), edges.end(), key);
  require(it != edges.end() && *it == key,
          "Topology::link_rate: no such edge");
  return link_rates[static_cast<std::size_t>(it - edges.begin())];
}

Topology generate_topology(const TopologySpec& spec, std::uint64_t seed) {
  require(spec.nodes >= 2, "generate_topology: need at least 2 nodes");
  require(spec.terminals >= 2 && spec.terminals <= spec.nodes,
          "generate_topology: terminals must be in [2, nodes]");
  require(spec.max_degree >= 2, "generate_topology: max_degree must be >= 2");
  require(spec.max_noise >= 0.0 && spec.max_noise <= 1.0,
          "generate_topology: max_noise out of range");

  Rng rng(seed);
  Topology out{Graph(spec.nodes), {}, {}, {}};

  // Draw order is pinned: (1) graph structure, (2) terminals, (3) link
  // rates. Families that need no structural randomness still get the same
  // downstream draws because terminals/rates come after.
  switch (spec.family) {
    case TopologyFamily::kPath:
      out.graph = Graph::path(spec.nodes - 1);
      break;
    case TopologyFamily::kStar:
      out.graph = Graph::star(spec.nodes - 1);
      break;
    case TopologyFamily::kCaterpillar:
      out.graph = caterpillar(spec.nodes, spec.max_degree, rng);
      break;
    case TopologyFamily::kRandomTree:
      out.graph = capped_random_tree(spec.nodes, spec.max_degree, rng);
      break;
    case TopologyFamily::kBoundedDegreeGraph:
      out.graph = bounded_degree_graph(spec.nodes, spec.max_degree, rng);
      break;
  }

  // Terminals: partial Fisher-Yates over 0..nodes-1.
  std::vector<int> pool(static_cast<std::size_t>(spec.nodes));
  for (int v = 0; v < spec.nodes; ++v) {
    pool[static_cast<std::size_t>(v)] = v;
  }
  for (int k = 0; k < spec.terminals; ++k) {
    const std::uint64_t pick =
        k + rng.next_below(static_cast<std::uint64_t>(spec.nodes - k));
    std::swap(pool[static_cast<std::size_t>(k)],
              pool[static_cast<std::size_t>(pick)]);
    out.terminals.push_back(pool[static_cast<std::size_t>(k)]);
  }

  // Canonical edge list (u < v, lexicographic) and one rate per edge.
  for (int v = 0; v < spec.nodes; ++v) {
    for (const int w : out.graph.neighbors(v)) {
      if (v < w) {
        out.edges.emplace_back(v, w);
      }
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  out.link_rates.reserve(out.edges.size());
  for (std::size_t e = 0; e < out.edges.size(); ++e) {
    out.link_rates.push_back(rng.next_double() * spec.max_noise);
  }
  return out;
}

}  // namespace dqma::scenario

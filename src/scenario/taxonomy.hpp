// The fixed outcome taxonomy of the scenario engine: every (sample,
// adversary) pair classifies into exactly one of five outcomes, and
// exp_topology records the exact integer counts per sweep point so the
// regression gate pins the full classification, not just summary means.
#pragma once

#include "scenario/adversary.hpp"
#include "scenario/sampler.hpp"
#include "util/rng.hpp"

namespace dqma::scenario {

enum class Outcome {
  kCompletenessHolds,     ///< yes instance, honest acceptance >= threshold
  kThresholdViolated,     ///< yes instance, honest acceptance below it
  kSoundnessHolds,        ///< no instance, attack held <= threshold
  kAttackSucceeds,        ///< no instance, attack acceptance above it
  kResourceBoundExceeded, ///< instance too large for exact evaluation
};

inline constexpr int kOutcomeCount = 5;

/// Stable snake_case name (metric key in exp_topology).
const char* outcome_name(Outcome outcome);

/// Evaluation limits. `max_local_test_factors` bounds the widest local
/// permutation test (children + the node's own register) the exact engine
/// evaluates; samples beyond it classify as kResourceBoundExceeded for
/// every adversary uniformly, so taxonomy counts stay comparable across
/// adversaries.
struct ClassifyLimits {
  int max_local_test_factors = 6;
  double completeness_threshold = 2.0 / 3.0;
  double soundness_threshold = 1.0 / 3.0;
};

/// Exact integer outcome counts (the per-point metrics of exp_topology).
struct TaxonomyCounts {
  long long completeness_holds = 0;
  long long threshold_violated = 0;
  long long soundness_holds = 0;
  long long attack_succeeds = 0;
  long long resource_bound_exceeded = 0;

  void add(Outcome outcome);
  long long total() const {
    return completeness_holds + threshold_violated + soundness_holds +
           attack_succeeds + resource_bound_exceeded;
  }
};

/// Classifies one (sample, adversary) pair. The resource check runs first
/// and is adversary-independent; then yes instances test the adversary's
/// completeness value against the completeness threshold and no instances
/// its attack value against the soundness threshold.
Outcome classify(const ScenarioSample& sample, const Adversary& adversary,
                 const ClassifyLimits& limits, util::Rng& rng);

}  // namespace dqma::scenario

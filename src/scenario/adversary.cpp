#include "scenario/adversary.hpp"

#include <algorithm>
#include <cmath>

#include "dma/attacks.hpp"
#include "dma/dma_protocols.hpp"
#include "dqma/attacks.hpp"
#include "util/require.hpp"

namespace dqma::scenario {

using linalg::CVec;
using protocol::EqGraphProtocol;
using protocol::NoiseModel;
using util::require;

namespace {

std::vector<Adversary>& registry() {
  static std::vector<Adversary> adversary_list;
  return adversary_list;
}

/// Terminal index whose graph node became the tree root.
int root_terminal_index(const ScenarioSample& sample,
                        const network::SpanningTree& tree) {
  const int root_node = tree.node(tree.root()).original;
  for (std::size_t k = 0; k < sample.topology.terminals.size(); ++k) {
    if (sample.topology.terminals[k] == root_node) {
      return static_cast<int>(k);
    }
  }
  require(false, "scenario: tree root is not a terminal");
  return -1;
}

/// The terminal the attack aims at: the deviant one, unless the deviant IS
/// the root terminal — then any other terminal disagrees with the root's
/// input and serves as the far end of the interpolation.
int attack_target(const ScenarioSample& sample, int root_idx) {
  require(!sample.yes_instance,
          "scenario: attack evaluated on a yes instance");
  if (sample.deviant_terminal != root_idx) {
    return sample.deviant_terminal;
  }
  return root_idx == 0 ? 1 : 0;
}

/// Honest run of the quantum protocol under the sample's link noise.
double quantum_completeness(const ScenarioSample& sample) {
  const EqGraphProtocol protocol = build_protocol(sample);
  const NoiseModel noise = tree_link_noise(sample.topology, protocol.tree());
  return protocol.noisy_completeness(sample.inputs[0], noise);
}

double geodesic_attack(const ScenarioSample& sample, util::Rng&) {
  require(!sample.yes_instance,
          "scenario: attack evaluated on a yes instance");
  const EqGraphProtocol protocol = build_protocol(sample);
  const NoiseModel noise = tree_link_noise(sample.topology, protocol.tree());
  return protocol.noisy_best_attack_accept(sample.inputs, noise);
}

/// Step attacks along the root-to-target path, maximized over the cut:
/// nodes up to the cut hold the root's state, the rest the target's.
double step_cut_attack(const ScenarioSample& sample, util::Rng&) {
  const EqGraphProtocol protocol = build_protocol(sample);
  const auto& tree = protocol.tree();
  const NoiseModel noise = tree_link_noise(sample.topology, tree);
  const int root_idx = root_terminal_index(sample, tree);
  const int target = attack_target(sample, root_idx);

  const CVec h_root =
      protocol.scheme().state(sample.inputs[static_cast<std::size_t>(root_idx)]);
  const CVec h_dev =
      protocol.scheme().state(sample.inputs[static_cast<std::size_t>(target)]);
  const int leaf = tree.leaf_of_terminal(
      sample.topology.terminals[static_cast<std::size_t>(target)]);
  const auto path = tree.path_between(tree.root(), leaf);

  EqGraphProtocol::TreeProof cheat;
  cheat.reg0.assign(static_cast<std::size_t>(tree.size()), h_root);
  cheat.reg1 = cheat.reg0;
  double best = 0.0;
  const int len = static_cast<int>(path.size());
  for (int cut = 0; cut < len; ++cut) {
    for (int p = 1; p + 1 < len; ++p) {
      const int v = path[static_cast<std::size_t>(p)];
      if (protocol.is_input_node(v)) {
        continue;
      }
      const CVec& state = p <= cut ? h_root : h_dev;
      cheat.reg0[static_cast<std::size_t>(v)] = state;
      cheat.reg1[static_cast<std::size_t>(v)] = state;
    }
    best = std::max(best,
                    protocol.noisy_single_rep_accept(sample.inputs, cheat,
                                                     noise));
  }
  return std::pow(best, protocol.reps());
}

/// Every non-input node holds the target's state: only the tests adjacent
/// to the root (and to agreeing terminals) suffer.
double all_target_attack(const ScenarioSample& sample, util::Rng&) {
  const EqGraphProtocol protocol = build_protocol(sample);
  const auto& tree = protocol.tree();
  const NoiseModel noise = tree_link_noise(sample.topology, tree);
  const int root_idx = root_terminal_index(sample, tree);
  const int target = attack_target(sample, root_idx);
  const CVec h_dev =
      protocol.scheme().state(sample.inputs[static_cast<std::size_t>(target)]);

  EqGraphProtocol::TreeProof cheat;
  cheat.reg0.assign(static_cast<std::size_t>(tree.size()), h_dev);
  cheat.reg1 = cheat.reg0;
  const double single =
      protocol.noisy_single_rep_accept(sample.inputs, cheat, noise);
  return std::pow(single, protocol.reps());
}

/// Classical collision attack on the budgeted tag protocol: with
/// tag_bits < n the seeded hash has colliding inputs, and splicing their
/// tags makes every node accept (soundness error 1). tag_bits >= n models
/// the sound trivial protocol — no collision exists.
double tag_collision_attack(const ScenarioSample& sample, util::Rng& rng) {
  require(!sample.yes_instance,
          "scenario: attack evaluated on a yes instance");
  const int n = sample.spec.n;
  if (sample.spec.tag_bits >= n) {
    return 0.0;  // TrivialDmaEq-grade tags are injective
  }
  // Path length between the root terminal and the deviant in the graph;
  // the tag protocol only needs some r >= 2 (the tag function is what the
  // collision search exercises).
  const auto tree = network::SpanningTree::build(sample.topology.graph,
                                                 sample.topology.terminals);
  const int root_idx = root_terminal_index(sample, tree);
  const int target = attack_target(sample, root_idx);
  const auto dist = sample.topology.graph.bfs_distances(
      sample.topology.terminals[static_cast<std::size_t>(root_idx)]);
  const int hops = dist[static_cast<std::size_t>(
      sample.topology.terminals[static_cast<std::size_t>(target)])];
  const dma::HashDmaEq budgeted(n, std::max(2, hops), sample.spec.tag_bits);
  return dma::collision_attack_soundness_error(budgeted, 1 << 12, rng);
}

}  // namespace

void register_adversary(Adversary adversary) {
  require(!adversary.name.empty(), "register_adversary: empty name");
  require(static_cast<bool>(adversary.completeness) &&
              static_cast<bool>(adversary.attack),
          "register_adversary: both strategy functions are required");
  for (const auto& existing : registry()) {
    require(existing.name != adversary.name,
            "register_adversary: duplicate name " + adversary.name);
  }
  registry().push_back(std::move(adversary));
}

const std::vector<Adversary>& adversaries() { return registry(); }

const Adversary* find_adversary(const std::string& name) {
  for (const auto& adversary : registry()) {
    if (adversary.name == name) {
      return &adversary;
    }
  }
  return nullptr;
}

void register_builtin_adversaries() {
  static const bool registered = [] {
    const auto honest = [](const ScenarioSample& sample, util::Rng&) {
      return quantum_completeness(sample);
    };
    register_adversary(
        {"geodesic",
         "dqma geodesic interpolation along the root-to-deviant path",
         honest, geodesic_attack});
    register_adversary(
        {"step_cut", "dqma step attacks maximized over the cut position",
         honest, step_cut_attack});
    register_adversary(
        {"all_target", "dqma attack with every node holding the deviant state",
         honest, all_target_attack});
    register_adversary(
        {"tag_collision",
         "dma classical collision attack on the budgeted tag protocol",
         [](const ScenarioSample&, util::Rng&) { return 1.0; },
         tag_collision_attack});
    return true;
  }();
  (void)registered;
}

}  // namespace dqma::scenario

// Bounded line framing for the dqma_serve transports.
//
// The daemon's protocol is one JSON object per '\n'-terminated line. A
// client (or attacker) that streams gigabytes without a newline must not
// grow an unbounded reassembly buffer: LineDecoder caps the line length
// (default 1 MiB — far above any legal request), reports an oversized line
// as a single event the moment the cap is crossed (so the daemon can answer
// with a framed error while the bytes are still arriving), discards the
// rest of that line, and resynchronizes at the next newline. Memory use is
// O(max_line) regardless of input.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace dqma::serve {

class LineDecoder {
 public:
  /// 1 MiB: generous for line-delimited JSON requests, small enough that a
  /// daemon with thousands of connections cannot be memory-exhausted.
  static constexpr std::size_t kDefaultMaxLine = 1u << 20;

  struct Line {
    std::string text;       ///< the complete line, '\n' stripped
    bool oversized = false; ///< true: the line crossed the cap; text is empty
  };

  explicit LineDecoder(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {}

  /// Feeds raw transport bytes; complete lines (and oversize events) become
  /// retrievable via next().
  void feed(std::string_view bytes);

  /// Pops the next decoded line in arrival order, or nullopt when more
  /// bytes are needed.
  std::optional<Line> next();

  /// Flushes the trailing unterminated line at end of stream (legal for the
  /// stdin/file transports). Returns nullopt when nothing is buffered or
  /// the tail belonged to an already-reported oversized line.
  std::optional<Line> finish();

  std::size_t max_line() const { return max_line_; }

 private:
  std::size_t max_line_;
  std::string pending_;      // bytes after the last newline, <= max_line_
  bool discarding_ = false;  // inside an oversized line, waiting for '\n'
  std::deque<Line> ready_;
};

}  // namespace dqma::serve

#include "serve/server.hpp"

#include <exception>
#include <utility>

#include "serve/handlers.hpp"
#include "serve/request.hpp"
#include "util/json_reader.hpp"

namespace dqma::serve {
namespace {

/// Best-effort id extraction for rejection responses: the request is never
/// executed, but a client correlating by id should still see which request
/// bounced. Malformed lines yield "".
std::string peek_id(std::string_view line) {
  try {
    const util::json::Node node = util::json::parse(line);
    if (node.is_object()) {
      for (const auto& [key, value] : node.members()) {
        if (key == "id") {
          return value.as_string();
        }
      }
    }
  } catch (const std::exception&) {
  }
  return "";
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(config),
      pool_(config.threads),
      dispatcher_([this] { dispatcher_loop(); }) {
  if (config_.max_pending == 0) {
    config_.max_pending = 1;
  }
}

Server::~Server() { shutdown(); }

bool Server::submit(std::string line, ResponseFn respond) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      lock.unlock();
      respond(error_response(peek_id(line), "server shutting down",
                             /*retry=*/false));
      return false;
    }
    if (queue_.size() >= config_.max_pending) {
      ++overloaded_;
      lock.unlock();
      respond(error_response(peek_id(line), "server overloaded",
                             /*retry=*/true));
      return false;
    }
    ++accepted_;
    queue_.push_back(Pending{std::move(line), std::move(respond)});
  }
  queue_cv_.notify_one();
  return true;
}

void Server::dispatcher_loop() {
  std::vector<Pending> batch;
  std::vector<std::string> responses;
  std::vector<unsigned char> oks;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ && drained
      }
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      busy_ = true;
    }

    responses.assign(batch.size(), std::string());
    oks.assign(batch.size(), 0);
    pool_.run_indexed(batch.size(), [&](std::size_t i) {
      bool request_ok = false;
      responses[i] = handle_request_line(batch[i].line, cache_, &request_ok);
      oks[i] = request_ok ? 1 : 0;
    });

    // Deliver in arrival order: per-connection FIFO, hence deterministic
    // response streams. A throwing callback must not wedge drain().
    for (std::size_t i = 0; i < batch.size(); ++i) {
      try {
        batch[i].respond(std::move(responses[i]));
      } catch (const std::exception&) {
      }
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (const unsigned char request_ok : oks) {
        ++(request_ok ? ok_ : failed_);
      }
      busy_ = false;
    }
    idle_cv_.notify_all();
    batch.clear();
  }
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void Server::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !dispatcher_.joinable()) {
      return;
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServerStats stats;
  stats.accepted = accepted_;
  stats.overloaded = overloaded_;
  stats.ok = ok_;
  stats.failed = failed_;
  stats.cache = cache_.stats();
  return stats;
}

}  // namespace dqma::serve

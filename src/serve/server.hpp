// The dqma_serve request engine: a bounded pending queue feeding a
// dispatcher thread that fans batches of requests out over a ThreadPool.
//
// Concurrency model. Transports (stdin reader, socket acceptor) call
// submit() from any thread; the single dispatcher thread owns the
// ThreadPool (run_indexed is single-owner) and repeatedly drains the queue
// into a batch, computes every response in parallel, then delivers the
// responses in arrival order. Because each response line is a pure
// function of its request line (handlers.hpp) and delivery preserves
// per-connection arrival order, a client's response stream is
// byte-identical across runs, thread counts, and cache temperature.
//
// Backpressure. The queue is bounded (ServerConfig::max_pending): submit()
// on a full queue does not block or drop silently — it synthesizes an
// overload error response carrying "retry": true so well-behaved clients
// back off and resubmit.
//
// Shutdown. shutdown() stops accepting, lets the dispatcher drain every
// queued and in-flight request, and joins it — the SIGTERM path loses no
// accepted work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/shape_cache.hpp"
#include "sweep/thread_pool.hpp"

namespace dqma::serve {

struct ServerConfig {
  /// Threads applied to each batch; <= 0 selects hardware concurrency.
  int threads = 0;
  /// Queue bound; submissions beyond it get an overload error response.
  std::size_t max_pending = 1024;
};

struct ServerStats {
  std::uint64_t accepted = 0;    ///< requests queued for dispatch
  std::uint64_t overloaded = 0;  ///< rejected: queue full
  std::uint64_t ok = 0;          ///< "ok": true responses delivered
  std::uint64_t failed = 0;      ///< "ok": false responses delivered
  ShapeCache::Stats cache;
};

/// Receives exactly one response line (no trailing newline). Invoked from
/// the dispatcher thread for accepted requests, inline on the submitting
/// thread for rejected ones — implementations synchronize their sink.
using ResponseFn = std::function<void(std::string)>;

class Server {
 public:
  explicit Server(ServerConfig config);

  /// Drains and joins (equivalent to shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one request line; `respond` is invoked exactly once. A full
  /// queue (or a server already shutting down) rejects the request with an
  /// error response instead — the return value says which happened.
  bool submit(std::string line, ResponseFn respond);

  /// Blocks until every accepted request has been responded to.
  void drain();

  /// Stops accepting, drains, joins the dispatcher. Idempotent.
  void shutdown();

  ServerStats stats() const;
  ShapeCache& cache() { return cache_; }
  int thread_count() const { return pool_.thread_count(); }

 private:
  struct Pending {
    std::string line;
    ResponseFn respond;
  };

  void dispatcher_loop();

  ServerConfig config_;
  sweep::ThreadPool pool_;
  ShapeCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< dispatcher waits for work/stop
  std::condition_variable idle_cv_;   ///< drain() waits for quiescence
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool busy_ = false;  ///< dispatcher is executing a batch
  std::uint64_t accepted_ = 0;
  std::uint64_t overloaded_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t failed_ = 0;

  std::thread dispatcher_;  // last member: starts after state is ready
};

}  // namespace dqma::serve

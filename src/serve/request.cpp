#include "serve/request.hpp"

#include "sweep/json.hpp"
#include "sweep/trajectory.hpp"
#include "util/json_reader.hpp"
#include "util/require.hpp"

namespace dqma::serve {

Request parse_request(std::string_view line) {
  const util::json::Node node = util::json::parse(line);
  util::require(node.is_object(), "request: not a JSON object");

  Request request;
  for (const auto& [key, value] : node.members()) {
    if (key == "workload") {
      request.workload = value.as_string();
    } else if (key == "id") {
      request.id = value.as_string();
    } else if (key == "seed") {
      request.seed = value.as_uint();
    } else if (key == "params") {
      request.params = sweep::named_values_from_json(value);
    } else {
      // Reject instead of ignoring: a typoed field silently changing the
      // workload's defaults would be a miserable bug to chase.
      util::require(false, "request: unknown field '" + key + "'");
    }
  }
  util::require(!request.workload.empty(),
                "request: missing or empty 'workload'");
  return request;
}

std::string ok_response(const std::string& id,
                        const sweep::Metrics& metrics) {
  sweep::Json response = sweep::Json::object();
  response.add("id", sweep::Json(id));
  response.add("ok", sweep::Json(true));
  response.add("metrics", sweep::Json::from_named_values(metrics));
  return response.dump_compact();
}

std::string error_response(const std::string& id, std::string_view error,
                           bool retry) {
  sweep::Json response = sweep::Json::object();
  response.add("id", sweep::Json(id));
  response.add("ok", sweep::Json(false));
  response.add("error", sweep::Json(std::string(error)));
  if (retry) {
    response.add("retry", sweep::Json(true));
  }
  return response.dump_compact();
}

}  // namespace dqma::serve

// The dqma_serve workload registry: named request handlers, each a ported
// examples/ scenario turned into a parameterized verification service.
//
// A handler receives the parsed request, the server's shape cache (for
// request-independent artifacts: protocol instances with their fingerprint
// codes, LocalOpPlans and precompiled MC acceptance tables), and a private
// Rng seeded from (workload name, request seed) only — so its metrics are
// a pure function of the request line, independent of thread count, cache
// temperature, and request interleaving.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request.hpp"
#include "serve/shape_cache.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"

namespace dqma::serve {

using HandlerFn =
    std::function<sweep::Metrics(const Request&, ShapeCache&, util::Rng&)>;

struct Workload {
  std::string name;
  std::string description;
  HandlerFn run;
};

/// Registers a workload; duplicate names are rejected. Call during startup
/// (registration is not synchronized against concurrent lookups).
void register_workload(Workload workload);

/// All registered workloads, in registration order.
const std::vector<Workload>& workloads();

/// Lookup by name; nullptr when unknown.
const Workload* find_workload(std::string_view name);

/// Registers the built-in workloads (idempotent):
///   * replicated_data_audit — graph EQ audit on a random tree
///     (examples/replicated_data_audit.cpp as a service);
///   * config_drift — Hamming-distance drift check
///     (examples/config_drift.cpp);
///   * auction_gt — sealed-bid greater-than on a relay chain
///     (examples/auction_gt.cpp).
void register_builtin_workloads();

/// Runs one request line end to end: parse, dispatch, serialize. Never
/// throws — malformed or failing requests become error responses (and set
/// *ok to false when the caller asks). This is THE definition of the
/// response bytes; server, bench, and tests all funnel through it.
std::string handle_request_line(std::string_view line, ShapeCache& cache,
                                bool* ok = nullptr);

}  // namespace dqma::serve

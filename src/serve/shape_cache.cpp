#include "serve/shape_cache.hpp"

namespace dqma::serve {

std::shared_ptr<ShapeCache::Slot> ShapeCache::claim_slot(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(key);
  if (it != slots_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return slots_.emplace(key, std::make_shared<Slot>()).first->second;
}

ShapeCache::Stats ShapeCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, static_cast<std::uint64_t>(slots_.size())};
}

void ShapeCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

}  // namespace dqma::serve

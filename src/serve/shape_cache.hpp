// A thread-safe, single-flight cache for request-independent artifacts
// keyed by shape.
//
// Protocol construction is where dqma requests spend most of their time on
// repeated shapes: fingerprint codes, deduplicated LocalOpPlans, and the
// precompiled Monte-Carlo acceptance tables inside ForallFProtocol all
// depend only on the instance SHAPE (dimensions, path length, repetition
// count — never on the inputs or the request seed). The cache holds one
// shared immutable instance per shape key so concurrent requests reuse it.
//
// Single-flight: the first thread to request a key builds the value while
// later threads for the same key block on a per-key once_flag instead of
// duplicating the (expensive) construction. This also makes the hit/miss
// counters deterministic for a fixed request stream at any thread count:
// misses == distinct keys ever requested, hits == lookups - misses.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace dqma::serve {

class ShapeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
  };

  /// Returns the cached value for `key`, building it with `make` (-> T or
  /// something convertible to std::shared_ptr<const T>) on first request.
  /// Keys must be unique across types — prefix them with the workload or
  /// artifact name (e.g. "eq_graph/n=256/..."). If `make` throws, the
  /// exception propagates and the once_flag stays unset, so the next
  /// caller retries the build.
  template <typename T, typename MakeFn>
  std::shared_ptr<const T> get_or_build(const std::string& key,
                                        MakeFn&& make) {
    const std::shared_ptr<Slot> slot = claim_slot(key);
    std::call_once(slot->once, [&] {
      slot->value = std::shared_ptr<const void>(
          std::make_shared<const T>(make()));
    });
    return std::static_pointer_cast<const T>(slot->value);
  }

  Stats stats() const;

  /// Drops every entry (and resets nothing else: counters keep counting).
  void clear();

 private:
  struct Slot {
    std::once_flag once;
    std::shared_ptr<const void> value;
  };

  /// Finds or creates the slot for `key`, counting a hit or a miss.
  std::shared_ptr<Slot> claim_slot(const std::string& key);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dqma::serve

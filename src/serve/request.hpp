// The dqma_serve line protocol: one JSON object per request line, one
// compact JSON object per response line.
//
// Request:  {"workload": "<name>", "id": "<echoed>", "seed": <uint64>,
//            "params": {<scalars>}}
//   * workload is required; everything else is optional (id defaults to
//     "", seed to 0, params to empty — handlers fill in their defaults).
// Response: {"id": "...", "ok": true,  "metrics": {...}}
//       or  {"id": "...", "ok": false, "error": "..."(, "retry": true)}
//   * "retry": true marks transient failures (backpressure overload); the
//     client may resubmit. Malformed or unknown requests are permanent
//     errors without the flag.
//
// Determinism contract: a response line is a pure function of its request
// line — parsing is strict RFC 8259 (util/json_reader), handler RNG is
// seeded from (workload, seed) only, and serialization reuses the
// deterministic sweep JSON writer — so replaying a request stream yields
// byte-identical responses at any server thread count, warm or cold cache.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sweep/sweep.hpp"

namespace dqma::serve {

/// One parsed verification request.
struct Request {
  std::string id;          ///< echoed verbatim in the response
  std::string workload;    ///< handler name (see handlers.hpp)
  sweep::ParamPoint params;
  std::uint64_t seed = 0;  ///< request-level RNG seed
};

/// Parses one request line; throws std::invalid_argument (util::require)
/// on malformed JSON, a missing/empty workload, or unknown fields.
Request parse_request(std::string_view line);

/// The success response line (no trailing newline).
std::string ok_response(const std::string& id, const sweep::Metrics& metrics);

/// The error response line (no trailing newline). `retry` marks transient
/// failures (overload) the client may resubmit.
std::string error_response(const std::string& id, std::string_view error,
                           bool retry = false);

}  // namespace dqma::serve

#include "serve/framing.hpp"

#include <utility>

namespace dqma::serve {

void LineDecoder::feed(std::string_view bytes) {
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t newline = bytes.find('\n', pos);
    if (discarding_) {
      if (newline == std::string_view::npos) {
        return;  // still inside the oversized line; drop everything
      }
      discarding_ = false;
      pos = newline + 1;
      continue;
    }
    if (newline == std::string_view::npos) {
      const std::size_t chunk = bytes.size() - pos;
      if (pending_.size() + chunk > max_line_) {
        // Report the moment the cap is crossed — the daemon answers while
        // the oversized line is still streaming in — then resync at '\n'.
        ready_.push_back(Line{std::string(), true});
        pending_.clear();
        discarding_ = true;
        return;
      }
      pending_.append(bytes.data() + pos, chunk);
      return;
    }
    const std::size_t line_bytes = pending_.size() + (newline - pos);
    if (line_bytes > max_line_) {
      ready_.push_back(Line{std::string(), true});
      pending_.clear();
    } else {
      std::string text = std::move(pending_);
      text.append(bytes.data() + pos, newline - pos);
      pending_.clear();
      ready_.push_back(Line{std::move(text), false});
    }
    pos = newline + 1;
  }
}

std::optional<LineDecoder::Line> LineDecoder::next() {
  if (ready_.empty()) {
    return std::nullopt;
  }
  Line line = std::move(ready_.front());
  ready_.pop_front();
  return line;
}

std::optional<LineDecoder::Line> LineDecoder::finish() {
  if (!ready_.empty()) {
    Line line = std::move(ready_.front());
    ready_.pop_front();
    return line;
  }
  if (discarding_) {
    discarding_ = false;  // tail of an already-reported oversized line
    return std::nullopt;
  }
  if (pending_.empty()) {
    return std::nullopt;
  }
  Line line{std::move(pending_), false};
  pending_.clear();
  return line;
}

}  // namespace dqma::serve

// dqma_serve — a long-running verification daemon.
//
// Reads line-delimited JSON requests (see serve/request.hpp for the
// protocol), dispatches them onto the server engine, and writes one
// compact JSON response line per request. Three transports:
//
//   dqma_serve                       requests on stdin, responses on stdout
//   dqma_serve --input PATH          read a file or FIFO, respond on stdout
//   dqma_serve --socket PATH         Unix-domain stream socket; each client
//                                    gets its own request/response stream
//
// Responses for a given input stream are byte-identical across runs and
// --threads values (fixed request seeds); pipe two identical request files
// through and `cmp` the outputs. SIGINT/SIGTERM drain every accepted
// request before exiting. --stats prints engine and cache counters to
// stderr at shutdown (stderr, so stdout stays cmp-clean).
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "linalg/simd.hpp"
#include "serve/framing.hpp"
#include "serve/handlers.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "util/fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DQMA_SERVE_POSIX 1
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace dqma::serve {
namespace {

struct Options {
  std::string socket_path;  // empty: stream mode
  std::string input_path;   // empty: stdin
  int threads = 0;
  std::size_t max_pending = 1024;
  bool stats = false;
  bool list = false;
  bool help = false;
};

void print_usage(std::ostream& out) {
  out << "usage: dqma_serve [--socket PATH | --input PATH] [--threads N]\n"
         "                  [--max-pending N] [--stats] [--list]\n"
         "\n"
         "Reads line-delimited JSON verification requests and writes one\n"
         "compact JSON response line per request, in request order.\n"
         "Request:  {\"workload\": NAME, \"id\": ID, \"seed\": N,"
         " \"params\": {...}}\n"
         "Response: {\"id\": ID, \"ok\": true, \"metrics\": {...}}\n"
         "      or  {\"id\": ID, \"ok\": false, \"error\": MSG"
         " (, \"retry\": true)}\n"
         "\n"
         "  --socket PATH     serve a Unix-domain stream socket (POSIX)\n"
         "  --input PATH      read requests from a file or FIFO\n"
         "  --threads N       worker threads (default: hardware)\n"
         "  --max-pending N   queue bound before overload responses"
         " (default 1024)\n"
         "  --stats           print request/cache counters to stderr on"
         " exit\n"
         "  --list            list registered workloads and exit\n";
}

bool parse_options(int argc, char** argv, Options& options,
                   std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        error = std::string(flag) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      const char* value = next_value("--socket");
      if (value == nullptr) return false;
      options.socket_path = value;
    } else if (arg == "--input") {
      const char* value = next_value("--input");
      if (value == nullptr) return false;
      options.input_path = value;
    } else if (arg == "--threads") {
      const char* value = next_value("--threads");
      if (value == nullptr) return false;
      options.threads = std::atoi(value);
    } else if (arg == "--max-pending") {
      const char* value = next_value("--max-pending");
      if (value == nullptr) return false;
      const long long parsed = std::atoll(value);
      if (parsed <= 0) {
        error = "--max-pending must be positive";
        return false;
      }
      options.max_pending = static_cast<std::size_t>(parsed);
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else {
      error = "unknown option '" + arg + "'";
      return false;
    }
  }
  if (!options.socket_path.empty() && !options.input_path.empty()) {
    error = "--socket and --input are mutually exclusive";
    return false;
  }
  return true;
}

void print_stats(const Server& server) {
  const ServerStats stats = server.stats();
  std::cerr << "dqma_serve: accepted=" << stats.accepted
            << " overloaded=" << stats.overloaded << " ok=" << stats.ok
            << " failed=" << stats.failed << " cache_hits=" << stats.cache.hits
            << " cache_misses=" << stats.cache.misses
            << " cache_entries=" << stats.cache.entries << "\n";
}

#ifdef DQMA_SERVE_POSIX
// Self-pipe carrying SIGINT/SIGTERM into the poll loops: both transports
// multiplex their input fd against g_signal_pipe[0], so a stop signal
// wakes a blocked poll even when no request bytes ever arrive.
volatile std::sig_atomic_t g_stop = 0;
int g_signal_pipe[2] = {-1, -1};

void on_stop_signal(int) {
  g_stop = 1;
  if (g_signal_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
  }
}

/// SA_RESTART deliberately absent: a signal must interrupt a blocked
/// poll/open so the transports can notice the stop flag and drain.
void install_signal_handlers() {
  struct sigaction action = {};
  action.sa_handler = on_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}
#else
void install_signal_handlers() {}
#endif

// ---------------------------------------------------------------------------
// Stream transport: one request stream in, one response stream out.
// Responses are flushed per line: clients (and the CI drain gate) read the
// stream live, and stdout is fully buffered when redirected.
// ---------------------------------------------------------------------------

/// The framed answer to a line that crossed the LineDecoder cap. The line
/// was discarded before parsing, so no request id can be echoed.
std::string oversized_response(const LineDecoder& decoder) {
  return error_response(
      "", "request line exceeds " + std::to_string(decoder.max_line()) +
              " bytes; line discarded");
}

void submit_stream_line(Server& server, std::string line,
                        std::mutex& out_mutex) {
  if (line.empty()) {
    return;  // blank keep-alive lines are legal
  }
  util::fault::point(util::fault::Site::kServe);
  server.submit(std::move(line), [&out_mutex](std::string response) {
    const std::lock_guard<std::mutex> lock(out_mutex);
    std::cout << response << '\n' << std::flush;
  });
}

/// Routes one decoded stream event: oversized lines answer immediately with
/// a framed error (they never reach the parser), normal lines are
/// submitted. The error bypasses the dispatch queue, so its position
/// relative to in-flight responses is unspecified — like any response to a
/// malformed stream.
void handle_stream_line(Server& server, LineDecoder& decoder,
                        LineDecoder::Line line, std::mutex& out_mutex) {
  if (line.oversized) {
    const std::string response = oversized_response(decoder);
    const std::lock_guard<std::mutex> lock(out_mutex);
    std::cout << response << '\n' << std::flush;
    return;
  }
  submit_stream_line(server, std::move(line.text), out_mutex);
}

#ifdef DQMA_SERVE_POSIX

/// POSIX stream transport over a raw fd (stdin, file, or FIFO), multiplexed
/// with the signal self-pipe. A blocked std::getline would not reliably
/// wake on SIGTERM (libstdc++ may treat the interrupted read as transient),
/// so the daemon polls {input, signal pipe} and reads lines itself — a stop
/// signal always wins the poll, then drains everything accepted.
int run_stream_fd(int fd, Server& server) {
  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "dqma_serve: pipe failed: " << std::strerror(errno) << "\n";
    return 1;
  }
  std::mutex out_mutex;
  LineDecoder decoder;
  char buffer[4096];
  while (g_stop == 0) {
    pollfd fds[2] = {pollfd{g_signal_pipe[0], POLLIN, 0},
                     pollfd{fd, POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) {
        continue;  // loop condition re-checks g_stop
      }
      std::cerr << "dqma_serve: poll failed: " << std::strerror(errno)
                << "\n";
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      break;  // stop signal via self-pipe
    }
    if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      continue;
    }
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) {
        continue;
      }
      std::cerr << "dqma_serve: read failed: " << std::strerror(errno)
                << "\n";
      break;
    }
    if (n == 0) {
      break;  // EOF (for a FIFO: every writer closed)
    }
    decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    while (auto line = decoder.next()) {
      handle_stream_line(server, decoder, std::move(*line), out_mutex);
    }
  }
  if (g_stop == 0) {
    while (auto line = decoder.finish()) {  // trailing line without '\n'
      handle_stream_line(server, decoder, std::move(*line), out_mutex);
    }
  }
  server.drain();
  std::cout.flush();
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  g_signal_pipe[0] = g_signal_pipe[1] = -1;
  return 0;
}

#else

int run_stream(std::istream& in, Server& server) {
  std::mutex out_mutex;
  LineDecoder decoder;
  char buffer[4096];
  while (in) {
    in.read(buffer, sizeof(buffer));
    const std::streamsize n = in.gcount();
    if (n <= 0) {
      break;
    }
    decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    while (auto line = decoder.next()) {
      handle_stream_line(server, decoder, std::move(*line), out_mutex);
    }
  }
  while (auto line = decoder.finish()) {
    handle_stream_line(server, decoder, std::move(*line), out_mutex);
  }
  server.drain();
  std::cout.flush();
  return 0;
}

#endif  // DQMA_SERVE_POSIX

// ---------------------------------------------------------------------------
// Unix-domain socket transport.
// ---------------------------------------------------------------------------

#ifdef DQMA_SERVE_POSIX

/// One connected client: its fd, a partial-line buffer, and a write mutex
/// (the dispatcher thread answers accepted requests while the poll thread
/// answers rejected ones). Kept alive by shared_ptr captures in response
/// callbacks, so a client that disconnects with requests in flight is
/// still safe to "respond" to — the write just fails and is ignored.
struct Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() { close_fd(); }

  void close_fd() {
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  void send_line(const std::string& response) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (fd < 0) {
      return;
    }
    std::string framed = response;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        return;  // peer gone; the response is undeliverable
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  int fd;
  LineDecoder decoder;  // bounded per-client reassembly buffer
  std::mutex write_mutex;
};

int run_socket(const std::string& path, Server& server) {
  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "dqma_serve: pipe failed: " << std::strerror(errno) << "\n";
    return 1;
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "dqma_serve: socket failed: " << std::strerror(errno)
              << "\n";
    return 1;
  }
  sockaddr_un address = {};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    std::cerr << "dqma_serve: socket path too long\n";
    return 1;
  }
  std::strncpy(address.sun_path, path.c_str(), sizeof(address.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    std::cerr << "dqma_serve: bind/listen on '" << path
              << "' failed: " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }

  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<pollfd> fds;
  char buffer[4096];

  while (g_stop == 0) {
    fds.clear();
    fds.push_back(pollfd{g_signal_pipe[0], POLLIN, 0});
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    for (const auto& connection : connections) {
      fds.push_back(pollfd{connection->fd, POLLIN, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) {
        continue;  // signal; loop condition re-checks g_stop
      }
      std::cerr << "dqma_serve: poll failed: " << std::strerror(errno)
                << "\n";
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      break;  // stop signal via self-pipe
    }
    if ((fds[1].revents & POLLIN) != 0) {
      const int client_fd = ::accept(listen_fd, nullptr, nullptr);
      if (client_fd >= 0) {
        connections.push_back(std::make_shared<Connection>(client_fd));
      }
    }
    // Walk backwards so erasing a dead connection keeps indices valid.
    for (std::size_t i = fds.size(); i-- > 2;) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const std::shared_ptr<Connection> connection = connections[i - 2];
      const ssize_t n = ::read(connection->fd, buffer, sizeof(buffer));
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
          continue;
        }
        connections.erase(connections.begin() +
                          static_cast<std::ptrdiff_t>(i - 2));
        continue;  // ~Connection (or in-flight captures) close the fd
      }
      connection->decoder.feed(
          std::string_view(buffer, static_cast<std::size_t>(n)));
      while (auto line = connection->decoder.next()) {
        if (line->oversized) {
          connection->send_line(oversized_response(connection->decoder));
          continue;
        }
        if (line->text.empty()) {
          continue;
        }
        util::fault::point(util::fault::Site::kServe);
        server.submit(std::move(line->text),
                      [connection](std::string response) {
                        connection->send_line(response);
                      });
      }
    }
  }

  ::close(listen_fd);
  ::unlink(path.c_str());
  server.drain();  // answer everything accepted before dropping clients
  connections.clear();
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  g_signal_pipe[0] = g_signal_pipe[1] = -1;
  return 0;
}

#endif  // DQMA_SERVE_POSIX

int serve_main(int argc, char** argv) {
  Options options;
  std::string error;
  if (!parse_options(argc, argv, options, error)) {
    std::cerr << "dqma_serve: " << error << "\n";
    print_usage(std::cerr);
    return 2;
  }
  if (options.help) {
    print_usage(std::cout);
    return 0;
  }
  // Resolve the kernel SIMD level now (DQMA_SIMD over CPU detection) so a
  // bad env value fails at startup instead of inside a request handler.
  try {
    linalg::simd::resolve_startup("");
  } catch (const std::exception& e) {
    std::cerr << "dqma_serve: " << e.what() << "\n";
    return 2;
  }

  register_builtin_workloads();
  if (options.list) {
    for (const Workload& workload : workloads()) {
      std::cout << workload.name << "  " << workload.description << "\n";
    }
    return 0;
  }

  install_signal_handlers();
  std::ios::sync_with_stdio(false);

  Server server(ServerConfig{options.threads, options.max_pending});
  int exit_code = 0;
  if (!options.socket_path.empty()) {
#ifdef DQMA_SERVE_POSIX
    exit_code = run_socket(options.socket_path, server);
#else
    std::cerr << "dqma_serve: --socket requires a POSIX platform\n";
    return 2;
#endif
  } else if (!options.input_path.empty()) {
#ifdef DQMA_SERVE_POSIX
    // Opening a FIFO blocks until a writer appears; a stop signal during
    // that wait (EINTR) is a clean no-requests shutdown, not an error.
    int fd = -1;
    do {
      fd = ::open(options.input_path.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR && g_stop == 0);
    if (fd < 0 && g_stop == 0) {
      std::cerr << "dqma_serve: cannot open '" << options.input_path
                << "': " << std::strerror(errno) << "\n";
      return 1;
    }
    if (fd >= 0) {
      exit_code = run_stream_fd(fd, server);
      ::close(fd);
    }
#else
    std::ifstream in(options.input_path);
    if (!in) {
      std::cerr << "dqma_serve: cannot open '" << options.input_path
                << "'\n";
      return 1;
    }
    exit_code = run_stream(in, server);
#endif
  } else {
#ifdef DQMA_SERVE_POSIX
    exit_code = run_stream_fd(STDIN_FILENO, server);
#else
    exit_code = run_stream(std::cin, server);
#endif
  }

  server.shutdown();
  if (options.stats) {
    print_stats(server);
  }
  return exit_code;
}

}  // namespace
}  // namespace dqma::serve

int main(int argc, char** argv) {
  try {
    return dqma::serve::serve_main(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "dqma_serve: fatal: " << error.what() << "\n";
    return 1;
  }
}

#include "serve/handlers.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "dqma/eq_graph.hpp"
#include "dqma/gt.hpp"
#include "dqma/hamming.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"
#include "util/require.hpp"

namespace dqma::serve {
namespace {

using util::Bitstring;
using util::Rng;

std::vector<Workload>& registry() {
  static std::vector<Workload> workloads;
  return workloads;
}

/// Integer request parameter with a default; doubles are rejected so a
/// request carrying 2.5 for a count fails loudly instead of truncating.
long long param_int(const Request& request, std::string_view name,
                    long long fallback) {
  const sweep::Value* value = request.params.find(name);
  if (value == nullptr) {
    return fallback;
  }
  util::require(std::holds_alternative<long long>(*value),
                "param '" + std::string(name) + "': expected an integer");
  return std::get<long long>(*value);
}

/// Floating request parameter with a default; integer literals widen.
double param_double(const Request& request, std::string_view name,
                    double fallback) {
  const sweep::Value* value = request.params.find(name);
  if (value == nullptr) {
    return fallback;
  }
  if (std::holds_alternative<long long>(*value)) {
    return static_cast<double>(std::get<long long>(*value));
  }
  util::require(std::holds_alternative<double>(*value),
                "param '" + std::string(name) + "': expected a number");
  return std::get<double>(*value);
}

int param_count(const Request& request, std::string_view name,
                long long fallback, long long lo, long long hi) {
  const long long value = param_int(request, name, fallback);
  util::require(value >= lo && value <= hi,
                "param '" + std::string(name) + "': out of range [" +
                    std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return static_cast<int>(value);
}

/// Shape key fragment "name=value"; '/'-joined by the callers.
std::string kv(std::string_view name, const sweep::Value& value) {
  return std::string(name) + "=" + sweep::value_to_string(value);
}

// ---------------------------------------------------------------------------
// replicated_data_audit — examples/replicated_data_audit.cpp as a service:
// the general-graph EQ protocol on a seeded random tree. Params: nodes,
// replicas, n (replica bits), topo_seed (tree draw), delta, reps,
// tamper_bits (0 = honest world, >0 = flip that many bits in one replica
// and report the prover's best attack).
// ---------------------------------------------------------------------------

struct AuditShape {
  std::vector<int> replicas;
  protocol::EqGraphProtocol protocol;
};

sweep::Metrics run_replicated_data_audit(const Request& request,
                                         ShapeCache& cache, Rng& rng) {
  const int nodes = param_count(request, "nodes", 12, 2, 64);
  const int replicas = param_count(request, "replicas", 4, 2, nodes);
  const int n = param_count(request, "n", 256, 1, 1 << 16);
  const long long topo_seed = param_int(request, "topo_seed", 2024);
  const double delta = param_double(request, "delta", 0.3);
  const int reps = param_count(request, "reps", 64, 1, 1 << 20);
  const int tamper_bits = param_count(request, "tamper_bits", 0, 0, n);

  const std::string key =
      "replicated_data_audit/" + kv("nodes", nodes) + "/" +
      kv("replicas", replicas) + "/" + kv("n", n) + "/" +
      kv("topo_seed", topo_seed) + "/" + kv("delta", delta) + "/" +
      kv("reps", reps);
  const auto shape = cache.get_or_build<AuditShape>(key, [&] {
    // The topology is part of the shape: drawn from its own seed so two
    // requests with equal params verify against the same network.
    Rng topo_rng(static_cast<std::uint64_t>(topo_seed));
    const network::Graph graph = network::Graph::random_tree(nodes, topo_rng);
    std::vector<int> sites(replicas);
    for (int i = 0; i < replicas; ++i) {
      sites[i] = replicas == 1 ? 0 : i * (nodes - 1) / (replicas - 1);
    }
    return AuditShape{
        sites, protocol::EqGraphProtocol(graph, sites, n, delta, reps)};
  });

  const Bitstring blob = Bitstring::random(n, rng);
  sweep::Metrics metrics;
  metrics.set("tree_depth", shape->protocol.tree().depth());
  metrics.set("local_proof_qubits",
              shape->protocol.costs().local_proof_qubits);
  if (tamper_bits == 0) {
    metrics.set("equal", true);
    metrics.set("accept", shape->protocol.completeness(blob));
  } else {
    std::vector<Bitstring> inputs(shape->replicas.size(), blob);
    Bitstring& victim =
        inputs[rng.next_below(static_cast<std::uint64_t>(inputs.size()))];
    // Flip tamper_bits distinct positions.
    std::vector<int> positions(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      positions[static_cast<std::size_t>(i)] = i;
    }
    for (int i = 0; i < tamper_bits; ++i) {
      const auto j = static_cast<std::size_t>(i) +
                     rng.next_below(static_cast<std::uint64_t>(n - i));
      std::swap(positions[static_cast<std::size_t>(i)], positions[j]);
      victim.flip(positions[static_cast<std::size_t>(i)]);
    }
    metrics.set("equal", false);
    metrics.set("accept", shape->protocol.best_attack_accept(inputs));
  }
  return metrics;
}

// ---------------------------------------------------------------------------
// config_drift — examples/config_drift.cpp as a service: the Hamming
// drift predicate HAM^{<=d} between the two endpoints of a path. Params:
// n (flags), d (allowed drift), drift (actual), r (path length), delta,
// reps, samples (attack MC sample count when the predicate fails).
// ---------------------------------------------------------------------------

sweep::Metrics run_config_drift(const Request& request, ShapeCache& cache,
                                Rng& rng) {
  const int n = param_count(request, "n", 32, 1, 1 << 12);
  const int d = param_count(request, "d", 2, 0, n);
  const int drift = param_count(request, "drift", 2, 0, n);
  const int r = param_count(request, "r", 2, 2, 64);
  const double delta = param_double(request, "delta", 0.35);
  const int reps = param_count(request, "reps", 40, 1, 1 << 20);
  const int samples = param_count(request, "samples", 200, 1, 1 << 20);

  const std::string key = "config_drift/" + kv("n", n) + "/" + kv("d", d) +
                          "/" + kv("r", r) + "/" + kv("delta", delta) + "/" +
                          kv("reps", reps);
  const auto shape =
      cache.get_or_build<protocol::HammingGraphProtocol>(key, [&] {
        return protocol::HammingGraphProtocol(network::Graph::path(r),
                                              {0, r}, n, d, delta, reps);
      });

  const Bitstring golden = Bitstring::random(n, rng);
  const std::vector<Bitstring> inputs{
      golden, Bitstring::random_at_distance(golden, drift, rng)};
  const bool within = shape->predicate(inputs);

  sweep::Metrics metrics;
  metrics.set("within_tolerance", within);
  metrics.set("local_proof_qubits", shape->costs().local_proof_qubits);
  if (within) {
    metrics.set("accept", shape->completeness(inputs));
    metrics.set("half_width_95", 0.0);
  } else {
    const auto estimate = shape->best_attack_accept(inputs, rng, samples);
    metrics.set("accept", estimate.mean);
    metrics.set("half_width_95", estimate.half_width_95);
  }
  return metrics;
}

// ---------------------------------------------------------------------------
// auction_gt — examples/auction_gt.cpp as a service: the greater-than
// relay-chain protocol on sealed integer bids. Params: n (bid bits), r
// (relays), delta, reps (0 = the paper's prescription), bid, reserve.
// ---------------------------------------------------------------------------

sweep::Metrics run_auction_gt(const Request& request, ShapeCache& cache,
                              Rng& /*rng*/) {
  const int n = param_count(request, "n", 32, 1, 63);
  const int r = param_count(request, "r", 4, 1, 64);
  const double delta = param_double(request, "delta", 0.3);
  int reps = param_count(request, "reps", 0, 0, 1 << 20);
  if (reps == 0) {
    reps = protocol::GtProtocol::paper_reps(r);
  }
  const long long bid = param_int(request, "bid", 1'250'000);
  const long long reserve = param_int(request, "reserve", 1'000'000);
  util::require(bid >= 0 && reserve >= 0,
                "auction_gt: bid/reserve must be non-negative");

  const std::string key = "auction_gt/" + kv("n", n) + "/" + kv("r", r) +
                          "/" + kv("delta", delta) + "/" + kv("reps", reps);
  const auto shape = cache.get_or_build<protocol::GtProtocol>(key, [&] {
    return protocol::GtProtocol(n, r, delta, reps);
  });

  const Bitstring x =
      Bitstring::from_integer(static_cast<std::uint64_t>(bid), n);
  const Bitstring y =
      Bitstring::from_integer(static_cast<std::uint64_t>(reserve), n);
  const bool wins = protocol::gt_predicate(shape->variant(), x, y);

  sweep::Metrics metrics;
  metrics.set("bid_wins", wins);
  metrics.set("local_proof_qubits", shape->costs().local_proof_qubits);
  metrics.set("accept", wins ? shape->completeness(x, y)
                             : shape->best_attack_accept(x, y));
  return metrics;
}

}  // namespace

void register_workload(Workload workload) {
  util::require(!workload.name.empty(),
                "register_workload: empty workload name");
  for (const auto& existing : registry()) {
    util::require(existing.name != workload.name,
                  "register_workload: duplicate name " + workload.name);
  }
  registry().push_back(std::move(workload));
}

const std::vector<Workload>& workloads() { return registry(); }

const Workload* find_workload(std::string_view name) {
  for (const auto& workload : registry()) {
    if (workload.name == name) {
      return &workload;
    }
  }
  return nullptr;
}

void register_builtin_workloads() {
  static const bool registered = [] {
    register_workload(
        {"replicated_data_audit",
         "graph EQ audit of replicated blobs on a seeded random tree",
         run_replicated_data_audit});
    register_workload(
        {"config_drift",
         "Hamming drift predicate between path endpoints (forall_f)",
         run_config_drift});
    register_workload(
        {"auction_gt",
         "sealed-bid greater-than on a relay chain (prefix fingerprints)",
         run_auction_gt});
    return true;
  }();
  (void)registered;
}

std::string handle_request_line(std::string_view line, ShapeCache& cache,
                                bool* ok) {
  if (ok != nullptr) {
    *ok = false;
  }
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& error) {
    return error_response("", error.what());
  }
  try {
    const Workload* workload = find_workload(request.workload);
    util::require(workload != nullptr,
                  "unknown workload '" + request.workload + "'");
    // Seeded from (workload, seed) only: the response does not depend on
    // which thread runs it or on any other request in flight.
    util::Rng rng(util::derive_seed(sweep::fnv1a64(request.workload),
                                    request.seed));
    const std::string response =
        ok_response(request.id, workload->run(request, cache, rng));
    if (ok != nullptr) {
      *ok = true;
    }
    return response;
  } catch (const std::exception& error) {
    return error_response(request.id, error.what());
  }
}

}  // namespace dqma::serve

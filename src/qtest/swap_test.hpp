// The SWAP test (paper Algorithm 1) in three equivalent forms:
//  * closed form on pure states:  Pr[accept] = 1/2 + |<a|b>|^2 / 2;
//  * POVM form on mixed states:   M_accept = (I + SWAP)/2;
//  * circuit form (ancilla + H + controlled-SWAP + H + measure), used by
//    tests to validate the other two.
// Also provides the trace-distance bound of Lemma 14: if the SWAP test on
// rho accepts with probability 1 - eps, then D(rho_1, rho_2) <= 2 sqrt(eps)
// + eps.
#pragma once

#include "linalg/vector.hpp"
#include "quantum/density.hpp"
#include "quantum/measurement.hpp"

namespace dqma::qtest {

using linalg::CVec;
using quantum::BinaryPovm;
using quantum::Density;

/// Closed-form acceptance probability on a product of pure states.
double swap_test_accept(const CVec& a, const CVec& b);

/// Acceptance POVM (I + SWAP)/2 on two registers of dimension d each.
BinaryPovm swap_test_povm(int d);

/// Acceptance probability on an arbitrary (possibly correlated) two-register
/// state, tr((I+SWAP)/2 rho). Registers must have equal dimension.
double swap_test_accept(const Density& rho);

/// Circuit-level simulation of Algorithm 1 on a product input: builds
/// ancilla + controlled-SWAP explicitly and returns Pr[ancilla = 0].
/// O(d^4); used only by validation tests.
double swap_test_accept_circuit(const CVec& a, const CVec& b);

/// Lemma 14 bound: maximal D(rho_1, rho_2) consistent with acceptance
/// probability 1 - eps.
double lemma14_distance_bound(double eps);

}  // namespace dqma::qtest

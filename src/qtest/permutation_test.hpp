// The permutation test (paper Algorithm 2): projection onto the symmetric
// subspace of k registers of dimension d.
//
// Three forms, mirroring swap_test.hpp:
//  * closed form on product pure states:  Pr[accept] = perm(Gram)/k!
//    (the Gram matrix G_{ij} = <psi_i|psi_j> of the k factors);
//  * POVM form: M_accept = Pi_sym = (1/k!) sum_pi U_pi;
//  * the trace-distance bound of Lemma 16.
// The k = 2 case reduces exactly to the SWAP test.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "quantum/density.hpp"
#include "quantum/measurement.hpp"

namespace dqma::qtest {

using linalg::CMat;
using linalg::CVec;
using quantum::BinaryPovm;
using quantum::Density;

/// Projector onto the symmetric subspace of (C^d)^{tensor k}.
/// Dimension d^k; requires d^k <= 2^14 and k <= 8.
CMat symmetric_projector(int d, int k);

/// Acceptance POVM of the permutation test.
BinaryPovm permutation_test_povm(int d, int k);

/// Closed-form acceptance on a product of k pure states (any d, k <= 20):
/// perm(G)/k! for the Gram matrix G.
double permutation_test_accept(const std::vector<CVec>& factors);

/// Acceptance on an arbitrary k-register state (all registers must share one
/// dimension): tr(Pi_sym rho).
double permutation_test_accept(const Density& rho);

/// Exact acceptance when factor i is independently depolarized with rate
/// rates[i] before the test: tr(Pi_sym (x)_i D_{p_i}(|psi_i><psi_i|)).
/// Evaluated without building the d^k-dimensional state: for each
/// permutation, tr factorizes over its cycles, and expanding each
/// depolarized factor into its pure and maximally-mixed parts turns every
/// cycle trace into a subset sum over which factors went mixed (a mixed
/// factor contributes p_i/d and drops out of the cyclic Gram product; the
/// all-mixed subset contributes tr I = d). Requires k <= 7 and every rate
/// in [0, 1]. With all rates zero this equals permutation_test_accept up
/// to floating-point round-off (different evaluation order).
double depolarized_permutation_test_accept(const std::vector<CVec>& factors,
                                           const std::vector<double>& rates);

/// Lemma 16 bound: maximal D(rho_i, rho_j) consistent with the permutation
/// test accepting with probability 1 - eps (same form as Lemma 14).
double lemma16_distance_bound(double eps);

}  // namespace dqma::qtest

#include "qtest/permutation_test.hpp"

#include <cmath>

#include "linalg/permanent.hpp"
#include "quantum/unitary.hpp"
#include "util/require.hpp"

namespace dqma::qtest {

using linalg::Complex;
using util::require;

CMat symmetric_projector(int d, int k) {
  require(d >= 1, "symmetric_projector: d must be positive");
  require(k >= 1 && k <= 8, "symmetric_projector: k must be in [1,8]");
  long long dim = 1;
  for (int s = 0; s < k; ++s) {
    dim *= d;
    require(dim <= (1 << 14), "symmetric_projector: dimension too large");
  }
  const auto perms = quantum::all_permutations(k);
  CMat acc(static_cast<int>(dim), static_cast<int>(dim));
  for (const auto& perm : perms) {
    acc += quantum::permutation_unitary(d, perm);
  }
  acc *= Complex{1.0 / static_cast<double>(perms.size()), 0.0};
  return acc;
}

BinaryPovm permutation_test_povm(int d, int k) {
  return BinaryPovm(symmetric_projector(d, k));
}

double permutation_test_accept(const std::vector<CVec>& factors) {
  const int k = static_cast<int>(factors.size());
  require(k >= 1 && k <= 20, "permutation_test_accept: k must be in [1,20]");
  CMat gram(k, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      gram(i, j) = factors[static_cast<std::size_t>(i)].dot(
          factors[static_cast<std::size_t>(j)]);
    }
  }
  double kfact = 1.0;
  for (int s = 2; s <= k; ++s) {
    kfact *= static_cast<double>(s);
  }
  const Complex p = linalg::permanent(gram);
  // perm(G) of a PSD Gram matrix is real and non-negative.
  return std::min(1.0, std::max(0.0, p.real() / kfact));
}

double permutation_test_accept(const Density& rho) {
  const int k = rho.shape().register_count();
  require(k >= 1, "permutation_test_accept: need at least one register");
  const int d = rho.shape().dim(0);
  for (int r = 1; r < k; ++r) {
    require(rho.shape().dim(r) == d,
            "permutation_test_accept: registers must share one dimension");
  }
  return permutation_test_povm(d, k).accept_probability(rho);
}

double lemma16_distance_bound(double eps) {
  require(eps >= 0.0 && eps <= 1.0, "lemma16_distance_bound: eps out of range");
  return 2.0 * std::sqrt(eps) + eps;
}

}  // namespace dqma::qtest

#include "qtest/permutation_test.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/permanent.hpp"
#include "quantum/unitary.hpp"
#include "util/require.hpp"

namespace dqma::qtest {

using linalg::Complex;
using util::require;

CMat symmetric_projector(int d, int k) {
  require(d >= 1, "symmetric_projector: d must be positive");
  require(k >= 1 && k <= 8, "symmetric_projector: k must be in [1,8]");
  long long dim = 1;
  for (int s = 0; s < k; ++s) {
    dim *= d;
    require(dim <= (1 << 14), "symmetric_projector: dimension too large");
  }
  const auto perms = quantum::all_permutations(k);
  CMat acc(static_cast<int>(dim), static_cast<int>(dim));
  for (const auto& perm : perms) {
    acc += quantum::permutation_unitary(d, perm);
  }
  acc *= Complex{1.0 / static_cast<double>(perms.size()), 0.0};
  return acc;
}

BinaryPovm permutation_test_povm(int d, int k) {
  return BinaryPovm(symmetric_projector(d, k));
}

double permutation_test_accept(const std::vector<CVec>& factors) {
  const int k = static_cast<int>(factors.size());
  require(k >= 1 && k <= 20, "permutation_test_accept: k must be in [1,20]");
  CMat gram(k, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      gram(i, j) = factors[static_cast<std::size_t>(i)].dot(
          factors[static_cast<std::size_t>(j)]);
    }
  }
  double kfact = 1.0;
  for (int s = 2; s <= k; ++s) {
    kfact *= static_cast<double>(s);
  }
  const Complex p = linalg::permanent(gram);
  // perm(G) of a PSD Gram matrix is real and non-negative.
  return std::min(1.0, std::max(0.0, p.real() / kfact));
}

double permutation_test_accept(const Density& rho) {
  const int k = rho.shape().register_count();
  require(k >= 1, "permutation_test_accept: need at least one register");
  const int d = rho.shape().dim(0);
  for (int r = 1; r < k; ++r) {
    require(rho.shape().dim(r) == d,
            "permutation_test_accept: registers must share one dimension");
  }
  return permutation_test_povm(d, k).accept_probability(rho);
}

double depolarized_permutation_test_accept(const std::vector<CVec>& factors,
                                           const std::vector<double>& rates) {
  const int k = static_cast<int>(factors.size());
  require(k >= 1 && k <= 7,
          "depolarized_permutation_test_accept: k must be in [1,7]");
  require(rates.size() == factors.size(),
          "depolarized_permutation_test_accept: one rate per factor");
  const int d = factors[0].dim();
  for (const auto& factor : factors) {
    require(factor.dim() == d,
            "depolarized_permutation_test_accept: factors must share one "
            "dimension");
  }
  for (const double rate : rates) {
    require(rate >= 0.0 && rate <= 1.0,
            "depolarized_permutation_test_accept: rate out of range");
  }
  CMat gram(k, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      gram(i, j) = factors[static_cast<std::size_t>(i)].dot(
          factors[static_cast<std::size_t>(j)]);
    }
  }
  const double dim = static_cast<double>(d);
  // E[tr of one cycle] over the independent pure/mixed mixture of each
  // factor in the cycle: subset sum over which factors went mixed.
  const auto cycle_value = [&](const std::vector<int>& cycle) {
    const int q = static_cast<int>(cycle.size());
    Complex value{0.0, 0.0};
    std::vector<int> survivors;
    survivors.reserve(cycle.size());
    for (int mask = 0; mask < (1 << q); ++mask) {
      double weight = 1.0;
      survivors.clear();
      for (int j = 0; j < q; ++j) {
        const int idx = cycle[static_cast<std::size_t>(j)];
        const double p = rates[static_cast<std::size_t>(idx)];
        if ((mask >> j) & 1) {
          weight *= p / dim;
        } else {
          weight *= 1.0 - p;
          survivors.push_back(idx);
        }
      }
      Complex trace{dim, 0.0};  // all mixed: tr I = d
      if (!survivors.empty()) {
        trace = Complex{1.0, 0.0};
        const int m = static_cast<int>(survivors.size());
        for (int j = 0; j < m; ++j) {
          trace *= gram(survivors[static_cast<std::size_t>(j)],
                        survivors[static_cast<std::size_t>((j + 1) % m)]);
        }
      }
      value += Complex{weight, 0.0} * trace;
    }
    return value;
  };
  const auto perms = quantum::all_permutations(k);
  Complex total{0.0, 0.0};
  std::vector<bool> seen(static_cast<std::size_t>(k));
  std::vector<int> cycle;
  for (const auto& perm : perms) {
    std::fill(seen.begin(), seen.end(), false);
    Complex term{1.0, 0.0};
    for (int start = 0; start < k; ++start) {
      if (seen[static_cast<std::size_t>(start)]) {
        continue;
      }
      cycle.clear();
      int cur = start;
      while (!seen[static_cast<std::size_t>(cur)]) {
        seen[static_cast<std::size_t>(cur)] = true;
        cycle.push_back(cur);
        cur = perm[static_cast<std::size_t>(cur)];
      }
      term *= cycle_value(cycle);
    }
    total += term;
  }
  const double accept = total.real() / static_cast<double>(perms.size());
  // The exact value is a probability; round-off can nudge it out of [0,1].
  return std::min(1.0, std::max(0.0, accept));
}

double lemma16_distance_bound(double eps) {
  require(eps >= 0.0 && eps <= 1.0, "lemma16_distance_bound: eps out of range");
  return 2.0 * std::sqrt(eps) + eps;
}

}  // namespace dqma::qtest

#include "qtest/swap_test.hpp"

#include <algorithm>
#include <cmath>

#include "quantum/unitary.hpp"
#include "util/require.hpp"

namespace dqma::qtest {

using linalg::CMat;
using linalg::Complex;
using quantum::PureState;
using quantum::RegisterShape;
using util::require;

double swap_test_accept(const CVec& a, const CVec& b) {
  require(a.dim() == b.dim(), "swap_test_accept: dimension mismatch");
  const double overlap = std::abs(a.dot(b));
  return 0.5 + 0.5 * overlap * overlap;
}

BinaryPovm swap_test_povm(int d) {
  CMat m = quantum::swap_unitary(d);
  m += CMat::identity(d * d);
  m *= Complex{0.5, 0.0};
  return BinaryPovm(std::move(m));
}

double swap_test_accept(const Density& rho) {
  require(rho.shape().register_count() == 2,
          "swap_test_accept: state must have exactly two registers");
  const int d = rho.shape().dim(0);
  require(rho.shape().dim(1) == d,
          "swap_test_accept: registers must have equal dimension");
  // tr(((I + SWAP)/2) rho) = (1 + tr(SWAP rho))/2 with
  // tr(SWAP rho) = sum_{i,j} rho((j,i),(i,j)) — no d^2 x d^2 POVM element
  // is ever materialized.
  Complex acc{0.0, 0.0};
  const linalg::CMat& m = rho.matrix();
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      acc += m(j * d + i, i * d + j);
    }
  }
  return std::clamp(0.5 + 0.5 * acc.real(), 0.0, 1.0);
}

double swap_test_accept_circuit(const CVec& a, const CVec& b) {
  require(a.dim() == b.dim(), "swap_test_accept_circuit: dimension mismatch");
  const int d = a.dim();
  // Registers: ancilla (dim 2), A, B.
  PureState psi = PureState::single(CVec::basis(2, 0))
                      .tensor(PureState::single(a))
                      .tensor(PureState::single(b));
  psi.apply(quantum::hadamard(), {0});
  // Controlled-SWAP: identity on |0>, SWAP on |1>.
  const CMat cswap = quantum::select_unitary(
      {CMat::identity(d * d), quantum::swap_unitary(d)});
  psi.apply(cswap, {0, 1, 2});
  psi.apply(quantum::hadamard(), {0});
  return psi.outcome_probability(/*reg=*/0, /*outcome=*/0);
}

double lemma14_distance_bound(double eps) {
  require(eps >= 0.0 && eps <= 1.0, "lemma14_distance_bound: eps out of range");
  return 2.0 * std::sqrt(eps) + eps;
}

}  // namespace dqma::qtest

#include "network/graph.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/require.hpp"

namespace dqma::network {

using util::require;

Graph::Graph(int node_count) {
  require(node_count >= 1, "Graph: need at least one node");
  adj_.assign(static_cast<std::size_t>(node_count), {});
}

Graph Graph::path(int length) {
  require(length >= 1, "Graph::path: length must be >= 1");
  Graph g(length + 1);
  for (int i = 0; i < length; ++i) {
    g.add_edge(i, i + 1);
  }
  return g;
}

Graph Graph::star(int leaves) {
  require(leaves >= 1, "Graph::star: need at least one leaf");
  Graph g(leaves + 1);
  for (int i = 1; i <= leaves; ++i) {
    g.add_edge(0, i);
  }
  return g;
}

Graph Graph::cycle(int node_count) {
  require(node_count >= 3, "Graph::cycle: need at least three nodes");
  Graph g(node_count);
  for (int i = 0; i < node_count; ++i) {
    g.add_edge(i, (i + 1) % node_count);
  }
  return g;
}

Graph Graph::complete(int node_count) {
  Graph g(node_count);
  for (int i = 0; i < node_count; ++i) {
    for (int j = i + 1; j < node_count; ++j) {
      g.add_edge(i, j);
    }
  }
  return g;
}

Graph Graph::random_tree(int node_count, util::Rng& rng) {
  Graph g(node_count);
  for (int v = 1; v < node_count; ++v) {
    g.add_edge(v, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(v))));
  }
  return g;
}

Graph Graph::balanced_tree(int arity, int depth) {
  require(arity >= 1 && depth >= 0, "Graph::balanced_tree: bad parameters");
  // Node count 1 + k + k^2 + ... + k^depth.
  long long count = 1;
  long long level = 1;
  for (int d = 0; d < depth; ++d) {
    level *= arity;
    count += level;
    require(count < (1 << 20), "Graph::balanced_tree: too many nodes");
  }
  Graph g(static_cast<int>(count));
  for (int v = 1; v < static_cast<int>(count); ++v) {
    g.add_edge(v, (v - 1) / arity);
  }
  return g;
}

void Graph::add_edge(int u, int v) {
  require(u >= 0 && u < node_count() && v >= 0 && v < node_count(),
          "Graph::add_edge: node out of range");
  require(u != v, "Graph::add_edge: self-loops not allowed");
  if (has_edge(u, v)) {
    return;
  }
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto& av = adj_[static_cast<std::size_t>(v)];
  au.insert(std::lower_bound(au.begin(), au.end(), v), v);
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
  ++edge_count_;
}

bool Graph::has_edge(int u, int v) const {
  const auto& au = adj_[static_cast<std::size_t>(u)];
  return std::binary_search(au.begin(), au.end(), v);
}

const std::vector<int>& Graph::neighbors(int v) const {
  require(v >= 0 && v < node_count(), "Graph::neighbors: node out of range");
  return adj_[static_cast<std::size_t>(v)];
}

int Graph::max_degree() const {
  int best = 0;
  for (int v = 0; v < node_count(); ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

std::vector<int> Graph::bfs_distances(int source) const {
  require(source >= 0 && source < node_count(),
          "Graph::bfs_distances: node out of range");
  std::vector<int> dist(static_cast<std::size_t>(node_count()), -1);
  std::deque<int> queue{source};
  dist[static_cast<std::size_t>(source)] = 0;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (const int w : neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] == -1) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

int Graph::eccentricity(int source) const {
  const auto dist = bfs_distances(source);
  int worst = 0;
  for (const int d : dist) {
    require(d >= 0, "Graph::eccentricity: graph is disconnected");
    worst = std::max(worst, d);
  }
  return worst;
}

int Graph::radius() const { return eccentricity(center()); }

int Graph::center() const {
  int best_node = 0;
  int best_ecc = std::numeric_limits<int>::max();
  for (int v = 0; v < node_count(); ++v) {
    const int e = eccentricity(v);
    if (e < best_ecc) {
      best_ecc = e;
      best_node = v;
    }
  }
  return best_node;
}

int Graph::diameter() const {
  int worst = 0;
  for (int v = 0; v < node_count(); ++v) {
    worst = std::max(worst, eccentricity(v));
  }
  return worst;
}

bool Graph::is_connected() const {
  const auto dist = bfs_distances(0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

std::vector<int> Graph::shortest_path(int u, int v) const {
  require(u >= 0 && u < node_count() && v >= 0 && v < node_count(),
          "Graph::shortest_path: node out of range");
  // BFS from v, then walk downhill from u.
  const auto dist = bfs_distances(v);
  require(dist[static_cast<std::size_t>(u)] >= 0,
          "Graph::shortest_path: nodes not connected");
  std::vector<int> path{u};
  int cur = u;
  while (cur != v) {
    for (const int w : neighbors(cur)) {
      if (dist[static_cast<std::size_t>(w)] ==
          dist[static_cast<std::size_t>(cur)] - 1) {
        cur = w;
        path.push_back(cur);
        break;
      }
    }
  }
  return path;
}

}  // namespace dqma::network

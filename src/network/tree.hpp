// Spanning-tree construction for multi-terminal protocols (paper Sec. 3.3)
// and the proof-labelling verification of trees (Lemma 18, [KKP10]).
//
// Given a network G and terminals u_1..u_t, the paper roots a BFS tree at
// the most central terminal, truncates branches containing no terminal, and
// re-hangs every internal terminal u_i as a fresh leaf u_i' so that all
// terminals end up as leaves of a tree of depth <= r + 1.
#pragma once

#include <optional>
#include <vector>

#include "network/graph.hpp"

namespace dqma::network {

/// A rooted tree for protocol execution. Nodes are indexed 0..size-1 in the
/// tree's own numbering; `original` maps back to graph nodes (virtual leaves
/// introduced by the re-hanging step map to the terminal they mirror).
class SpanningTree {
 public:
  struct Node {
    int parent = -1;               ///< tree index of parent; -1 for root
    std::vector<int> children;     ///< tree indices
    int original = -1;             ///< graph node this tree node simulates
    bool is_virtual = false;       ///< re-hung terminal leaf (u_i')
    int depth = 0;
  };

  /// Builds the Sec. 3.3 verification tree for `terminals` on `graph`,
  /// rooted at the most central terminal (or at `forced_root` if given).
  static SpanningTree build(const Graph& graph,
                            const std::vector<int>& terminals,
                            std::optional<int> forced_root = std::nullopt);

  int size() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int i) const;
  int root() const { return root_; }
  int depth() const;
  int max_degree() const;

  /// Tree index of the (virtual leaf for the) given terminal.
  int leaf_of_terminal(int graph_node) const;

  /// Tree indices of all leaves.
  std::vector<int> leaves() const;

  /// Tree nodes on the path from `a` up through their common ancestor down
  /// to `b` (inclusive).
  std::vector<int> path_between(int a, int b) const;

  /// Post-order traversal (children before parents): the message schedule of
  /// leaf-to-root protocols such as Algorithm 5.
  std::vector<int> post_order() const;

 private:
  std::vector<Node> nodes_;
  int root_ = 0;
};

/// The Lemma 18 deterministic proof-labelling scheme for spanning trees:
/// per-node labels (root id, parent id, distance) that each node checks
/// against its neighbors' labels. Returns per-node accept bits; a correct
/// labelling of a true spanning tree is accepted by all nodes, and any
/// labelling that does not describe a spanning tree of `graph` rooted at
/// `claimed_root` is rejected by at least one node.
struct TreeLabel {
  int root_id = -1;
  int parent = -1;   ///< parent graph node (self for the root)
  int distance = -1; ///< claimed distance to root
};

std::vector<bool> verify_tree_labels(const Graph& graph,
                                     const std::vector<TreeLabel>& labels);

/// Honest labelling of the BFS tree rooted at `root` (for completeness runs).
/// Requires `root` to be a node of `graph` and `graph` to be connected —
/// generator-produced graphs that violate either fail loudly here instead
/// of producing distance -1 labels downstream.
std::vector<TreeLabel> honest_tree_labels(const Graph& graph, int root);

}  // namespace dqma::network

// Simple connected undirected graphs: the network substrate of distributed
// verification (paper Sec. 2, "this paper considers simple connected graphs
// ... and identifies a network with its underlying graph").
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace dqma::network {

/// Undirected simple graph on nodes 0..n-1 (adjacency lists kept sorted).
class Graph {
 public:
  /// Edgeless graph on n nodes (add edges afterwards).
  explicit Graph(int node_count);

  /// Factories for the topologies used across the paper and benches.
  static Graph path(int length);          ///< v_0 - v_1 - ... - v_length
  static Graph star(int leaves);          ///< center 0, leaves 1..leaves
  static Graph cycle(int node_count);
  static Graph complete(int node_count);
  /// Random tree on n nodes (uniform attachment), reproducible from rng.
  static Graph random_tree(int node_count, util::Rng& rng);
  /// Balanced k-ary tree with the given depth (root 0).
  static Graph balanced_tree(int arity, int depth);

  int node_count() const { return static_cast<int>(adj_.size()); }
  int edge_count() const { return edge_count_; }

  /// Adds the undirected edge {u, v}; idempotent, rejects self-loops.
  void add_edge(int u, int v);

  bool has_edge(int u, int v) const;
  const std::vector<int>& neighbors(int v) const;
  int degree(int v) const { return static_cast<int>(neighbors(v).size()); }
  int max_degree() const;

  /// BFS distances from `source` (-1 for unreachable nodes).
  std::vector<int> bfs_distances(int source) const;

  /// max_v dist(source, v); requires connectivity.
  int eccentricity(int source) const;

  /// Radius min_u ecc(u) and a center attaining it.
  int radius() const;
  int center() const;

  /// Diameter max_u ecc(u).
  int diameter() const;

  bool is_connected() const;

  /// Shortest path from u to v as a node sequence (BFS parents).
  std::vector<int> shortest_path(int u, int v) const;

 private:
  std::vector<std::vector<int>> adj_;
  int edge_count_ = 0;
};

}  // namespace dqma::network

#include "network/tree.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace dqma::network {

using util::require;

SpanningTree SpanningTree::build(const Graph& graph,
                                 const std::vector<int>& terminals,
                                 std::optional<int> forced_root) {
  require(!terminals.empty(), "SpanningTree::build: need at least one terminal");
  for (const int t : terminals) {
    require(t >= 0 && t < graph.node_count(),
            "SpanningTree::build: terminal out of range");
  }
  require(graph.is_connected(), "SpanningTree::build: graph must be connected");

  // Root choice: the most central terminal, i.e. argmin over terminals u of
  // max over terminals v of dist(u, v) (paper Sec. 3.3).
  int root_graph = terminals.front();
  if (forced_root) {
    root_graph = *forced_root;
    require(std::find(terminals.begin(), terminals.end(), root_graph) !=
                terminals.end(),
            "SpanningTree::build: forced root must be a terminal");
  } else {
    int best = std::numeric_limits<int>::max();
    for (const int u : terminals) {
      const auto dist = graph.bfs_distances(u);
      int worst = 0;
      for (const int v : terminals) {
        worst = std::max(worst, dist[static_cast<std::size_t>(v)]);
      }
      if (worst < best) {
        best = worst;
        root_graph = u;
      }
    }
  }

  // BFS parents from the root.
  const int n = graph.node_count();
  std::vector<int> parent(static_cast<std::size_t>(n), -2);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  parent[static_cast<std::size_t>(root_graph)] = -1;
  order.push_back(root_graph);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const int v = order[head];
    for (const int w : graph.neighbors(v)) {
      if (parent[static_cast<std::size_t>(w)] == -2) {
        parent[static_cast<std::size_t>(w)] = v;
        order.push_back(w);
      }
    }
  }

  // Keep only nodes whose subtree contains a terminal: walk each terminal's
  // root path and mark it.
  std::vector<bool> keep(static_cast<std::size_t>(n), false);
  for (const int t : terminals) {
    int cur = t;
    while (cur != -1 && !keep[static_cast<std::size_t>(cur)]) {
      keep[static_cast<std::size_t>(cur)] = true;
      cur = parent[static_cast<std::size_t>(cur)];
    }
  }

  // Emit tree nodes in BFS order so parents precede children.
  SpanningTree tree;
  std::vector<int> tree_index(static_cast<std::size_t>(n), -1);
  for (const int v : order) {
    if (!keep[static_cast<std::size_t>(v)]) {
      continue;
    }
    Node node;
    node.original = v;
    if (v == root_graph) {
      node.parent = -1;
      node.depth = 0;
      tree.root_ = static_cast<int>(tree.nodes_.size());
    } else {
      const int p = tree_index[static_cast<std::size_t>(
          parent[static_cast<std::size_t>(v)])];
      node.parent = p;
      node.depth = tree.nodes_[static_cast<std::size_t>(p)].depth + 1;
      tree.nodes_[static_cast<std::size_t>(p)].children.push_back(
          static_cast<int>(tree.nodes_.size()));
    }
    tree_index[static_cast<std::size_t>(v)] = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(std::move(node));
  }

  // Re-hang every non-root terminal that ended up internal as a virtual
  // leaf child of itself (paper Sec. 3.3: u_i keeps the input, u_i' takes
  // its network role; operationally u_i simulates both).
  for (const int t : terminals) {
    if (t == root_graph) {
      continue;
    }
    const int ti = tree_index[static_cast<std::size_t>(t)];
    if (!tree.nodes_[static_cast<std::size_t>(ti)].children.empty()) {
      Node leaf;
      leaf.original = t;
      leaf.is_virtual = true;
      leaf.parent = ti;
      leaf.depth = tree.nodes_[static_cast<std::size_t>(ti)].depth + 1;
      tree.nodes_[static_cast<std::size_t>(ti)].children.push_back(
          static_cast<int>(tree.nodes_.size()));
      tree.nodes_.push_back(std::move(leaf));
    }
  }
  return tree;
}

const SpanningTree::Node& SpanningTree::node(int i) const {
  require(i >= 0 && i < size(), "SpanningTree::node: index out of range");
  return nodes_[static_cast<std::size_t>(i)];
}

int SpanningTree::depth() const {
  int worst = 0;
  for (const auto& n : nodes_) {
    worst = std::max(worst, n.depth);
  }
  return worst;
}

int SpanningTree::max_degree() const {
  int worst = 0;
  for (const auto& n : nodes_) {
    const int deg = static_cast<int>(n.children.size()) + (n.parent >= 0 ? 1 : 0);
    worst = std::max(worst, deg);
  }
  return worst;
}

int SpanningTree::leaf_of_terminal(int graph_node) const {
  // Prefer a virtual leaf mirroring the terminal; otherwise the terminal's
  // own tree node (root or a natural leaf).
  int fallback = -1;
  for (int i = 0; i < size(); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].original == graph_node) {
      if (nodes_[static_cast<std::size_t>(i)].is_virtual) {
        return i;
      }
      fallback = i;
    }
  }
  require(fallback >= 0, "SpanningTree::leaf_of_terminal: terminal not in tree");
  return fallback;
}

std::vector<int> SpanningTree::leaves() const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].children.empty()) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<int> SpanningTree::path_between(int a, int b) const {
  require(a >= 0 && a < size() && b >= 0 && b < size(),
          "SpanningTree::path_between: index out of range");
  std::vector<int> up_a{a};
  std::vector<int> up_b{b};
  int x = a;
  int y = b;
  while (x != y) {
    if (nodes_[static_cast<std::size_t>(x)].depth >=
        nodes_[static_cast<std::size_t>(y)].depth) {
      x = nodes_[static_cast<std::size_t>(x)].parent;
      up_a.push_back(x);
    } else {
      y = nodes_[static_cast<std::size_t>(y)].parent;
      up_b.push_back(y);
    }
  }
  // up_a ends at the common ancestor; append up_b reversed without the
  // duplicated ancestor.
  for (auto it = up_b.rbegin(); it != up_b.rend(); ++it) {
    if (*it != x) {
      up_a.push_back(*it);
    }
  }
  return up_a;
}

std::vector<int> SpanningTree::post_order() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(size()));
  // Iterative DFS from the root.
  std::vector<std::pair<int, std::size_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto& [v, next_child] = stack.back();
    const auto& children = nodes_[static_cast<std::size_t>(v)].children;
    if (next_child < children.size()) {
      const int c = children[next_child];
      ++next_child;
      stack.emplace_back(c, 0);
    } else {
      out.push_back(v);
      stack.pop_back();
    }
  }
  return out;
}

std::vector<bool> verify_tree_labels(const Graph& graph,
                                     const std::vector<TreeLabel>& labels) {
  const int n = graph.node_count();
  require(n >= 1, "verify_tree_labels: graph must have at least one node");
  require(static_cast<int>(labels.size()) == n,
          "verify_tree_labels: one label per node required");
  std::vector<bool> accept(static_cast<std::size_t>(n), true);
  for (int v = 0; v < n; ++v) {
    const TreeLabel& lv = labels[static_cast<std::size_t>(v)];
    bool ok = lv.root_id >= 0 && lv.root_id < n && lv.distance >= 0;
    if (ok && v == lv.root_id) {
      // Root checks: distance 0, own parent.
      ok = lv.distance == 0 && lv.parent == v;
    } else if (ok) {
      // Non-root: parent must be a true neighbor with distance one less,
      // and agree on the root id.
      ok = lv.parent >= 0 && lv.parent < n && graph.has_edge(v, lv.parent);
      if (ok) {
        const TreeLabel& lp = labels[static_cast<std::size_t>(lv.parent)];
        ok = lp.distance == lv.distance - 1 && lp.root_id == lv.root_id;
      }
    }
    // Every node also cross-checks the root id with all neighbors (a
    // constant-round exchange in the real network model).
    if (ok) {
      for (const int w : graph.neighbors(v)) {
        if (labels[static_cast<std::size_t>(w)].root_id != lv.root_id) {
          ok = false;
          break;
        }
      }
    }
    accept[static_cast<std::size_t>(v)] = ok;
  }
  return accept;
}

std::vector<TreeLabel> honest_tree_labels(const Graph& graph, int root) {
  require(root >= 0 && root < graph.node_count(),
          "honest_tree_labels: root is not a node of the graph");
  const auto dist = graph.bfs_distances(root);
  for (int v = 0; v < graph.node_count(); ++v) {
    require(dist[static_cast<std::size_t>(v)] >= 0,
            "honest_tree_labels: graph is disconnected — no BFS tree spans "
            "every node from the requested root");
  }
  std::vector<TreeLabel> labels(static_cast<std::size_t>(graph.node_count()));
  for (int v = 0; v < graph.node_count(); ++v) {
    TreeLabel& l = labels[static_cast<std::size_t>(v)];
    l.root_id = root;
    l.distance = dist[static_cast<std::size_t>(v)];
    if (v == root) {
      l.parent = v;
    } else {
      for (const int w : graph.neighbors(v)) {
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] - 1) {
          l.parent = w;
          break;
        }
      }
    }
  }
  return labels;
}

}  // namespace dqma::network

#include "comm/one_way.hpp"

namespace dqma::comm {

int qubits_for_dim(int dim) {
  int q = 0;
  while ((1 << q) < dim) {
    ++q;
  }
  return q;
}

int OneWayProtocol::message_qubits() const {
  int total = 0;
  for (const int d : message_dims()) {
    total += qubits_for_dim(d);
  }
  return total;
}

double OneWayProtocol::honest_accept(const Bitstring& x,
                                     const Bitstring& y) const {
  return accept_product(y, honest_message(x));
}

}  // namespace dqma::comm

// One-way quantum communication protocols (paper Sec. 2.2.1).
//
// A protocol is described by the structure every construction in the paper
// consumes: Alice's message is a *product of pure registers* determined by
// her input, and Bob's verdict is an exactly computable function of
// per-register projective outcomes. This covers the EQ fingerprint protocol
// pi, the Hamming-distance protocol, and the LTF/XOR protocols, and gives
// the fast dQMA runner closed-form acceptance probabilities for arbitrary
// (possibly dishonest) product messages.
#pragma once

#include <string>
#include <vector>

#include "linalg/vector.hpp"
#include "util/bitstring.hpp"

namespace dqma::comm {

using linalg::CVec;
using util::Bitstring;

/// Interface of a (bounded-error or one-sided-error) one-way quantum
/// communication protocol for a predicate on pairs of n-bit strings.
class OneWayProtocol {
 public:
  virtual ~OneWayProtocol() = default;

  virtual std::string name() const = 0;

  /// Input length n of each party.
  virtual int input_length() const = 0;

  /// Dimensions of the message registers Alice sends.
  virtual std::vector<int> message_dims() const = 0;

  /// Alice's honest message on input x (one pure state per register).
  virtual std::vector<CVec> honest_message(const Bitstring& x) const = 0;

  /// Bob's exact acceptance probability on input y for an arbitrary
  /// *product* message (registers independent but not necessarily honest).
  virtual double accept_product(const Bitstring& y,
                                const std::vector<CVec>& message) const = 0;

  /// The predicate the protocol computes (ground truth for tests/benches).
  virtual bool predicate(const Bitstring& x, const Bitstring& y) const = 0;

  /// Total message cost in qubits: sum over registers of ceil(log2 dim).
  int message_qubits() const;

  /// Acceptance of the honest run.
  double honest_accept(const Bitstring& x, const Bitstring& y) const;
};

/// ceil(log2(dim)) with qubits(1) = 0.
int qubits_for_dim(int dim);

}  // namespace dqma::comm

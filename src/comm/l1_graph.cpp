#include "comm/l1_graph.hpp"

#include "util/require.hpp"

namespace dqma::comm {

using util::Bitstring;
using util::require;

HypercubeMetric::HypercubeMetric(int m) : m_(m) {
  require(m >= 1, "HypercubeMetric: dimension must be positive");
}

Bitstring HypercubeMetric::embed(const Bitstring& label) const {
  require(label.size() == m_, "HypercubeMetric: label length mismatch");
  return label;
}

int HypercubeMetric::distance(const Bitstring& u, const Bitstring& v) const {
  return u.distance(v);
}

Bitstring HypercubeMetric::random_vertex(util::Rng& rng) const {
  return Bitstring::random(m_, rng);
}

JohnsonMetric::JohnsonMetric(int m, int k) : m_(m), k_(k) {
  require(m >= 1 && k >= 1 && k <= m, "JohnsonMetric: need 1 <= k <= m");
}

Bitstring JohnsonMetric::embed(const Bitstring& label) const {
  require(label.size() == m_, "JohnsonMetric: label length mismatch");
  require(label.weight() == k_, "JohnsonMetric: label is not a k-subset");
  return label;
}

int JohnsonMetric::distance(const Bitstring& u, const Bitstring& v) const {
  require(u.weight() == k_ && v.weight() == k_,
          "JohnsonMetric: vertices must be k-subsets");
  // dist = k - |A intersect B| = (Hamming distance of indicators) / 2.
  return u.distance(v) / 2;
}

Bitstring JohnsonMetric::random_vertex(util::Rng& rng) const {
  // Uniform k-subset via Floyd's sampling.
  Bitstring out(m_);
  for (int j = m_ - k_; j < m_; ++j) {
    const int t =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(j) + 1));
    if (out.get(t)) {
      out.set(j, true);
    } else {
      out.set(t, true);
    }
  }
  return out;
}

L1DistanceOneWayProtocol::L1DistanceOneWayProtocol(const L1Metric& metric,
                                                   int d, double delta,
                                                   std::uint64_t seed)
    : metric_(metric), d_(d) {
  require(d >= 0, "L1DistanceOneWayProtocol: threshold must be non-negative");
  const int embedded_threshold = metric.scale() * d;
  const int copies = HammingOneWayProtocol::recommended_copies(
      embedded_threshold, delta);
  inner_ = std::make_unique<HammingOneWayProtocol>(
      metric.embedding_bits(), embedded_threshold, delta, copies, seed);
}

std::vector<int> L1DistanceOneWayProtocol::message_dims() const {
  return inner_->message_dims();
}

std::vector<CVec> L1DistanceOneWayProtocol::honest_message(
    const Bitstring& x) const {
  return inner_->honest_message(metric_.embed(x));
}

double L1DistanceOneWayProtocol::accept_product(
    const Bitstring& y, const std::vector<CVec>& message) const {
  return inner_->accept_product(metric_.embed(y), message);
}

bool L1DistanceOneWayProtocol::predicate(const Bitstring& x,
                                         const Bitstring& y) const {
  return metric_.distance(x, y) <= d_;
}

}  // namespace dqma::comm

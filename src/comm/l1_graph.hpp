// l1-graph distance predicates (paper Sec. 6.2, Definitions 10-12 and
// Corollary 35): graphs whose path metric embeds into l1, equivalently
// (Lemma 33) admit a constant-scale embedding into a hypercube. For such
// graphs, deciding dist_H(u, v) <= d reduces to a Hamming-distance test on
// the embedded bitstrings, which our one-way Hamming protocol handles.
//
// Implemented metrics:
//  * HypercubeMetric — Q_m, scale 1 (distance = Hamming distance of labels);
//  * JohnsonMetric  — J(m, k), vertices = k-subsets of [m], distance
//    k - |A intersect B|; the indicator-vector embedding is 2-scale
//    (Hamming distance of indicators = 2 * Johnson distance).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "comm/hamming_protocol.hpp"
#include "comm/one_way.hpp"

namespace dqma::comm {

/// A vertex-labelled l1-graph metric with a k-scale hypercube embedding.
class L1Metric {
 public:
  virtual ~L1Metric() = default;
  virtual std::string name() const = 0;
  /// Bits of a vertex label (the metric's own encoding).
  virtual int label_bits() const = 0;
  /// Bits of the hypercube embedding.
  virtual int embedding_bits() const = 0;
  /// The embedding scale: dist_hypercube(embed(u), embed(v)) =
  /// scale * dist_H(u, v).
  virtual int scale() const = 0;
  /// Embeds a vertex label into the hypercube.
  virtual Bitstring embed(const Bitstring& label) const = 0;
  /// Ground-truth graph distance.
  virtual int distance(const Bitstring& u, const Bitstring& v) const = 0;
  /// Uniformly random vertex label.
  virtual Bitstring random_vertex(util::Rng& rng) const = 0;
};

/// The hypercube Q_m: labels are the vertices, embedding is the identity.
class HypercubeMetric final : public L1Metric {
 public:
  explicit HypercubeMetric(int m);
  std::string name() const override { return "hypercube"; }
  int label_bits() const override { return m_; }
  int embedding_bits() const override { return m_; }
  int scale() const override { return 1; }
  Bitstring embed(const Bitstring& label) const override;
  int distance(const Bitstring& u, const Bitstring& v) const override;
  Bitstring random_vertex(util::Rng& rng) const override;

 private:
  int m_;
};

/// The Johnson graph J(m, k): labels are m-bit indicators of weight k;
/// dist = k - |A intersect B|; indicator embedding has scale 2.
class JohnsonMetric final : public L1Metric {
 public:
  JohnsonMetric(int m, int k);
  std::string name() const override { return "johnson"; }
  int label_bits() const override { return m_; }
  int embedding_bits() const override { return m_; }
  int scale() const override { return 2; }
  Bitstring embed(const Bitstring& label) const override;
  int distance(const Bitstring& u, const Bitstring& v) const override;
  Bitstring random_vertex(util::Rng& rng) const override;
  int subset_size() const { return k_; }

 private:
  int m_;
  int k_;
};

/// One-way protocol for dist_H(u, v) <= d on an l1-graph (Corollary 35's
/// substrate): Hamming protocol at threshold scale * d on the embeddings.
/// `metric` must outlive the protocol.
class L1DistanceOneWayProtocol final : public OneWayProtocol {
 public:
  L1DistanceOneWayProtocol(const L1Metric& metric, int d, double delta,
                           std::uint64_t seed = 0x11a1);

  std::string name() const override {
    return "l1-distance(" + metric_.name() + ")";
  }
  int input_length() const override { return metric_.label_bits(); }
  int threshold() const { return d_; }

  std::vector<int> message_dims() const override;
  std::vector<CVec> honest_message(const Bitstring& x) const override;
  double accept_product(const Bitstring& y,
                        const std::vector<CVec>& message) const override;
  bool predicate(const Bitstring& x, const Bitstring& y) const override;

 private:
  const L1Metric& metric_;
  int d_;
  std::unique_ptr<HammingOneWayProtocol> inner_;
};

}  // namespace dqma::comm

// One-way quantum protocol for the Hamming-distance predicate
// HAM_{<=d}(x, y) = [ d(x, y) <= d ].
//
// The paper cites the O(d log n) protocol of [LZ13]; that construction
// depends on structured combinatorial gadgets with no laptop-scale public
// reference implementation. We substitute a *block-isolation* protocol
// (GKdW04-style, documented in DESIGN.md): indices are hashed into
// B = Theta(d^2) blocks so that, with high probability over the (shared,
// seeded) hash, the at-most-(d or d+1) differing indices land in distinct
// blocks; Alice fingerprints x masked to each block (k copies each) and Bob
// counts blocks with at least one rejected copy, accepting iff at most d
// blocks are flagged.
//
// Properties (proved in tests):
//  * completeness is exactly 1: equal blocks are never flagged, and the
//    number of unequal blocks is at most d(x,y) <= d;
//  * soundness error <= (d+1) delta^{2k} + Pr[hash collision], driven below
//    1/3 by k = O(log d) copies and B >= 4 (d+1)^2 blocks;
//  * cost O(d^2 log d log n) qubits — a factor ~d log d above [LZ13], which
//    EXPERIMENTS.md reports next to every measurement that depends on it.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "comm/one_way.hpp"
#include "fingerprint/fingerprint.hpp"

namespace dqma::comm {

class HammingOneWayProtocol final : public OneWayProtocol {
 public:
  /// n: input length; d: distance threshold; delta: fingerprint overlap
  /// bound; copies: fingerprints per block (k); seed: shared randomness for
  /// both the index hash and the code.
  HammingOneWayProtocol(int n, int d, double delta, int copies,
                        std::uint64_t seed = 0xd15ea5e);

  /// Copy count that brings the soundness error below `target`.
  static int recommended_copies(int d, double delta, double target = 1.0 / 3);

  std::string name() const override { return "HAM-block-isolation"; }
  int input_length() const override { return n_; }
  int threshold() const { return d_; }
  int block_count() const { return blocks_; }
  int copies() const { return copies_; }

  std::vector<int> message_dims() const override;
  std::vector<CVec> honest_message(const Bitstring& x) const override;
  double accept_product(const Bitstring& y,
                        const std::vector<CVec>& message) const override;
  bool predicate(const Bitstring& x, const Bitstring& y) const override;

  /// The mask of block b (which indices it owns); exposed for tests.
  const Bitstring& block_mask(int b) const;

 private:
  int n_;
  int d_;
  int blocks_;
  int copies_;
  fingerprint::FingerprintScheme scheme_;
  std::vector<Bitstring> masks_;  // one n-bit mask per block
  // Memo of Bob's per-block reference fingerprints — an immutable snapshot
  // behind an atomic shared_ptr, safe against concurrent accept_product
  // calls on a shared protocol object (see eq_protocol.hpp).
  struct Memo {
    Bitstring y;
    std::vector<CVec> refs;
  };
  mutable std::atomic<std::shared_ptr<const Memo>> memo_;

  Bitstring masked(const Bitstring& x, int b) const;
};

}  // namespace dqma::comm

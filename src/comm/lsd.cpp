#include "comm/lsd.hpp"

#include <cmath>

#include "comm/one_way.hpp"
#include "linalg/eigen.hpp"
#include "util/require.hpp"

namespace dqma::comm {

using linalg::Complex;
using linalg::CVec;
using util::require;

namespace {

/// Orthonormality check for columns.
bool columns_orthonormal(const CMat& a, double tol) {
  const CMat gram = a.adjoint_times(a);
  return gram.linf_distance(CMat::identity(a.cols())) <= tol;
}

/// Gram-Schmidt a set of random real Gaussian columns orthogonal to the
/// columns of `avoid` (pass a 0-column matrix to skip).
CMat random_orthonormal_columns(int m, int k, const CMat* avoid,
                                util::Rng& rng) {
  require(k >= 1 && m >= k, "random_orthonormal_columns: bad dimensions");
  CMat out(m, k);
  for (int c = 0; c < k; ++c) {
    CVec v(m);
    for (int i = 0; i < m; ++i) {
      v[i] = Complex{rng.next_gaussian(), 0.0};
    }
    // Remove components along `avoid` and along previous columns.
    auto deflate = [&](const CMat& basis, int upto) {
      for (int b = 0; b < upto; ++b) {
        Complex coeff{0.0, 0.0};
        for (int i = 0; i < m; ++i) {
          coeff += std::conj(basis(i, b)) * v[i];
        }
        for (int i = 0; i < m; ++i) {
          v[i] -= coeff * basis(i, b);
        }
      }
    };
    if (avoid != nullptr) {
      deflate(*avoid, avoid->cols());
    }
    deflate(out, c);
    v.normalize();
    for (int i = 0; i < m; ++i) {
      out(i, c) = v[i];
    }
  }
  return out;
}

CMat projector_from_basis(const CMat& basis) {
  return basis.times_adjoint(basis);
}

}  // namespace

LsdInstance::LsdInstance(CMat a_basis, CMat b_basis)
    : a_(std::move(a_basis)), b_(std::move(b_basis)) {
  require(a_.rows() == b_.rows(), "LsdInstance: ambient dimension mismatch");
  require(a_.cols() >= 1 && b_.cols() >= 1, "LsdInstance: empty subspace");
  require(columns_orthonormal(a_, 1e-8), "LsdInstance: A not orthonormal");
  require(columns_orthonormal(b_, 1e-8), "LsdInstance: B not orthonormal");
}

double LsdInstance::distance() const {
  const CMat cross = a_.adjoint_times(b_);
  const double sigma_sq = linalg::max_eigenvalue_psd(cross.times_adjoint(cross));
  const double sigma = std::sqrt(std::max(0.0, sigma_sq));
  return std::sqrt(std::max(0.0, 2.0 - 2.0 * std::min(1.0, sigma)));
}

LsdInstance LsdInstance::close_pair(int m, int k, double angle,
                                    util::Rng& rng) {
  require(m >= 2 * k, "LsdInstance::close_pair: need m >= 2k");
  const CMat a = random_orthonormal_columns(m, k, nullptr, rng);
  const CMat fresh = random_orthonormal_columns(m, k, &a, rng);
  CMat b(m, k);
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  for (int col = 0; col < k; ++col) {
    for (int i = 0; i < m; ++i) {
      b(i, col) = c * a(i, col) + s * fresh(i, col);
    }
  }
  return LsdInstance(a, b);
}

LsdInstance LsdInstance::far_pair(int m, int k, util::Rng& rng) {
  require(m >= 2 * k, "LsdInstance::far_pair: need m >= 2k");
  const CMat a = random_orthonormal_columns(m, k, nullptr, rng);
  const CMat b = random_orthonormal_columns(m, k, &a, rng);
  return LsdInstance(a, b);
}

QmaOneWayInstance lsd_qma_instance(const LsdInstance& lsd) {
  QmaOneWayInstance inst;
  inst.name = "LSD";
  const CMat pa = projector_from_basis(lsd.a_basis());
  const CMat pb = projector_from_basis(lsd.b_basis());
  // Alice: membership filter P_A (a contraction); message space = R^m.
  inst.alice = pa;
  inst.bob_accept = pb;
  // Honest proof: the top eigenvector of P_A P_B P_A (a unit vector of V1
  // maximizing ||P_B v||; for yes instances its acceptance is
  // sigma_max(A^T B)^2 >= (1 - Delta^2/2)^2).
  const auto es = linalg::eigh(pa * pb * pa);
  CVec top(lsd.ambient_dim());
  for (int i = 0; i < lsd.ambient_dim(); ++i) {
    top[i] = es.vectors(i, lsd.ambient_dim() - 1);
  }
  // Make sure the proof lies inside V1 (eigenvector of the sandwiched
  // operator with nonzero eigenvalue always does; renormalize defensively).
  CVec projected = pa * top;
  if (projected.norm() > 1e-9) {
    projected.normalize();
  } else {
    // Degenerate (e.g. P_A P_B P_A = 0): any vector of V1 is "optimal".
    for (int i = 0; i < lsd.ambient_dim(); ++i) {
      projected[i] = lsd.a_basis()(i, 0);
    }
  }
  inst.honest_proof = std::move(projected);
  inst.yes_instance = lsd.is_yes();
  inst.gamma_qubits = qubits_for_dim(lsd.ambient_dim());
  inst.mu_qubits = qubits_for_dim(lsd.ambient_dim());
  return inst;
}

}  // namespace dqma::comm

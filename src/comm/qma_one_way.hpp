// QMA one-way communication protocols (paper Definition 3), specialized to
// a *fixed input pair*: the form Algorithm 10 (Theorem 42) consumes.
//
// For a fixed (x, y), the protocol is fully described by
//   * Alice's operation: a contraction V (message_dim x proof_dim,
//     V^dagger V <= I) mapping Merlin's proof to the message; the missing
//     weight is Alice rejecting (e.g. a subspace-membership filter);
//   * Bob's accept effect M (0 <= M <= I on the message space);
//   * an honest proof for yes instances.
// Overall acceptance on proof |xi> is <xi| V^dagger M V |xi>, and the
// worst case over all proofs is the top eigenvalue of V^dagger M V.
#pragma once

#include <string>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/bitstring.hpp"

namespace dqma::comm {

using linalg::CMat;
using linalg::CVec;

/// A QMA one-way protocol instance for one fixed input pair.
struct QmaOneWayInstance {
  std::string name;
  CMat alice;        ///< message_dim x proof_dim contraction V
  CMat bob_accept;   ///< accept effect M on the message space
  CVec honest_proof; ///< optimal proof (empty vector for no instances)
  int gamma_qubits = 0;  ///< declared proof cost
  int mu_qubits = 0;     ///< declared message cost
  bool yes_instance = false;

  int proof_dim() const { return alice.cols(); }
  int message_dim() const { return alice.rows(); }
  int cost_qubits() const { return gamma_qubits + mu_qubits; }

  /// Acceptance on a specific proof vector.
  double accept(const CVec& proof) const;

  /// Worst-case acceptance over all proofs: top eigenvalue of V^dagger M V.
  double max_accept() const;

  /// Validates the structural invariants (contraction, effect range, proof
  /// normalization); throws on violation.
  void validate() const;
};

/// AND-amplification: k-fold tensor power. For one-sided-complete instances
/// completeness stays 1 while the soundness error decays as err^k. The
/// proof/message dimensions grow geometrically, so k is capped by the exact
/// engine's dimension limit.
QmaOneWayInstance and_amplify(const QmaOneWayInstance& base, int k);

/// The EQ fingerprint protocol cast as a (trivial-proof) QMA one-way
/// instance: gamma = 0; V maps the 1-dimensional proof to |h_x>; M projects
/// onto |h_y>. Used to exercise Algorithm 10 against a known baseline.
class EqOneWayProtocol;  // fwd (comm/eq_protocol.hpp)
QmaOneWayInstance eq_as_qma_instance(const EqOneWayProtocol& eq,
                                     const util::Bitstring& x,
                                     const util::Bitstring& y);

}  // namespace dqma::comm

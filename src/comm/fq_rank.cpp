#include "comm/fq_rank.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dqma::comm {

using linalg::Complex;
using util::Bitstring;
using util::require;
using util::Rng;

FqRankOneWayProtocol::FqRankOneWayProtocol(int n, int r, int sketches,
                                           std::uint64_t seed)
    : n_(n), r_(r), k_(sketches) {
  require(n >= 1, "FqRankOneWayProtocol: n must be positive");
  require(r >= 1 && r <= n, "FqRankOneWayProtocol: rank threshold range");
  require(sketches >= 1, "FqRankOneWayProtocol: need at least one sketch");
  Rng rng(seed);
  for (int i = 0; i < k_; ++i) {
    s_.push_back(Gf2Matrix::random(r_, n_, rng));
    t_.push_back(Gf2Matrix::random(n_, r_, rng));
  }
}

int FqRankOneWayProtocol::recommended_sketches(double target) {
  require(target > 0.0 && target < 1.0, "recommended_sketches: bad target");
  // Per-sketch detection probability of a rank >= r matrix is at least
  // c = prod_{j=1..inf} (1 - 2^{-j}) ~ 0.2887880951.
  const double miss = 1.0 - 0.2887880951;
  int k = 1;
  double err = miss;
  while (err > target && k < 64) {
    ++k;
    err *= miss;
  }
  return k;
}

Gf2Matrix FqRankOneWayProtocol::sketch(const Gf2Matrix& m, int i) const {
  return s_[static_cast<std::size_t>(i)] * m * t_[static_cast<std::size_t>(i)];
}

std::vector<int> FqRankOneWayProtocol::message_dims() const {
  // One qubit register per sketch bit.
  return std::vector<int>(static_cast<std::size_t>(k_ * r_ * r_), 2);
}

std::vector<CVec> FqRankOneWayProtocol::honest_message(
    const Bitstring& x) const {
  require(x.size() == input_length(),
          "FqRankOneWayProtocol: input length mismatch");
  const Gf2Matrix mx = Gf2Matrix::from_bits(x, n_, n_);
  std::vector<CVec> message;
  message.reserve(static_cast<std::size_t>(k_ * r_ * r_));
  for (int i = 0; i < k_; ++i) {
    const Bitstring bits = sketch(mx, i).to_bits();
    for (int b = 0; b < bits.size(); ++b) {
      message.push_back(CVec::basis(2, bits.get(b) ? 1 : 0));
    }
  }
  return message;
}

bool FqRankOneWayProtocol::verdict_on_bits(
    const Bitstring& y, const std::vector<Bitstring>& sketch_bits) const {
  require(static_cast<int>(sketch_bits.size()) == k_,
          "FqRankOneWayProtocol: sketch count mismatch");
  const Gf2Matrix my = Gf2Matrix::from_bits(y, n_, n_);
  for (int i = 0; i < k_; ++i) {
    const Gf2Matrix claimed_x_sketch =
        Gf2Matrix::from_bits(sketch_bits[static_cast<std::size_t>(i)], r_, r_);
    const Gf2Matrix sum = claimed_x_sketch ^ sketch(my, i);
    if (sum.rank() >= r_) {
      return false;
    }
  }
  return true;
}

double FqRankOneWayProtocol::accept_product(
    const Bitstring& y, const std::vector<CVec>& message) const {
  require(y.size() == input_length(),
          "FqRankOneWayProtocol: input length mismatch");
  const int bits_total = k_ * r_ * r_;
  require(static_cast<int>(message.size()) == bits_total,
          "FqRankOneWayProtocol: register count mismatch");

  // Per-register probability of measuring |1>.
  std::vector<double> p_one(static_cast<std::size_t>(bits_total));
  bool classical = true;
  for (int b = 0; b < bits_total; ++b) {
    const CVec& reg = message[static_cast<std::size_t>(b)];
    require(reg.dim() == 2, "FqRankOneWayProtocol: register must be a qubit");
    const double p = std::norm(reg[1]) / (std::norm(reg[0]) + std::norm(reg[1]));
    p_one[static_cast<std::size_t>(b)] = p;
    if (p > 1e-12 && p < 1.0 - 1e-12) {
      classical = false;
    }
  }

  const auto verdict_for = [&](const std::vector<bool>& outcome) {
    std::vector<Bitstring> sketch_bits;
    sketch_bits.reserve(static_cast<std::size_t>(k_));
    int idx = 0;
    for (int i = 0; i < k_; ++i) {
      Bitstring bits(r_ * r_);
      for (int b = 0; b < r_ * r_; ++b) {
        bits.set(b, outcome[static_cast<std::size_t>(idx++)]);
      }
      sketch_bits.push_back(std::move(bits));
    }
    return verdict_on_bits(y, sketch_bits) ? 1.0 : 0.0;
  };

  if (classical) {
    std::vector<bool> outcome(static_cast<std::size_t>(bits_total));
    for (int b = 0; b < bits_total; ++b) {
      outcome[static_cast<std::size_t>(b)] =
          p_one[static_cast<std::size_t>(b)] > 0.5;
    }
    return verdict_for(outcome);
  }

  // Superposed message: estimate the acceptance probability over Bob's
  // measurement outcomes with a fixed-seed internal sampler so the result
  // is deterministic for a given message.
  Rng rng(0x5a5a ^ static_cast<std::uint64_t>(bits_total));
  const int samples = 512;
  double accept = 0.0;
  std::vector<bool> outcome(static_cast<std::size_t>(bits_total));
  for (int s = 0; s < samples; ++s) {
    for (int b = 0; b < bits_total; ++b) {
      outcome[static_cast<std::size_t>(b)] =
          rng.next_bool(p_one[static_cast<std::size_t>(b)]);
    }
    accept += verdict_for(outcome);
  }
  return accept / samples;
}

bool FqRankOneWayProtocol::predicate(const Bitstring& x,
                                     const Bitstring& y) const {
  const Gf2Matrix mx = Gf2Matrix::from_bits(x, n_, n_);
  const Gf2Matrix my = Gf2Matrix::from_bits(y, n_, n_);
  return (mx ^ my).rank() < r_;
}

}  // namespace dqma::comm

// The one-way quantum protocol "pi" for EQ (paper Sec. 2.2.1): Alice sends
// the fingerprint |h_x>; Bob accepts with the rank-one projector onto
// |h_y>. Perfect completeness; soundness error at most delta^2.
#pragma once

#include <atomic>
#include <memory>

#include "comm/one_way.hpp"
#include "fingerprint/fingerprint.hpp"

namespace dqma::comm {

class EqOneWayProtocol final : public OneWayProtocol {
 public:
  EqOneWayProtocol(int n, double delta, std::uint64_t seed = 0x0ddba11);

  /// Explicit block length (testing / exact-engine instances that need a
  /// small fingerprint dimension).
  EqOneWayProtocol(int n, int block_length, double delta, std::uint64_t seed);

  std::string name() const override { return "EQ-fingerprint"; }
  int input_length() const override { return scheme_.input_length(); }
  std::vector<int> message_dims() const override { return {scheme_.dim()}; }
  std::vector<CVec> honest_message(const Bitstring& x) const override;
  double accept_product(const Bitstring& y,
                        const std::vector<CVec>& message) const override;
  bool predicate(const Bitstring& x, const Bitstring& y) const override {
    return x == y;
  }

  const fingerprint::FingerprintScheme& scheme() const { return scheme_; }

 private:
  fingerprint::FingerprintScheme scheme_;
  // Memo of Bob's reference fingerprint: Monte-Carlo protocol runs call
  // accept_product with the same y millions of times. Published as an
  // immutable snapshot behind an atomic shared_ptr so concurrent callers
  // (e.g. serve requests sharing one cached protocol) never observe a
  // half-built memo; a different y rebuilds, it never mutates in place.
  struct Memo {
    Bitstring y;
    CVec state;
  };
  mutable std::atomic<std::shared_ptr<const Memo>> memo_;
};

}  // namespace dqma::comm

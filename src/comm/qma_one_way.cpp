#include "comm/qma_one_way.hpp"

#include <cmath>

#include "comm/eq_protocol.hpp"
#include "linalg/eigen.hpp"
#include "util/require.hpp"
#include "util/tolerance.hpp"

namespace dqma::comm {

using linalg::Complex;
using util::require;

double QmaOneWayInstance::accept(const CVec& proof) const {
  require(proof.dim() == proof_dim(), "QmaOneWayInstance: proof dim mismatch");
  const CVec message = alice * proof;
  const CVec image = bob_accept * message;
  return std::max(0.0, message.dot(image).real());
}

double QmaOneWayInstance::max_accept() const {
  const CMat op = alice.adjoint_times(bob_accept) * alice;
  return linalg::max_eigenvalue_psd(op);
}

void QmaOneWayInstance::validate() const {
  // Spectral checks are O(dim^3); skip them beyond a few hundred dimensions
  // (they exist to catch construction bugs, which small instances surface).
  if (proof_dim() <= 256) {
    // V^dagger V <= I.
    const CMat gram = alice.adjoint_times(alice);
    const auto es = linalg::eigh(gram);
    require(es.values.front() >= -1e-8 && es.values.back() <= 1.0 + 1e-8,
            "QmaOneWayInstance: alice map is not a contraction");
  }
  if (message_dim() <= 256) {
    // 0 <= M <= I.
    const auto em = linalg::eigh(bob_accept);
    require(em.values.front() >= -1e-8 && em.values.back() <= 1.0 + 1e-8,
            "QmaOneWayInstance: bob effect not in [0, I]");
  }
  if (yes_instance) {
    require(honest_proof.dim() == proof_dim(),
            "QmaOneWayInstance: honest proof dimension mismatch");
    require(std::abs(honest_proof.norm() - 1.0) < 1e-6,
            "QmaOneWayInstance: honest proof not normalized");
  }
}

QmaOneWayInstance and_amplify(const QmaOneWayInstance& base, int k) {
  require(k >= 1, "and_amplify: k must be positive");
  QmaOneWayInstance out = base;
  out.name = base.name + "^" + std::to_string(k);
  for (int rep = 1; rep < k; ++rep) {
    out.alice = out.alice.kron(base.alice);
    out.bob_accept = out.bob_accept.kron(base.bob_accept);
    if (base.yes_instance) {
      out.honest_proof = out.honest_proof.tensor(base.honest_proof);
    }
    require(out.message_dim() <= util::kMaxDenseExactDim,
            "and_amplify: amplified dimension too large");
  }
  out.gamma_qubits = base.gamma_qubits * k;
  out.mu_qubits = base.mu_qubits * k;
  return out;
}

QmaOneWayInstance eq_as_qma_instance(const EqOneWayProtocol& eq,
                                     const util::Bitstring& x,
                                     const util::Bitstring& y) {
  QmaOneWayInstance inst;
  inst.name = "EQ-as-QMAcc1";
  const CVec hx = eq.scheme().state(x);
  const CVec hy = eq.scheme().state(y);
  // Proof space is trivial (dim 1); Alice deterministically emits |h_x>.
  CMat v(hx.dim(), 1);
  for (int i = 0; i < hx.dim(); ++i) {
    v(i, 0) = hx[i];
  }
  inst.alice = std::move(v);
  inst.bob_accept = CMat::projector(hy);
  inst.yes_instance = (x == y);
  inst.honest_proof = CVec::basis(1, 0);
  inst.gamma_qubits = 0;
  inst.mu_qubits = eq.message_qubits();
  return inst;
}

}  // namespace dqma::comm

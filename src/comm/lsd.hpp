// The Linear Subspace Distance (LSD) problem of Raz and Shpilka (paper
// Definition 16): given subspaces V1 (Alice) and V2 (Bob) of R^m promised
// that Delta(V1, V2) <= 0.1 sqrt(2) or >= 0.9 sqrt(2), decide which.
//
// Delta(V1, V2) = min over unit v1 in V1, v2 in V2 of ||v1 - v2||, which
// equals sqrt(2 - 2 sigma_max(A^T B)) for orthonormal basis matrices A, B.
//
// The QMA one-way protocol of Lemma 45 (cost O(log m)): Merlin sends the
// closest unit vector v1 in V1; Alice filters through the projector P_A and
// forwards; Bob measures {P_B, I - P_B}. Yes instances accept with
// probability >= (1 - Delta^2/2)^2 >= 0.98; no instances accept with
// probability <= (1 - Delta^2/2)^2 <= 0.037 for any proof.
#pragma once

#include "comm/qma_one_way.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace dqma::comm {

/// An LSD instance: two subspaces of R^m (stored as real-valued complex
/// matrices with orthonormal columns).
class LsdInstance {
 public:
  /// From explicit orthonormal bases (columns). Validates orthonormality.
  LsdInstance(CMat a_basis, CMat b_basis);

  int ambient_dim() const { return a_.rows(); }
  int dim_a() const { return a_.cols(); }
  int dim_b() const { return b_.cols(); }
  const CMat& a_basis() const { return a_; }
  const CMat& b_basis() const { return b_; }

  /// Delta(V1, V2) = sqrt(2 - 2 sigma_max(A^dagger B)).
  double distance() const;

  /// Promise checks with the paper's constants.
  bool is_yes() const { return distance() <= 0.1 * kSqrt2; }
  bool is_no() const { return distance() >= 0.9 * kSqrt2; }

  /// Yes instance: V2 is V1 with every basis vector rotated by `angle`
  /// into fresh orthogonal directions; Delta = sqrt(2 - 2 cos(angle)).
  static LsdInstance close_pair(int m, int k, double angle, util::Rng& rng);

  /// No instance: V2 orthogonal to V1 (Delta = sqrt(2)).
  static LsdInstance far_pair(int m, int k, util::Rng& rng);

  static constexpr double kSqrt2 = 1.4142135623730951;

 private:
  CMat a_;
  CMat b_;
};

/// The Lemma 45 QMA one-way protocol for an LSD instance.
QmaOneWayInstance lsd_qma_instance(const LsdInstance& lsd);

}  // namespace dqma::comm

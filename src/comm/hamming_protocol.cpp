#include "comm/hamming_protocol.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dqma::comm {

using util::Bitstring;
using util::require;

HammingOneWayProtocol::HammingOneWayProtocol(int n, int d, double delta,
                                             int copies, std::uint64_t seed)
    : n_(n),
      d_(d),
      blocks_(std::max(1, 4 * (d + 1) * (d + 1))),
      copies_(copies),
      scheme_(n, delta, seed ^ 0x5eed) {
  require(n >= 1, "HammingOneWayProtocol: n must be positive");
  require(d >= 0 && d <= n, "HammingOneWayProtocol: d out of range");
  require(copies >= 1, "HammingOneWayProtocol: copies must be positive");
  // Hash every index into a block with the shared seed.
  util::Rng rng(seed);
  masks_.assign(static_cast<std::size_t>(blocks_), Bitstring(n));
  for (int i = 0; i < n; ++i) {
    const int b =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(blocks_)));
    masks_[static_cast<std::size_t>(b)].set(i, true);
  }
}

int HammingOneWayProtocol::recommended_copies(int d, double delta,
                                              double target) {
  require(delta > 0.0 && delta < 1.0, "recommended_copies: bad delta");
  require(target > 0.0 && target < 1.0, "recommended_copies: bad target");
  // Want (d+1) * delta^{2k} <= target / 2 (the hash-collision half of the
  // error budget is controlled by the block count).
  int k = 1;
  double err = (d + 1) * std::pow(delta * delta, k);
  while (err > target / 2 && k < 64) {
    ++k;
    err = (d + 1) * std::pow(delta * delta, k);
  }
  return k;
}

std::vector<int> HammingOneWayProtocol::message_dims() const {
  return std::vector<int>(
      static_cast<std::size_t>(blocks_ * copies_), scheme_.dim());
}

Bitstring HammingOneWayProtocol::masked(const Bitstring& x, int b) const {
  Bitstring out(n_);
  const Bitstring& mask = masks_[static_cast<std::size_t>(b)];
  for (int i = 0; i < n_; ++i) {
    if (mask.get(i) && x.get(i)) {
      out.set(i, true);
    }
  }
  return out;
}

std::vector<CVec> HammingOneWayProtocol::honest_message(
    const Bitstring& x) const {
  require(x.size() == n_, "HammingOneWayProtocol: input length mismatch");
  std::vector<CVec> message;
  message.reserve(static_cast<std::size_t>(blocks_ * copies_));
  for (int b = 0; b < blocks_; ++b) {
    const CVec fp = scheme_.state(masked(x, b));
    for (int c = 0; c < copies_; ++c) {
      message.push_back(fp);
    }
  }
  return message;
}

double HammingOneWayProtocol::accept_product(
    const Bitstring& y, const std::vector<CVec>& message) const {
  require(y.size() == n_, "HammingOneWayProtocol: input length mismatch");
  require(static_cast<int>(message.size()) == blocks_ * copies_,
          "HammingOneWayProtocol: register count mismatch");
  std::shared_ptr<const Memo> memo = memo_.load(std::memory_order_acquire);
  if (memo == nullptr || memo->y != y) {
    auto fresh = std::make_shared<Memo>();
    fresh->y = y;
    fresh->refs.reserve(static_cast<std::size_t>(blocks_));
    for (int b = 0; b < blocks_; ++b) {
      fresh->refs.push_back(scheme_.state(masked(y, b)));
    }
    memo = std::move(fresh);
    memo_.store(memo, std::memory_order_release);
  }
  // Per block: probability that *all* copies pass Bob's projector.
  std::vector<double> pass(static_cast<std::size_t>(blocks_), 1.0);
  for (int b = 0; b < blocks_; ++b) {
    const CVec& ref = memo->refs[static_cast<std::size_t>(b)];
    for (int c = 0; c < copies_; ++c) {
      const double amp =
          std::abs(ref.dot(message[static_cast<std::size_t>(b * copies_ + c)]));
      pass[static_cast<std::size_t>(b)] *= amp * amp;
    }
  }
  // Bob accepts iff at most d blocks are flagged (flag = any copy rejects).
  // Poisson-binomial tail by dynamic programming over blocks.
  std::vector<double> dp(static_cast<std::size_t>(d_) + 1, 0.0);
  dp[0] = 1.0;
  double overflow = 0.0;  // probability mass with > d flags
  for (int b = 0; b < blocks_; ++b) {
    const double q = 1.0 - pass[static_cast<std::size_t>(b)];  // flag prob
    if (q == 0.0) {
      continue;
    }
    double carry = 0.0;
    for (int f = 0; f <= d_; ++f) {
      const double stay = dp[static_cast<std::size_t>(f)] * (1.0 - q);
      const double up = dp[static_cast<std::size_t>(f)] * q;
      dp[static_cast<std::size_t>(f)] = stay + carry;
      carry = up;
    }
    overflow += carry;  // mass promoted beyond d flags never comes back
  }
  double accept = 0.0;
  for (const double v : dp) {
    accept += v;
  }
  // Guard against rounding: accept + overflow should be ~1.
  (void)overflow;
  return std::min(1.0, std::max(0.0, accept));
}

bool HammingOneWayProtocol::predicate(const Bitstring& x,
                                      const Bitstring& y) const {
  return x.distance(y) <= d_;
}

const Bitstring& HammingOneWayProtocol::block_mask(int b) const {
  require(b >= 0 && b < blocks_, "HammingOneWayProtocol: block out of range");
  return masks_[static_cast<std::size_t>(b)];
}

}  // namespace dqma::comm

// One-way protocol for the F_2-rank predicate (paper Definition 15 /
// Corollary 41): F2-rank^r_n(X, Y) = 1 iff rank(X + Y) < r over GF(2).
//
// The paper cites [LZ13] (cost min{q^{O(r^2)}, O(nr log q + n log n)} in
// the SMP model with private randomness). We substitute a *shared-
// randomness sketching* protocol (DESIGN.md): with public random
// S in F_2^{r x n} and T in F_2^{n x r}, Alice sends the r x r sketch
// S X T in the clear; Bob forms S(X+Y)T = (S X T) + (S Y T) and checks
// rank < r. Since rank(S M T) <= rank(M), yes instances are accepted with
// certainty (one-sided!), and if rank(M) >= r then rank(S M T) = r with
// probability >= prod_{j>=1}(1 - 2^{-j}) ~ 0.2887, amplified by k
// independent sketches. Cost: k r^2 classical bits ~ O(r^2 log(1/eps)) —
// matching the q^{O(r^2)}-regime's r-dependence at exponentially smaller
// cost, thanks to shared randomness.
//
// Classical bits are modeled as computational-basis qubit registers, so
// the OneWayProtocol interface (and hence the forall_t construction of
// Theorem 32) applies unchanged; a dishonest prover may send arbitrary
// qubit states, which Bob measures — acceptance is then estimated by
// internal (seeded, deterministic) sampling unless the message is within
// numerical tolerance of a basis state, where the exact path is used.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/one_way.hpp"
#include "util/gf2.hpp"

namespace dqma::comm {

using util::Gf2Matrix;

class FqRankOneWayProtocol final : public OneWayProtocol {
 public:
  /// n: matrix dimension (inputs are n x n over GF(2), encoded row-major
  /// as n^2-bit strings); r: rank threshold (predicate: rank(X+Y) < r);
  /// sketches: amplification count k.
  FqRankOneWayProtocol(int n, int r, int sketches,
                       std::uint64_t seed = 0xf2f2);

  /// Sketch count for soundness error (1 - 0.288)^k <= target.
  static int recommended_sketches(double target = 1.0 / 3);

  std::string name() const override { return "F2-rank-sketch"; }
  int input_length() const override { return n_ * n_; }
  int matrix_dim() const { return n_; }
  int rank_threshold() const { return r_; }
  int sketch_count() const { return k_; }

  std::vector<int> message_dims() const override;
  std::vector<CVec> honest_message(const Bitstring& x) const override;
  double accept_product(const Bitstring& y,
                        const std::vector<CVec>& message) const override;
  bool predicate(const Bitstring& x, const Bitstring& y) const override;

  /// Bob's classical verdict on explicit sketch bits (exposed for tests).
  bool verdict_on_bits(const Bitstring& y,
                       const std::vector<Bitstring>& sketch_bits) const;

 private:
  int n_;
  int r_;
  int k_;
  std::vector<Gf2Matrix> s_;  ///< k left sketching matrices (r x n)
  std::vector<Gf2Matrix> t_;  ///< k right sketching matrices (n x r)

  Gf2Matrix sketch(const Gf2Matrix& m, int i) const;
};

}  // namespace dqma::comm

#include "comm/eq_protocol.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dqma::comm {

using util::require;

EqOneWayProtocol::EqOneWayProtocol(int n, double delta, std::uint64_t seed)
    : scheme_(n, delta, seed) {}

EqOneWayProtocol::EqOneWayProtocol(int n, int block_length, double delta,
                                   std::uint64_t seed)
    : scheme_(n, block_length, delta, seed) {}

std::vector<CVec> EqOneWayProtocol::honest_message(const Bitstring& x) const {
  return {scheme_.state(x)};
}

double EqOneWayProtocol::accept_product(
    const Bitstring& y, const std::vector<CVec>& message) const {
  require(message.size() == 1, "EqOneWayProtocol: expected one register");
  require(message.front().dim() == scheme_.dim(),
          "EqOneWayProtocol: message dimension mismatch");
  if (!has_cache_ || cached_y_ != y) {
    cached_y_ = y;
    cached_state_ = scheme_.state(y);
    has_cache_ = true;
  }
  const double amp = std::abs(cached_state_.dot(message.front()));
  return amp * amp;
}

}  // namespace dqma::comm

#include "comm/eq_protocol.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dqma::comm {

using util::require;

EqOneWayProtocol::EqOneWayProtocol(int n, double delta, std::uint64_t seed)
    : scheme_(n, delta, seed) {}

EqOneWayProtocol::EqOneWayProtocol(int n, int block_length, double delta,
                                   std::uint64_t seed)
    : scheme_(n, block_length, delta, seed) {}

std::vector<CVec> EqOneWayProtocol::honest_message(const Bitstring& x) const {
  return {scheme_.state(x)};
}

double EqOneWayProtocol::accept_product(
    const Bitstring& y, const std::vector<CVec>& message) const {
  require(message.size() == 1, "EqOneWayProtocol: expected one register");
  require(message.front().dim() == scheme_.dim(),
          "EqOneWayProtocol: message dimension mismatch");
  std::shared_ptr<const Memo> memo = memo_.load(std::memory_order_acquire);
  if (memo == nullptr || memo->y != y) {
    memo = std::make_shared<const Memo>(Memo{y, scheme_.state(y)});
    memo_.store(memo, std::memory_order_release);
  }
  const double amp = std::abs(memo->state.dot(message.front()));
  return amp * amp;
}

}  // namespace dqma::comm

// One-way protocol for linear-threshold XOR functions (paper Def. 14 /
// Lemma 38): F(x, y) = f(x xor y) with f(z) = [ sum_i w_i z_i <= theta ].
//
// Implemented by the textbook weight-expansion reduction to the Hamming
// protocol: repeat index i exactly w_i times, so the weighted XOR weight of
// (x, y) equals the Hamming distance of the expanded strings. The paper's
// O((theta/margin) log n) cost via [LZ13] is replaced by the expanded
// Hamming cost (DESIGN.md substitution table); the predicate and the
// one-sided completeness are exact.
#pragma once

#include <memory>
#include <vector>

#include "comm/hamming_protocol.hpp"
#include "comm/one_way.hpp"

namespace dqma::comm {

class LtfOneWayProtocol final : public OneWayProtocol {
 public:
  /// weights: per-index non-negative integer weights; theta: threshold.
  LtfOneWayProtocol(std::vector<int> weights, int theta, double delta,
                    std::uint64_t seed = 0x17f0);

  std::string name() const override { return "LTF-weight-expansion"; }
  int input_length() const override {
    return static_cast<int>(weights_.size());
  }
  int theta() const { return theta_; }
  int expanded_length() const { return expanded_length_; }

  std::vector<int> message_dims() const override;
  std::vector<CVec> honest_message(const Bitstring& x) const override;
  double accept_product(const Bitstring& y,
                        const std::vector<CVec>& message) const override;
  bool predicate(const Bitstring& x, const Bitstring& y) const override;

 private:
  std::vector<int> weights_;
  int theta_;
  int expanded_length_;
  std::unique_ptr<HammingOneWayProtocol> inner_;

  Bitstring expand(const Bitstring& x) const;
};

}  // namespace dqma::comm

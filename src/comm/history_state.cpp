#include "comm/history_state.hpp"

#include <cmath>

#include "linalg/eigen.hpp"
#include "util/require.hpp"

namespace dqma::comm {

using linalg::Complex;
using linalg::CVec;
using util::require;

namespace {

/// Orthonormal basis of the column space of `v` (Gram-Schmidt, dropping
/// columns whose residual norm is below `tol`). Returns at least one column
/// when v is nonzero.
CMat column_space_basis(const CMat& v, double tol) {
  const int m = v.rows();
  std::vector<CVec> basis;
  for (int c = 0; c < v.cols(); ++c) {
    CVec col(m);
    for (int i = 0; i < m; ++i) {
      col[i] = v(i, c);
    }
    for (const auto& b : basis) {
      const Complex coeff = b.dot(col);
      for (int i = 0; i < m; ++i) {
        col[i] -= coeff * b[i];
      }
    }
    if (col.norm() > tol) {
      col.normalize();
      basis.push_back(std::move(col));
    }
  }
  require(!basis.empty(), "column_space_basis: zero map");
  CMat out(m, static_cast<int>(basis.size()));
  for (int c = 0; c < out.cols(); ++c) {
    for (int i = 0; i < m; ++i) {
      out(i, c) = basis[static_cast<std::size_t>(c)][i];
    }
  }
  return out;
}

}  // namespace

LsdInstance lsd_from_qma_instance(const QmaOneWayInstance& inst, double tau) {
  require(tau > 0.0 && tau < 1.0, "lsd_from_qma_instance: tau must be in (0,1)");
  const CMat a_basis = column_space_basis(inst.alice, 1e-8);

  // Bob's subspace: eigenvectors of M with eigenvalue >= tau.
  const auto es = linalg::eigh(inst.bob_accept);
  const int m = inst.message_dim();
  std::vector<int> chosen;
  for (int k = 0; k < m; ++k) {
    if (es.values[static_cast<std::size_t>(k)] >= tau) {
      chosen.push_back(k);
    }
  }
  if (chosen.empty()) {
    // Degenerate no-instance: take the top eigenvector so the instance stays
    // well-formed; the distance is then automatically large.
    chosen.push_back(m - 1);
  }
  CMat b_basis(m, static_cast<int>(chosen.size()));
  for (int c = 0; c < b_basis.cols(); ++c) {
    for (int i = 0; i < m; ++i) {
      b_basis(i, c) = es.vectors(i, chosen[static_cast<std::size_t>(c)]);
    }
  }
  return LsdInstance(std::move(a_basis), std::move(b_basis));
}

double no_instance_distance_bound(double soundness, double tau) {
  require(soundness >= 0.0 && soundness <= 1.0,
          "no_instance_distance_bound: soundness out of range");
  require(tau > 0.0 && tau <= 1.0, "no_instance_distance_bound: bad tau");
  const double sigma = std::sqrt(std::min(1.0, soundness / tau));
  return std::sqrt(std::max(0.0, 2.0 - 2.0 * sigma));
}

}  // namespace dqma::comm

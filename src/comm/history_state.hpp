// Reduction from QMA one-way protocols to the LSD problem: the Lemma 44
// direction specialized to one-way protocols (see DESIGN.md's substitution
// table for the relationship to the full Raz-Shpilka circuit-to-subspace
// construction).
//
// For a protocol instance with Alice contraction V and Bob effect M:
//   * Alice's subspace  A = range(V)  (every message she can emit);
//   * Bob's subspace    B = span of eigenvectors of M with eigenvalue >= tau.
// If some proof is accepted with probability close to 1, the corresponding
// message has almost all its weight in B, so Delta(A, B) is small. If every
// proof is accepted with probability at most s, then every unit a in A has
// ||P_B a||^2 <= s / tau, so Delta(A, B) >= sqrt(2 - 2 sqrt(s/tau)).
// AND-amplifying the protocol first (qma_one_way.hpp) drives the instance
// into the LSD promise gap.
#pragma once

#include "comm/lsd.hpp"
#include "comm/qma_one_way.hpp"

namespace dqma::comm {

/// Builds the LSD instance of the reduction. `tau` is the eigenvalue cutoff
/// defining Bob's subspace (default 0.5).
LsdInstance lsd_from_qma_instance(const QmaOneWayInstance& inst,
                                  double tau = 0.5);

/// Analytic no-instance bound: an upper bound on sigma_max(A^dagger B) when
/// every proof accepts with probability at most `soundness`, giving the
/// distance lower bound sqrt(2 - 2 sqrt(soundness / tau)).
double no_instance_distance_bound(double soundness, double tau);

}  // namespace dqma::comm

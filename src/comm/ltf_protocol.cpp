#include "comm/ltf_protocol.hpp"

#include <numeric>

#include "util/require.hpp"

namespace dqma::comm {

using util::Bitstring;
using util::require;

LtfOneWayProtocol::LtfOneWayProtocol(std::vector<int> weights, int theta,
                                     double delta, std::uint64_t seed)
    : weights_(std::move(weights)), theta_(theta) {
  require(!weights_.empty(), "LtfOneWayProtocol: need at least one weight");
  for (const int w : weights_) {
    require(w >= 0, "LtfOneWayProtocol: weights must be non-negative");
  }
  expanded_length_ = std::accumulate(weights_.begin(), weights_.end(), 0);
  require(expanded_length_ >= 1, "LtfOneWayProtocol: all-zero weights");
  require(theta >= 0 && theta <= expanded_length_,
          "LtfOneWayProtocol: threshold out of range");
  const int copies = HammingOneWayProtocol::recommended_copies(theta, delta);
  inner_ = std::make_unique<HammingOneWayProtocol>(expanded_length_, theta,
                                                   delta, copies, seed);
}

Bitstring LtfOneWayProtocol::expand(const Bitstring& x) const {
  Bitstring out(expanded_length_);
  int pos = 0;
  for (int i = 0; i < input_length(); ++i) {
    for (int rep = 0; rep < weights_[static_cast<std::size_t>(i)]; ++rep) {
      out.set(pos++, x.get(i));
    }
  }
  return out;
}

std::vector<int> LtfOneWayProtocol::message_dims() const {
  return inner_->message_dims();
}

std::vector<CVec> LtfOneWayProtocol::honest_message(const Bitstring& x) const {
  require(x.size() == input_length(),
          "LtfOneWayProtocol: input length mismatch");
  return inner_->honest_message(expand(x));
}

double LtfOneWayProtocol::accept_product(
    const Bitstring& y, const std::vector<CVec>& message) const {
  require(y.size() == input_length(),
          "LtfOneWayProtocol: input length mismatch");
  return inner_->accept_product(expand(y), message);
}

bool LtfOneWayProtocol::predicate(const Bitstring& x,
                                  const Bitstring& y) const {
  int weighted = 0;
  for (int i = 0; i < input_length(); ++i) {
    if (x.get(i) != y.get(i)) {
      weighted += weights_[static_cast<std::size_t>(i)];
    }
  }
  return weighted <= theta_;
}

}  // namespace dqma::comm

#include "util/gf2.hpp"

#include <bit>
#include <utility>

#include "util/require.hpp"

namespace dqma::util {

Gf2Matrix::Gf2Matrix(int rows, int cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64) {
  require(rows >= 1 && cols >= 1, "Gf2Matrix: dimensions must be positive");
  w_.assign(static_cast<std::size_t>(rows) *
                static_cast<std::size_t>(words_per_row_),
            0);
}

Gf2Matrix Gf2Matrix::identity(int n) {
  Gf2Matrix m(n, n);
  for (int i = 0; i < n; ++i) {
    m.set(i, i, true);
  }
  return m;
}

Gf2Matrix Gf2Matrix::random(int rows, int cols, Rng& rng) {
  Gf2Matrix m(rows, cols);
  for (auto& word : m.w_) {
    word = rng.next_u64();
  }
  // Mask tail bits of every row.
  const int tail = cols % 64;
  if (tail != 0) {
    const std::uint64_t mask = (1ULL << tail) - 1;
    for (int i = 0; i < rows; ++i) {
      m.word(i, m.words_per_row_ - 1) &= mask;
    }
  }
  return m;
}

Gf2Matrix Gf2Matrix::random_of_rank(int n, int r, Rng& rng) {
  require(r >= 0 && r <= n, "Gf2Matrix::random_of_rank: rank out of range");
  if (r == 0) {
    return Gf2Matrix(n, n);
  }
  for (;;) {
    const Gf2Matrix a = random(n, r, rng);
    const Gf2Matrix b = random(r, n, rng);
    const Gf2Matrix m = a * b;
    if (m.rank() == r) {
      return m;
    }
  }
}

Gf2Matrix Gf2Matrix::from_bits(const Bitstring& bits, int rows, int cols) {
  require(bits.size() == rows * cols, "Gf2Matrix::from_bits: size mismatch");
  Gf2Matrix m(rows, cols);
  // Row i occupies bit range [i * cols, (i + 1) * cols) of the source; both
  // sides share the LSB-first word layout, so each destination word is a
  // 64-bit window spliced from (at most) two source words — no per-bit
  // get/set probing.
  const auto& src = bits.words();
  const int tail = cols % 64;
  const std::uint64_t tail_mask =
      tail == 0 ? ~0ULL : ((1ULL << tail) - 1);
  for (int i = 0; i < rows; ++i) {
    const long long row_bit = static_cast<long long>(i) * cols;
    for (int wdx = 0; wdx < m.words_per_row_; ++wdx) {
      const long long bit = row_bit + static_cast<long long>(wdx) * 64;
      const std::size_t w = static_cast<std::size_t>(bit / 64);
      const int shift = static_cast<int>(bit % 64);
      std::uint64_t window = w < src.size() ? src[w] >> shift : 0;
      if (shift != 0 && w + 1 < src.size()) {
        window |= src[w + 1] << (64 - shift);
      }
      if (wdx == m.words_per_row_ - 1) {
        window &= tail_mask;
      }
      m.word(i, wdx) = window;
    }
  }
  return m;
}

Bitstring Gf2Matrix::to_bits() const {
  Bitstring out(rows_ * cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) {
      out.set(i * cols_ + j, get(i, j));
    }
  }
  return out;
}

bool Gf2Matrix::get(int i, int j) const {
  require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
          "Gf2Matrix::get: index out of range");
  return (word(i, j / 64) >> (j % 64)) & 1ULL;
}

void Gf2Matrix::set(int i, int j, bool v) {
  require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
          "Gf2Matrix::set: index out of range");
  const std::uint64_t mask = 1ULL << (j % 64);
  if (v) {
    word(i, j / 64) |= mask;
  } else {
    word(i, j / 64) &= ~mask;
  }
}

Gf2Matrix Gf2Matrix::operator^(const Gf2Matrix& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Gf2Matrix::operator^: shape mismatch");
  Gf2Matrix out = *this;
  for (std::size_t k = 0; k < w_.size(); ++k) {
    out.w_[k] ^= other.w_[k];
  }
  return out;
}

Gf2Matrix Gf2Matrix::operator*(const Gf2Matrix& other) const {
  require(cols_ == other.rows_, "Gf2Matrix::operator*: shape mismatch");
  Gf2Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      if (!get(i, k)) {
        continue;
      }
      // Row i of the result ^= row k of `other`.
      for (int wdx = 0; wdx < other.words_per_row_; ++wdx) {
        out.word(i, wdx) ^= other.word(k, wdx);
      }
    }
  }
  return out;
}

int Gf2Matrix::rank() const {
  Gf2Matrix work = *this;
  int rank = 0;
  // Invariant: rows at or below `rank` are zero in every column before
  // `col`, so the pivot search and the elimination only ever touch words
  // from col / 64 onward, and the next pivot column within the current
  // word is found by one OR over the candidate rows plus countr_zero —
  // never by per-bit get() probes.
  int col = 0;
  while (col < cols_ && rank < rows_) {
    const int w = col / 64;
    const int bit_in_word = col % 64;
    const std::uint64_t low_mask =
        bit_in_word == 0 ? ~0ULL : ~((1ULL << bit_in_word) - 1);
    std::uint64_t candidates = 0;
    for (int i = rank; i < rows_; ++i) {
      candidates |= work.word(i, w);
    }
    candidates &= low_mask;
    if (candidates == 0) {
      col = (w + 1) * 64;  // no pivot anywhere in this word
      continue;
    }
    const int pivot_col = w * 64 + std::countr_zero(candidates);
    const std::uint64_t pivot_bit = 1ULL << (pivot_col % 64);
    int pivot = rank;
    while ((work.word(pivot, w) & pivot_bit) == 0) {
      ++pivot;
    }
    // Swap pivot row into place (words before w are zero in both rows).
    if (pivot != rank) {
      for (int wdx = w; wdx < words_per_row_; ++wdx) {
        std::swap(work.word(pivot, wdx), work.word(rank, wdx));
      }
    }
    // Eliminate below.
    for (int i = rank + 1; i < rows_; ++i) {
      if (work.word(i, w) & pivot_bit) {
        for (int wdx = w; wdx < words_per_row_; ++wdx) {
          work.word(i, wdx) ^= work.word(rank, wdx);
        }
      }
    }
    ++rank;
    col = pivot_col + 1;
  }
  return rank;
}

bool Gf2Matrix::operator==(const Gf2Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && w_ == other.w_;
}

}  // namespace dqma::util

#include "util/gf2.hpp"

#include "util/require.hpp"

namespace dqma::util {

Gf2Matrix::Gf2Matrix(int rows, int cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64) {
  require(rows >= 1 && cols >= 1, "Gf2Matrix: dimensions must be positive");
  w_.assign(static_cast<std::size_t>(rows) *
                static_cast<std::size_t>(words_per_row_),
            0);
}

Gf2Matrix Gf2Matrix::identity(int n) {
  Gf2Matrix m(n, n);
  for (int i = 0; i < n; ++i) {
    m.set(i, i, true);
  }
  return m;
}

Gf2Matrix Gf2Matrix::random(int rows, int cols, Rng& rng) {
  Gf2Matrix m(rows, cols);
  for (auto& word : m.w_) {
    word = rng.next_u64();
  }
  // Mask tail bits of every row.
  const int tail = cols % 64;
  if (tail != 0) {
    const std::uint64_t mask = (1ULL << tail) - 1;
    for (int i = 0; i < rows; ++i) {
      m.word(i, m.words_per_row_ - 1) &= mask;
    }
  }
  return m;
}

Gf2Matrix Gf2Matrix::random_of_rank(int n, int r, Rng& rng) {
  require(r >= 0 && r <= n, "Gf2Matrix::random_of_rank: rank out of range");
  if (r == 0) {
    return Gf2Matrix(n, n);
  }
  for (;;) {
    const Gf2Matrix a = random(n, r, rng);
    const Gf2Matrix b = random(r, n, rng);
    const Gf2Matrix m = a * b;
    if (m.rank() == r) {
      return m;
    }
  }
}

Gf2Matrix Gf2Matrix::from_bits(const Bitstring& bits, int rows, int cols) {
  require(bits.size() == rows * cols, "Gf2Matrix::from_bits: size mismatch");
  Gf2Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      m.set(i, j, bits.get(i * cols + j));
    }
  }
  return m;
}

Bitstring Gf2Matrix::to_bits() const {
  Bitstring out(rows_ * cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) {
      out.set(i * cols_ + j, get(i, j));
    }
  }
  return out;
}

bool Gf2Matrix::get(int i, int j) const {
  require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
          "Gf2Matrix::get: index out of range");
  return (word(i, j / 64) >> (j % 64)) & 1ULL;
}

void Gf2Matrix::set(int i, int j, bool v) {
  require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
          "Gf2Matrix::set: index out of range");
  const std::uint64_t mask = 1ULL << (j % 64);
  if (v) {
    word(i, j / 64) |= mask;
  } else {
    word(i, j / 64) &= ~mask;
  }
}

Gf2Matrix Gf2Matrix::operator^(const Gf2Matrix& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Gf2Matrix::operator^: shape mismatch");
  Gf2Matrix out = *this;
  for (std::size_t k = 0; k < w_.size(); ++k) {
    out.w_[k] ^= other.w_[k];
  }
  return out;
}

Gf2Matrix Gf2Matrix::operator*(const Gf2Matrix& other) const {
  require(cols_ == other.rows_, "Gf2Matrix::operator*: shape mismatch");
  Gf2Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      if (!get(i, k)) {
        continue;
      }
      // Row i of the result ^= row k of `other`.
      for (int wdx = 0; wdx < other.words_per_row_; ++wdx) {
        out.word(i, wdx) ^= other.word(k, wdx);
      }
    }
  }
  return out;
}

int Gf2Matrix::rank() const {
  Gf2Matrix work = *this;
  int rank = 0;
  for (int col = 0; col < cols_ && rank < rows_; ++col) {
    // Find a pivot row at or below `rank` with a 1 in this column.
    int pivot = -1;
    for (int i = rank; i < rows_; ++i) {
      if (work.get(i, col)) {
        pivot = i;
        break;
      }
    }
    if (pivot < 0) {
      continue;
    }
    // Swap pivot row into place.
    if (pivot != rank) {
      for (int wdx = 0; wdx < words_per_row_; ++wdx) {
        std::swap(work.word(pivot, wdx), work.word(rank, wdx));
      }
    }
    // Eliminate below.
    for (int i = rank + 1; i < rows_; ++i) {
      if (work.get(i, col)) {
        for (int wdx = 0; wdx < words_per_row_; ++wdx) {
          work.word(i, wdx) ^= work.word(rank, wdx);
        }
      }
    }
    ++rank;
  }
  return rank;
}

bool Gf2Matrix::operator==(const Gf2Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && w_ == other.w_;
}

}  // namespace dqma::util

// Smoke-mode switch for the bench/ table harnesses.
//
// The CTest `bench-smoke` label runs every harness with DQMA_BENCH_SMOKE=1
// in the environment; harnesses shrink their heaviest parameter sweeps so
// the smoke run exercises every code path cheaply, while a direct
// invocation still reproduces the full table.
#pragma once

#include <cstdlib>

namespace dqma::util {

/// True when the DQMA_BENCH_SMOKE environment variable is set.
inline bool bench_smoke() {
  return std::getenv("DQMA_BENCH_SMOKE") != nullptr;
}

/// Picks the full or the smoke-reduced variant of a parameter set.
template <typename T>
T smoke_select(T full, T smoke) {
  return bench_smoke() ? smoke : full;
}

}  // namespace dqma::util

// Plain-text table printer used by the benchmark harnesses to emit rows in
// the same layout as the paper's Tables 1-3 (DESIGN.md Sec. 3).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dqma::util {

/// Accumulates rows of string cells and prints them with aligned columns.
///
/// Usage:
///   Table t({"n", "r", "local proof (qubits)", "soundness err"});
///   t.add_row({"64", "4", "288", "0.31"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formats helpers for numeric cells.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt(int v);
  static std::string fmt(long long v);

  void print(std::ostream& os) const;

  int row_count() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner (experiment id + description) above a table.
void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& description);

}  // namespace dqma::util

#include "util/fault.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dqma::util::fault {

namespace {

enum class Action { kCrashAfter, kStall, kTornWrite, kEnospc };

struct Rule {
  unsigned site_mask = 0;  // bit per Site; all bits when no site prefix
  Action action = Action::kCrashAfter;
  long long arg = 0;  // crash_after: probe count; stall: milliseconds
};

constexpr unsigned kAllSites = 0xFu;

std::atomic<bool> g_armed{false};
std::vector<Rule> g_rules;                 // written only while disarmed
std::atomic<long long> g_probe_hits{0};    // crash_after counter
std::atomic<bool> g_tear_pending{false};   // torn_write fires once
std::once_flag g_env_once;

bool parse_site(const std::string& token, unsigned* mask) {
  if (token == "checkpoint") *mask = 1u << static_cast<int>(Site::kCheckpoint);
  else if (token == "lease") *mask = 1u << static_cast<int>(Site::kLease);
  else if (token == "scratch") *mask = 1u << static_cast<int>(Site::kScratch);
  else if (token == "serve") *mask = 1u << static_cast<int>(Site::kServe);
  else return false;
  return true;
}

void parse_clause(const std::string& clause, std::vector<Rule>* out) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= clause.size()) {
    const std::size_t colon = clause.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(clause.substr(start));
      break;
    }
    parts.push_back(clause.substr(start, colon - start));
    start = colon + 1;
  }
  Rule rule;
  std::size_t at = 0;
  if (!parts.empty() && parse_site(parts[0], &rule.site_mask)) {
    at = 1;
  } else {
    rule.site_mask = kAllSites;
  }
  if (at >= parts.size()) {
    std::fprintf(stderr, "dqma: DQMA_FAULT clause '%s' has no action\n",
                 clause.c_str());
    return;
  }
  const std::string& action = parts[at];
  const bool has_arg = at + 1 < parts.size();
  if (action == "crash_after") {
    rule.action = Action::kCrashAfter;
    rule.arg = has_arg ? std::atoll(parts[at + 1].c_str()) : 1;
    if (rule.arg <= 0) rule.arg = 1;
  } else if (action == "stall") {
    rule.action = Action::kStall;
    rule.arg = has_arg ? std::atoll(parts[at + 1].c_str()) : 1;
    if (rule.arg < 0) rule.arg = 0;
  } else if (action == "torn_write") {
    rule.action = Action::kTornWrite;
  } else if (action == "enospc") {
    rule.action = Action::kEnospc;
  } else {
    std::fprintf(stderr, "dqma: unknown DQMA_FAULT action '%s'\n",
                 action.c_str());
    return;
  }
  out->push_back(rule);
}

void arm_from_spec(const char* spec) {
  g_armed.store(false, std::memory_order_release);
  g_rules.clear();
  g_probe_hits.store(0, std::memory_order_relaxed);
  g_tear_pending.store(false, std::memory_order_relaxed);
  if (spec == nullptr || *spec == '\0') {
    return;
  }
  const std::string all(spec);
  std::size_t start = 0;
  while (start <= all.size()) {
    const std::size_t comma = all.find(',', start);
    const std::string clause =
        comma == std::string::npos ? all.substr(start)
                                   : all.substr(start, comma - start);
    if (!clause.empty()) {
      parse_clause(clause, &g_rules);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  for (const Rule& rule : g_rules) {
    if (rule.action == Action::kTornWrite) {
      g_tear_pending.store(true, std::memory_order_relaxed);
    }
  }
  g_armed.store(!g_rules.empty(), std::memory_order_release);
}

void ensure_parsed() {
  std::call_once(g_env_once, [] { arm_from_spec(std::getenv("DQMA_FAULT")); });
}

bool site_matches(const Rule& rule, Site site) {
  return (rule.site_mask & (1u << static_cast<int>(site))) != 0;
}

}  // namespace

void point(Site site) {
  ensure_parsed();
  if (!g_armed.load(std::memory_order_acquire)) {
    return;
  }
  for (const Rule& rule : g_rules) {
    if (!site_matches(rule, site)) {
      continue;
    }
    if (rule.action == Action::kCrashAfter) {
      const long long hit = g_probe_hits.fetch_add(1) + 1;
      if (hit >= rule.arg) {
        crash_now();
      }
    } else if (rule.action == Action::kStall) {
      std::this_thread::sleep_for(std::chrono::milliseconds(rule.arg));
    }
  }
}

bool should_tear(Site site) {
  ensure_parsed();
  if (!g_armed.load(std::memory_order_acquire)) {
    return false;
  }
  for (const Rule& rule : g_rules) {
    if (rule.action == Action::kTornWrite && site_matches(rule, site)) {
      bool expected = true;
      if (g_tear_pending.compare_exchange_strong(expected, false)) {
        return true;
      }
    }
  }
  return false;
}

bool should_fail_alloc(Site site) {
  ensure_parsed();
  if (!g_armed.load(std::memory_order_acquire)) {
    return false;
  }
  for (const Rule& rule : g_rules) {
    if (rule.action == Action::kEnospc && site_matches(rule, site)) {
      return true;
    }
  }
  return false;
}

void crash_now() { ::_exit(137); }

bool armed() {
  ensure_parsed();
  return g_armed.load(std::memory_order_acquire);
}

void reset_for_test(const char* spec) {
  ensure_parsed();  // make sure the env parse is consumed first
  arm_from_spec(spec);
}

}  // namespace dqma::util::fault

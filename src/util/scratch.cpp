#include "util/scratch.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "util/fault.hpp"
#include "util/require.hpp"

namespace dqma::util {

namespace {

std::string g_dir;           // NOLINT: process-wide scratch configuration
bool g_dir_overridden = false;

std::string resolved_dir() {
  if (g_dir_overridden) {
    return g_dir;
  }
  const char* env = std::getenv("DQMA_SCRATCH_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace

bool ScratchTile::enabled() { return !resolved_dir().empty(); }

std::string ScratchTile::directory() { return resolved_dir(); }

void ScratchTile::set_directory(std::string dir) {
  g_dir = std::move(dir);
  g_dir_overridden = true;
}

ScratchTile::ScratchTile(long long bytes) : bytes_(bytes) {
  require(bytes > 0, "ScratchTile: size must be positive");
  const std::string dir = resolved_dir();
  require(!dir.empty(),
          "ScratchTile: no scratch directory configured — pass --scratch DIR "
          "or set DQMA_SCRATCH_DIR");
  int fd = -1;
#ifdef O_TMPFILE
  // Never linked into the filesystem at all when the kernel supports it.
  fd = ::open(dir.c_str(), O_TMPFILE | O_RDWR | O_EXCL,
              S_IRUSR | S_IWUSR);
#endif
  if (fd < 0) {
    // Portable fallback: named temp file, unlinked immediately so nothing
    // survives a crash.
    const std::string tmpl = dir + "/dqma-scratch-XXXXXX";
    std::vector<char> path(tmpl.begin(), tmpl.end());
    path.push_back('\0');
    fd = ::mkstemp(path.data());
    require(fd >= 0, "ScratchTile: cannot create a scratch file in " + dir);
    ::unlink(path.data());
  }
  // From here on, failures mean the directory is configured but cannot hold
  // the tile (disk full, quota, mount limits) — recoverable per job, so they
  // raise ScratchAllocationError instead of a configuration error.
  if (fault::should_fail_alloc(fault::Site::kScratch)) {
    ::close(fd);
    throw ScratchAllocationError(
        "ScratchTile: cannot size a " + std::to_string(bytes) +
        "-byte scratch file in " + dir + ": injected ENOSPC (DQMA_FAULT)");
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    throw ScratchAllocationError(
        "ScratchTile: cannot size a " + std::to_string(bytes) +
        "-byte scratch file in " + dir + ": " + std::strerror(err) +
        (err == ENOSPC ? " (disk full)" : ""));
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(bytes),
                     PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    const int err = errno;
    throw ScratchAllocationError(
        "ScratchTile: mmap of " + std::to_string(bytes) + " bytes failed for " +
        dir + ": " + std::strerror(err));
  }
  map_ = map;
}

ScratchTile::~ScratchTile() {
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<std::size_t>(bytes_));
  }
}

}  // namespace dqma::util
